// B2 — feature-extraction and classification throughput: how fast can a
// year of TGCDB-scale records be turned into a modality report?
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

#include "core/report.hpp"
#include "util/rng.hpp"

namespace {

using namespace tg;

UsageDatabase make_db(int users, int jobs_per_user) {
  const Platform platform = teragrid_2010();
  UsageDatabase db;
  Rng rng(7);
  for (int u = 0; u < users; ++u) {
    for (int j = 0; j < jobs_per_user; ++j) {
      JobRecord r;
      r.resource = ResourceId{static_cast<ResourceId::rep>(
          rng.uniform_int(0, 12))};
      r.user = UserId{u};
      r.project = ProjectId{u / 3};
      r.submit_time = rng.uniform_int(0, kYear);
      r.start_time = r.submit_time + rng.uniform_int(0, 4 * kHour);
      r.end_time = r.start_time + rng.uniform_int(kMinute, 24 * kHour);
      r.nodes = static_cast<int>(rng.uniform_int(1, 64));
      r.cores_per_node = 8;
      r.requested_walltime = 24 * kHour;
      r.charged_nu = rng.uniform(1.0, 5000.0);
      r.charged_su = r.charged_nu;
      if (rng.bernoulli(0.1)) r.gateway = GatewayId{0};
      if (rng.bernoulli(0.2)) r.workflow = WorkflowId{j};
      db.add(std::move(r));
    }
  }
  return db;
}

void BM_FeatureExtraction(benchmark::State& state) {
  const Platform platform = teragrid_2010();
  const auto db = make_db(static_cast<int>(state.range(0)), 100);
  const FeatureExtractor extractor(platform);
  for (auto _ : state) {
    auto features = extractor.extract(db, 0, kYear + kDay);
    benchmark::DoNotOptimize(features);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(db.jobs().size()));
}
BENCHMARK(BM_FeatureExtraction)->Arg(100)->Arg(1000);

void BM_Classification(benchmark::State& state) {
  const Platform platform = teragrid_2010();
  const auto db = make_db(static_cast<int>(state.range(0)), 100);
  const FeatureExtractor extractor(platform);
  const auto features = extractor.extract(db, 0, kYear + kDay);
  const RuleClassifier classifier;
  for (auto _ : state) {
    auto sets = classifier.classify(features);
    benchmark::DoNotOptimize(sets);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(features.size()));
}
BENCHMARK(BM_Classification)->Arg(1000)->Arg(10000);

void BM_FullReport(benchmark::State& state) {
  const Platform platform = teragrid_2010();
  const auto db = make_db(1000, 100);
  const RuleClassifier classifier;
  for (auto _ : state) {
    auto report = ModalityReport::build(platform, db, classifier, 0,
                                        kYear + kDay);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(db.jobs().size()));
}
BENCHMARK(BM_FullReport);

}  // namespace

int main(int argc, char** argv) {
  return tg::exp::run_benchmarks(argc, argv, "bench_classifier");
}
