// Shared main() for the bench_* binaries. Google-benchmark consumes its
// --benchmark_* flags first; whatever remains must parse as the standard
// exp::Options surface, so the benchmarks speak the same flag language as
// the experiment binaries (and reject typos instead of ignoring them).
// `--metrics=FILE` exports a registry snapshot with the process peak RSS —
// the artifact the perf-smoke CI job uploads alongside the benchmark JSON.
#pragma once

#include <benchmark/benchmark.h>

#include <string>

#include "bench/exp_common.hpp"
#include "util/memstats.hpp"

namespace tg::exp {

inline int run_benchmarks(int argc, char** argv, const std::string& name) {
  benchmark::Initialize(&argc, argv);
  const Options options = Options::parse(argc, argv, name);
  Observability obsv(options);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (obsv.metrics_enabled()) {
    obsv.registry()
        .gauge("process.peak_rss_mb")
        .set(static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));
    if (allocation_counting_enabled()) {
      const AllocStats a = allocation_stats();
      obsv.registry().counter("process.allocations").set(a.allocations);
      obsv.registry().counter("process.allocated_bytes").set(a.bytes);
    }
  }
  obsv.finish();
  return 0;
}

}  // namespace tg::exp
