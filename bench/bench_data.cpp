// B7 — data-grid microbenchmarks: site-cache lookup/admit throughput under
// a Zipf-skewed reference stream (both eviction policies), per-job profile
// draws, and end-to-end stage-in resolution on the analytic WAN path. The
// perf-smoke CI job uploads these numbers as BENCH_data.json.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

#include <cstdint>
#include <vector>

#include "data/data_grid.hpp"
#include "data/storage_cache.hpp"
#include "des/engine.hpp"
#include "infra/platform.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace {

using namespace tg;

/// A pre-drawn Zipf reference stream over a dataset population whose
/// working set overflows the cache — the regime where eviction policy
/// matters. Built once per process.
struct ReferenceStream {
  std::vector<DatasetId> ids;
  std::vector<double> bytes;
};

const ReferenceStream& references() {
  static const ReferenceStream s = [] {
    constexpr int kDatasets = 4096;
    constexpr std::size_t kReferences = 1 << 18;
    Rng rng(99);
    Zipf pick(kDatasets, 1.1);
    BoundedPareto size(1.4, 5e9, 2e12);
    std::vector<double> dataset_bytes(kDatasets);
    for (double& b : dataset_bytes) b = size.sample(rng);
    ReferenceStream out;
    out.ids.reserve(kReferences);
    out.bytes.reserve(kReferences);
    for (std::size_t i = 0; i < kReferences; ++i) {
      const auto rank = pick.sample(rng) - 1;
      out.ids.push_back(DatasetId{static_cast<DatasetId::rep>(rank)});
      out.bytes.push_back(dataset_bytes[rank]);
    }
    return out;
  }();
  return s;
}

/// Cache ops/sec for the full lookup -> admit-on-miss cycle. Arg 0 selects
/// the policy. The 50 TB capacity holds a few percent of the hot set.
void BM_CacheLookupAdmit(benchmark::State& state) {
  const ReferenceStream& refs = references();
  const auto policy = static_cast<CachePolicy>(state.range(0));
  double hit_rate = 0.0;
  for (auto _ : state) {
    StorageCache cache(50e12, policy);
    for (std::size_t i = 0; i < refs.ids.size(); ++i) {
      if (!cache.lookup(refs.ids[i], refs.bytes[i])) {
        cache.admit(refs.ids[i], refs.bytes[i]);
      }
    }
    hit_rate = cache.stats().hit_rate();
    benchmark::DoNotOptimize(cache.resident());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(refs.ids.size()));
  state.counters["hit_rate"] = benchmark::Counter(hit_rate);
}
BENCHMARK(BM_CacheLookupAdmit)
    ->Arg(static_cast<int>(CachePolicy::kLru))
    ->Arg(static_cast<int>(CachePolicy::kSizeAwareLru))
    ->Unit(benchmark::kMillisecond);

DataGrid make_grid(Engine& engine, const Platform& platform) {
  std::vector<DataAccessSpec> specs(1, DataAccessSpec::enabled_defaults());
  return DataGrid(engine, platform, nullptr,
                  DataGridConfig::enabled_defaults(), std::move(specs),
                  Rng(7).fork("data"));
}

/// Profile draws/sec: the per-job cost the generator pays when an
/// archetype carries a data trait (Zipf picks + duplicate collapse +
/// catalog byte lookups).
void BM_DrawProfile(benchmark::State& state) {
  const Platform platform = teragrid_2010();
  Engine engine;
  DataGrid grid = make_grid(engine, platform);
  Rng rng(11);
  for (auto _ : state) {
    const DataAccessProfile profile = grid.draw_profile(0, rng);
    benchmark::DoNotOptimize(profile.total_bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DrawProfile);

/// End-to-end stage-in resolutions/sec on the analytic WAN path (no
/// FlowManager): draw a profile, resolve it against a site cache, run the
/// engine until the completion callback lands.
void BM_StageIn(benchmark::State& state) {
  const Platform platform = teragrid_2010();
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    DataGrid grid = make_grid(engine, platform);
    Rng rng(13);
    constexpr int kStageIns = 512;
    state.ResumeTiming();
    double bytes = 0.0;
    for (int i = 0; i < kStageIns; ++i) {
      grid.stage_in(ResourceId{0}, UserId{1}, ProjectId{1},
                    grid.draw_profile(0, rng),
                    [&bytes](const StageInResult& r) {
                      bytes += r.bytes_read;
                    });
      engine.run();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          512);
}
BENCHMARK(BM_StageIn)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return tg::exp::run_benchmarks(argc, argv, "bench_data");
}
