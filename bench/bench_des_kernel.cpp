// B1 — DES kernel microbenchmarks: event throughput, cancellation cost,
// and heap behaviour at depth.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

#include <functional>

#include "des/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace tg;

void BM_ScheduleAndRunSequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<SimTime>(i), [&sink] { ++sink; });
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScheduleAndRunSequential)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_ScheduleAndRunScrambled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(1);
    std::vector<SimTime> times(n);
    for (auto& t : times) t = rng.uniform_int(0, 1'000'000);
    state.ResumeTiming();
    Engine engine;
    std::uint64_t sink = 0;
    for (SimTime t : times) {
      engine.schedule_at(t, [&sink] { ++sink; });
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScheduleAndRunScrambled)->Arg(100000)->Arg(1000000);

void BM_SelfReschedulingChain(benchmark::State& state) {
  // The hot pattern of the traffic generator: one event schedules the next.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    std::size_t count = 0;
    std::function<void()> step = [&] {
      if (++count < n) engine.schedule_in(1, step);
    };
    engine.schedule_at(0, step);
    engine.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SelfReschedulingChain)->Arg(100000);

/// Publishes the engine's event-core counters on the benchmark row.
void report_stats(benchmark::State& state, const Engine::Stats& stats) {
  state.counters["tombstone_ratio"] =
      benchmark::Counter(stats.tombstone_ratio());
  state.counters["heap_high_water"] =
      benchmark::Counter(static_cast<double>(stats.heap_high_water));
}

void BM_CancelHalf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Engine::Stats last;
  for (auto _ : state) {
    Engine engine;
    std::vector<EventId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(engine.schedule_at(static_cast<SimTime>(i), [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) engine.cancel(ids[i]);
    engine.run();
    last = engine.stats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  report_stats(state, last);
}
BENCHMARK(BM_CancelHalf)->Arg(100000);

void BM_ScheduleThenCancelAll(benchmark::State& state) {
  // Pure schedule→cancel churn: the timer-reset pattern (every event is
  // cancelled and replaced before it can fire). Nothing but tombstones ever
  // reaches the callback.
  const auto n = static_cast<std::size_t>(state.range(0));
  Engine::Stats last;
  for (auto _ : state) {
    Engine engine;
    std::vector<EventId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(
          engine.schedule_at(static_cast<SimTime>(i % 1024), [] {}));
    }
    for (EventId id : ids) engine.cancel(id);
    engine.run();
    last = engine.stats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  report_stats(state, last);
}
BENCHMARK(BM_ScheduleThenCancelAll)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  return tg::exp::run_benchmarks(argc, argv, "bench_des_kernel");
}
