// B4 — accounting-analytics throughput: feature extraction and usage-database
// window queries at 1x/4x/16x population scale. This is the record-query →
// feature-extraction hot path of every measurement experiment; before/after
// numbers for the columnar-index work live in BENCH_analytics.json.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

#include <algorithm>

#include "core/features.hpp"
#include "util/rng.hpp"

namespace {

using namespace tg;

constexpr int kUsersPerScale = 250;
constexpr int kJobsPerUser = 100;
constexpr int kTransfersPerUser = 20;
constexpr int kSessionsPerUser = 6;

/// A year of records for `scale` x 250 users, appended in end-time order —
/// the order a Recorder produces them in (completion events fire in time
/// order), which is what the analytics layer optimizes for.
UsageDatabase make_db(int scale) {
  const int users = kUsersPerScale * scale;
  Rng rng(7);
  std::vector<JobRecord> jobs;
  jobs.reserve(static_cast<std::size_t>(users) * kJobsPerUser);
  std::vector<TransferRecord> transfers;
  std::vector<SessionRecord> sessions;
  for (int u = 0; u < users; ++u) {
    for (int j = 0; j < kJobsPerUser; ++j) {
      JobRecord r;
      r.job = JobId{static_cast<JobId::rep>(jobs.size())};
      r.resource =
          ResourceId{static_cast<ResourceId::rep>(rng.uniform_int(0, 12))};
      r.user = UserId{u};
      r.project = ProjectId{u / 3};
      r.submit_time = rng.uniform_int(0, kYear);
      r.start_time = r.submit_time + rng.uniform_int(0, 4 * kHour);
      r.end_time = r.start_time + rng.uniform_int(kMinute, 24 * kHour);
      r.nodes = static_cast<int>(rng.uniform_int(1, 64));
      r.cores_per_node = 8;
      r.requested_walltime = 24 * kHour;
      r.charged_nu = rng.uniform(1.0, 5000.0);
      r.charged_su = r.charged_nu;
      if (rng.bernoulli(0.1)) r.gateway = GatewayId{0};
      if (rng.bernoulli(0.2)) r.workflow = WorkflowId{j};
      jobs.push_back(std::move(r));
    }
    for (int t = 0; t < kTransfersPerUser; ++t) {
      TransferRecord r;
      r.transfer = TransferId{static_cast<TransferId::rep>(transfers.size())};
      r.src = SiteId{0};
      r.dst = SiteId{1};
      r.user = UserId{u};
      r.project = ProjectId{u / 3};
      r.bytes = rng.uniform(1e6, 1e12);
      r.submit_time = rng.uniform_int(0, kYear);
      r.end_time = r.submit_time + rng.uniform_int(kMinute, kHour);
      transfers.push_back(std::move(r));
    }
    for (int s = 0; s < kSessionsPerUser; ++s) {
      SessionRecord r;
      r.user = UserId{u};
      r.resource =
          ResourceId{static_cast<ResourceId::rep>(rng.uniform_int(0, 12))};
      r.start_time = rng.uniform_int(0, kYear);
      r.end_time = r.start_time + rng.uniform_int(kMinute, 8 * kHour);
      r.viz = rng.bernoulli(0.3);
      sessions.push_back(std::move(r));
    }
  }
  const auto by_end = [](const auto& a, const auto& b) {
    return a.end_time < b.end_time;
  };
  std::stable_sort(jobs.begin(), jobs.end(), by_end);
  std::stable_sort(transfers.begin(), transfers.end(), by_end);
  std::stable_sort(sessions.begin(), sessions.end(), by_end);
  UsageDatabase db;
  for (auto& r : jobs) db.add(std::move(r));
  for (auto& r : transfers) db.add(std::move(r));
  for (auto& r : sessions) db.add(std::move(r));
  return db;
}

/// Full-horizon feature extraction — the classifier's input, end to end.
void BM_ExtractAllUsers(benchmark::State& state) {
  const Platform platform = teragrid_2010();
  const auto db = make_db(static_cast<int>(state.range(0)));
  const FeatureExtractor extractor(platform);
  for (auto _ : state) {
    auto features = extractor.extract(db, 0, kYear + kDay);
    benchmark::DoNotOptimize(features);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(db.jobs().size()));
}
BENCHMARK(BM_ExtractAllUsers)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// Quarter-window extraction — the churn/timeseries experiments issue one of
/// these per reporting quarter.
void BM_ExtractQuarterWindow(benchmark::State& state) {
  const Platform platform = teragrid_2010();
  const auto db = make_db(static_cast<int>(state.range(0)));
  const FeatureExtractor extractor(platform);
  for (auto _ : state) {
    auto features = extractor.extract(db, kQuarter, 2 * kQuarter);
    benchmark::DoNotOptimize(features);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(db.jobs().size()));
}
BENCHMARK(BM_ExtractQuarterWindow)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// Single-user window extraction (the survey experiment's per-user weights).
void BM_ExtractUser(benchmark::State& state) {
  const Platform platform = teragrid_2010();
  const auto db = make_db(static_cast<int>(state.range(0)));
  const FeatureExtractor extractor(platform);
  int u = 0;
  const int users = kUsersPerScale * static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto f = extractor.extract_user(db, UserId{u}, 0, kYear + kDay);
    benchmark::DoNotOptimize(f);
    u = (u + 17) % users;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kJobsPerUser);
}
BENCHMARK(BM_ExtractUser)->Arg(1)->Arg(4)->Arg(16);

/// Per-user posting-list query.
void BM_JobsOfUser(benchmark::State& state) {
  const auto db = make_db(static_cast<int>(state.range(0)));
  int u = 0;
  const int users = kUsersPerScale * static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto jobs = db.jobs_of(UserId{u});
    benchmark::DoNotOptimize(jobs);
    u = (u + 17) % users;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kJobsPerUser);
}
BENCHMARK(BM_JobsOfUser)->Arg(1)->Arg(4)->Arg(16);

/// One-day end-time window over the full year of records.
void BM_JobsInDayWindow(benchmark::State& state) {
  const auto db = make_db(static_cast<int>(state.range(0)));
  SimTime day = 20;
  for (auto _ : state) {
    auto jobs = db.jobs_ending_in(day * kDay, (day + 1) * kDay);
    benchmark::DoNotOptimize(jobs);
    day = (day + 37) % 360;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_JobsInDayWindow)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  return tg::exp::run_benchmarks(argc, argv, "bench_features");
}
