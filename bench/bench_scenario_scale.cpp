// B4 — whole-simulator scalability: wall time and event throughput of the
// full Scenario pipeline (platform + schedulers + middleware + accounting)
// as the user population grows. This is the "large-scale distributed
// systems" claim of the simulator quantified.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "util/memstats.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace tg;

// The default mix is exactly 4x the scale-1 population of this benchmark,
// so scale N maps to a uniform N/4 factor (with_scale rounds half away
// from zero, matching the old hand-multiplied counts at every Arg).
ScenarioConfig scaled_config(int scale) {
  return ScenarioConfig::defaults()
      .with_seed(42)
      .with_horizon(90 * kDay)
      .with_scale(scale / 4.0);
}

void BM_ScenarioQuarter(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  std::size_t jobs = 0;
  const AllocStats alloc_before = allocation_stats();
  for (auto _ : state) {
    Scenario scenario(scaled_config(scale));
    scenario.run();
    events += scenario.engine().events_processed();
    jobs += scenario.db().jobs().size();
  }
  const AllocStats alloc_after = allocation_stats();
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["jobs"] = static_cast<double>(
      jobs / static_cast<std::size_t>(state.iterations()));
  // Peak RSS is a process high-water mark (monotone across benchmarks, so
  // only the largest scale's value is attributable); allocation counters
  // are per-iteration deltas and read 0 when the hooks are compiled out.
  state.counters["peak_rss_mb"] =
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
  if (allocation_counting_enabled()) {
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs/iter"] =
        static_cast<double>(alloc_after.allocations -
                            alloc_before.allocations) / iters;
    state.counters["alloc_mb/iter"] =
        static_cast<double>(alloc_after.bytes - alloc_before.bytes) /
        (1024.0 * 1024.0) / iters;
  }
}
BENCHMARK(BM_ScenarioQuarter)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Sharded-execution scaling: the same quarter-horizon scenario under each
// execution mode of the partitioned engine — merged oracle (shards=0),
// inline windows (1, isolates the window/staging overhead from threading),
// and pooled windows (2, 4). Identical simulation output by construction
// (the golden_shards tests enforce it); this measures only wall time.
void BM_ShardScaling(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Scenario scenario(scaled_config(16).with_shards(shards));
    scenario.run();
    events += scenario.engine().events_processed();
    rounds = scenario.engine().shard_stats().window_rounds.value();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  // Rounds per run: zero at shards >= 1 would mean windows never engaged
  // and the row silently measured the oracle.
  state.counters["window_rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_ShardScaling)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_FullYearDefault(benchmark::State& state) {
  for (auto _ : state) {
    Scenario scenario(
        ScenarioConfig::defaults().with_seed(42).with_horizon(kYear));
    scenario.run();
    benchmark::DoNotOptimize(scenario.db().jobs().size());
  }
}
BENCHMARK(BM_FullYearDefault)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return tg::exp::run_benchmarks(argc, argv, "bench_scenario_scale");
}
