// B4 — whole-simulator scalability: wall time and event throughput of the
// full Scenario pipeline (platform + schedulers + middleware + accounting)
// as the user population grows. This is the "large-scale distributed
// systems" claim of the simulator quantified.
#include <benchmark/benchmark.h>

#include "util/memstats.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace tg;

ScenarioConfig scaled_config(int scale) {
  ScenarioConfig config;
  config.seed = 42;
  config.horizon = 90 * kDay;
  config.mix.capacity_users = 75 * scale;
  config.mix.capability_users = 8 * scale;
  config.mix.gateway_end_users = 60 * scale;
  config.mix.workflow_users = 25 * scale;
  config.mix.coupled_users = 4 * scale;
  config.mix.viz_users = 10 * scale;
  config.mix.data_users = 10 * scale;
  config.mix.exploratory_users = 35 * scale;
  return config;
}

void BM_ScenarioQuarter(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  std::size_t jobs = 0;
  const AllocStats alloc_before = allocation_stats();
  for (auto _ : state) {
    Scenario scenario(scaled_config(scale));
    scenario.run();
    events += scenario.engine().events_processed();
    jobs += scenario.db().jobs().size();
  }
  const AllocStats alloc_after = allocation_stats();
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["jobs"] = static_cast<double>(
      jobs / static_cast<std::size_t>(state.iterations()));
  // Peak RSS is a process high-water mark (monotone across benchmarks, so
  // only the largest scale's value is attributable); allocation counters
  // are per-iteration deltas and read 0 when the hooks are compiled out.
  state.counters["peak_rss_mb"] =
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
  if (allocation_counting_enabled()) {
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs/iter"] =
        static_cast<double>(alloc_after.allocations -
                            alloc_before.allocations) / iters;
    state.counters["alloc_mb/iter"] =
        static_cast<double>(alloc_after.bytes - alloc_before.bytes) /
        (1024.0 * 1024.0) / iters;
  }
}
BENCHMARK(BM_ScenarioQuarter)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_FullYearDefault(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioConfig config;
    config.seed = 42;
    config.horizon = kYear;
    Scenario scenario(std::move(config));
    scenario.run();
    benchmark::DoNotOptimize(scenario.db().jobs().size());
  }
}
BENCHMARK(BM_FullYearDefault)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
