// B4 — whole-simulator scalability: wall time and event throughput of the
// full Scenario pipeline (platform + schedulers + middleware + accounting)
// as the user population grows. This is the "large-scale distributed
// systems" claim of the simulator quantified.
#include <benchmark/benchmark.h>

#include "workload/scenario.hpp"

namespace {

using namespace tg;

ScenarioConfig scaled_config(int scale) {
  ScenarioConfig config;
  config.seed = 42;
  config.horizon = 90 * kDay;
  config.mix.capacity_users = 75 * scale;
  config.mix.capability_users = 8 * scale;
  config.mix.gateway_end_users = 60 * scale;
  config.mix.workflow_users = 25 * scale;
  config.mix.coupled_users = 4 * scale;
  config.mix.viz_users = 10 * scale;
  config.mix.data_users = 10 * scale;
  config.mix.exploratory_users = 35 * scale;
  return config;
}

void BM_ScenarioQuarter(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  std::size_t jobs = 0;
  for (auto _ : state) {
    Scenario scenario(scaled_config(scale));
    scenario.run();
    events += scenario.engine().events_processed();
    jobs += scenario.db().jobs().size();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["jobs"] = static_cast<double>(
      jobs / static_cast<std::size_t>(state.iterations()));
}
BENCHMARK(BM_ScenarioQuarter)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_FullYearDefault(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioConfig config;
    config.seed = 42;
    config.horizon = kYear;
    Scenario scenario(std::move(config));
    scenario.run();
    benchmark::DoNotOptimize(scenario.db().jobs().size());
  }
}
BENCHMARK(BM_FullYearDefault)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
