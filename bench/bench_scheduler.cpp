// B3 — scheduler microbenchmarks: cost of a scheduling pass vs queue depth
// and policy, and end-to-end throughput of a saturated machine.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace tg;

ComputeResource machine() {
  ComputeResource r;
  r.id = ResourceId{0};
  r.site = SiteId{0};
  r.name = "bench";
  r.nodes = 1024;
  r.cores_per_node = 8;
  r.max_walltime = 48 * kHour;
  return r;
}

JobRequest random_job(Rng& rng) {
  JobRequest req;
  req.user = UserId{0};
  req.project = ProjectId{0};
  req.nodes = static_cast<int>(rng.uniform_int(1, 512));
  req.actual_runtime = rng.uniform_int(10 * kMinute, 12 * kHour);
  req.requested_walltime = static_cast<Duration>(
      static_cast<double>(req.actual_runtime) * rng.uniform(1.0, 2.0));
  return req;
}

void BM_SaturatedThroughput(benchmark::State& state) {
  const auto policy = static_cast<SchedPolicy>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    Engine engine;
    SchedulerConfig cfg;
    cfg.policy = policy;
    ResourceScheduler sched(engine, machine(), cfg);
    Rng rng(3);
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<SimTime>(i * kMinute),
                         [&sched, &rng] { sched.submit(random_job(rng)); },
                         EventPriority::kSubmission);
    }
    engine.run();
    benchmark::DoNotOptimize(sched.metrics().jobs_finished());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SaturatedThroughput)
    ->Args({static_cast<int>(SchedPolicy::kFcfs), 5000})
    ->Args({static_cast<int>(SchedPolicy::kEasyBackfill), 5000})
    ->Args({static_cast<int>(SchedPolicy::kConservativeBackfill), 5000});

// The B3 curve: estimate_start cost vs queue depth, with the incremental
// plan cache on (arg1 = 1) and off (arg1 = 0, the from-scratch reference
// planner). The cached curve should stay near-flat — each probe is one
// earliest_fit against the live plan profile — while the reference curve
// grows quadratically (every probe replans the whole queue).
void BM_EstimateStartVsQueueDepth(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  Engine engine;
  SchedulerConfig cfg;
  cfg.backfill_depth = 1 << 20;  // do not cap; measure raw scaling
  cfg.plan_cache = state.range(1) != 0;
  ResourceScheduler sched(engine, machine(), cfg);
  Rng rng(4);
  // Fill the machine, then stack a deep queue.
  for (std::size_t i = 0; i < depth + 8; ++i) {
    sched.submit(random_job(rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.estimate_start(64, 4 * kHour));
  }
}
BENCHMARK(BM_EstimateStartVsQueueDepth)
    ->Args({16, 0})
    ->Args({128, 0})
    ->Args({1024, 0})
    ->Args({4096, 0})
    ->Args({16, 1})
    ->Args({128, 1})
    ->Args({1024, 1})
    ->Args({4096, 1});

// Steady-state churn against a deep conservative backlog: each iteration
// submits a narrow job, probes the advisor, and cancels the job again. With
// the cache every step is incremental — the submit appends one planned
// entry, the cancel pops the plan tail, the probe reads the live profile.
// Without it each of the three replans the full queue from scratch.
void BM_IncrementalReplanChurn(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  Engine engine;
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kConservativeBackfill;
  cfg.backfill_depth = 1 << 20;
  cfg.plan_cache = state.range(1) != 0;
  ResourceScheduler sched(engine, machine(), cfg);
  Rng rng(5);
  for (std::size_t i = 0; i < depth + 8; ++i) {
    sched.submit(random_job(rng));
  }
  JobRequest probe;
  probe.user = UserId{0};
  probe.project = ProjectId{0};
  probe.nodes = 1;
  probe.actual_runtime = kHour;
  probe.requested_walltime = kHour;
  for (auto _ : state) {
    const JobId id = sched.submit(probe);
    benchmark::DoNotOptimize(sched.estimate_start(64, 4 * kHour));
    sched.cancel(id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IncrementalReplanChurn)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({4096, 1});

void BM_ReservationBooking(benchmark::State& state) {
  Engine engine;
  ResourceScheduler sched(engine, machine());
  SimTime at = kHour;
  for (auto _ : state) {
    const ReservationId id = sched.reserve(at, kHour, 64);
    benchmark::DoNotOptimize(id);
    sched.cancel_reservation(id);
    at += kMinute;
  }
}
BENCHMARK(BM_ReservationBooking);

}  // namespace

int main(int argc, char** argv) {
  return tg::exp::run_benchmarks(argc, argv, "bench_scheduler");
}
