// B6 — streaming modality measurement: classify-on-advance ingest vs the
// batch quarterly pass, window-close latency, and segmented (spillable)
// ingest residency. Feeds a year-scale scenario's accounting tape — the
// exact record stream the Recorder produced, replayed in end-time order —
// so before/after numbers for the streaming work live in
// BENCH_streaming.json next to the batch baseline.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/streaming.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace tg;

constexpr SimTime kSeriesEnd = 4 * kQuarter;  // whole quarters in a year

/// The year scenario's record streams, replayable in end-time order (the
/// order the live Recorder appends in). Built once per process.
struct Tape {
  std::vector<JobRecord> jobs;
  std::vector<TransferRecord> transfers;
  std::vector<SessionRecord> sessions;
  /// Merged replay order: (stream kind, index into that stream's vector).
  std::vector<std::pair<std::uint8_t, std::uint32_t>> order;

  [[nodiscard]] std::size_t size() const { return order.size(); }

  template <class JobFn, class TransferFn, class SessionFn>
  void replay(JobFn&& on_job, TransferFn&& on_transfer,
              SessionFn&& on_session) const {
    for (const auto& [kind, idx] : order) {
      switch (kind) {
        case 0: on_job(jobs[idx]); break;
        case 1: on_transfer(transfers[idx]); break;
        default: on_session(sessions[idx]); break;
      }
    }
  }
};

const Tape& tape() {
  static const Tape t = [] {
    Scenario scenario(
        ScenarioConfig::defaults().with_seed(42).with_horizon(kYear));
    scenario.run();
    Tape out;
    out.jobs.assign(scenario.db().jobs().begin(), scenario.db().jobs().end());
    out.transfers.assign(scenario.db().transfers().begin(),
                         scenario.db().transfers().end());
    out.sessions.assign(scenario.db().sessions().begin(),
                        scenario.db().sessions().end());
    const auto end_of = [&out](const std::pair<std::uint8_t, std::uint32_t>&
                                   e) {
      switch (e.first) {
        case 0: return out.jobs[e.second].end_time;
        case 1: return out.transfers[e.second].end_time;
        default: return out.sessions[e.second].end_time;
      }
    };
    for (std::uint32_t i = 0; i < out.jobs.size(); ++i)
      out.order.emplace_back(0, i);
    for (std::uint32_t i = 0; i < out.transfers.size(); ++i)
      out.order.emplace_back(1, i);
    for (std::uint32_t i = 0; i < out.sessions.size(); ++i)
      out.order.emplace_back(2, i);
    // Each stream is already end-ordered; a stable sort interleaves them
    // into one Recorder-like completion-time stream.
    std::stable_sort(out.order.begin(), out.order.end(),
                     [&end_of](const auto& a, const auto& b) {
                       return end_of(a) < end_of(b);
                     });
    return out;
  }();
  return t;
}

StreamingConfig streaming_config(SimTime series_end = kSeriesEnd) {
  StreamingConfig config;
  config.series_end = series_end;
  return config;
}

/// Classify-on-advance over the whole year tape: the streaming pipeline's
/// end-to-end ingest rate (records/sec), quarterly classifications
/// included. Compare items/sec with BM_BatchQuarterlySeries.
void BM_StreamingIngest(benchmark::State& state) {
  const Platform platform = teragrid_2010();
  const Tape& t = tape();
  for (auto _ : state) {
    StreamingExtractor ex(platform, streaming_config());
    t.replay([&ex](const JobRecord& r) { ex.on_job(r); },
             [&ex](const TransferRecord& r) { ex.on_transfer(r); },
             [&ex](const SessionRecord& r) { ex.on_session(r); });
    ex.finish();
    benchmark::DoNotOptimize(ex.series().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_StreamingIngest)->Unit(benchmark::kMillisecond);

/// The batch oracle over the same records: database append + the four
/// quarterly classify windows, i.e. everything BM_StreamingIngest does but
/// after the fact.
void BM_BatchQuarterlySeries(benchmark::State& state) {
  const Platform platform = teragrid_2010();
  const Tape& t = tape();
  const RuleClassifier classifier;
  for (auto _ : state) {
    UsageDatabase db;
    t.replay([&db](const JobRecord& r) { db.add(r); },
             [&db](const TransferRecord& r) { db.add(r); },
             [&db](const SessionRecord& r) { db.add(r); });
    const ModalityTimeSeries series =
        quarterly_series(platform, db, classifier, 0, kSeriesEnd);
    benchmark::DoNotOptimize(series.primary_users.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_BatchQuarterlySeries)->Unit(benchmark::kMillisecond);

/// Latency of one window close (finalize + classify every active user) —
/// the pause a live consumer sees when the stream crosses a quarter
/// boundary. The quarter's records are fed off the clock.
void BM_ClassifyOnAdvance(benchmark::State& state) {
  const Platform platform = teragrid_2010();
  const Tape& t = tape();
  for (auto _ : state) {
    state.PauseTiming();
    StreamingExtractor ex(platform, streaming_config(kQuarter));
    t.replay([&ex](const JobRecord& r) { ex.on_job(r); },
             [&ex](const TransferRecord& r) { ex.on_transfer(r); },
             [&ex](const SessionRecord& r) { ex.on_session(r); });
    state.ResumeTiming();
    ex.finish();  // closes the one open window: the classify-on-advance step
    benchmark::DoNotOptimize(ex.series().size());
  }
}
BENCHMARK(BM_ClassifyOnAdvance)->Unit(benchmark::kMillisecond);

/// Streaming ingest with the spillable segment log underneath — records
/// land in fixed-size columnar segments whose cold majority spills to disk
/// as the stream advances. `resident_record_mb` is the heap still holding
/// record payloads when the tape ends: bounded by the residency budget,
/// not the year of history (compare `spilled_mb`).
void BM_SegmentedIngest(benchmark::State& state) {
  const Platform platform = teragrid_2010();
  const Tape& t = tape();
  const auto dir =
      std::filesystem::temp_directory_path() / "tgsim_bench_spill";
  std::filesystem::create_directories(dir);
  SegmentLogConfig cfg;
  cfg.segment_records = static_cast<std::uint32_t>(state.range(0));
  cfg.spill_dir = dir.string();
  SegmentLogStats last;
  for (auto _ : state) {
    UsageDatabase db;
    db.enable_segments(cfg);
    StreamingExtractor ex(platform, streaming_config());
    db.add_observer(&ex);
    t.replay([&db](const JobRecord& r) { db.add(r); },
             [&db](const TransferRecord& r) { db.add(r); },
             [&db](const SessionRecord& r) { db.add(r); });
    ex.finish();
    benchmark::DoNotOptimize(ex.series().size());
    last = db.segment_stats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
  // Records still on the heap when the tape ends: everything appended
  // minus the (full) segments that spilled. Record size varies by stream;
  // use the largest for a conservative resident estimate.
  const double resident_records =
      static_cast<double>(last.appended) -
      static_cast<double>(last.spilled) * cfg.segment_records;
  state.counters["spilled_segments"] =
      benchmark::Counter(static_cast<double>(last.spilled));
  state.counters["spilled_mb"] = benchmark::Counter(
      static_cast<double>(last.spilled_bytes) / (1024.0 * 1024.0));
  state.counters["resident_record_mb"] = benchmark::Counter(
      resident_records * static_cast<double>(sizeof(JobRecord)) /
      (1024.0 * 1024.0));
  state.counters["peak_rss_mb"] = benchmark::Counter(
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SegmentedIngest)->Arg(4096)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return tg::exp::run_benchmarks(argc, argv, "bench_streaming");
}
