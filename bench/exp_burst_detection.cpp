// Experiment F10 — ablation of the burst-clustering heuristic.
//
// Workflow/ensemble usage is only partially visible through middleware
// tags: users who script their own sweeps leave no tag, and the classifier
// must recover them from same-geometry submission bursts. This ablation
// sweeps (a) the fraction of ensemble campaigns that go through the tagged
// workflow engine and (b) the burst-size threshold, reporting workflow
// recall with and without burst clustering.
#include <iostream>

#include "bench/exp_common.hpp"
#include "core/scoring.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace tg;

double workflow_recall(const Scenario& scenario,
                       const RuleClassifier& classifier) {
  const auto labelled = scenario.predictions(classifier);
  const auto cm = score_primary(labelled.truth, labelled.predicted);
  return cm.recall(Modality::kWorkflowEnsemble);
}

Scenario make_scenario(double engine_prob, bool plan_cache, int shards) {
  ScenarioConfig config;
  config.seed = 42;
  config.sched.plan_cache = plan_cache;
  config.shards = shards;
  config.horizon = 120 * kDay;
  config.archetypes.workflow.engine_prob = engine_prob;
  return Scenario(std::move(config));
}

}  // namespace

int main(int argc, char** argv) {
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_burst_detection");
  exp::Observability obsv(options);
  exp::banner("F10", "Burst-clustering ablation (untagged ensembles)");
  const bool plan_cache = !options.exact_replan;

  exp::OptionalCsv csv(options.csv, {"sweep", "x", "recall"});

  std::cout << "(a) Workflow-modality recall vs fraction of campaigns using "
               "the tagged engine:\n";
  Table a({"Tagged fraction", "Recall (tags+bursts)", "Recall (tags only)"});
  for (const double engine_prob : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    Scenario scenario = make_scenario(engine_prob, plan_cache, options.shards);
    scenario.run();
    // Tags + bursts: the default classifier.
    const double with_bursts =
        workflow_recall(scenario, RuleClassifier{});
    // Tags only: set the burst requirement impossibly high.
    FeatureConfig no_burst_features;
    no_burst_features.burst_min_jobs = 1'000'000;
    // Rebuild predictions with burst detection effectively disabled.
    const FeatureExtractor extractor(scenario.platform(), no_burst_features);
    const auto features =
        extractor.extract(scenario.db(), 0, scenario.engine().now() + 1);
    const RuleClassifier classifier;
    const auto sets = classifier.classify(features);
    ConfusionMatrix cm;
    for (std::size_t i = 0; i < features.size(); ++i) {
      if (sets[i].members.none()) continue;
      cm.add(scenario.truth().of(features[i].user), sets[i].primary);
    }
    const double tags_only = cm.recall(Modality::kWorkflowEnsemble);
    a.add_row({Table::pct(engine_prob, 0), Table::num(with_bursts, 3),
               Table::num(tags_only, 3)});
    csv.row({"tagged_fraction", Table::num(engine_prob, 2),
             Table::num(with_bursts, 4)});
    csv.row({"tagged_fraction_tagsonly", Table::num(engine_prob, 2),
             Table::num(tags_only, 4)});
  }
  std::cout << a;

  std::cout << "\n(b) Recall vs burst-size threshold (half of campaigns "
               "tagged):\n";
  Table b({"burst_min_jobs", "Workflow recall", "Overall accuracy"});
  Scenario scenario =
      make_scenario(0.5, !options.exact_replan, options.shards);
  scenario.run();
  for (const int min_jobs : {4, 8, 16, 32, 64}) {
    ScenarioConfig probe_cfg;  // only FeatureConfig matters below
    FeatureConfig fc;
    fc.burst_min_jobs = min_jobs;
    const FeatureExtractor extractor(scenario.platform(), fc);
    const auto features =
        extractor.extract(scenario.db(), 0, scenario.engine().now() + 1);
    const RuleClassifier classifier;
    const auto sets = classifier.classify(features);
    ConfusionMatrix cm;
    for (std::size_t i = 0; i < features.size(); ++i) {
      if (sets[i].members.none()) continue;
      cm.add(scenario.truth().of(features[i].user), sets[i].primary);
    }
    (void)probe_cfg;
    b.add_row({Table::num(std::int64_t{min_jobs}),
               Table::num(cm.recall(Modality::kWorkflowEnsemble), 3),
               Table::pct(cm.accuracy())});
    csv.row({"burst_min_jobs", std::to_string(min_jobs),
             Table::num(cm.recall(Modality::kWorkflowEnsemble), 4)});
  }
  std::cout << b
            << "\nTags alone miss the scripted half of ensemble use; burst\n"
               "clustering recovers it, degrading only when the threshold\n"
               "exceeds typical sweep widths.\n";
  obsv.finish();
  return 0;
}
