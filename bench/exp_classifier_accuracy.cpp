// Experiment F3 — how well do the paper's proposed measurement mechanisms
// recover true modalities? Ten independent half-year populations are
// simulated (in parallel), classified from records only, and scored against
// the generator's ground truth: aggregate confusion matrix, per-modality
// precision/recall/F1, and accuracy spread across seeds.
#include <iostream>

#include "bench/exp_common.hpp"
#include "core/scoring.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

namespace {

struct SeedResult {
  std::vector<tg::Modality> truth;
  std::vector<tg::Modality> predicted;
};

SeedResult run_seed(std::uint64_t seed, bool plan_cache, int shards) {
  tg::ScenarioConfig config;
  config.seed = seed;
  config.sched.plan_cache = plan_cache;
  config.shards = shards;
  config.horizon = 180 * tg::kDay;
  tg::Scenario scenario(std::move(config));
  scenario.run();
  const tg::RuleClassifier classifier;
  const auto labelled = scenario.predictions(classifier);
  return SeedResult{labelled.truth, labelled.predicted};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tg;
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_classifier_accuracy");
  exp::Observability obsv(options);
  exp::banner("F3", "Classifier quality vs ground truth (10 seeds)");

  constexpr std::size_t kSeeds = 10;
  Replicator pool(options.jobs);
  const auto results = obsv.replicate(
      pool, kSeeds,
      [plan_cache = !options.exact_replan,
       shards = options.shards](std::size_t i) {
        return run_seed(1000 + i, plan_cache, shards);
      });

  ConfusionMatrix aggregate;
  RunningStats accuracy;
  RunningStats macro_f1;
  for (const SeedResult& r : results) {
    const ConfusionMatrix cm = score_primary(r.truth, r.predicted);
    accuracy.add(cm.accuracy());
    macro_f1.add(cm.macro_f1());
    for (std::size_t i = 0; i < r.truth.size(); ++i) {
      aggregate.add(r.truth[i], r.predicted[i]);
    }
  }

  std::cout << "Aggregate confusion matrix (" << aggregate.total()
            << " user-classifications):\n"
            << aggregate.to_table() << "\n"
            << aggregate.per_class_table() << "\n"
            << "Accuracy:  mean " << Table::pct(accuracy.mean()) << "  min "
            << Table::pct(accuracy.min()) << "  max "
            << Table::pct(accuracy.max()) << "\n"
            << "Macro-F1:  mean " << Table::num(macro_f1.mean(), 3)
            << "  stddev " << Table::num(macro_f1.stddev(), 4) << "\n";

  exp::OptionalCsv csv(options.csv,
                       {"modality", "precision", "recall", "f1"});
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    const auto mod = static_cast<Modality>(m);
    csv.row({short_name(mod), Table::num(aggregate.precision(mod), 4),
             Table::num(aggregate.recall(mod), 4),
             Table::num(aggregate.f1(mod), 4)});
  }
  obsv.finish();
  return 0;
}
