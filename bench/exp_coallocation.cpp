// Experiment F6 — the cost of tightly-coupled distributed computing: how
// much longer does a 2-site co-allocated run wait for its common window
// than an equivalent single-site job, as background load grows? This is
// the known co-scheduling penalty that kept the tightly-coupled modality
// small on the real TeraGrid.
#include <algorithm>
#include <iostream>

#include "bench/exp_common.hpp"
#include "meta/coalloc.hpp"
#include "util/distributions.hpp"
#include "util/stats.hpp"

namespace {

using namespace tg;

/// Keeps a machine at roughly `load` utilization with random batch jobs.
void offer_background(Engine& engine, ResourceScheduler& sched, double load,
                      Duration horizon, Rng rng) {
  const ComputeResource& res = sched.resource();
  const double budget = load * res.nodes * to_hours(horizon);
  const LogUniformInt width(1, std::max(2, res.nodes / 2));
  const LogNormal runtime = LogNormal::from_mean_cv(3.0, 1.0);
  double demand = 0.0;
  std::vector<std::pair<SimTime, JobRequest>> jobs;
  while (demand < budget) {
    JobRequest req;
    req.user = UserId{0};
    req.project = ProjectId{0};
    req.nodes = static_cast<int>(width.sample(rng));
    req.actual_runtime = std::clamp<Duration>(
        static_cast<Duration>(runtime.sample(rng) * kHour), 10 * kMinute,
        res.max_walltime);
    req.requested_walltime = std::min<Duration>(
        res.max_walltime,
        static_cast<Duration>(static_cast<double>(req.actual_runtime) * 1.5));
    demand += req.nodes * to_hours(req.actual_runtime);
    jobs.emplace_back(rng.uniform_int(0, horizon - 1), std::move(req));
  }
  for (auto& [at, req] : jobs) {
    engine.schedule_at(at, [&sched, r = std::move(req)] { sched.submit(r); },
                       EventPriority::kSubmission);
  }
}

struct LoadResult {
  double single_wait_h = 0.0;
  double coalloc_wait_h = 0.0;
  int probes = 0;
};

LoadResult run_load(double load, int shards) {
  const Platform platform = teragrid_2010();
  Engine engine;
  const exp::Sharding sharding(engine, platform, shards);
  SchedulerPool pool(engine, platform, {}, sharding.plan());
  CoAllocator coalloc(engine, pool);
  const ResourceId a = platform.compute_by_name("Kraken").id;
  const ResourceId b = platform.compute_by_name("Ranger").id;
  const Duration horizon = 20 * kDay;

  Rng rng(4242);
  offer_background(engine, pool.at(a), load, horizon, rng.fork("bg.a"));
  offer_background(engine, pool.at(b), load, horizon, rng.fork("bg.b"));

  RunningStats single_wait;
  RunningStats coalloc_wait;
  int probes = 0;
  // A probe pair every 12 hours: one co-allocated 2-site request and one
  // single-site job of the same total size, submitted back to back.
  for (SimTime at = kDay; at < horizon - kDay; at += 12 * kHour) {
    engine.schedule_at(at, [&, at] {
      ++probes;
      CoAllocRequest req;
      req.user = UserId{1};
      req.project = ProjectId{1};
      req.walltime = 4 * kHour;
      req.actual_runtime = 4 * kHour;
      req.members = {{a, 32}, {b, 16}};
      const auto result = coalloc.co_allocate(req);
      if (result) coalloc_wait.add(to_hours(result->start - at));

      const SimTime est = pool.at(a).estimate_start(48, 4 * kHour);
      single_wait.add(to_hours(est - at));
    });
  }
  engine.run();

  LoadResult out;
  out.single_wait_h = single_wait.mean();
  out.coalloc_wait_h = coalloc_wait.mean();
  out.probes = probes;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_coallocation");
  exp::Observability obsv(options);
  exp::banner("F6", "Co-allocation wait penalty vs background load");
  Table t({"Background load", "Probes", "Single-site wait (h)",
           "Co-alloc wait (h)", "Penalty"});
  exp::OptionalCsv csv(options.csv,
                       {"load", "single_wait_h", "coalloc_wait_h",
                        "penalty_factor"});
  for (const double load : {0.2, 0.4, 0.6, 0.8}) {
    const LoadResult r = run_load(load, options.shards);
    const double penalty =
        r.single_wait_h > 1e-6 ? r.coalloc_wait_h / r.single_wait_h : 0.0;
    t.add_row({Table::pct(load, 0),
               Table::num(static_cast<std::int64_t>(r.probes)),
               Table::num(r.single_wait_h, 2), Table::num(r.coalloc_wait_h, 2),
               penalty > 0 ? Table::num(penalty, 1) + "x" : "-"});
    csv.row({Table::num(load, 2), Table::num(r.single_wait_h, 3),
             Table::num(r.coalloc_wait_h, 3), Table::num(penalty, 2)});
  }
  std::cout << t
            << "\nExpected shape: the co-allocation wait is the max over\n"
               "member machines' waits, so the penalty grows with load.\n";
  obsv.finish();
  return 0;
}
