// Shared helpers for the experiment binaries (exp_*): each binary
// regenerates one table/figure of the reconstructed evaluation (see
// DESIGN.md §4) and optionally dumps CSV next to its stdout table.
//
// Every binary parses the same declarative flag surface (exp::Options) and
// wires observability the same way (exp::Observability): `--trace=FILE`
// and `--metrics=FILE` export the obs subsystem's structured trace and
// metric registry without touching stdout, so the primary outputs stay
// byte-stable whether or not observability is enabled.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "des/shard.hpp"
#include "fault/invariants.hpp"
#include "infra/platform.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "parallel/replicate.hpp"
#include "parallel/thread_pool.hpp"
#include "util/csv.hpp"
#include "util/memstats.hpp"
#include "util/table.hpp"

namespace tg::exp {

/// The declarative flag surface shared by every experiment and benchmark
/// binary. parse() replaces the old per-binary argv scans: it recognizes
/// exactly the flags below, prints usage and exits(2) on anything else
/// (and exits(0) on --help), so a typo can no longer silently run the
/// default configuration.
struct Options {
  /// --jobs=N: worker count for replication/analytics fan-out. 0 = one
  /// worker per hardware thread; 1 = inline, no threads. Output is
  /// byte-identical at every level (Replicator determinism contract).
  std::size_t jobs = 0;
  /// --engine-stats: append the event-core counters after the tables.
  bool engine_stats = false;
  /// --stats: append a run-resource summary (throughput, RSS, allocs).
  bool stats = false;
  /// --check-invariants: audit the run and exit non-zero on violation.
  bool check_invariants = false;
  /// --exact-replan: disable the incremental plan cache and replan every
  /// scheduling decision from scratch (the reference planner). Primary
  /// outputs must be byte-identical with or without this flag — CI diffs
  /// the two (see tests/golden_determinism.cmake).
  bool exact_replan = false;
  /// --shards=N / --no-shard: execution mode of the partitioned DES core.
  /// 0 (and --no-shard) runs the merged sequential loop — the reference
  /// oracle; 1 runs conservative time windows inline; N >= 2 runs the
  /// windows on N worker threads. Primary outputs must be byte-identical
  /// at every value — CI diffs --shards=1 and --shards=4 against the
  /// default (tests/golden_determinism.cmake).
  int shards = 0;
  /// --audit-every=DAYS: run the mid-run invariant audit
  /// (AuditPhase::kMidRun — families 1-5 plus node-accounting bounds)
  /// every DAYS of sim time while the scenario runs. The scenario throws
  /// InvariantError at the first failing audit, pinpointing *when* a
  /// conservation law broke instead of discovering it after the drain.
  /// 0 disables. Fractions work: --audit-every=0.5 audits twice a day.
  double audit_every = 0.0;
  /// --mc-random=N: skip the experiment and instead run one canonical
  /// replay plus N random tie-break replays of the scenario, requiring
  /// identical terminal records and a clean invariant audit from every
  /// replay (see mc/random_check.hpp). Exits non-zero on divergence.
  std::size_t mc_random = 0;
  /// --mc-seed=S: derives the --mc-random tie-break streams.
  std::uint64_t mc_seed = 1;
  /// --streaming: produce the modality series with the StreamingExtractor
  /// (classify-on-advance during the run) instead of the batch
  /// quarterly_series pass. Primary outputs must be byte-identical either
  /// way — CI diffs the two (see tests/golden_streaming.cmake).
  bool streaming = false;
  /// --segment-cap=N: with --streaming, store records in the spillable
  /// columnar segment log with N records per segment (0 keeps the plain
  /// in-memory vectors). Output stays byte-identical at every value.
  std::uint32_t segment_cap = 0;
  /// --spill-dir=PATH: with --segment-cap, seal-and-spill cold segments to
  /// PATH and read them back via mmap (bounded resident memory).
  std::string spill_dir;
  /// --csv[=path]: dump the table rows as CSV (default <name>.csv).
  std::optional<std::string> csv;
  /// --trace[=path]: export the structured sim-time trace as JSONL (or
  /// CSV by extension; default <name>.trace.jsonl).
  std::optional<std::string> trace;
  /// --metrics[=path]: export the metric registry (default
  /// <name>.metrics.jsonl).
  std::optional<std::string> metrics;

  /// --audit-every converted to sim time (0 when disabled); wire into
  /// ScenarioConfig::with_audit_every.
  [[nodiscard]] Duration audit_period() const {
    return static_cast<Duration>(audit_every * static_cast<double>(kDay));
  }

  /// Parses argv. `name` seeds the default output filenames and the usage
  /// text. Unknown flags (or positional arguments) are fatal.
  static Options parse(int argc, char** argv, const std::string& name) {
    Options out;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_usage(std::cout, name);
        std::exit(0);
      } else if (arg.rfind("--jobs=", 0) == 0) {
        const long n = std::strtol(arg.c_str() + 7, nullptr, 10);
        out.jobs = n > 0 ? static_cast<std::size_t>(n) : 1;
      } else if (arg == "--engine-stats") {
        out.engine_stats = true;
      } else if (arg == "--stats") {
        out.stats = true;
      } else if (arg == "--check-invariants") {
        out.check_invariants = true;
      } else if (arg == "--exact-replan") {
        out.exact_replan = true;
      } else if (arg.rfind("--shards=", 0) == 0) {
        const long n = std::strtol(arg.c_str() + 9, nullptr, 10);
        out.shards = n > 0 ? static_cast<int>(n) : 0;
      } else if (arg == "--no-shard") {
        out.shards = 0;
      } else if (arg.rfind("--audit-every=", 0) == 0) {
        out.audit_every = std::strtod(arg.c_str() + 14, nullptr);
        if (out.audit_every < 0.0) out.audit_every = 0.0;
      } else if (arg.rfind("--mc-random=", 0) == 0) {
        const long n = std::strtol(arg.c_str() + 12, nullptr, 10);
        out.mc_random = n > 0 ? static_cast<std::size_t>(n) : 0;
      } else if (arg.rfind("--mc-seed=", 0) == 0) {
        out.mc_seed = std::strtoull(arg.c_str() + 10, nullptr, 10);
      } else if (arg == "--streaming") {
        out.streaming = true;
      } else if (arg.rfind("--segment-cap=", 0) == 0) {
        const long n = std::strtol(arg.c_str() + 14, nullptr, 10);
        out.segment_cap = n > 0 ? static_cast<std::uint32_t>(n) : 0;
      } else if (arg.rfind("--spill-dir=", 0) == 0) {
        out.spill_dir = arg.substr(12);
      } else if (arg == "--csv") {
        out.csv = name + ".csv";
      } else if (arg.rfind("--csv=", 0) == 0) {
        out.csv = arg.substr(6);
      } else if (arg == "--trace") {
        out.trace = name + ".trace.jsonl";
      } else if (arg.rfind("--trace=", 0) == 0) {
        out.trace = arg.substr(8);
      } else if (arg == "--metrics") {
        out.metrics = name + ".metrics.jsonl";
      } else if (arg.rfind("--metrics=", 0) == 0) {
        out.metrics = arg.substr(10);
      } else {
        std::cerr << name << ": unknown option '" << arg << "'\n";
        print_usage(std::cerr, name);
        std::exit(2);
      }
    }
    return out;
  }

  static void print_usage(std::ostream& os, const std::string& name) {
    os << "usage: " << name << " [options]\n"
       << "  --jobs=N            worker threads (0 = hardware, 1 = inline)\n"
       << "  --csv[=PATH]        dump table rows as CSV (default " << name
       << ".csv)\n"
       << "  --trace[=PATH]      export the sim-time trace (JSONL, or CSV "
          "by extension)\n"
       << "  --metrics[=PATH]    export the metric registry (JSONL or CSV)\n"
       << "  --engine-stats      append event-core counters\n"
       << "  --stats             append run-resource summary\n"
       << "  --check-invariants  audit the run; non-zero exit on violation\n"
       << "  --exact-replan      disable the incremental plan cache "
          "(reference planner)\n"
       << "  --shards=N          windowed DES execution: 1 = inline windows, "
          "N >= 2 = N workers\n"
       << "  --no-shard          merged sequential loop (default; the "
          "reference oracle)\n"
       << "  --audit-every=DAYS  mid-run invariant audit every DAYS of sim "
          "time (0 = off)\n"
       << "  --mc-random=N       N random tie-break replays instead of the "
          "experiment\n"
       << "  --mc-seed=S         seed for the --mc-random tie-break "
          "streams\n"
       << "  --streaming         classify-on-advance streaming series "
          "(byte-identical to batch)\n"
       << "  --segment-cap=N     with --streaming: N records per columnar "
          "segment (0 = plain vectors)\n"
       << "  --spill-dir=PATH    with --segment-cap: spill sealed segments "
          "to PATH (mmap reads)\n"
       << "  --help              show this help\n";
  }
};

/// Applies Options::shards to a hand-built Engine, for the binaries that
/// construct their own Engine + SchedulerPool instead of going through
/// Scenario. The engine is always partitioned by topology — the canonical
/// event order must not depend on the execution mode — and windowed
/// execution is enabled when shards > 0 (1 = inline windows, N >= 2 = N
/// worker threads). Construct right after the Engine and pass plan() to
/// the SchedulerPool constructor.
class Sharding {
 public:
  Sharding(Engine& engine, const Platform& platform, int shards)
      : Sharding(engine, make_shard_plan(platform), shards) {}

  /// Same, from an explicit plan — for binaries without an infra Platform
  /// (e.g. a hand-built single machine partitioned via plan_shards(1, {})).
  Sharding(Engine& engine, ShardPlan plan, int shards)
      : plan_(std::move(plan)) {
    engine.configure_partitions(plan_.partitions);
    if (shards > 0) {
      if (shards >= 2) {
        workers_ =
            std::make_unique<ThreadPool>(static_cast<std::size_t>(shards));
      }
      engine.set_window_execution(true, workers_.get());
    }
  }

  [[nodiscard]] const ShardPlan* plan() const { return &plan_; }

 private:
  ShardPlan plan_;
  std::unique_ptr<ThreadPool> workers_;
};

/// Owns the per-process observability state an experiment needs: the trace
/// ring (allocated only when --trace was given, so tracing-off runs carry
/// a null buffer everywhere), the metric registry, and a wall-clock phase
/// profiler. Call finish() after the last table is printed.
class Observability {
 public:
  explicit Observability(const Options& options) : options_(options) {
    if (options_.trace) trace_ = std::make_unique<obs::TraceBuffer>();
  }

  /// Null unless --trace was given: wire this into ScenarioConfig::trace
  /// (single-scenario binaries only — never share one buffer between
  /// replications fanned out across threads).
  [[nodiscard]] obs::TraceBuffer* trace() { return trace_.get(); }
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] obs::PhaseProfiler& profiler() { return profiler_; }
  [[nodiscard]] bool metrics_enabled() const {
    return options_.metrics.has_value();
  }

  /// Fans `n` replications out over `pool` (exactly run_seeds), charging
  /// the wave's wall time to the profiler and bracketing it with a
  /// kReplicate span emitted from this (coordinating) thread — the trace
  /// stays single-writer and byte-identical at any --jobs level.
  template <class Fn>
  auto replicate(Replicator& pool, std::size_t n, Fn fn)
      -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
    obs::TraceSpan span(trace_.get(), 0, obs::TraceCategory::kReplication,
                        obs::TracePoint::kReplicate, wave_++);
    span.set_payload(static_cast<std::int64_t>(n));
    const auto scope = profiler_.measure("replicate");
    return pool.run(n, std::move(fn));
  }

  /// Writes the requested export files. Stdout is never touched, so the
  /// primary outputs are byte-identical with or without observability.
  void finish() {
    if (options_.metrics) {
      profiler_.publish(registry_);
      if (trace_) {
        registry_.counter("trace.events_emitted").set(trace_->emitted());
        registry_.counter("trace.events_dropped").set(trace_->dropped());
      }
      obs::write_metrics_file(registry_, *options_.metrics);
    }
    if (options_.trace) obs::write_trace_file(*trace_, *options_.trace);
  }

 private:
  Options options_;
  std::unique_ptr<obs::TraceBuffer> trace_;
  obs::MetricsRegistry registry_;
  obs::PhaseProfiler profiler_;
  std::int64_t wave_ = 0;
};

/// Fans `n` independent replications out over the pool and returns their
/// results in seed-index order. The thin experiment-facing wrapper around
/// Replicator::run — replications must be self-contained (own Engine/Rng,
/// no printing); aggregate and print only after this returns.
template <class Fn>
auto run_seeds(Replicator& pool, std::size_t n, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  return pool.run(n, std::move(fn));
}

/// Prints the engine's event-core counters (see Engine::Stats).
inline void print_engine_stats(const Engine& engine) {
  const Engine::Stats& s = engine.stats();
  std::cout << "\n[engine] scheduled=" << s.scheduled
            << " fired=" << s.fired << " cancelled=" << s.cancelled
            << " tombstones=" << s.tombstones
            << " tombstone_ratio=" << s.tombstone_ratio()
            << " heap_high_water="
            << static_cast<std::uint64_t>(s.heap_high_water.value()) << "\n";
}

/// Prints an invariant report and exits non-zero on violation. Call last:
/// an experiment that produced tables from a corrupted simulation must not
/// look successful to CI.
inline void print_invariants(const InvariantReport& report) {
  std::cout << "\n[invariants] " << report.to_string() << "\n";
  if (!report.ok()) std::exit(1);
}

/// Wall-clock scope for print_run_stats: construct before the simulation,
/// print after the output is flushed.
class RunStats {
 public:
  RunStats() : start_(std::chrono::steady_clock::now()) {}

  /// Prints events/sec (0 elapsed guards to 0), job count, peak RSS and the
  /// operator-new counters ("n/a" under sanitizers; see util/memstats.hpp).
  void print(std::uint64_t events, std::size_t jobs) const {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::cout << "\n[stats] events=" << events << " events/sec="
              << static_cast<std::uint64_t>(
                     seconds > 0.0 ? static_cast<double>(events) / seconds
                                   : 0.0)
              << " jobs=" << jobs << " peak_rss_mb="
              << (peak_rss_bytes() / (1024.0 * 1024.0));
    if (allocation_counting_enabled()) {
      const AllocStats a = allocation_stats();
      std::cout << " allocs=" << a.allocations
                << " alloc_mb=" << (static_cast<double>(a.bytes) /
                                    (1024.0 * 1024.0));
    } else {
      std::cout << " allocs=n/a";
    }
    std::cout << "\n";
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "=== " << id << ": " << title << " ===\n";
}

/// Writes rows to CSV when a path was requested.
class OptionalCsv {
 public:
  OptionalCsv(const std::optional<std::string>& path,
              const std::vector<std::string>& header) {
    if (path) {
      writer_ = std::make_unique<CsvWriter>(*path, header);
      std::cout << "(writing " << *path << ")\n";
    }
  }
  void row(const std::vector<std::string>& cells) {
    if (writer_) writer_->write_row(cells);
  }

 private:
  std::unique_ptr<CsvWriter> writer_;
};

}  // namespace tg::exp
