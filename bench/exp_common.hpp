// Shared helpers for the experiment binaries (exp_*): each binary
// regenerates one table/figure of the reconstructed evaluation (see
// DESIGN.md §4) and optionally dumps CSV next to its stdout table.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "fault/invariants.hpp"
#include "parallel/replicate.hpp"
#include "util/csv.hpp"
#include "util/memstats.hpp"
#include "util/table.hpp"

namespace tg::exp {

/// Parses `--jobs=N`: worker count for multi-replication experiments.
/// Default 0 = one worker per hardware thread; `--jobs=1` runs the
/// replication loop inline (no threads). Output is byte-identical at every
/// jobs level — see the Replicator determinism contract.
inline std::size_t jobs_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      const long n = std::strtol(arg.c_str() + 7, nullptr, 10);
      return n > 0 ? static_cast<std::size_t>(n) : 1;
    }
  }
  return 0;
}

/// Fans `n` independent replications out over the pool and returns their
/// results in seed-index order. The thin experiment-facing wrapper around
/// Replicator::run — replications must be self-contained (own Engine/Rng,
/// no printing); aggregate and print only after this returns.
template <class Fn>
auto run_seeds(Replicator& pool, std::size_t n, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  return pool.run(n, std::move(fn));
}

/// Parses `--engine-stats`: when present, experiments append the event-core
/// counters after their tables. Off by default so that the primary outputs
/// stay byte-stable across runs and engine versions.
inline bool engine_stats_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--engine-stats") return true;
  }
  return false;
}

/// Prints the engine's event-core counters (see Engine::Stats).
inline void print_engine_stats(const Engine& engine) {
  const Engine::Stats& s = engine.stats();
  std::cout << "\n[engine] scheduled=" << s.scheduled
            << " fired=" << s.fired << " cancelled=" << s.cancelled
            << " tombstones=" << s.tombstones
            << " tombstone_ratio=" << s.tombstone_ratio()
            << " heap_high_water=" << s.heap_high_water << "\n";
}

/// Parses `--check-invariants`: when present, experiments audit their runs
/// with tg::check_invariants and report the result after their tables. Off
/// by default so primary outputs stay byte-stable.
inline bool invariants_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check-invariants") return true;
  }
  return false;
}

/// Prints an invariant report and exits non-zero on violation. Call last:
/// an experiment that produced tables from a corrupted simulation must not
/// look successful to CI.
inline void print_invariants(const InvariantReport& report) {
  std::cout << "\n[invariants] " << report.to_string() << "\n";
  if (!report.ok()) std::exit(1);
}

/// Parses `--stats`: when present, experiments append a run-resource
/// summary (event throughput, job count, peak RSS, allocation counters)
/// after their tables. Off by default so primary outputs stay byte-stable.
inline bool stats_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--stats") return true;
  }
  return false;
}

/// Wall-clock scope for print_run_stats: construct before the simulation,
/// print after the output is flushed.
class RunStats {
 public:
  RunStats() : start_(std::chrono::steady_clock::now()) {}

  /// Prints events/sec (0 elapsed guards to 0), job count, peak RSS and the
  /// operator-new counters ("n/a" under sanitizers; see util/memstats.hpp).
  void print(std::uint64_t events, std::size_t jobs) const {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::cout << "\n[stats] events=" << events << " events/sec="
              << static_cast<std::uint64_t>(
                     seconds > 0.0 ? static_cast<double>(events) / seconds
                                   : 0.0)
              << " jobs=" << jobs << " peak_rss_mb="
              << (peak_rss_bytes() / (1024.0 * 1024.0));
    if (allocation_counting_enabled()) {
      const AllocStats a = allocation_stats();
      std::cout << " allocs=" << a.allocations
                << " alloc_mb=" << (static_cast<double>(a.bytes) /
                                    (1024.0 * 1024.0));
    } else {
      std::cout << " allocs=n/a";
    }
    std::cout << "\n";
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Parses `--csv[=path]`; returns the path (default `<name>.csv`) if given.
inline std::optional<std::string> csv_path(int argc, char** argv,
                                           const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") return name + ".csv";
    if (arg.rfind("--csv=", 0) == 0) return arg.substr(6);
  }
  return std::nullopt;
}

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "=== " << id << ": " << title << " ===\n";
}

/// Writes rows to CSV when a path was requested.
class OptionalCsv {
 public:
  OptionalCsv(const std::optional<std::string>& path,
              const std::vector<std::string>& header) {
    if (path) {
      writer_ = std::make_unique<CsvWriter>(*path, header);
      std::cout << "(writing " << *path << ")\n";
    }
  }
  void row(const std::vector<std::string>& cells) {
    if (writer_) writer_->write_row(cells);
  }

 private:
  std::unique_ptr<CsvWriter> writer_;
};

}  // namespace tg::exp
