// Shared helpers for the experiment binaries (exp_*): each binary
// regenerates one table/figure of the reconstructed evaluation (see
// DESIGN.md §4) and optionally dumps CSV next to its stdout table.
#pragma once

#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace tg::exp {

/// Parses `--csv[=path]`; returns the path (default `<name>.csv`) if given.
inline std::optional<std::string> csv_path(int argc, char** argv,
                                           const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") return name + ".csv";
    if (arg.rfind("--csv=", 0) == 0) return arg.substr(6);
  }
  return std::nullopt;
}

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "=== " << id << ": " << title << " ===\n";
}

/// Writes rows to CSV when a path was requested.
class OptionalCsv {
 public:
  OptionalCsv(const std::optional<std::string>& path,
              const std::vector<std::string>& header) {
    if (path) {
      writer_ = std::make_unique<CsvWriter>(*path, header);
      std::cout << "(writing " << *path << ")\n";
    }
  }
  void row(const std::vector<std::string>& cells) {
    if (writer_) writer_->write_row(cells);
  }

 private:
  std::unique_ptr<CsvWriter> writer_;
};

}  // namespace tg::exp
