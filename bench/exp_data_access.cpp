// Experiment D1 — the data-grid sweep: how site-cache capacity and eviction
// policy shape stage-in behaviour, and whether the accounting stream alone
// recovers the data-intensive modality. A data-intensive archetype (drawn
// per-job dataset references over Zipf-skewed replicated pools, after Begy
// et al.) joins the standard population; each sweep point simulates the
// same quarter under one cache configuration and reports cache hit rates,
// WAN stage-in volume and latency, and the classifier's data-centric
// accuracy against ground truth. Sweep points run in parallel; output is
// byte-identical at every --jobs and --shards level.
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench/exp_common.hpp"
#include "core/classifier.hpp"
#include "core/features.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace tg;

struct SweepPoint {
  const char* name;
  double cache_tb;  ///< per-site cache capacity
  CachePolicy policy;
};

// Capacities bracket the per-site slice of the data archetype's working
// set (256 datasets, bounded-Pareto sizes tailing to 2 TB): half a TB
// thrashes and rejects the tail, 50 TB holds nearly everything, the
// middle point is where the eviction policies separate.
constexpr SweepPoint kSweep[] = {
    {"tiny-lru", 0.5, CachePolicy::kLru},
    {"tiny-sa", 0.5, CachePolicy::kSizeAwareLru},
    {"small-lru", 5.0, CachePolicy::kLru},
    {"small-sa", 5.0, CachePolicy::kSizeAwareLru},
    {"large-lru", 50.0, CachePolicy::kLru},
    {"large-sa", 50.0, CachePolicy::kSizeAwareLru},
};

struct RunResult {
  CacheStats cache;
  DataGrid::Stats grid;
  double accuracy = 0.0;  ///< data-centric membership vs truth, all users
  double recall = 0.0;    ///< flagged fraction of true data-centric users
  std::size_t users = 0;
};

RunResult run_one(const SweepPoint& point, bool plan_cache, int shards) {
  Scenario scenario(
      ScenarioConfig::defaults()
          .with_seed(777)
          .with_horizon(kQuarter)
          .with_plan_cache(plan_cache)
          .with_shards(shards)
          .with_archetype(ArchetypeSpec::data_intensive())
          .with_data_grid(DataGridConfig::enabled_defaults()
                              .with_cache_bytes(point.cache_tb * 1e12)
                              .with_policy(point.policy)));
  scenario.run();

  RunResult out;
  out.cache = scenario.data_grid()->total_cache_stats();
  out.grid = scenario.data_grid()->stats();

  // Data-centric membership vs ground truth over every active account
  // user: a user is "flagged" when kDataCentric is in their modality set
  // (not necessarily primary — heavy readers still burn NU). Recall is
  // measured over the staged archetype specifically: the builtin "data"
  // archetype is transfer-based (no stage-in) and is recovered by the
  // older bytes-transferred rule, not the one under test here.
  const FeatureExtractor extractor(scenario.platform(),
                                   scenario.config().features);
  const auto features = extractor.extract(scenario.db(), 0,
                                          scenario.engine().now() + 1);
  const RuleClassifier classifier;
  const auto sets = classifier.classify(features);
  std::vector<bool> flagged_of(
      static_cast<std::size_t>(scenario.db().user_id_limit()), false);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    const bool truth =
        scenario.truth().of(features[i].user) == Modality::kDataCentric;
    const bool flagged = sets[i].has(Modality::kDataCentric);
    if (truth == flagged) ++correct;
    if (flagged) {
      flagged_of[static_cast<std::size_t>(features[i].user.value())] = true;
    }
  }
  const std::size_t staged_index =
      scenario.population().registry.index_of("dataintensive");
  std::size_t staged = 0, staged_hit = 0;
  for (const SyntheticUser& u : scenario.population().users) {
    if (u.archetype != staged_index) continue;
    ++staged;
    const auto v = static_cast<std::size_t>(u.id.value());
    if (v < flagged_of.size() && flagged_of[v]) ++staged_hit;
  }
  out.users = features.size();
  out.accuracy = features.empty()
                     ? 0.0
                     : static_cast<double>(correct) / features.size();
  out.recall =
      staged == 0 ? 0.0 : static_cast<double>(staged_hit) / staged;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_data_access");
  exp::Observability obsv(options);
  exp::banner("D1", "Site-cache sweep: hit rates, stage-in, data modality");

  constexpr std::size_t kPoints = std::size(kSweep);
  Replicator pool(options.jobs);
  const bool plan_cache = !options.exact_replan;
  const auto results = obsv.replicate(
      pool, kPoints, [plan_cache, shards = options.shards](std::size_t i) {
        return run_one(kSweep[i], plan_cache, shards);
      });

  Table table({"config", "cache TB", "policy", "hit rate", "byte hits",
               "evictions", "staged TB", "local %", "stage-in h",
               "accuracy", "recall"});
  exp::OptionalCsv csv(options.csv,
                       {"config", "cache_tb", "policy", "hit_rate",
                        "byte_hit_rate", "evictions", "staged_tb",
                        "local_fraction", "stage_in_hours", "accuracy",
                        "recall"});
  for (std::size_t i = 0; i < kPoints; ++i) {
    const RunResult& r = results[i];
    const double staged_tb = r.grid.bytes_transferred / 1e12;
    const double local_frac =
        r.grid.stage_ins > 0
            ? static_cast<double>(r.grid.local_stage_ins) /
                  static_cast<double>(r.grid.stage_ins)
            : 0.0;
    const double stage_in_hours =
        static_cast<double>(r.grid.stage_in_total) /
        static_cast<double>(kHour);
    std::vector<std::string> row{
        kSweep[i].name,
        Table::num(kSweep[i].cache_tb, 1),
        to_string(kSweep[i].policy),
        Table::pct(r.cache.hit_rate()),
        Table::pct(r.cache.byte_hit_rate()),
        std::to_string(r.cache.evictions),
        Table::num(staged_tb, 2),
        Table::pct(local_frac),
        Table::num(stage_in_hours, 1),
        Table::pct(r.accuracy),
        Table::pct(r.recall)};
    csv.row(row);
    table.add_row(std::move(row));
  }
  std::cout << table << "\n";

  // The headline acceptance number: the worst sweep point must still
  // recover the data-intensive population from accounting records alone.
  double min_accuracy = 1.0;
  for (const RunResult& r : results) {
    min_accuracy = std::min(min_accuracy, r.accuracy);
  }
  std::cout << "Data-centric accuracy (worst sweep point): "
            << Table::pct(min_accuracy) << " over " << results[0].users
            << " users\n";
  if (options.engine_stats) {
    std::cout << "(per-point engines are internal; rerun with --stats)\n";
  }
  obsv.finish();
  return 0;
}
