// Experiment F12 — how robust is the modality table to operational noise?
// The same population is simulated under increasing fault pressure (resource
// MTBF sweep plus per-job hazards and gateway brownouts); each level reports
// the NU-share drift of the modality table against the fault-free level, the
// classifier accuracy against ground truth, the injected-fault statistics,
// and the invariant-audit verdict. Levels x seeds run in parallel; output is
// byte-identical at every --jobs level.
#include <array>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/exp_common.hpp"
#include "core/scoring.hpp"
#include "fault/invariants.hpp"
#include "mc/random_check.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace tg;

struct Level {
  const char* name;
  double mtbf_hours;  ///< 0 = fault-free control
};

constexpr Level kLevels[] = {
    {"none", 0.0},
    {"rare", 2000.0},
    {"monthly", 720.0},
    {"weekly", 168.0},
};
constexpr std::size_t kSeedsPerLevel = 3;

struct RunResult {
  std::array<double, kModalityCount> nu_share{};
  double accuracy = 0.0;
  std::uint64_t requeued = 0;
  std::uint64_t outage_killed = 0;
  FaultModel::Stats faults;
  bool invariants_ok = false;
  std::size_t invariant_checks = 0;
  std::string first_violation;
};

RunResult run_one(double mtbf_hours, std::uint64_t seed, bool plan_cache,
                  int shards, Duration audit_every) {
  ScenarioConfig config;
  config.seed = seed;
  config.horizon = 120 * kDay;
  config.sched.plan_cache = plan_cache;
  config.shards = shards;
  config.audit_every = audit_every;
  if (mtbf_hours > 0.0) {
    config.faults.outage.mtbf_hours = mtbf_hours;
    config.faults.job_failure_rate_per_hour = 0.0005;
    config.faults.gateway_brownouts_per_week = 0.25;
  }
  Scenario scenario(std::move(config));
  scenario.run();

  const RuleClassifier classifier;
  const ModalityReport report = scenario.report(classifier);
  RunResult out;
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    out.nu_share[m] = report.rows()[m].nu_share;
  }
  const auto labelled = scenario.predictions(classifier);
  out.accuracy = score_primary(labelled.truth, labelled.predicted).accuracy();
  out.requeued = scenario.db().disposition_count(Disposition::kRequeued);
  out.outage_killed =
      scenario.db().disposition_count(Disposition::kKilledByOutage);
  out.faults = scenario.fault_stats();
  const InvariantReport audit = check_invariants(
      scenario.platform(), scenario.db(), &scenario.ledger(),
      &scenario.community(), &scenario.pool(), scenario.config().charging);
  out.invariants_ok = audit.ok();
  out.invariant_checks = audit.checks;
  if (!audit.ok()) out.first_violation = audit.violations.front();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_fault_sensitivity");

  if (options.mc_random > 0) {
    // Random tie-break replays instead of the experiment: a compact faulty
    // configuration (weekly outages, brownouts, scaled-down population),
    // big enough to exercise outage/requeue races, small enough that the
    // replays fit a CI smoke budget.
    ScenarioConfig config;
    config.seed = 4242;
    config.horizon = 30 * kDay;
    config.sched.plan_cache = !options.exact_replan;
    config.faults.outage.mtbf_hours = 168.0;
    config.faults.gateway_brownouts_per_week = 0.25;
    config.with_scale(0.5);
    const bool ok = mc::run_random_tiebreak_check(
        config, options.mc_random, options.mc_seed, std::cout);
    std::cout << "[mc-random] " << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
  }

  exp::Observability obsv(options);
  exp::banner("F12", "Modality-table drift vs infrastructure MTBF");

  // Replications are self-contained (own Engine, own trace-free Scenario):
  // the coordinating thread owns the only trace buffer, so the export stays
  // byte-identical at every --jobs level.
  constexpr std::size_t kLevelCount = std::size(kLevels);
  Replicator pool(options.jobs);
  const bool plan_cache = !options.exact_replan;
  const auto results = obsv.replicate(
      pool, kLevelCount * kSeedsPerLevel,
      [plan_cache, shards = options.shards,
       audit_every = options.audit_period()](std::size_t i) {
        return run_one(kLevels[i / kSeedsPerLevel].mtbf_hours,
                       4200 + i % kSeedsPerLevel, plan_cache, shards,
                       audit_every);
      });

  // Per-level means; level 0 (fault-free) is the drift baseline.
  std::array<std::array<double, kModalityCount>, kLevelCount> mean_share{};
  for (std::size_t l = 0; l < kLevelCount; ++l) {
    for (std::size_t s = 0; s < kSeedsPerLevel; ++s) {
      const RunResult& r = results[l * kSeedsPerLevel + s];
      for (std::size_t m = 0; m < kModalityCount; ++m) {
        mean_share[l][m] += r.nu_share[m] / kSeedsPerLevel;
      }
    }
  }

  Table table({"fault level", "MTBF h", "outages", "node-h lost", "requeued",
               "outage-killed", "hazard fails", "brownouts", "NU drift",
               "accuracy", "invariants"});
  bool all_ok = true;
  std::size_t total_checks = 0;
  exp::OptionalCsv csv(options.csv,
                       {"level", "mtbf_hours", "outages", "node_hours_lost",
                        "requeued", "outage_killed", "hazard_failures",
                        "brownouts", "nu_drift", "accuracy"});
  for (std::size_t l = 0; l < kLevelCount; ++l) {
    std::uint64_t outages = 0, requeued = 0, killed = 0, hazards = 0,
                  brownouts = 0;
    double node_hours = 0.0;
    RunningStats accuracy;
    bool level_ok = true;
    for (std::size_t s = 0; s < kSeedsPerLevel; ++s) {
      const RunResult& r = results[l * kSeedsPerLevel + s];
      outages += r.faults.outages;
      node_hours += r.faults.node_hours_lost;
      requeued += r.requeued;
      killed += r.outage_killed;
      hazards += r.faults.hazard_failures;
      brownouts += r.faults.brownouts;
      accuracy.add(r.accuracy);
      level_ok = level_ok && r.invariants_ok;
      total_checks += r.invariant_checks;
      if (!r.invariants_ok && all_ok) {
        std::cout << "FIRST VIOLATION (" << kLevels[l].name << "/" << s
                  << "): " << r.first_violation << "\n";
      }
      all_ok = all_ok && r.invariants_ok;
    }
    // Total-variation distance between mean NU-share vectors.
    double drift = 0.0;
    for (std::size_t m = 0; m < kModalityCount; ++m) {
      drift += std::abs(mean_share[l][m] - mean_share[0][m]);
    }
    drift /= 2.0;
    table.add_row({kLevels[l].name, Table::num(kLevels[l].mtbf_hours, 0),
                   Table::num(static_cast<std::int64_t>(outages)),
                   Table::num(node_hours, 1),
                   Table::num(static_cast<std::int64_t>(requeued)),
                   Table::num(static_cast<std::int64_t>(killed)),
                   Table::num(static_cast<std::int64_t>(hazards)),
                   Table::num(static_cast<std::int64_t>(brownouts)),
                   Table::num(drift, 4), Table::pct(accuracy.mean()),
                   level_ok ? "pass" : "FAIL"});
    csv.row({kLevels[l].name, Table::num(kLevels[l].mtbf_hours, 0),
             std::to_string(outages), Table::num(node_hours, 1),
             std::to_string(requeued), std::to_string(killed),
             std::to_string(hazards), std::to_string(brownouts),
             Table::num(drift, 4), Table::num(accuracy.mean(), 4)});
  }
  std::cout << table << "\n"
            << "Invariant audit: " << (all_ok ? "all runs pass" : "FAILED")
            << " (" << total_checks << " checks across "
            << kLevelCount * kSeedsPerLevel << " runs)\n";
  obsv.finish();
  return all_ok ? 0 : 1;
}
