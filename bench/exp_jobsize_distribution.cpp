// Experiment F2 — job-width distribution (in cores) by modality: the CDF
// figure showing gateway/exploratory use concentrated at tiny widths,
// capacity batch log-uniform across the middle, and capability runs in the
// thousands of cores.
#include <array>
#include <iostream>
#include <map>

#include "bench/exp_common.hpp"
#include "util/histogram.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace tg;
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_jobsize_distribution");
  exp::Observability obsv(options);
  exp::banner("F2", "Job width (cores) CDF by modality, 1 year");

  Scenario scenario(ScenarioConfig::defaults()
                        .with_seed(42)
                        .with_horizon(kYear)
                        .with_plan_cache(!options.exact_replan)
                        .with_shards(options.shards)
                        .with_trace(obsv.trace()));
  scenario.run();

  // Classify users from records, then attribute each job to its user's
  // primary modality — exactly what an analyst would do with TGCDB data.
  const RuleClassifier classifier;
  const FeatureExtractor extractor(scenario.platform(),
                                   scenario.config().features);
  const auto features =
      extractor.extract(scenario.db(), 0, scenario.engine().now() + 1);
  const auto sets = classifier.classify(features);
  std::map<UserId, Modality> primary;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (!sets[i].members.none()) primary[features[i].user] = sets[i].primary;
  }

  std::array<Log2Histogram, kModalityCount> widths{};
  for (const JobRecord& r : scenario.db().jobs()) {
    const auto it = primary.find(r.user);
    if (it == primary.end()) continue;
    widths[static_cast<std::size_t>(it->second)].add(r.width_cores());
  }

  std::size_t max_bin = 0;
  for (const auto& h : widths) max_bin = std::max(max_bin, h.used_bins());

  std::vector<std::string> header{"cores <="};
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    header.emplace_back(short_name(static_cast<Modality>(m)));
  }
  Table t(header);
  exp::OptionalCsv csv(options.csv, header);
  std::array<double, kModalityCount> cum{};
  for (std::size_t b = 0; b < max_bin; ++b) {
    std::vector<std::string> row{
        std::to_string(static_cast<long>(1) << (b + 1))};
    for (std::size_t m = 0; m < kModalityCount; ++m) {
      cum[m] += widths[m].count(b);
      const double total = widths[m].total();
      row.push_back(total > 0 ? Table::pct(cum[m] / total, 0) : "-");
    }
    csv.row(row);
    t.add_row(std::move(row));
  }
  std::cout << t << "\nJobs per modality: ";
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    std::cout << short_name(static_cast<Modality>(m)) << "="
              << static_cast<long>(widths[m].total()) << " ";
  }
  std::cout << "\n";
  if (options.engine_stats) {
    exp::print_engine_stats(scenario.engine());
  }
  if (obsv.metrics_enabled()) scenario.publish_metrics(obsv.registry());
  obsv.finish();
  return 0;
}
