// Experiment T3 — measurement-mechanism coverage.
//
// Two parts:
//  (a) a static table of which record stream identifies each modality (the
//      paper's proposal), with the measured fraction of that modality's
//      ground-truth users the mechanism actually recovered;
//  (b) the gateway attribute-coverage sweep: the paper's key measurement
//      gap is that gateways only sometimes attach end-user attributes; we
//      sweep the coverage rate and report the end-user undercount.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/exp_common.hpp"
#include "core/scoring.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

namespace {

tg::ScenarioConfig config_with_coverage(double coverage, bool plan_cache,
                                        int shards) {
  tg::ScenarioConfig c;
  c.seed = 42;
  c.sched.plan_cache = plan_cache;
  c.shards = shards;
  c.horizon = 180 * tg::kDay;
  c.gateway_attribute_coverage = coverage;
  c.gateway_adoption_ramp = 0.0;  // everyone active; isolates the gap
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tg;
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_mechanism_coverage");
  exp::Observability obsv(options);
  exp::banner("T3", "Measurement-mechanism coverage per modality");
  const bool plan_cache = !options.exact_replan;

  // --- (a) per-modality recall of the proposed mechanisms ---
  {
    Scenario scenario(config_with_coverage(0.9, plan_cache, options.shards));
    scenario.run();
    const RuleClassifier classifier;
    const auto labelled = scenario.predictions(classifier);
    const auto cm = score_primary(labelled.truth, labelled.predicted);
    Table t({"Modality", "Mechanism (record stream)", "Recall", "Precision"});
    for (const ModalityInfo& info : taxonomy()) {
      t.add_row({info.name, info.mechanism,
                 Table::num(cm.recall(info.modality), 3),
                 Table::num(cm.precision(info.modality), 3)});
    }
    std::cout << t << "\n";
  }

  // --- (b) gateway attribute-coverage sweep ---
  // Three views of the gap: the attributable *job/charge* fraction tracks
  // coverage linearly; the distinct end-user count is robust (any one
  // attributed job identifies a user); the identification *delay* — how
  // long a new portal user stays invisible — grows as coverage falls.
  // Each coverage point is an independent replication (own Scenario, own
  // Engine); fan them out and print the index-ordered results.
  std::cout << "Gateway attribute coverage sweep:\n";
  Table sweep({"Coverage", "End users (true)", "Measured", "Jobs attributed",
               "Median days to identify"});
  exp::OptionalCsv csv(options.csv,
                       {"coverage", "true_end_users", "measured_end_users",
                        "attributed_job_fraction", "median_identify_days"});
  const std::vector<double> coverages{0.25, 0.5, 0.75, 0.9, 1.0};
  struct CoverageRow {
    int truth = 0;
    int measured = 0;
    double job_frac = 0.0;
    double median_delay = 0.0;
  };
  Replicator pool(options.jobs);
  const auto rows =
      obsv.replicate(pool, coverages.size(), [&](std::size_t i) {
        Scenario scenario(
            config_with_coverage(coverages[i], plan_cache, options.shards));
        scenario.run();
        const RuleClassifier classifier;
        const ModalityReport report = scenario.report(classifier);
        CoverageRow row;
        row.truth =
            static_cast<int>(scenario.population().gateway_end_users.size());
        row.measured = report.gateway_end_users();

        long gateway_jobs = 0;
        long attributed = 0;
        // Identification delay: first *attributed* record of an end user
        // minus their activation time (ground truth from the population).
        // Dense by interned end-user id; -1 = never attributed.
        std::vector<SimTime> first_seen(
            scenario.population().end_user_pool.size(), SimTime{-1});
        std::vector<double> delays_days;
        for (const JobRecord& r : scenario.db().jobs()) {
          if (!r.gateway.valid()) continue;
          ++gateway_jobs;
          if (!r.gateway_end_user.valid()) continue;
          ++attributed;
          SimTime& seen =
              first_seen[static_cast<std::size_t>(r.gateway_end_user.value())];
          seen = seen < 0 ? r.end_time : std::min(seen, r.end_time);
        }
        for (const auto& eu : scenario.population().gateway_end_users) {
          const SimTime seen =
              first_seen[static_cast<std::size_t>(eu.id.value())];
          if (seen < 0) continue;
          delays_days.push_back(to_days(seen - eu.active_from));
        }
        row.job_frac = gateway_jobs > 0
                           ? static_cast<double>(attributed) / gateway_jobs
                           : 0.0;
        row.median_delay = percentile(delays_days, 0.5);
        return row;
      });
  for (std::size_t i = 0; i < coverages.size(); ++i) {
    const CoverageRow& row = rows[i];
    sweep.add_row({Table::pct(coverages[i], 0),
                   Table::num(std::int64_t{row.truth}),
                   Table::num(std::int64_t{row.measured}),
                   Table::pct(row.job_frac),
                   Table::num(row.median_delay, 1)});
    csv.row({Table::num(coverages[i], 2), std::to_string(row.truth),
             std::to_string(row.measured), Table::num(row.job_frac, 4),
             Table::num(row.median_delay, 3)});
  }
  std::cout << sweep
            << "\nUser counts degrade slowly (one attributed job suffices to\n"
               "identify a user) but attributable charge falls linearly with\n"
               "coverage and new users stay invisible longer.\n";
  obsv.finish();
  return 0;
}
