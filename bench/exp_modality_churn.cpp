// Experiment F11 — modality dynamics: how users move between modalities
// quarter over quarter (retention/churn matrix) and per-modality growth
// rates. This is the "make changes to better support them" payoff: the
// measurement programme must detect modality adoption, not just levels.
#include <iostream>

#include "bench/exp_common.hpp"
#include "core/trend.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace tg;
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_modality_churn");
  exp::Observability obsv(options);
  exp::banner("F11", "Quarter-over-quarter modality churn & growth (2 years)");

  Scenario scenario(ScenarioConfig::defaults()
                        .with_seed(42)
                        .with_horizon(2 * kYear)
                        .with_gateway_adoption_ramp(0.8)
                        .with_plan_cache(!options.exact_replan)
                        .with_shards(options.shards)
                        .with_trace(obsv.trace()));
  scenario.run();

  // The eight quarterly windows are independent classifications of the same
  // read-only database; build the indexes once, fan the windows out, then
  // reduce the index-ordered series into churn and trend statistics.
  scenario.db().ensure_indexes();
  const RuleClassifier classifier;
  constexpr int kQuarters = 8;
  Replicator pool(options.jobs);
  const auto series = obsv.replicate(pool, kQuarters, [&](std::size_t q) {
    return classify_window(scenario.platform(), scenario.db(), classifier,
                           static_cast<SimTime>(q) * kQuarter,
                           static_cast<SimTime>(q + 1) * kQuarter,
                           scenario.config().features);
  });
  const ModalityChurn churn = churn_from(series);
  std::cout << "Transition matrix, summed over " << churn.quarter_pairs
            << " quarter pairs (rows: modality in q; columns: in q+1):\n"
            << churn.to_table() << "\n";

  Table retention({"Modality", "Retention", "Departed/quarter",
                   "Arrived/quarter"});
  exp::OptionalCsv csv(options.csv,
                       {"modality", "retention", "departed_per_q",
                        "arrived_per_q", "quarterly_growth"});
  const ModalityTrend trend = trend_from(series);
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    const auto mod = static_cast<Modality>(m);
    const double dep = churn.quarter_pairs > 0
                           ? static_cast<double>(churn.departed[m]) /
                                 churn.quarter_pairs
                           : 0.0;
    const double arr = churn.quarter_pairs > 0
                           ? static_cast<double>(churn.arrived[m]) /
                                 churn.quarter_pairs
                           : 0.0;
    retention.add_row({to_string(mod), Table::pct(churn.retention(mod)),
                       Table::num(dep, 1), Table::num(arr, 1)});
    csv.row({short_name(mod), Table::num(churn.retention(mod), 4),
             Table::num(dep, 2), Table::num(arr, 2),
             Table::num(trend.quarterly_growth[m], 4)});
  }
  std::cout << retention << "\nPer-modality growth (compound per quarter):\n";
  Table growth({"Modality", "Q1 users", "Q8 users", "Growth/quarter"});
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    const auto mod = static_cast<Modality>(m);
    growth.add_row({to_string(mod),
                    Table::num(std::int64_t{trend.first_quarter_users[m]}),
                    Table::num(std::int64_t{trend.last_quarter_users[m]}),
                    Table::pct(trend.quarterly_growth[m])});
  }
  std::cout << growth
            << "\nExpected shape: established modalities retain their users\n"
               "quarter to quarter with near-zero growth; gateway use (the\n"
               "community-account rows stay constant — growth shows up in\n"
               "end-user attribute counts, figure F1) and exploratory use\n"
               "churn the most.\n";
  if (obsv.metrics_enabled()) scenario.publish_metrics(obsv.registry());
  obsv.finish();
  return 0;
}
