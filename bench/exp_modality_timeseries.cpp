// Experiment F1 — quarterly active users per modality over two simulated
// years, with gateway adoption ramping. Reproduces the growth curve the
// TeraGrid observed as gateways brought in new user communities faster
// than any other modality.
#include <iostream>

#include "bench/exp_common.hpp"
#include "util/histogram.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace tg;
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_modality_timeseries");
  exp::Observability obsv(options);
  exp::banner("F1", "Quarterly active users per modality (2 years)");

  ScenarioConfig::StreamingOptions streaming;
  if (options.streaming) {
    // Classify-on-advance over the same eight whole quarters the batch
    // pass below measures; a positive --segment-cap additionally routes
    // record storage through the spillable columnar log. Byte-identical
    // output at every setting (tests/golden_streaming.cmake diffs them).
    streaming.enabled = true;
    streaming.series_end = 8 * kQuarter;
    streaming.segments.segment_records = options.segment_cap;
    streaming.segments.spill_dir = options.spill_dir;
  }
  Scenario scenario(ScenarioConfig::defaults()
                        .with_seed(42)
                        .with_horizon(2 * kYear)
                        // most portal users adopt over time
                        .with_gateway_adoption_ramp(0.8)
                        .with_plan_cache(!options.exact_replan)
                        .with_shards(options.shards)
                        .with_streaming(streaming)
                        .with_trace(obsv.trace()));
  // Under --streaming the series accumulates push-style through the
  // scenario's subscription surface: each closing window appends one row,
  // and the series is complete the moment run() returns — no post-hoc
  // polling of the extractor.
  ModalityTimeSeries streamed;
  if (options.streaming) {
    scenario.subscribe([&streamed](const StreamingWindow& w) {
      streamed.primary_users.push_back(w.primary_users);
      streamed.gateway_end_users.push_back(w.gateway_end_users);
    });
  }
  scenario.run();

  const RuleClassifier classifier;
  // Whole quarters only; the drain tail past 8 x 91 days is excluded. The
  // eight windows classify in parallel (index-ordered fan-in keeps the
  // series byte-identical at every --jobs level). Under --streaming the
  // subscribed series was already produced during the run, window by
  // window.
  Replicator workers(options.jobs);
  const ModalityTimeSeries series =
      options.streaming
          ? std::move(streamed)
          : quarterly_series(scenario.platform(), scenario.db(), classifier,
                             0, 8 * kQuarter, scenario.config().features,
                             workers.pool(), obsv.trace());

  std::vector<std::string> header{"Quarter"};
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    header.emplace_back(short_name(static_cast<Modality>(m)));
  }
  header.emplace_back("gw-endusers");
  Table t(header);
  exp::OptionalCsv csv(options.csv, header);
  for (std::size_t q = 0; q < series.primary_users.size(); ++q) {
    std::vector<std::string> row{std::string("Q").append(
        std::to_string(q + 1))};
    for (std::size_t m = 0; m < kModalityCount; ++m) {
      row.push_back(std::to_string(series.primary_users[q][m]));
    }
    row.push_back(std::to_string(series.gateway_end_users[q]));
    csv.row(row);
    t.add_row(std::move(row));
  }
  std::cout << t << "\n";

  // Sparkline of gateway end-user growth (the figure's headline series).
  std::vector<double> growth(series.gateway_end_users.begin(),
                             series.gateway_end_users.end());
  std::cout << "Gateway end-user growth: " << sparkline(growth) << "  ("
            << growth.front() << " -> " << growth.back() << ")\n";
  if (options.engine_stats) {
    exp::print_engine_stats(scenario.engine());
  }
  if (obsv.metrics_enabled()) scenario.publish_metrics(obsv.registry());
  obsv.finish();
  return 0;
}
