// Experiment T2 — the paper's headline artifact: users, jobs and normalized
// units per usage modality over one simulated allocation year, measured
// purely from central accounting records, plus the gateway end-user count
// from attribute records.
#include <iostream>

#include "bench/exp_common.hpp"
#include "core/scoring.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace tg;
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_modality_usage");
  exp::Observability obsv(options);
  exp::banner("T2", "Usage modalities on the simulated TeraGrid, 1 year");

  const exp::RunStats stats;
  Scenario scenario(ScenarioConfig::defaults()
                        .with_seed(42)
                        .with_horizon(kYear)
                        .with_plan_cache(!options.exact_replan)
                        .with_shards(options.shards)
                        .with_audit_every(options.audit_period())
                        .with_trace(obsv.trace()));
  {
    const auto phase = obsv.profiler().measure("simulate");
    scenario.run();
  }

  // The replication pool doubles as the analytics pool: per-user feature
  // extraction fans out across it with index-ordered fan-in, so the report
  // is byte-identical at every --jobs level.
  Replicator workers(options.jobs);
  const RuleClassifier classifier;
  const ModalityReport report = [&] {
    const auto phase = obsv.profiler().measure("analyze");
    return scenario.report(classifier, workers.pool());
  }();

  std::cout << "Platform: 11 sites, "
            << scenario.platform().compute().size() << " compute systems, "
            << scenario.platform().total_cores() << " cores\n"
            << "Population: " << scenario.community().user_count()
            << " accounts (+" << scenario.population().gateway_end_users.size()
            << " gateway end users)\n"
            << "Records: " << scenario.db().jobs().size() << " jobs, "
            << scenario.db().transfers().size() << " transfers, "
            << scenario.db().sessions().size() << " sessions\n\n"
            << report.to_table() << "\n"
            << "Gateway end users measured from attributes: "
            << report.gateway_end_users() << " (true population "
            << scenario.population().gateway_end_users.size() << ", coverage "
            << Table::pct(scenario.config().gateway_attribute_coverage)
            << ")\n";

  exp::OptionalCsv csv(options.csv,
                       {"modality", "users", "primary_users", "jobs", "nu",
                        "user_share", "nu_share"});
  for (const auto& row : report.rows()) {
    csv.row({short_name(row.modality), std::to_string(row.users),
             std::to_string(row.primary_users), std::to_string(row.jobs),
             Table::num(row.nu, 1), Table::num(row.user_share, 4),
             Table::num(row.nu_share, 4)});
  }
  if (options.engine_stats) {
    exp::print_engine_stats(scenario.engine());
  }
  if (options.stats) {
    stats.print(scenario.engine().events_processed(),
                scenario.db().jobs().size());
  }
  if (obsv.metrics_enabled()) scenario.publish_metrics(obsv.registry());
  obsv.finish();
  if (options.check_invariants) {
    exp::print_invariants(check_invariants(
        scenario.platform(), scenario.db(), &scenario.ledger(),
        &scenario.community(), &scenario.pool()));
  }
  return 0;
}
