// Experiment F7 — the reconfigurable-node extension (novelty-band item):
// a 16-node cluster runs a mixed task set while the number of
// FPGA-augmented nodes and the reconfiguration cost are swept. Reproduces
// the "expected trend" analysis of the reconfigurable-grid-simulator
// literature: makespan falls as reconfigurable nodes are added until the
// accelerable fraction is saturated, and large reconfiguration times eat
// the hardware speedup unless configurations are reused.
#include <iostream>

#include "bench/exp_common.hpp"
#include "recon/recon.hpp"
#include "util/rng.hpp"

namespace {

using namespace tg;

struct RunResult {
  SimTime makespan = 0;
  ReconStats stats;
};

RunResult run_cluster(int recon_nodes, Duration reconfig_time,
                      double bitstream_mb, int total_nodes = 16,
                      int tasks = 400,
                      ReconPolicy policy = ReconPolicy::kAffinity) {
  Engine engine;
  std::vector<ReconNodeSpec> nodes;
  for (int i = 0; i < total_nodes - recon_nodes; ++i) {
    nodes.push_back({false, 0.0});
  }
  for (int i = 0; i < recon_nodes; ++i) nodes.push_back({true, 2.0});
  // Four kernel configurations, each one area unit.
  std::vector<ReconConfig> configs(4,
                                   {1.0, reconfig_time, bitstream_mb * 1e6});
  ReconCluster cluster(engine, std::move(nodes), std::move(configs), 1.0,
                       policy);

  Rng rng(99);
  for (int i = 0; i < tasks; ++i) {
    ReconTask t;
    if (rng.bernoulli(0.7)) {  // accelerable mix
      t.config = static_cast<int>(rng.uniform_int(0, 3));
      t.speedup = 8.0;
    } else {
      t.config = -1;
      t.speedup = 1.0;
    }
    t.gpp_runtime = rng.uniform_int(5 * kMinute, 30 * kMinute);
    cluster.submit(std::move(t));
  }
  engine.run();
  return RunResult{engine.now(), cluster.stats()};
}

}  // namespace

int main(int argc, char** argv) {
  // The reconfigurable cluster has no site topology (one machine, no
  // Platform), so there is nothing to partition: --shards parses for
  // interface uniformity and execution is always merged — outputs are
  // trivially byte-identical at every value.
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_recon_nodes");
  exp::Observability obsv(options);
  exp::banner("F7", "Reconfigurable-node sweep (16-node cluster, 400 tasks)");

  std::cout << "(a) Makespan vs number of reconfigurable nodes "
               "(reconfig 10 s, bitstream 32 MB):\n";
  Table a({"Recon nodes", "Makespan (h)", "Speedup vs 0", "On recon",
           "Reconfigs", "Config hits"});
  exp::OptionalCsv csv(options.csv,
                       {"sweep", "value", "makespan_h", "on_recon",
                        "reconfigurations"});
  const RunResult base = run_cluster(0, 10 * kSecond, 32.0);
  for (const int n : {0, 2, 4, 8, 12, 16}) {
    const RunResult r = run_cluster(n, 10 * kSecond, 32.0);
    a.add_row({Table::num(std::int64_t{n}), Table::num(to_hours(r.makespan), 2),
               Table::num(static_cast<double>(base.makespan) /
                              static_cast<double>(r.makespan),
                          2) + "x",
               Table::num(static_cast<std::int64_t>(r.stats.tasks_on_recon)),
               Table::num(static_cast<std::int64_t>(r.stats.reconfigurations)),
               Table::num(static_cast<std::int64_t>(r.stats.config_hits))});
    csv.row({"recon_nodes", std::to_string(n),
             Table::num(to_hours(r.makespan), 3),
             std::to_string(r.stats.tasks_on_recon),
             std::to_string(r.stats.reconfigurations)});
  }
  std::cout << a << "\n(b) Makespan vs reconfiguration time (8 recon "
                    "nodes):\n";
  Table b({"Reconfig time", "Makespan (h)", "Reconfigs",
           "Total reconfig time (h)"});
  for (const Duration rt : {Duration{0}, kSecond, 10 * kSecond, kMinute,
                            5 * kMinute, 20 * kMinute}) {
    const RunResult r = run_cluster(8, rt, 32.0);
    b.add_row({format_duration(rt), Table::num(to_hours(r.makespan), 2),
               Table::num(static_cast<std::int64_t>(r.stats.reconfigurations)),
               Table::num(to_hours(r.stats.total_reconfig_time), 2)});
    csv.row({"reconfig_time_s", Table::num(to_seconds(rt), 0),
             Table::num(to_hours(r.makespan), 3),
             std::to_string(r.stats.tasks_on_recon),
             std::to_string(r.stats.reconfigurations)});
  }
  std::cout << b << "\n(c) Makespan vs bitstream size (8 recon nodes, "
                    "1 Gb/s config link, reconfig 10 s):\n";
  Table c({"Bitstream (MB)", "Makespan (h)", "Setup share"});
  for (const double mb : {1.0, 32.0, 128.0, 512.0, 2048.0}) {
    const RunResult r = run_cluster(8, 10 * kSecond, mb);
    const double setup_share =
        static_cast<double>(r.stats.total_reconfig_time) /
        static_cast<double>(std::max<Duration>(1, r.stats.busy_time));
    c.add_row({Table::num(mb, 0), Table::num(to_hours(r.makespan), 2),
               Table::pct(setup_share)});
    csv.row({"bitstream_mb", Table::num(mb, 0),
             Table::num(to_hours(r.makespan), 3),
             std::to_string(r.stats.tasks_on_recon),
             std::to_string(r.stats.reconfigurations)});
  }
  std::cout << c << "\n(d) Placement policy comparison (8 recon nodes, "
                    "reconfig 1 min):\n";
  Table d({"Policy", "Makespan (h)", "Reconfigs", "Config hits",
           "On recon"});
  for (const ReconPolicy policy :
       {ReconPolicy::kAffinity, ReconPolicy::kFirstFit,
        ReconPolicy::kDedicated}) {
    const RunResult r = run_cluster(8, kMinute, 32.0, 16, 400, policy);
    d.add_row({to_string(policy), Table::num(to_hours(r.makespan), 2),
               Table::num(static_cast<std::int64_t>(r.stats.reconfigurations)),
               Table::num(static_cast<std::int64_t>(r.stats.config_hits)),
               Table::num(static_cast<std::int64_t>(r.stats.tasks_on_recon))});
    csv.row({"policy", to_string(policy), Table::num(to_hours(r.makespan), 3),
             std::to_string(r.stats.tasks_on_recon),
             std::to_string(r.stats.reconfigurations)});
  }
  std::cout << d
            << "\nAffinity minimizes reconfigurations; first-fit wastes\n"
               "hardware on plain tasks and thrashes configurations;\n"
               "dedicated waits for hardware, which wins while the 8x\n"
               "speedup outweighs queueing and loses once it doesn't.\n";
  obsv.finish();
  return 0;
}
