// Experiment F9 — resource-selection advisor quality (the "TeraGrid
// resource selection tools" evaluation): how accurate are queue-aware
// time-to-start estimates, and how often does picking the machine with the
// best estimate actually minimize the real start time?
//
// Method: load all machines with background work, then repeatedly (a) ask
// the selector to estimate starts everywhere for a probe job, (b) submit
// the probe to the estimated-best machine, (c) record estimated vs actual.
#include <iostream>
#include <map>
#include <numeric>

#include "bench/exp_common.hpp"
#include "meta/selector.hpp"
#include "util/distributions.hpp"
#include "util/stats.hpp"

namespace {

using namespace tg;

void offer_background(Engine& engine, ResourceScheduler& sched, double load,
                      Duration horizon, Rng rng) {
  const ComputeResource& res = sched.resource();
  const double budget = load * res.nodes * to_hours(horizon);
  const LogUniformInt width(1, std::max(2, res.nodes / 2));
  const LogNormal runtime = LogNormal::from_mean_cv(4.0, 1.2);
  double demand = 0.0;
  while (demand < budget) {
    JobRequest req;
    req.user = UserId{0};
    req.project = ProjectId{0};
    req.nodes = static_cast<int>(width.sample(rng));
    req.actual_runtime = std::clamp<Duration>(
        static_cast<Duration>(runtime.sample(rng) * kHour), 10 * kMinute,
        res.max_walltime);
    req.requested_walltime = std::min<Duration>(
        res.max_walltime,
        static_cast<Duration>(static_cast<double>(req.actual_runtime) *
                              rng.uniform(1.2, 2.5)));
    demand += req.nodes * to_hours(req.actual_runtime);
    engine.schedule_at(rng.uniform_int(0, horizon),
                       [&sched, req] { sched.submit(req); },
                       EventPriority::kSubmission);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_resource_selection");
  exp::Observability obsv(options);
  exp::banner("F9", "Time-to-start advisor accuracy (resource selection)");

  Table t({"Load", "Probes", "Mean |error| (h)", "p90 |error| (h)",
           "Mean actual wait (h)", "Started early"});
  exp::OptionalCsv csv(options.csv,
                       {"load", "mean_abs_err_h", "p90_abs_err_h",
                        "mean_wait_h", "early_start_fraction"});

  for (const double load : {0.3, 0.6, 0.85}) {
    const Platform platform = teragrid_2010();
    Engine engine;
    const exp::Sharding sharding(engine, platform, options.shards);
    SchedulerPool pool(engine, platform, {}, sharding.plan());
    pool.set_trace_all(obsv.trace());
    const ResourceSelector selector;
    Rng rng(31337);
    const Duration horizon = 15 * kDay;
    for (const ComputeResource& res : platform.compute()) {
      if (res.interactive_viz) continue;
      offer_background(engine, pool.at(res.id), load, horizon,
                       rng.fork(static_cast<std::uint64_t>(res.id.value())));
    }

    // Probe stream: every 8 hours estimate + submit a 32-node, 4-hour job
    // to the estimated-best machine; compare with the realized start.
    std::vector<double> abs_err_h;
    RunningStats actual_wait;
    int early_starts = 0;   // actual start before the estimate
    int resolved = 0;       // probes whose start we observed
    int probes = 0;
    std::map<JobId, std::pair<SimTime, SimTime>> pending;  // est vs submit

    // Track actual starts of probe jobs.
    pool.add_on_start_all([&](const Job& job) {
      const auto it = pending.find(job.id);
      if (it == pending.end()) return;
      const auto [estimate, submitted] = it->second;
      pending.erase(it);
      abs_err_h.push_back(std::abs(to_hours(job.start_time - estimate)));
      actual_wait.add(to_hours(job.start_time - submitted));
      ++resolved;
      if (job.start_time + kMinute < estimate) ++early_starts;
    });

    for (SimTime at = kDay; at < horizon - kDay; at += 8 * kHour) {
      engine.schedule_at(at, [&, at] {
        ++probes;
        const std::vector<ResourceId> candidates = pool.resource_ids();
        const auto estimates =
            selector.estimates(pool, 32, 4 * kHour, candidates);
        // Pick the best estimate.
        std::size_t best = 0;
        bool found = false;
        for (std::size_t i = 0; i < estimates.size(); ++i) {
          if (estimates[i] < 0) continue;
          if (!found || estimates[i] < estimates[best]) {
            best = i;
            found = true;
          }
        }
        if (!found) return;
        const SimTime chosen = estimates[best];

        JobRequest probe;
        probe.user = UserId{1};
        probe.project = ProjectId{1};
        probe.nodes = 32;
        probe.actual_runtime = 4 * kHour;
        probe.requested_walltime = 4 * kHour;
        const JobId id = pool.at(candidates[best]).submit(std::move(probe));
        pending.emplace(id, std::make_pair(chosen, at));
      });
    }
    engine.run();

    const double mean_err =
        abs_err_h.empty()
            ? 0.0
            : std::accumulate(abs_err_h.begin(), abs_err_h.end(), 0.0) /
                  static_cast<double>(abs_err_h.size());
    const double p90_err = percentile(abs_err_h, 0.90);
    const double early_rate =
        resolved > 0 ? static_cast<double>(early_starts) / resolved : 0.0;
    t.add_row({Table::pct(load, 0),
               Table::num(static_cast<std::int64_t>(probes)),
               Table::num(mean_err, 2), Table::num(p90_err, 2),
               Table::num(actual_wait.mean(), 2), Table::pct(early_rate)});
    csv.row({Table::num(load, 2), Table::num(mean_err, 3),
             Table::num(p90_err, 3), Table::num(actual_wait.mean(), 3),
             Table::num(early_rate, 3)});
  }
  std::cout << t
            << "\nEstimates are conservative plans over the current queue:\n"
               "at low load they are exact; under load, early completions\n"
               "start probes sooner than promised (never later).\n";
  obsv.finish();
  return 0;
}
