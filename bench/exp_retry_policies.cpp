// Experiment F13 — what should a scheduler do with outage-preempted jobs?
// Under fixed fault pressure, sweep the outage retry policy (retry budget x
// backoff base) and compare delivered NUs, work lost to preemption, jobs
// killed outright, and the queue wait experienced by completed jobs. All
// policy cells run in parallel; output is byte-identical at every --jobs
// level.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/exp_common.hpp"
#include "fault/invariants.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace tg;

constexpr int kRetryLimits[] = {0, 1, 3, 6};
constexpr Duration kBackoffs[] = {5 * kMinute, 15 * kMinute, kHour};

struct CellResult {
  double delivered_nu = 0.0;
  double lost_core_hours = 0.0;
  std::uint64_t preempted = 0;
  std::uint64_t requeued = 0;
  std::uint64_t outage_killed = 0;
  double mean_wait_hours = 0.0;
  bool invariants_ok = false;
};

CellResult run_cell(int retry_limit, Duration backoff, bool plan_cache,
                    int shards) {
  ScenarioConfig config;
  config.seed = 4242;
  config.sched.plan_cache = plan_cache;
  config.shards = shards;
  config.horizon = 120 * kDay;
  // Heavy pressure (per-resource MTBF ~3.5 days, frequent partial outages)
  // so that jobs can be preempted repeatedly and the retry budget matters.
  config.faults.outage.mtbf_hours = 84.0;
  config.faults.outage.full_outage_prob = 0.3;
  config.faults.outage.repair_mean_hours = 8.0;
  config.sched.outage_retry_limit = retry_limit;
  config.sched.outage_retry_backoff = backoff;
  Scenario scenario(std::move(config));
  scenario.run();

  CellResult out;
  out.delivered_nu = scenario.db().total_nu();
  for (const ResourceId id : scenario.pool().resource_ids()) {
    const SchedulerMetrics& m = scenario.pool().at(id).metrics();
    out.lost_core_hours += m.lost_core_seconds() / 3600.0;
    out.preempted += m.jobs_preempted();
    out.outage_killed += m.jobs_killed_by_outage();
  }
  out.requeued = scenario.db().disposition_count(Disposition::kRequeued);
  double wait_hours = 0.0;
  std::uint64_t completed = 0;
  for (const JobRecord& r : scenario.db().jobs()) {
    if (r.disposition != Disposition::kCompleted) continue;
    wait_hours += to_hours(r.wait());
    ++completed;
  }
  out.mean_wait_hours = completed > 0 ? wait_hours / completed : 0.0;
  out.invariants_ok =
      check_invariants(scenario.platform(), scenario.db(), &scenario.ledger(),
                       &scenario.community(), &scenario.pool(),
                       scenario.config().charging)
          .ok();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_retry_policies");
  exp::Observability obsv(options);
  exp::banner("F13", "Outage retry policy sweep under heavy outage pressure");

  constexpr std::size_t kCells = std::size(kRetryLimits) * std::size(kBackoffs);
  Replicator pool(options.jobs);
  const auto results = obsv.replicate(
      pool, kCells,
      [plan_cache = !options.exact_replan,
       shards = options.shards](std::size_t i) {
        return run_cell(kRetryLimits[i / std::size(kBackoffs)],
                        kBackoffs[i % std::size(kBackoffs)], plan_cache,
                        shards);
      });

  Table table({"retries", "backoff", "delivered NU", "lost core-h",
               "preempted", "requeued", "outage-killed", "mean wait h",
               "invariants"});
  exp::OptionalCsv csv(options.csv,
                       {"retry_limit", "backoff_min", "delivered_nu",
                        "lost_core_hours", "preempted", "requeued",
                        "outage_killed", "mean_wait_hours"});
  bool all_ok = true;
  for (std::size_t i = 0; i < kCells; ++i) {
    const int limit = kRetryLimits[i / std::size(kBackoffs)];
    const Duration backoff = kBackoffs[i % std::size(kBackoffs)];
    const CellResult& r = results[i];
    all_ok = all_ok && r.invariants_ok;
    table.add_row({Table::num(static_cast<std::int64_t>(limit)),
                   format_duration(backoff), Table::num(r.delivered_nu, 1),
                   Table::num(r.lost_core_hours, 1),
                   Table::num(static_cast<std::int64_t>(r.preempted)),
                   Table::num(static_cast<std::int64_t>(r.requeued)),
                   Table::num(static_cast<std::int64_t>(r.outage_killed)),
                   Table::num(r.mean_wait_hours, 2),
                   r.invariants_ok ? "pass" : "FAIL"});
    csv.row({std::to_string(limit),
             Table::num(to_hours(backoff) * 60.0, 0),
             Table::num(r.delivered_nu, 1), Table::num(r.lost_core_hours, 1),
             std::to_string(r.preempted), std::to_string(r.requeued),
             std::to_string(r.outage_killed),
             Table::num(r.mean_wait_hours, 4)});
  }
  std::cout << table << "\n"
            << "Invariant audit: " << (all_ok ? "all cells pass" : "FAILED")
            << "\n";
  obsv.finish();
  return all_ok ? 0 : 1;
}
