// Experiment F5 — substrate validation: utilization, wait and slowdown of
// the scheduling policies (FCFS, EASY backfill, conservative backfill, and
// EASY with weekly full-machine drains) on a single 1,024-node machine
// under two offered loads. The drain row reproduces the Kraken result:
// capability jobs start dramatically sooner at a modest utilization cost.
#include <iostream>

#include <map>

#include "bench/exp_common.hpp"
#include "sched/scheduler.hpp"
#include "util/distributions.hpp"
#include "util/stats.hpp"

namespace {

using namespace tg;

struct StreamJob {
  SimTime at;
  JobRequest req;
};

/// One reproducible 30-day job stream at the given offered load.
std::vector<StreamJob> make_stream(const ComputeResource& res, double load,
                                   std::uint64_t seed) {
  Rng rng(seed);
  const LogUniformInt width(1, res.nodes);
  const LogNormal runtime = LogNormal::from_mean_cv(4.0, 1.2);
  const Duration horizon = 30 * kDay;
  // Sample jobs until their summed node-hours hit the offered-load budget,
  // then spread arrivals uniformly over the horizon — this pins the
  // offered load exactly instead of relying on a mean-demand estimate.
  const double budget_node_hours = load * res.nodes * to_hours(horizon);
  double demand = 0.0;

  // A Zipf-skewed population of 32 users: a few heavy submitters, a long
  // tail of light ones — the texture fair-share exists for.
  const Zipf user_pick(32, 1.2);
  std::vector<StreamJob> jobs;
  while (demand < budget_node_hours) {
    StreamJob j;
    j.at = static_cast<SimTime>(rng.uniform_int(0, horizon - 1));
    j.req.user = UserId{static_cast<UserId::rep>(user_pick.sample(rng) - 1)};
    j.req.project = ProjectId{0};
    j.req.nodes = static_cast<int>(
        snap_to_power_of_two(width.sample(rng), 0.7, rng));
    j.req.nodes = std::min(j.req.nodes, res.nodes);
    j.req.actual_runtime = std::max<Duration>(
        5 * kMinute, static_cast<Duration>(runtime.sample(rng) * kHour));
    j.req.actual_runtime = std::min<Duration>(j.req.actual_runtime,
                                              res.max_walltime);
    j.req.requested_walltime = std::min<Duration>(
        res.max_walltime,
        static_cast<Duration>(static_cast<double>(j.req.actual_runtime) *
                              rng.uniform(1.2, 3.0)));
    demand += j.req.nodes * to_hours(j.req.actual_runtime);
    jobs.push_back(std::move(j));
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const StreamJob& a, const StreamJob& b) { return a.at < b.at; });
  return jobs;
}

struct PolicyResult {
  double utilization = 0.0;
  double makespan_days = 0.0;
  double mean_wait_h = 0.0;
  double p90_slowdown = 0.0;
  double capability_wait_h = 0.0;
  /// Mean bounded slowdown among *light* users (below-median job counts):
  /// the population fair-share exists to protect from heavy submitters.
  double light_user_slowdown = 0.0;
  std::size_t jobs = 0;
};

PolicyResult run_policy(const SchedulerConfig& cfg, double load, int shards) {
  ComputeResource res;
  res.id = ResourceId{0};
  res.site = SiteId{0};
  res.name = "bigiron";
  res.nodes = 1024;
  res.cores_per_node = 8;
  res.max_walltime = 24 * kHour;

  Engine engine;
  // One hand-built machine, so the plan is coordinator + one site. A lone
  // site partition never reaches the >= 2 eligible-partition threshold, so
  // execution stays merged at any --shards — but partitioning keeps the
  // canonical event order (and the flag's byte-identity contract) uniform
  // with the multi-site binaries.
  const exp::Sharding sharding(engine, plan_shards(1, {}), shards);
  ResourceScheduler sched(engine, res, cfg,
                          sharding.plan()->partition_of_site(0));
  std::vector<double> slowdowns;
  RunningStats wait;
  RunningStats capability_wait;
  std::map<UserId, RunningStats> per_user_slowdown;
  sched.add_on_end([&](const Job& j) {
    if (j.state == JobState::kCancelled) return;
    wait.add(to_hours(j.wait()));
    slowdowns.push_back(j.bounded_slowdown());
    per_user_slowdown[j.req.user].add(j.bounded_slowdown());
    if (j.req.nodes >= res.nodes / 2) {
      capability_wait.add(to_hours(j.wait()));
    }
  });

  const auto stream = make_stream(res, load, 7777);
  for (const StreamJob& j : stream) {
    engine.schedule_at(j.at, [&sched, req = j.req] { sched.submit(req); },
                       EventPriority::kSubmission);
  }
  engine.run();

  PolicyResult out;
  // Utilization over the full makespan: a policy that packs worse takes
  // longer to drain the same work, which is exactly the utilization loss.
  out.utilization =
      sched.metrics().utilization(res.total_cores(), engine.now());
  out.makespan_days = to_days(engine.now());
  out.mean_wait_h = wait.mean();
  out.p90_slowdown = percentile(std::move(slowdowns), 0.90);
  out.capability_wait_h = capability_wait.mean();
  // Light users = below-median job count.
  std::vector<std::size_t> counts;
  for (const auto& [user, stats] : per_user_slowdown) {
    counts.push_back(stats.count());
  }
  std::sort(counts.begin(), counts.end());
  const std::size_t median = counts.empty() ? 0 : counts[counts.size() / 2];
  RunningStats light;
  for (const auto& [user, stats] : per_user_slowdown) {
    if (stats.count() <= median) light.merge(stats);
  }
  out.light_user_slowdown = light.mean();
  out.jobs = stream.size();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_scheduler_policies");
  exp::Observability obsv(options);
  exp::banner("F5",
              "Scheduling policies on a 1,024-node machine (30-day stream)");

  struct Row {
    const char* name;
    SchedulerConfig cfg;
  };
  std::vector<Row> rows;
  rows.push_back({"FCFS", {SchedPolicy::kFcfs, 0, 0.5, 128}});
  rows.push_back({"EASY", {SchedPolicy::kEasyBackfill, 0, 0.5, 128}});
  rows.push_back(
      {"Conservative", {SchedPolicy::kConservativeBackfill, 0, 0.5, 128}});
  rows.push_back(
      {"EASY + weekly drain", {SchedPolicy::kEasyBackfill, kWeek, 0.5, 128}});
  SchedulerConfig fair;
  fair.policy = SchedPolicy::kEasyBackfill;
  fair.fair_share = true;
  rows.push_back({"EASY + fair-share", fair});

  Table t({"Load", "Policy", "Jobs", "Utilization", "Makespan (d)",
           "Mean wait (h)", "p90 slowdown", "Capability wait (h)",
           "Light-user sd"});
  exp::OptionalCsv csv(options.csv,
                       {"load", "policy", "jobs", "utilization",
                        "makespan_days", "mean_wait_h", "p90_slowdown",
                        "capability_wait_h", "light_user_slowdown"});
  for (const double load : {0.7, 0.9}) {
    for (const Row& row : rows) {
      const PolicyResult r = run_policy(row.cfg, load, options.shards);
      t.add_row({Table::num(load, 1), row.name,
                 Table::num(static_cast<std::int64_t>(r.jobs)),
                 Table::pct(r.utilization), Table::num(r.makespan_days, 1),
                 Table::num(r.mean_wait_h, 2),
                 Table::num(r.p90_slowdown, 1),
                 Table::num(r.capability_wait_h, 2),
                 Table::num(r.light_user_slowdown, 1)});
      csv.row({Table::num(load, 2), row.name, std::to_string(r.jobs),
               Table::num(r.utilization, 4), Table::num(r.makespan_days, 2),
               Table::num(r.mean_wait_h, 3), Table::num(r.p90_slowdown, 2),
               Table::num(r.capability_wait_h, 3),
               Table::num(r.light_user_slowdown, 3)});
    }
    t.add_rule();
  }
  std::cout << t
            << "\nExpected shape: backfill beats FCFS on every metric; the\n"
               "weekly drain trades a little utilization for a large cut in\n"
               "capability-job wait; fair-share protects light users'\n"
               "service at heavy submitters' (and some packing) expense.\n";
  obsv.finish();
  return 0;
}
