// Experiment T4 — the paper's two candidate measurement mechanisms head to
// head: record-based classification (instrument everything, infer) versus
// user surveys (sample, ask, scale up). Reports per-modality user-count
// error against ground truth for both, and the survey's degradation under
// realistic response rates, misreporting and heavy-user response bias.
#include <iostream>

#include "bench/exp_common.hpp"
#include "core/survey.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace tg;
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_survey_vs_records");
  exp::Observability obsv(options);
  exp::banner("T4", "Records-based measurement vs user surveys");

  Scenario scenario(ScenarioConfig::defaults()
                        .with_seed(42)
                        .with_horizon(180 * kDay)
                        .with_plan_cache(!options.exact_replan)
                        .with_shards(options.shards)
                        .with_trace(obsv.trace()));
  scenario.run();

  // Ground truth over *active* account users (the population a survey of
  // registered users would target).
  const RuleClassifier classifier;
  const auto labelled = scenario.predictions(classifier);
  const auto truth_counts = count_by_modality(labelled.truth);

  // Record-based counts: the classifier's primary attribution.
  std::array<int, kModalityCount> record_counts{};
  for (Modality m : labelled.predicted) {
    ++record_counts[static_cast<std::size_t>(m)];
  }

  // Usage weights for survey bias: each user's charged NUs.
  const FeatureExtractor extractor(scenario.platform(),
                                   scenario.config().features);
  std::vector<double> weights;
  weights.reserve(labelled.users.size());
  for (UserId u : labelled.users) {
    weights.push_back(
        extractor.extract_user(scenario.db(), u, 0,
                               scenario.engine().now() + 1)
            .total_nu);
  }

  const auto run_survey = [&](SurveyConfig cfg, std::uint64_t seed) {
    Rng rng(seed);
    return SurveyEstimator(cfg).run(labelled.truth, weights, rng);
  };

  SurveyConfig realistic;  // 20% sampled, 35% respond, 10% misreport
  SurveyConfig biased = realistic;
  biased.heavy_user_bias = 3.0;
  SurveyConfig census;
  census.sample_fraction = 1.0;
  census.response_rate = 1.0;
  census.misreport_rate = 0.05;

  const SurveyEstimate est_realistic = run_survey(realistic, 1);
  const SurveyEstimate est_biased = run_survey(biased, 2);
  const SurveyEstimate est_census = run_survey(census, 3);

  Table t({"Modality", "Truth", "Records", "Survey (realistic)",
           "Survey (biased)", "Census+5% noise"});
  exp::OptionalCsv csv(options.csv,
                       {"modality", "truth", "records", "survey_realistic",
                        "survey_biased", "census_noisy"});
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    const auto mod = static_cast<Modality>(m);
    t.add_row({to_string(mod), Table::num(std::int64_t{truth_counts[m]}),
               Table::num(std::int64_t{record_counts[m]}),
               Table::num(est_realistic.users[m], 0),
               Table::num(est_biased.users[m], 0),
               Table::num(est_census.users[m], 0)});
    csv.row({short_name(mod), std::to_string(truth_counts[m]),
             std::to_string(record_counts[m]),
             Table::num(est_realistic.users[m], 1),
             Table::num(est_biased.users[m], 1),
             Table::num(est_census.users[m], 1)});
  }
  std::cout << t << "\n";

  // Error summary: records vs survey MAPE, averaged over survey waves.
  SurveyEstimate rec;
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    rec.users[m] = record_counts[m];
  }
  // Each wave draws from its own Rng(100 + w); fan them out and sum the
  // index-ordered MAPEs so the mean matches the sequential loop bit for bit.
  constexpr std::size_t kWaves = 20;
  Replicator pool(options.jobs);
  const auto wave_mapes = obsv.replicate(pool, kWaves, [&](std::size_t w) {
    return survey_mape(run_survey(realistic, 100 + w), truth_counts);
  });
  double survey_err = 0.0;
  for (const double mape : wave_mapes) survey_err += mape;
  survey_err /= kWaves;
  std::cout << "Mean absolute percentage error vs truth:\n"
            << "  records-based classification: "
            << Table::pct(survey_mape(rec, truth_counts)) << "\n"
            << "  realistic survey (mean of " << kWaves
            << " waves):   " << Table::pct(survey_err) << "\n"
            << "\nThe paper's conclusion in numbers: instrumented records\n"
               "measure modalities an order of magnitude more accurately\n"
               "than surveys, and without response bias; surveys remain\n"
               "useful for the *why*, which records cannot capture.\n";
  if (obsv.metrics_enabled()) scenario.publish_metrics(obsv.registry());
  obsv.finish();
  return 0;
}
