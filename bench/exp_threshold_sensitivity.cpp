// Experiment F4 — ablation: how sensitive is the modality measurement to
// the classifier's rule thresholds? One population is simulated once; each
// threshold is then swept independently while the others stay at defaults.
// Stable plateaus around the defaults mean the taxonomy is measurable
// robustly; cliffs mark where a mechanism stops separating modalities.
#include <functional>
#include <iostream>

#include "bench/exp_common.hpp"
#include "core/scoring.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace tg;
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_threshold_sensitivity");
  exp::Observability obsv(options);
  exp::banner("F4", "Classifier threshold sensitivity (macro-F1)");

  Scenario scenario(ScenarioConfig::defaults()
                        .with_seed(42)
                        .with_horizon(180 * kDay)
                        .with_plan_cache(!options.exact_replan)
                        .with_shards(options.shards)
                        .with_trace(obsv.trace()));
  scenario.run();
  // The sweep evaluations below share the scenario read-only across
  // worker threads; build the accounting indexes once up front.
  scenario.db().ensure_indexes();

  const auto score_with = [&](const ClassifierThresholds& t) {
    const RuleClassifier classifier(t);
    const auto labelled = scenario.predictions(classifier);
    const auto cm = score_primary(labelled.truth, labelled.predicted);
    return std::make_pair(cm.accuracy(), cm.macro_f1());
  };

  struct Sweep {
    const char* name;
    std::vector<double> values;
    std::function<void(ClassifierThresholds&, double)> apply;
  };
  const std::vector<Sweep> sweeps{
      {"gateway_fraction",
       {0.1, 0.3, 0.5, 0.7, 0.9},
       [](ClassifierThresholds& t, double v) { t.gateway_fraction = v; }},
      {"workflow_fraction",
       {0.05, 0.15, 0.25, 0.5, 0.75},
       [](ClassifierThresholds& t, double v) { t.workflow_fraction = v; }},
      {"capability_min_cores",
       {256, 1024, 2048, 4096, 8192},
       [](ClassifierThresholds& t, double v) {
         t.capability_min_cores = static_cast<int>(v);
       }},
      {"exploratory_max_nu",
       {50, 200, 500, 2000, 10000},
       [](ClassifierThresholds& t, double v) { t.exploratory_max_nu = v; }},
      {"viz_fraction",
       {0.05, 0.15, 0.25, 0.5, 0.75},
       [](ClassifierThresholds& t, double v) { t.viz_fraction = v; }},
      {"data_min_bytes",
       {1e10, 1e11, 1e12, 1e13, 1e14},
       [](ClassifierThresholds& t, double v) { t.data_min_bytes = v; }},
  };

  // Flatten (defaults + every sweep point) into one index space and fan
  // the independent re-classifications out over the pool; rows are printed
  // from the index-ordered results, so output is byte-identical to the
  // sequential loop.
  struct Point {
    const Sweep* sweep = nullptr;  // null = defaults row
    double value = 0.0;
  };
  std::vector<Point> points{{nullptr, 0.0}};
  for (const Sweep& sweep : sweeps) {
    for (double v : sweep.values) points.push_back({&sweep, v});
  }
  Replicator pool(options.jobs);
  const auto scores =
      obsv.replicate(pool, points.size(), [&](std::size_t i) {
        ClassifierThresholds thresholds;
        if (points[i].sweep != nullptr) {
          points[i].sweep->apply(thresholds, points[i].value);
        }
        return score_with(thresholds);
      });

  Table t({"Threshold", "Value", "Accuracy", "Macro-F1"});
  exp::OptionalCsv csv(options.csv,
                       {"threshold", "value", "accuracy", "macro_f1"});
  const auto [base_acc, base_f1] = scores.front();
  t.add_row({"(defaults)", "-", Table::pct(base_acc),
             Table::num(base_f1, 3)});
  t.add_rule();
  std::size_t next = 1;
  for (const Sweep& sweep : sweeps) {
    for (double v : sweep.values) {
      const auto [acc, f1] = scores[next++];
      t.add_row({sweep.name, Table::num(v, v < 1.0 ? 2 : 0),
                 Table::pct(acc), Table::num(f1, 3)});
      csv.row({sweep.name, Table::num(v, 4), Table::num(acc, 4),
               Table::num(f1, 4)});
    }
    t.add_rule();
  }
  std::cout << t;
  if (obsv.metrics_enabled()) scenario.publish_metrics(obsv.registry());
  obsv.finish();
  return 0;
}
