// Experiment F8 — WAN substrate validation: measured max-min fair shares
// against the closed-form expectation, and transfer-time CDFs under
// background load on the TeraGrid hub-and-spoke topology.
#include <iostream>

#include "bench/exp_common.hpp"
#include "net/flow.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {
using namespace tg;
}

int main(int argc, char** argv) {
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_wan_transfers");
  exp::Observability obsv(options);
  exp::banner("F8", "WAN flow model validation");

  // (a) N flows sharing one 10 Gb/s path: each should get 10/N Gb/s.
  std::cout << "(a) Max-min shares on a shared 10 Gb/s path:\n";
  Table a({"Concurrent flows", "Analytic Gb/s", "Measured Gb/s", "Error"});
  exp::OptionalCsv csv(options.csv, {"part", "x", "value"});
  for (const int n : {1, 2, 4, 8}) {
    Platform p;
    const SiteId s1 = p.add_site("a");
    const SiteId s2 = p.add_site("b");
    p.add_link(s1, s2, 10.0, 10 * kMillisecond);
    Engine engine;
    // Flow machinery is coordinator-resident (every event is a partition-0
    // wall), so windows never engage — partitioning just keeps the
    // canonical order and the --shards byte-identity contract uniform.
    const exp::Sharding sharding(engine, p, options.shards);
    FlowManager flows(engine, p, /*host_gbps=*/40.0);
    std::vector<TransferId> ids;
    for (int i = 0; i < n; ++i) {
      ids.push_back(
          flows.start_transfer(s1, s2, 1e12, UserId{i}, ProjectId{0}));
    }
    engine.run_until(kSecond);
    const double analytic = 10.0 / n;
    const double measured = flows.flow_rate_bps(ids[0]) * 8.0 / 1e9;
    a.add_row({Table::num(std::int64_t{n}), Table::num(analytic, 3),
               Table::num(measured, 3),
               Table::pct(std::abs(measured - analytic) / analytic, 3)});
    csv.row({"shares", std::to_string(n), Table::num(measured, 4)});
  }
  std::cout << a;

  // (b) Transfer-time CDF of 10 GB transfers across the TeraGrid WAN with
  //     Poisson background flows.
  std::cout << "\n(b) 10 GB transfer times on the TeraGrid WAN with "
               "background flows:\n";
  Table b({"Background flows/h", "Mean (s)", "p50 (s)", "p90 (s)",
           "p99 (s)"});
  for (const int per_hour : {0, 10, 40, 160}) {
    const Platform p = teragrid_2010();
    Engine engine;
    const exp::Sharding sharding(engine, p, options.shards);
    FlowManager flows(engine, p, 10.0);
    Rng rng(5);
    const auto nsites = static_cast<std::int64_t>(p.sites().size());
    const Duration horizon = 12 * kHour;
    // Background: heavy 100 GB flows between random sites.
    const int total_bg = per_hour * 12;
    for (int i = 0; i < total_bg; ++i) {
      const SimTime at = rng.uniform_int(0, horizon);
      const auto s1 = SiteId{static_cast<SiteId::rep>(
          rng.uniform_int(1, nsites - 1))};
      auto s2 = SiteId{static_cast<SiteId::rep>(
          rng.uniform_int(1, nsites - 1))};
      if (s2 == s1) {
        s2 = SiteId{static_cast<SiteId::rep>(1 + s1.value() % (nsites - 1))};
      }
      engine.schedule_at(at, [&flows, s1, s2] {
        flows.start_transfer(s1, s2, 1e11, UserId{0}, ProjectId{0});
      });
    }
    // Probes: 10 GB transfers every 20 minutes.
    std::vector<double> durations;
    for (SimTime at = 0; at < horizon; at += 20 * kMinute) {
      const auto s1 = SiteId{static_cast<SiteId::rep>(
          1 + (at / (20 * kMinute)) % (nsites - 1))};
      const auto s2 = SiteId{static_cast<SiteId::rep>(
          1 + (s1.value() + 3) % (nsites - 1))};
      engine.schedule_at(at, [&flows, &durations, s1, s2] {
        flows.start_transfer(
            s1, s2, 1e10, UserId{1}, ProjectId{0},
            [&durations](const Flow& f) {
              durations.push_back(to_seconds(f.completed - f.submitted));
            });
      });
    }
    engine.run();
    const Summary s = summarize(durations);
    b.add_row({Table::num(std::int64_t{per_hour}), Table::num(s.mean, 1),
               Table::num(s.p50, 1), Table::num(s.p90, 1),
               Table::num(s.p99, 1)});
    csv.row({"probe_p90_s", std::to_string(per_hour), Table::num(s.p90, 2)});
  }
  std::cout << b
            << "\nBaseline: 10 GB at 10 Gb/s = 8 s; contention stretches\n"
               "the tail first (p99), as max-min fairness predicts.\n";
  obsv.finish();
  return 0;
}
