// Experiment D2 — a "year in the life" of the data grid (after Orgerie &
// Lefèvre's Grid'5000 yearlong usage study): one simulated year with the
// data-intensive archetype and site caches enabled, measured entirely
// through the streaming path — the StreamingExtractor classifies each
// closing month through Scenario::subscribe(), so the series is complete
// the moment run() returns, with no batch pass over the record store.
// An optional --segment-cap routes the accounting stream through the
// spillable columnar segment log, bounding resident memory over the long
// horizon.
#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "bench/exp_common.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace tg;
  const exp::Options options =
      exp::Options::parse(argc, argv, "exp_year_in_the_life");
  exp::Observability obsv(options);
  exp::banner("D2", "A year in the life of the data grid (streaming)");

  // Always streaming: this experiment *is* the long-horizon streaming
  // scenario. Monthly windows give 12 rows over the year.
  ScenarioConfig::StreamingOptions streaming;
  streaming.enabled = true;
  streaming.bucket = 30 * kDay;
  streaming.series_end = 12 * 30 * kDay;
  streaming.segments.segment_records = options.segment_cap;
  streaming.segments.spill_dir = options.spill_dir;

  Scenario scenario(ScenarioConfig::defaults()
                        .with_seed(2010)
                        .with_horizon(kYear)
                        .with_gateway_adoption_ramp(0.5)
                        .with_plan_cache(!options.exact_replan)
                        .with_shards(options.shards)
                        .with_streaming(streaming)
                        .with_archetype(ArchetypeSpec::data_intensive())
                        .with_data_grid(DataGridConfig::enabled_defaults())
                        .with_trace(obsv.trace()));

  // The subscription surface: each closing monthly window pushes one row.
  struct MonthRow {
    std::array<int, kModalityCount> primary{};
    int gateway_end_users = 0;
  };
  std::vector<MonthRow> months;
  scenario.subscribe([&months](const StreamingWindow& w) {
    months.push_back({w.primary_users, w.gateway_end_users});
  });
  scenario.run();

  std::vector<std::string> header{"Month"};
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    header.emplace_back(short_name(static_cast<Modality>(m)));
  }
  header.emplace_back("gw-endusers");
  Table table(header);
  exp::OptionalCsv csv(options.csv, header);
  for (std::size_t i = 0; i < months.size(); ++i) {
    std::vector<std::string> row{std::string("M").append(
        std::to_string(i + 1))};
    for (std::size_t m = 0; m < kModalityCount; ++m) {
      row.push_back(std::to_string(months[i].primary[m]));
    }
    row.push_back(std::to_string(months[i].gateway_end_users));
    csv.row(row);
    table.add_row(std::move(row));
  }
  std::cout << table << "\n";

  // The data-grid year in aggregate: what the caches absorbed and what the
  // WAN carried.
  const CacheStats cache = scenario.data_grid()->total_cache_stats();
  const DataGrid::Stats& grid = scenario.data_grid()->stats();
  std::cout << "Stage-ins: " << grid.stage_ins << " ("
            << Table::pct(grid.stage_ins > 0
                              ? static_cast<double>(grid.local_stage_ins) /
                                    static_cast<double>(grid.stage_ins)
                              : 0.0)
            << " fully local), WAN transfers: " << grid.transfers << "\n"
            << "Bytes read: " << Table::num(grid.bytes_read / 1e12, 2)
            << " TB (" << Table::pct(cache.byte_hit_rate())
            << " served by site caches), staged over WAN: "
            << Table::num(grid.bytes_transferred / 1e12, 2) << " TB\n"
            << "Stage-in latency: "
            << Table::num(static_cast<double>(grid.stage_in_total) /
                              static_cast<double>(kHour),
                          1)
            << " h total across the year\n";
  if (scenario.db().segmented()) {
    const SegmentLogStats seg = scenario.db().segment_stats();
    std::cout << "Segment log: " << seg.sealed << " sealed, " << seg.spilled
              << " spilled (" << Table::num(seg.spilled_bytes / 1e6, 1)
              << " MB on disk)\n";
  }
  if (options.engine_stats) {
    exp::print_engine_stats(scenario.engine());
  }
  if (obsv.metrics_enabled()) scenario.publish_metrics(obsv.registry());
  obsv.finish();
  return 0;
}
