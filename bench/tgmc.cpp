// tgmc — the interleaving model checker's command line.
//
//   tgmc list                      catalogue of bounded scenarios
//   tgmc explore <scenario> [...]  exhaustive bounded DFS over same-tick
//                                  event orderings; exit 1 on violation
//   tgmc replay <repro-file>       deterministically re-execute one
//                                  recorded interleaving (run under a
//                                  debugger to step through the bug)
//
// explore checks every interleaving against the invariant audit and the
// terminal-record equivalence oracle; on violation it shrinks the choice
// trace and writes a reproducer file for replay. See DESIGN.md §5.8.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "mc/explorer.hpp"
#include "mc/scenarios.hpp"
#include "mc/trace_io.hpp"
#include "util/error.hpp"

namespace {

using namespace tg;

void print_usage(std::ostream& os) {
  os << "usage: tgmc <command> [options]\n"
     << "  tgmc list                    print the scenario catalogue\n"
     << "  tgmc explore <scenario>      bounded exhaustive exploration\n"
     << "    --mutate                   re-arm the historical over-commit "
        "bug (self-test)\n"
     << "    --batch-a=N --batch-b=N    tie-storm batch sizes\n"
     << "    --max-executions=N         execution budget (default 100000)\n"
     << "    --max-choice-points=N      depth bound (default 512)\n"
     << "    --no-sleep-sets            disable sleep-set pruning\n"
     << "    --no-shrink                keep the first violating trace "
        "unshrunk\n"
     << "    --repro=PATH               reproducer file on violation "
        "(default tgmc_<scenario>.repro)\n"
     << "  tgmc replay <repro-file>     re-execute a recorded "
        "interleaving\n";
}

int cmd_list() {
  for (const mc::ScenarioInfo& s : mc::list_scenarios()) {
    std::cout << s.name << "\n    " << s.summary << "\n";
  }
  return 0;
}

int cmd_explore(int argc, char** argv) {
  if (argc < 3) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string name = argv[2];
  mc::ScenarioTweaks tweaks;
  mc::ExplorerOptions opts;
  std::string repro = "tgmc_" + name + ".repro";
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mutate") {
      tweaks.mutate = true;
    } else if (arg.rfind("--batch-a=", 0) == 0) {
      tweaks.batch_a = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--batch-b=", 0) == 0) {
      tweaks.batch_b = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--max-executions=", 0) == 0) {
      opts.max_executions =
          static_cast<std::size_t>(std::atoll(arg.c_str() + 17));
    } else if (arg.rfind("--max-choice-points=", 0) == 0) {
      opts.max_choice_points =
          static_cast<std::size_t>(std::atoll(arg.c_str() + 20));
    } else if (arg == "--no-sleep-sets") {
      opts.sleep_sets = false;
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg.rfind("--repro=", 0) == 0) {
      repro = arg.substr(8);
    } else {
      std::cerr << "tgmc explore: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
  }

  const mc::RunFn run = mc::make_scenario(name, tweaks);
  mc::Explorer explorer(opts);
  const mc::ExplorerResult result = explorer.explore(run);

  std::cout << "[tgmc] scenario " << name << (tweaks.mutate ? " (mutated)" : "")
            << "\n[tgmc] executions=" << result.executions
            << " choice-points=" << result.choice_points
            << " max-depth=" << result.max_depth
            << " sleep-pruned=" << result.sleep_pruned << "\n[tgmc] "
            << "classes=" << result.distinct_classes
            << " equivalence-checks=" << result.equivalence_checks
            << " depth-clipped=" << result.depth_clipped << "\n[tgmc] "
            << (result.exhausted
                    ? "state space exhausted"
                    : (result.hit_budget ? "execution budget exhausted"
                                         : "stopped early"))
            << "\n";
  if (!result.nondeterminism.empty()) {
    std::cout << "[tgmc] NONDETERMINISM: " << result.nondeterminism << "\n";
    return 1;
  }
  if (result.violation_found) {
    std::cout << "[tgmc] VIOLATION: " << result.violation << "\n[tgmc] "
              << "minimal trace (" << result.shrink_executions
              << " shrink replays):";
    for (const std::size_t p : result.violation_trace) std::cout << " " << p;
    std::cout << "\n";
    mc::TraceFile file;
    file.scenario = name;
    file.mutate = tweaks.mutate;
    file.picks = result.violation_trace;
    file.note = result.violation;
    mc::write_trace(repro, file);
    std::cout << "[tgmc] reproducer written to " << repro
              << " (replay with: tgmc replay " << repro << ")\n";
    return 1;
  }
  std::cout << "[tgmc] OK: every interleaving passed the invariant audit "
               "and terminal-record equivalence\n";
  return 0;
}

int cmd_replay(int argc, char** argv) {
  if (argc < 3) {
    print_usage(std::cerr);
    return 2;
  }
  const mc::TraceFile file = mc::read_trace(argv[2]);
  mc::ScenarioTweaks tweaks;
  tweaks.mutate = file.mutate;
  std::cout << "[tgmc] replaying " << file.scenario
            << (file.mutate ? " (mutated)" : "") << " with picks:";
  for (const std::size_t p : file.picks) std::cout << " " << p;
  std::cout << "\n";
  const mc::Outcome out =
      mc::replay_trace(mc::make_scenario(file.scenario, tweaks), file.picks);
  if (out.ok) {
    std::cout << "[tgmc] replay completed cleanly (terminal records 0x"
              << std::hex << out.terminal_hash << std::dec << ")\n";
    return 0;
  }
  std::cout << "[tgmc] replay reproduced the violation:\n" << out.failure
            << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "list") return cmd_list();
    if (command == "explore") return cmd_explore(argc, argv);
    if (command == "replay") return cmd_replay(argc, argv);
    if (command == "--help" || command == "-h") {
      print_usage(std::cout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "tgmc: " << e.what() << "\n";
    return 2;
  }
  std::cerr << "tgmc: unknown command '" << command << "'\n";
  print_usage(std::cerr);
  return 2;
}
