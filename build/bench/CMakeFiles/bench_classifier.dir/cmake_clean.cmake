file(REMOVE_RECURSE
  "CMakeFiles/bench_classifier.dir/bench_classifier.cpp.o"
  "CMakeFiles/bench_classifier.dir/bench_classifier.cpp.o.d"
  "bench_classifier"
  "bench_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
