file(REMOVE_RECURSE
  "CMakeFiles/bench_des_kernel.dir/bench_des_kernel.cpp.o"
  "CMakeFiles/bench_des_kernel.dir/bench_des_kernel.cpp.o.d"
  "bench_des_kernel"
  "bench_des_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_des_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
