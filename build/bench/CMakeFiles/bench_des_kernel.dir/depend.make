# Empty dependencies file for bench_des_kernel.
# This may be replaced when dependencies are built.
