file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_scale.dir/bench_scenario_scale.cpp.o"
  "CMakeFiles/bench_scenario_scale.dir/bench_scenario_scale.cpp.o.d"
  "bench_scenario_scale"
  "bench_scenario_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
