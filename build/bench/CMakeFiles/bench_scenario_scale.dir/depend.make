# Empty dependencies file for bench_scenario_scale.
# This may be replaced when dependencies are built.
