file(REMOVE_RECURSE
  "CMakeFiles/exp_burst_detection.dir/exp_burst_detection.cpp.o"
  "CMakeFiles/exp_burst_detection.dir/exp_burst_detection.cpp.o.d"
  "exp_burst_detection"
  "exp_burst_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_burst_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
