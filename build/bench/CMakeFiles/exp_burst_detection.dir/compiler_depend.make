# Empty compiler generated dependencies file for exp_burst_detection.
# This may be replaced when dependencies are built.
