file(REMOVE_RECURSE
  "CMakeFiles/exp_classifier_accuracy.dir/exp_classifier_accuracy.cpp.o"
  "CMakeFiles/exp_classifier_accuracy.dir/exp_classifier_accuracy.cpp.o.d"
  "exp_classifier_accuracy"
  "exp_classifier_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_classifier_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
