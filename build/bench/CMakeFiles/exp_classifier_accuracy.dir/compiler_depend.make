# Empty compiler generated dependencies file for exp_classifier_accuracy.
# This may be replaced when dependencies are built.
