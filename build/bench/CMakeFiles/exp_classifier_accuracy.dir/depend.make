# Empty dependencies file for exp_classifier_accuracy.
# This may be replaced when dependencies are built.
