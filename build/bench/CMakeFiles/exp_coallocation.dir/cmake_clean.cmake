file(REMOVE_RECURSE
  "CMakeFiles/exp_coallocation.dir/exp_coallocation.cpp.o"
  "CMakeFiles/exp_coallocation.dir/exp_coallocation.cpp.o.d"
  "exp_coallocation"
  "exp_coallocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_coallocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
