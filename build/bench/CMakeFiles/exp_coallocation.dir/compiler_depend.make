# Empty compiler generated dependencies file for exp_coallocation.
# This may be replaced when dependencies are built.
