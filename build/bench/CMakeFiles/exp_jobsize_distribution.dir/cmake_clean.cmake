file(REMOVE_RECURSE
  "CMakeFiles/exp_jobsize_distribution.dir/exp_jobsize_distribution.cpp.o"
  "CMakeFiles/exp_jobsize_distribution.dir/exp_jobsize_distribution.cpp.o.d"
  "exp_jobsize_distribution"
  "exp_jobsize_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_jobsize_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
