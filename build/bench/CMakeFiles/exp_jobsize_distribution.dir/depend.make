# Empty dependencies file for exp_jobsize_distribution.
# This may be replaced when dependencies are built.
