file(REMOVE_RECURSE
  "CMakeFiles/exp_mechanism_coverage.dir/exp_mechanism_coverage.cpp.o"
  "CMakeFiles/exp_mechanism_coverage.dir/exp_mechanism_coverage.cpp.o.d"
  "exp_mechanism_coverage"
  "exp_mechanism_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_mechanism_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
