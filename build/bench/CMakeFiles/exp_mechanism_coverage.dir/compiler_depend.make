# Empty compiler generated dependencies file for exp_mechanism_coverage.
# This may be replaced when dependencies are built.
