file(REMOVE_RECURSE
  "CMakeFiles/exp_modality_churn.dir/exp_modality_churn.cpp.o"
  "CMakeFiles/exp_modality_churn.dir/exp_modality_churn.cpp.o.d"
  "exp_modality_churn"
  "exp_modality_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_modality_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
