# Empty compiler generated dependencies file for exp_modality_churn.
# This may be replaced when dependencies are built.
