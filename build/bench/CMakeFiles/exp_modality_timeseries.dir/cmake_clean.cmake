file(REMOVE_RECURSE
  "CMakeFiles/exp_modality_timeseries.dir/exp_modality_timeseries.cpp.o"
  "CMakeFiles/exp_modality_timeseries.dir/exp_modality_timeseries.cpp.o.d"
  "exp_modality_timeseries"
  "exp_modality_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_modality_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
