# Empty dependencies file for exp_modality_timeseries.
# This may be replaced when dependencies are built.
