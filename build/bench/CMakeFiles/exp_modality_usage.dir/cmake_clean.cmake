file(REMOVE_RECURSE
  "CMakeFiles/exp_modality_usage.dir/exp_modality_usage.cpp.o"
  "CMakeFiles/exp_modality_usage.dir/exp_modality_usage.cpp.o.d"
  "exp_modality_usage"
  "exp_modality_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_modality_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
