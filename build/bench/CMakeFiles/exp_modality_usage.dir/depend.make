# Empty dependencies file for exp_modality_usage.
# This may be replaced when dependencies are built.
