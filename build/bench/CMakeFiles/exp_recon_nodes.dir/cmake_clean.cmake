file(REMOVE_RECURSE
  "CMakeFiles/exp_recon_nodes.dir/exp_recon_nodes.cpp.o"
  "CMakeFiles/exp_recon_nodes.dir/exp_recon_nodes.cpp.o.d"
  "exp_recon_nodes"
  "exp_recon_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_recon_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
