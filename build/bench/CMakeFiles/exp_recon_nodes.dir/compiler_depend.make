# Empty compiler generated dependencies file for exp_recon_nodes.
# This may be replaced when dependencies are built.
