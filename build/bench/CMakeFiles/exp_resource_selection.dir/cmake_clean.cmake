file(REMOVE_RECURSE
  "CMakeFiles/exp_resource_selection.dir/exp_resource_selection.cpp.o"
  "CMakeFiles/exp_resource_selection.dir/exp_resource_selection.cpp.o.d"
  "exp_resource_selection"
  "exp_resource_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_resource_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
