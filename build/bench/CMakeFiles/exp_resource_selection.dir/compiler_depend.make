# Empty compiler generated dependencies file for exp_resource_selection.
# This may be replaced when dependencies are built.
