file(REMOVE_RECURSE
  "CMakeFiles/exp_scheduler_policies.dir/exp_scheduler_policies.cpp.o"
  "CMakeFiles/exp_scheduler_policies.dir/exp_scheduler_policies.cpp.o.d"
  "exp_scheduler_policies"
  "exp_scheduler_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_scheduler_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
