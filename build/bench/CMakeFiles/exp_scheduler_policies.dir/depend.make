# Empty dependencies file for exp_scheduler_policies.
# This may be replaced when dependencies are built.
