file(REMOVE_RECURSE
  "CMakeFiles/exp_survey_vs_records.dir/exp_survey_vs_records.cpp.o"
  "CMakeFiles/exp_survey_vs_records.dir/exp_survey_vs_records.cpp.o.d"
  "exp_survey_vs_records"
  "exp_survey_vs_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_survey_vs_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
