# Empty compiler generated dependencies file for exp_survey_vs_records.
# This may be replaced when dependencies are built.
