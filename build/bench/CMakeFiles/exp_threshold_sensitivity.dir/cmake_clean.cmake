file(REMOVE_RECURSE
  "CMakeFiles/exp_threshold_sensitivity.dir/exp_threshold_sensitivity.cpp.o"
  "CMakeFiles/exp_threshold_sensitivity.dir/exp_threshold_sensitivity.cpp.o.d"
  "exp_threshold_sensitivity"
  "exp_threshold_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_threshold_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
