# Empty compiler generated dependencies file for exp_threshold_sensitivity.
# This may be replaced when dependencies are built.
