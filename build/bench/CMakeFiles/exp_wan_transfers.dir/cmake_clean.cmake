file(REMOVE_RECURSE
  "CMakeFiles/exp_wan_transfers.dir/exp_wan_transfers.cpp.o"
  "CMakeFiles/exp_wan_transfers.dir/exp_wan_transfers.cpp.o.d"
  "exp_wan_transfers"
  "exp_wan_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_wan_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
