# Empty compiler generated dependencies file for exp_wan_transfers.
# This may be replaced when dependencies are built.
