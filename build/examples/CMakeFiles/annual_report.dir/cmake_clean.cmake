file(REMOVE_RECURSE
  "CMakeFiles/annual_report.dir/annual_report.cpp.o"
  "CMakeFiles/annual_report.dir/annual_report.cpp.o.d"
  "annual_report"
  "annual_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annual_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
