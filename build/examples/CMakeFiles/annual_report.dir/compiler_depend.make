# Empty compiler generated dependencies file for annual_report.
# This may be replaced when dependencies are built.
