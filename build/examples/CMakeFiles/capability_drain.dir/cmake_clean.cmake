file(REMOVE_RECURSE
  "CMakeFiles/capability_drain.dir/capability_drain.cpp.o"
  "CMakeFiles/capability_drain.dir/capability_drain.cpp.o.d"
  "capability_drain"
  "capability_drain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capability_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
