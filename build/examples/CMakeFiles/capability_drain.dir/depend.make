# Empty dependencies file for capability_drain.
# This may be replaced when dependencies are built.
