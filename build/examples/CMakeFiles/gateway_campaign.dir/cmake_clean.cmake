file(REMOVE_RECURSE
  "CMakeFiles/gateway_campaign.dir/gateway_campaign.cpp.o"
  "CMakeFiles/gateway_campaign.dir/gateway_campaign.cpp.o.d"
  "gateway_campaign"
  "gateway_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gateway_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
