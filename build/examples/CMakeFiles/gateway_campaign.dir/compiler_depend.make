# Empty compiler generated dependencies file for gateway_campaign.
# This may be replaced when dependencies are built.
