file(REMOVE_RECURSE
  "CMakeFiles/recon_cluster.dir/recon_cluster.cpp.o"
  "CMakeFiles/recon_cluster.dir/recon_cluster.cpp.o.d"
  "recon_cluster"
  "recon_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
