# Empty compiler generated dependencies file for recon_cluster.
# This may be replaced when dependencies are built.
