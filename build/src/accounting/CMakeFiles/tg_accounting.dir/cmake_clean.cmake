file(REMOVE_RECURSE
  "CMakeFiles/tg_accounting.dir/charge.cpp.o"
  "CMakeFiles/tg_accounting.dir/charge.cpp.o.d"
  "CMakeFiles/tg_accounting.dir/ledger.cpp.o"
  "CMakeFiles/tg_accounting.dir/ledger.cpp.o.d"
  "CMakeFiles/tg_accounting.dir/swf.cpp.o"
  "CMakeFiles/tg_accounting.dir/swf.cpp.o.d"
  "CMakeFiles/tg_accounting.dir/usage_db.cpp.o"
  "CMakeFiles/tg_accounting.dir/usage_db.cpp.o.d"
  "libtg_accounting.a"
  "libtg_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
