file(REMOVE_RECURSE
  "libtg_accounting.a"
)
