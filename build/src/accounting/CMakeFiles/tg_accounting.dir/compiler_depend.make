# Empty compiler generated dependencies file for tg_accounting.
# This may be replaced when dependencies are built.
