
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/annual_report.cpp" "src/core/CMakeFiles/tg_core.dir/annual_report.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/annual_report.cpp.o.d"
  "/root/repo/src/core/classifier.cpp" "src/core/CMakeFiles/tg_core.dir/classifier.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/classifier.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/tg_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/features.cpp.o.d"
  "/root/repo/src/core/modality.cpp" "src/core/CMakeFiles/tg_core.dir/modality.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/modality.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/tg_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/report.cpp.o.d"
  "/root/repo/src/core/scoring.cpp" "src/core/CMakeFiles/tg_core.dir/scoring.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/scoring.cpp.o.d"
  "/root/repo/src/core/survey.cpp" "src/core/CMakeFiles/tg_core.dir/survey.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/survey.cpp.o.d"
  "/root/repo/src/core/trend.cpp" "src/core/CMakeFiles/tg_core.dir/trend.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/trend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accounting/CMakeFiles/tg_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/tg_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/tg_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
