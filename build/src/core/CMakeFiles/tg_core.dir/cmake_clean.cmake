file(REMOVE_RECURSE
  "CMakeFiles/tg_core.dir/annual_report.cpp.o"
  "CMakeFiles/tg_core.dir/annual_report.cpp.o.d"
  "CMakeFiles/tg_core.dir/classifier.cpp.o"
  "CMakeFiles/tg_core.dir/classifier.cpp.o.d"
  "CMakeFiles/tg_core.dir/features.cpp.o"
  "CMakeFiles/tg_core.dir/features.cpp.o.d"
  "CMakeFiles/tg_core.dir/modality.cpp.o"
  "CMakeFiles/tg_core.dir/modality.cpp.o.d"
  "CMakeFiles/tg_core.dir/report.cpp.o"
  "CMakeFiles/tg_core.dir/report.cpp.o.d"
  "CMakeFiles/tg_core.dir/scoring.cpp.o"
  "CMakeFiles/tg_core.dir/scoring.cpp.o.d"
  "CMakeFiles/tg_core.dir/survey.cpp.o"
  "CMakeFiles/tg_core.dir/survey.cpp.o.d"
  "CMakeFiles/tg_core.dir/trend.cpp.o"
  "CMakeFiles/tg_core.dir/trend.cpp.o.d"
  "libtg_core.a"
  "libtg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
