file(REMOVE_RECURSE
  "libtg_core.a"
)
