file(REMOVE_RECURSE
  "CMakeFiles/tg_des.dir/engine.cpp.o"
  "CMakeFiles/tg_des.dir/engine.cpp.o.d"
  "CMakeFiles/tg_des.dir/time.cpp.o"
  "CMakeFiles/tg_des.dir/time.cpp.o.d"
  "libtg_des.a"
  "libtg_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
