file(REMOVE_RECURSE
  "libtg_des.a"
)
