# Empty dependencies file for tg_des.
# This may be replaced when dependencies are built.
