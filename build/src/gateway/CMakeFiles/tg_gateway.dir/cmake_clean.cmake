file(REMOVE_RECURSE
  "CMakeFiles/tg_gateway.dir/gateway.cpp.o"
  "CMakeFiles/tg_gateway.dir/gateway.cpp.o.d"
  "libtg_gateway.a"
  "libtg_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
