file(REMOVE_RECURSE
  "libtg_gateway.a"
)
