# Empty compiler generated dependencies file for tg_gateway.
# This may be replaced when dependencies are built.
