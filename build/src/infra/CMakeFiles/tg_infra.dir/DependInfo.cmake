
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/infra/community.cpp" "src/infra/CMakeFiles/tg_infra.dir/community.cpp.o" "gcc" "src/infra/CMakeFiles/tg_infra.dir/community.cpp.o.d"
  "/root/repo/src/infra/platform.cpp" "src/infra/CMakeFiles/tg_infra.dir/platform.cpp.o" "gcc" "src/infra/CMakeFiles/tg_infra.dir/platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/tg_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
