file(REMOVE_RECURSE
  "CMakeFiles/tg_infra.dir/community.cpp.o"
  "CMakeFiles/tg_infra.dir/community.cpp.o.d"
  "CMakeFiles/tg_infra.dir/platform.cpp.o"
  "CMakeFiles/tg_infra.dir/platform.cpp.o.d"
  "libtg_infra.a"
  "libtg_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
