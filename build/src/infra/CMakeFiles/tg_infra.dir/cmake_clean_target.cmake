file(REMOVE_RECURSE
  "libtg_infra.a"
)
