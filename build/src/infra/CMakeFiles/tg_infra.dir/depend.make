# Empty dependencies file for tg_infra.
# This may be replaced when dependencies are built.
