file(REMOVE_RECURSE
  "CMakeFiles/tg_meta.dir/coalloc.cpp.o"
  "CMakeFiles/tg_meta.dir/coalloc.cpp.o.d"
  "CMakeFiles/tg_meta.dir/selector.cpp.o"
  "CMakeFiles/tg_meta.dir/selector.cpp.o.d"
  "libtg_meta.a"
  "libtg_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
