file(REMOVE_RECURSE
  "libtg_meta.a"
)
