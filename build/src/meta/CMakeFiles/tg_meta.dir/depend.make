# Empty dependencies file for tg_meta.
# This may be replaced when dependencies are built.
