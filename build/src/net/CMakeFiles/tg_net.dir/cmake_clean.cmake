file(REMOVE_RECURSE
  "CMakeFiles/tg_net.dir/flow.cpp.o"
  "CMakeFiles/tg_net.dir/flow.cpp.o.d"
  "libtg_net.a"
  "libtg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
