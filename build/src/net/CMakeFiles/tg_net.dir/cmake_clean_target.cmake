file(REMOVE_RECURSE
  "libtg_net.a"
)
