# Empty dependencies file for tg_net.
# This may be replaced when dependencies are built.
