file(REMOVE_RECURSE
  "CMakeFiles/tg_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/tg_parallel.dir/thread_pool.cpp.o.d"
  "libtg_parallel.a"
  "libtg_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
