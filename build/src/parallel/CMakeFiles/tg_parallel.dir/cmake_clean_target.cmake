file(REMOVE_RECURSE
  "libtg_parallel.a"
)
