# Empty compiler generated dependencies file for tg_parallel.
# This may be replaced when dependencies are built.
