file(REMOVE_RECURSE
  "CMakeFiles/tg_recon.dir/recon.cpp.o"
  "CMakeFiles/tg_recon.dir/recon.cpp.o.d"
  "libtg_recon.a"
  "libtg_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
