file(REMOVE_RECURSE
  "libtg_recon.a"
)
