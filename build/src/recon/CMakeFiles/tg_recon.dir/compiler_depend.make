# Empty compiler generated dependencies file for tg_recon.
# This may be replaced when dependencies are built.
