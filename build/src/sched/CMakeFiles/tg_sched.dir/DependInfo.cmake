
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/job.cpp" "src/sched/CMakeFiles/tg_sched.dir/job.cpp.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/job.cpp.o.d"
  "/root/repo/src/sched/metrics.cpp" "src/sched/CMakeFiles/tg_sched.dir/metrics.cpp.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/metrics.cpp.o.d"
  "/root/repo/src/sched/pool.cpp" "src/sched/CMakeFiles/tg_sched.dir/pool.cpp.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/pool.cpp.o.d"
  "/root/repo/src/sched/profile.cpp" "src/sched/CMakeFiles/tg_sched.dir/profile.cpp.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/profile.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/tg_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/tg_des.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/tg_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
