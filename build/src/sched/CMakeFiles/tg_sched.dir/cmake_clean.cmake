file(REMOVE_RECURSE
  "CMakeFiles/tg_sched.dir/job.cpp.o"
  "CMakeFiles/tg_sched.dir/job.cpp.o.d"
  "CMakeFiles/tg_sched.dir/metrics.cpp.o"
  "CMakeFiles/tg_sched.dir/metrics.cpp.o.d"
  "CMakeFiles/tg_sched.dir/pool.cpp.o"
  "CMakeFiles/tg_sched.dir/pool.cpp.o.d"
  "CMakeFiles/tg_sched.dir/profile.cpp.o"
  "CMakeFiles/tg_sched.dir/profile.cpp.o.d"
  "CMakeFiles/tg_sched.dir/scheduler.cpp.o"
  "CMakeFiles/tg_sched.dir/scheduler.cpp.o.d"
  "libtg_sched.a"
  "libtg_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
