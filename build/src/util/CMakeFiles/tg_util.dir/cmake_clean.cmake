file(REMOVE_RECURSE
  "CMakeFiles/tg_util.dir/csv.cpp.o"
  "CMakeFiles/tg_util.dir/csv.cpp.o.d"
  "CMakeFiles/tg_util.dir/distributions.cpp.o"
  "CMakeFiles/tg_util.dir/distributions.cpp.o.d"
  "CMakeFiles/tg_util.dir/histogram.cpp.o"
  "CMakeFiles/tg_util.dir/histogram.cpp.o.d"
  "CMakeFiles/tg_util.dir/rng.cpp.o"
  "CMakeFiles/tg_util.dir/rng.cpp.o.d"
  "CMakeFiles/tg_util.dir/stats.cpp.o"
  "CMakeFiles/tg_util.dir/stats.cpp.o.d"
  "CMakeFiles/tg_util.dir/table.cpp.o"
  "CMakeFiles/tg_util.dir/table.cpp.o.d"
  "libtg_util.a"
  "libtg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
