# Empty compiler generated dependencies file for tg_util.
# This may be replaced when dependencies are built.
