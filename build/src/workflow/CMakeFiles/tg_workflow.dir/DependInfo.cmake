
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/dag.cpp" "src/workflow/CMakeFiles/tg_workflow.dir/dag.cpp.o" "gcc" "src/workflow/CMakeFiles/tg_workflow.dir/dag.cpp.o.d"
  "/root/repo/src/workflow/engine.cpp" "src/workflow/CMakeFiles/tg_workflow.dir/engine.cpp.o" "gcc" "src/workflow/CMakeFiles/tg_workflow.dir/engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/tg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/tg_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/tg_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/tg_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
