file(REMOVE_RECURSE
  "CMakeFiles/tg_workflow.dir/dag.cpp.o"
  "CMakeFiles/tg_workflow.dir/dag.cpp.o.d"
  "CMakeFiles/tg_workflow.dir/engine.cpp.o"
  "CMakeFiles/tg_workflow.dir/engine.cpp.o.d"
  "libtg_workflow.a"
  "libtg_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
