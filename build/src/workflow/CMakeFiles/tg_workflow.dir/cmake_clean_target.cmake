file(REMOVE_RECURSE
  "libtg_workflow.a"
)
