# Empty compiler generated dependencies file for tg_workflow.
# This may be replaced when dependencies are built.
