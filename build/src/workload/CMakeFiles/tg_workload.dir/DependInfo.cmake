
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/tg_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/tg_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/population.cpp" "src/workload/CMakeFiles/tg_workload.dir/population.cpp.o" "gcc" "src/workload/CMakeFiles/tg_workload.dir/population.cpp.o.d"
  "/root/repo/src/workload/replay.cpp" "src/workload/CMakeFiles/tg_workload.dir/replay.cpp.o" "gcc" "src/workload/CMakeFiles/tg_workload.dir/replay.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/workload/CMakeFiles/tg_workload.dir/scenario.cpp.o" "gcc" "src/workload/CMakeFiles/tg_workload.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/tg_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/tg_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/tg_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/accounting/CMakeFiles/tg_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/tg_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/tg_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
