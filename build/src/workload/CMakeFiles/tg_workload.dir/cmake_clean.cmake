file(REMOVE_RECURSE
  "CMakeFiles/tg_workload.dir/generator.cpp.o"
  "CMakeFiles/tg_workload.dir/generator.cpp.o.d"
  "CMakeFiles/tg_workload.dir/population.cpp.o"
  "CMakeFiles/tg_workload.dir/population.cpp.o.d"
  "CMakeFiles/tg_workload.dir/replay.cpp.o"
  "CMakeFiles/tg_workload.dir/replay.cpp.o.d"
  "CMakeFiles/tg_workload.dir/scenario.cpp.o"
  "CMakeFiles/tg_workload.dir/scenario.cpp.o.d"
  "libtg_workload.a"
  "libtg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
