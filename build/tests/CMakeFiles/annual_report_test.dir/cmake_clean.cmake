file(REMOVE_RECURSE
  "CMakeFiles/annual_report_test.dir/annual_report_test.cpp.o"
  "CMakeFiles/annual_report_test.dir/annual_report_test.cpp.o.d"
  "annual_report_test"
  "annual_report_test.pdb"
  "annual_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annual_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
