# Empty dependencies file for annual_report_test.
# This may be replaced when dependencies are built.
