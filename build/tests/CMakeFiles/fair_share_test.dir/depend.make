# Empty dependencies file for fair_share_test.
# This may be replaced when dependencies are built.
