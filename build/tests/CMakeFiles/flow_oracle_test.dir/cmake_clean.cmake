file(REMOVE_RECURSE
  "CMakeFiles/flow_oracle_test.dir/flow_oracle_test.cpp.o"
  "CMakeFiles/flow_oracle_test.dir/flow_oracle_test.cpp.o.d"
  "flow_oracle_test"
  "flow_oracle_test.pdb"
  "flow_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
