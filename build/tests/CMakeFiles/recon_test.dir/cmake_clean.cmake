file(REMOVE_RECURSE
  "CMakeFiles/recon_test.dir/recon_test.cpp.o"
  "CMakeFiles/recon_test.dir/recon_test.cpp.o.d"
  "recon_test"
  "recon_test.pdb"
  "recon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
