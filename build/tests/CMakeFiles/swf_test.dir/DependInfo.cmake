
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/swf_test.cpp" "tests/CMakeFiles/swf_test.dir/swf_test.cpp.o" "gcc" "tests/CMakeFiles/swf_test.dir/swf_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/tg_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/recon/CMakeFiles/tg_recon.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/tg_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/tg_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/tg_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/accounting/CMakeFiles/tg_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/tg_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/tg_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
