file(REMOVE_RECURSE
  "CMakeFiles/swf_test.dir/swf_test.cpp.o"
  "CMakeFiles/swf_test.dir/swf_test.cpp.o.d"
  "swf_test"
  "swf_test.pdb"
  "swf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
