file(REMOVE_RECURSE
  "CMakeFiles/trend_test.dir/trend_test.cpp.o"
  "CMakeFiles/trend_test.dir/trend_test.cpp.o.d"
  "trend_test"
  "trend_test.pdb"
  "trend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
