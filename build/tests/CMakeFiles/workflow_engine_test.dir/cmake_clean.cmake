file(REMOVE_RECURSE
  "CMakeFiles/workflow_engine_test.dir/workflow_engine_test.cpp.o"
  "CMakeFiles/workflow_engine_test.dir/workflow_engine_test.cpp.o.d"
  "workflow_engine_test"
  "workflow_engine_test.pdb"
  "workflow_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
