# Empty dependencies file for workflow_engine_test.
# This may be replaced when dependencies are built.
