// Example: generate the full annual usage report — the production artifact
// the paper's measurement programme exists to feed. Simulates one
// allocation year and prints every section (platform, headline usage,
// modalities, per-resource delivery, fields of science, data movement).
//
// Run: ./build/examples/annual_report
#include <iostream>

#include "core/annual_report.hpp"
#include "workload/scenario.hpp"

int main() {
  tg::ScenarioConfig config;
  config.seed = 2010;  // the reporting year
  config.horizon = tg::kYear;
  tg::Scenario scenario(std::move(config));
  scenario.run();

  tg::AnnualReportOptions options;
  options.from = 0;
  options.to = scenario.engine().now() + 1;
  std::cout << tg::generate_annual_report(scenario.platform(),
                                          scenario.community(),
                                          scenario.db(), options);
  return 0;
}
