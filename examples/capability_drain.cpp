// Example: running hero jobs on a Kraken-like machine with and without
// weekly drains.
//
// Demonstrates: direct use of ResourceScheduler with a drain policy, the
// capability-priority queue, reservations via the co-allocator, and the
// scheduler metrics API. This is the operational story behind the
// "capability runs" modality: full-machine jobs and ordinary capacity work
// sharing one scheduler.
//
// Run: ./build/examples/capability_drain
#include <iostream>

#include "sched/scheduler.hpp"
#include "util/distributions.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace tg;

namespace {

struct Outcome {
  double utilization;
  double capability_wait_h;
  double capacity_wait_h;
};

Outcome run(Duration drain_period) {
  ComputeResource kraken;
  kraken.id = ResourceId{0};
  kraken.site = SiteId{0};
  kraken.name = "Kraken";
  kraken.nodes = 1032;
  kraken.cores_per_node = 12;
  kraken.max_walltime = 24 * kHour;

  Engine engine;
  SchedulerConfig config;
  config.policy = SchedPolicy::kEasyBackfill;
  config.drain_period = drain_period;
  config.capability_fraction = 0.5;
  ResourceScheduler sched(engine, kraken, config);

  RunningStats capability_wait;
  RunningStats capacity_wait;
  sched.add_on_end([&](const Job& j) {
    if (j.state == JobState::kCancelled) return;
    (j.req.nodes >= kraken.nodes / 2 ? capability_wait : capacity_wait)
        .add(to_hours(j.wait()));
  });

  Rng rng(2024);
  const LogUniformInt width(1, 256);
  const LogNormal runtime = LogNormal::from_mean_cv(5.0, 1.0);
  const Duration horizon = 21 * kDay;

  // Capacity background at ~85% load with sloppy walltime requests.
  double demand = 0.0;
  while (demand < 0.85 * kraken.nodes * to_hours(horizon)) {
    JobRequest req;
    req.user = UserId{0};
    req.project = ProjectId{0};
    req.nodes = static_cast<int>(width.sample(rng));
    req.actual_runtime = std::clamp<Duration>(
        static_cast<Duration>(runtime.sample(rng) * kHour), 30 * kMinute,
        kraken.max_walltime);
    req.requested_walltime = std::min<Duration>(
        kraken.max_walltime,
        static_cast<Duration>(static_cast<double>(req.actual_runtime) *
                              rng.uniform(1.5, 3.0)));
    demand += req.nodes * to_hours(req.actual_runtime);
    engine.schedule_at(rng.uniform_int(0, horizon),
                       [&sched, req] { sched.submit(req); },
                       EventPriority::kSubmission);
  }
  // Two hero jobs a week: full machine, 6 hours.
  for (SimTime at = 2 * kDay; at < horizon; at += kWeek / 2) {
    JobRequest hero;
    hero.user = UserId{1};
    hero.project = ProjectId{1};
    hero.nodes = kraken.nodes;
    hero.actual_runtime = 6 * kHour;
    hero.requested_walltime = 8 * kHour;
    engine.schedule_at(at, [&sched, hero] { sched.submit(hero); },
                       EventPriority::kSubmission);
  }
  engine.run();

  return Outcome{sched.metrics().utilization(kraken.total_cores(),
                                             engine.now()),
                 capability_wait.mean(), capacity_wait.mean()};
}

}  // namespace

int main() {
  std::cout << "Kraken-like machine, 85% capacity load + 2 full-machine "
               "hero jobs per week, 3 weeks\n\n";
  Table t({"Policy", "Utilization", "Hero wait (h)", "Capacity wait (h)"});
  const Outcome no_drain = run(0);
  const Outcome weekly = run(kWeek);
  t.add_row({"EASY, no drains", Table::pct(no_drain.utilization),
             Table::num(no_drain.capability_wait_h, 1),
             Table::num(no_drain.capacity_wait_h, 1)});
  t.add_row({"EASY + weekly drain", Table::pct(weekly.utilization),
             Table::num(weekly.capability_wait_h, 1),
             Table::num(weekly.capacity_wait_h, 1)});
  std::cout << t
            << "\nThe weekly clearing gives full-machine jobs a periodic\n"
               "guaranteed start at a modest cost to everyone else — the\n"
               "policy NICS adopted for Kraken.\n";
  return 0;
}
