// Example: an EnKF-style ensemble workflow spanning two TeraGrid sites.
//
// Demonstrates: building DAGs with the template builders, automatic
// earliest-start placement, cross-site data staging over the WAN, failure
// retries, and reading workflow results — the "workflow/ensemble" usage
// modality from the inside.
//
// Run: ./build/examples/ensemble_workflow
#include <iostream>

#include "accounting/usage_db.hpp"
#include "util/table.hpp"
#include "workflow/engine.hpp"

using namespace tg;

int main() {
  const Platform platform = teragrid_2010();
  Engine engine;
  SchedulerPool pool(engine, platform);
  FlowManager flows(engine, platform);
  UsageDatabase db;
  Recorder recorder(platform, db);
  recorder.attach(pool);
  recorder.attach(flows);
  WorkflowEngine workflows(engine, pool, &flows, /*retry_limit=*/2);

  // One assimilation cycle: setup on Ranger, 48 ensemble members wherever
  // the metascheduler finds the earliest start, then a merge step that
  // pulls every member's 2 GB of output back together.
  DagTask setup;
  setup.nodes = 1;
  setup.actual_runtime = 20 * kMinute;
  setup.requested_walltime = kHour;
  setup.resource = platform.compute_by_name("Ranger").id;
  setup.output_bytes = 500e6;  // initial conditions shipped to members

  DagTask member;
  member.nodes = 4;
  member.actual_runtime = 2 * kHour;
  member.requested_walltime = 4 * kHour;
  member.output_bytes = 2e9;  // forecasts shipped to the merge step

  DagTask merge;
  merge.nodes = 8;
  merge.actual_runtime = 40 * kMinute;
  merge.requested_walltime = 2 * kHour;
  merge.resource = platform.compute_by_name("Ranger").id;

  // Chain three assimilation cycles; a couple of members fail transiently
  // and are retried by the engine.
  std::cout << "Running 3 EnKF cycles of 48 members each...\n\n";
  int cycles_done = 0;
  Table t({"Cycle", "Makespan", "Tasks", "Failures", "Data moved (GB)"});

  std::function<void(int)> run_cycle = [&](int cycle) {
    DagTask flaky_member = member;
    flaky_member.fails = (cycle == 1);  // inject failures in cycle 2
    flaky_member.fail_after = 10 * kMinute;
    Dag dag = make_fan_out_fan_in(48, setup, flaky_member, merge);
    workflows.submit(std::move(dag), UserId{1}, ProjectId{1},
                     [&, cycle](const WorkflowResult& r) {
                       t.add_row({std::to_string(cycle + 1),
                                  format_duration(r.makespan()),
                                  std::to_string(r.tasks),
                                  std::to_string(r.failures),
                                  Table::num(r.bytes_moved / 1e9, 1)});
                       ++cycles_done;
                       if (cycle + 1 < 3) run_cycle(cycle + 1);
                     });
  };
  run_cycle(0);
  engine.run();

  std::cout << t << "\n";

  // What the central database saw.
  double nu = 0.0;
  int jobs = 0;
  for (const JobRecord& r : db.jobs()) {
    if (r.workflow.valid()) {
      ++jobs;
      nu += r.charged_nu;
    }
  }
  std::cout << "Accounting view: " << jobs << " workflow-tagged jobs, "
            << Table::num(nu, 0) << " NUs charged, "
            << db.transfers().size() << " WAN transfers\n"
            << "Cycles completed: " << cycles_done << "/3\n";
  return 0;
}
