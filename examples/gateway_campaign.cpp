// Example: science gateways serving growing end-user communities through
// community accounts — as the central accounting database sees them.
//
// Demonstrates: the Scenario facade configured through the fluent
// ScenarioConfig builder, the end-user attribute mechanism, and the
// measurement gap the paper calls out — thousands of small jobs land under
// a handful of community accounts, and individual humans are visible only
// when the gateway attaches attributes. Sweeps the attribute coverage rate
// and reports how identification and attributable charge degrade, then
// shows the quarterly end-user growth a ramping gateway produces.
//
// Run: ./build/examples/gateway_campaign
#include <cstdint>
#include <iostream>
#include <vector>

#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace tg;

namespace {

/// One year of default-population TeraGrid operation with the given
/// gateway attribute-coverage rate. The adoption ramp makes the portal
/// community grow over the year instead of arriving fully formed.
ScenarioConfig campaign(double attribute_coverage) {
  return ScenarioConfig::defaults()
      .with_seed(17)
      .with_horizon(kYear)
      .with_gateway_attribute_coverage(attribute_coverage)
      .with_gateway_adoption_ramp(0.8);
}

struct GatewayView {
  long gateway_jobs = 0;
  long identified_users = 0;
  double attributed_nu = 0.0;
  double gateway_nu = 0.0;
};

/// What an analyst can recover from the job stream alone: distinct
/// attributed end users and the attributable share of gateway charge.
GatewayView measure(const Scenario& scenario) {
  GatewayView view;
  std::vector<std::uint8_t> seen(scenario.db().end_user_id_limit(), 0);
  for (const JobRecord& r : scenario.db().jobs()) {
    if (!r.gateway.valid()) continue;
    ++view.gateway_jobs;
    view.gateway_nu += r.charged_nu;
    if (!r.gateway_end_user.valid()) continue;
    view.attributed_nu += r.charged_nu;
    std::uint8_t& slot =
        seen[static_cast<std::size_t>(r.gateway_end_user.value())];
    view.identified_users += 1 - slot;
    slot = 1;
  }
  return view;
}

}  // namespace

int main() {
  std::cout << "Science-gateway campaign on the simulated TeraGrid, "
               "1 year, adoption ramping\n\n";

  for (const double coverage : {1.0, 0.8, 0.4}) {
    Scenario scenario(campaign(coverage));
    scenario.run();
    const GatewayView view = measure(scenario);
    const auto true_users =
        static_cast<long>(scenario.population().gateway_end_users.size());
    std::cout << "attribute coverage " << Table::pct(coverage, 0) << ": "
              << view.gateway_jobs << " gateway jobs, "
              << view.identified_users << "/" << true_users
              << " end users identified, "
              << Table::pct(view.gateway_nu > 0
                                ? view.attributed_nu / view.gateway_nu
                                : 0.0)
              << " of gateway charge attributable\n";
  }

  std::cout << "\nQuarterly distinct end users (coverage 80%):\n";
  Scenario scenario(campaign(0.8));
  scenario.run();
  for (SimTime q = 0; q < 4; ++q) {
    std::vector<std::uint8_t> seen(scenario.db().end_user_id_limit(), 0);
    long active = 0;
    for (const JobRecord& r : scenario.db().jobs()) {
      if (r.end_time < q * kQuarter || r.end_time >= (q + 1) * kQuarter ||
          !r.gateway_end_user.valid()) {
        continue;
      }
      std::uint8_t& slot =
          seen[static_cast<std::size_t>(r.gateway_end_user.value())];
      active += 1 - slot;
      slot = 1;
    }
    std::cout << "  Q" << (q + 1) << ": " << active << " active end users\n";
  }
  std::cout << "\nUser counts degrade slowly with coverage (one attributed\n"
               "job identifies a user) but attributable charge falls\n"
               "linearly — the paper's case for mandatory attributes.\n";
  return 0;
}
