// Example: a nanoHUB-style science gateway serving a growing end-user
// community through a community account.
//
// Demonstrates: Gateway configuration, the end-user attribute mechanism,
// and how the central database sees gateway load — thousands of small jobs
// under one account, identified per-human only through attributes. Shows
// the measured end-user count and per-quarter growth, plus what happens to
// visibility when the gateway under-reports attributes.
//
// Run: ./build/examples/gateway_campaign
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "accounting/usage_db.hpp"
#include "gateway/gateway.hpp"
#include "util/distributions.hpp"
#include "util/string_pool.hpp"
#include "util/table.hpp"

using namespace tg;

namespace {

/// Simulates `users` portal users over `horizon`; each user activates at a
/// random time and then submits sessions of small jobs.
UsageDatabase run_gateway(double attribute_coverage, int users,
                          Duration horizon, std::uint64_t seed) {
  StringPool labels;
  const Platform platform = teragrid_2010();
  Engine engine;
  SchedulerPool pool(engine, platform);
  UsageDatabase db;
  Recorder recorder(platform, db);
  recorder.attach(pool);

  GatewayConfig config;
  config.name = "nanoHUB";
  config.community_account = UserId{0};
  config.project = ProjectId{0};
  config.attribute_coverage = attribute_coverage;
  config.targets = {platform.compute_by_name("Steele").id,
                    platform.compute_by_name("BigRed").id,
                    platform.compute_by_name("Abe").id};
  Gateway gateway(engine, pool, GatewayId{0}, config);

  Rng rng(seed);
  const LogNormal runtime = LogNormal::from_mean_cv(0.4, 1.0);
  for (int u = 0; u < users; ++u) {
    // Uniform adoption over the horizon: the community grows.
    const SimTime active_from =
        static_cast<SimTime>(rng.uniform(0, static_cast<double>(horizon)));
    // Interned in user order, so end-user id == u (dense, 0-based).
    const EndUserId end_user =
        labels.intern("nanohub:user" + std::to_string(u));
    // Pre-plan this user's sessions (open-loop).
    SimTime t = active_from;
    Rng user_rng = rng.fork(static_cast<std::uint64_t>(u));
    const Exponential gap(1.0 / (10.0 * static_cast<double>(kDay)));
    while ((t += static_cast<Duration>(gap.sample(user_rng))) < horizon) {
      const int jobs = static_cast<int>(user_rng.uniform_int(1, 6));
      for (int j = 0; j < jobs; ++j) {
        GatewayJobSpec spec;
        spec.nodes = static_cast<int>(user_rng.uniform_int(1, 2));
        spec.actual_runtime = std::max<Duration>(
            kMinute, static_cast<Duration>(runtime.sample(user_rng) * kHour));
        spec.requested_walltime = 2 * spec.actual_runtime;
        engine.schedule_at(t + j * 5 * kMinute,
                           [&gateway, end_user, spec, u, &rng]() mutable {
                             Rng submit_rng = rng.fork(0xabcd + u);
                             gateway.submit(end_user, spec, submit_rng);
                           });
      }
    }
  }
  engine.run();
  return db;
}

}  // namespace

int main() {
  constexpr int kUsers = 300;
  constexpr Duration kHorizon = kYear;

  std::cout << "nanoHUB-style gateway, " << kUsers
            << " portal users adopting over one year\n\n";

  for (const double coverage : {1.0, 0.8, 0.4}) {
    const UsageDatabase db = run_gateway(coverage, kUsers, kHorizon, 17);

    // Dense seen-bitmap over interned end-user ids (id == portal user
    // index; see run_gateway).
    std::vector<std::uint8_t> identified(kUsers, 0);
    long identified_count = 0;
    double attributed_nu = 0.0;
    double total_nu = 0.0;
    for (const JobRecord& r : db.jobs()) {
      total_nu += r.charged_nu;
      if (r.gateway_end_user.valid()) {
        std::uint8_t& slot =
            identified[static_cast<std::size_t>(r.gateway_end_user.value())];
        identified_count += 1 - slot;
        slot = 1;
        attributed_nu += r.charged_nu;
      }
    }
    std::cout << "attribute coverage " << Table::pct(coverage, 0) << ": "
              << db.jobs().size() << " jobs, " << identified_count << "/"
              << kUsers << " end users identified, "
              << Table::pct(total_nu > 0 ? attributed_nu / total_nu : 0.0)
              << " of charge attributable\n";
  }

  std::cout << "\nQuarterly distinct end users (coverage 80%):\n";
  const UsageDatabase db = run_gateway(0.8, kUsers, kHorizon, 17);
  for (int q = 0; q < 4; ++q) {
    std::vector<std::uint8_t> quarter_users(kUsers, 0);
    long quarter_count = 0;
    for (const JobRecord& r : db.jobs()) {
      if (r.end_time >= q * kQuarter && r.end_time < (q + 1) * kQuarter &&
          r.gateway_end_user.valid()) {
        std::uint8_t& slot = quarter_users[static_cast<std::size_t>(
            r.gateway_end_user.value())];
        quarter_count += 1 - slot;
        slot = 1;
      }
    }
    std::cout << "  Q" << (q + 1) << ": " << quarter_count
              << " active end users\n";
  }
  return 0;
}
