// Quickstart: simulate a quarter of TeraGrid operation with a small user
// population, then print the modality usage report and classifier quality —
// the measurement programme of the paper, end to end, in ~40 lines.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/scoring.hpp"
#include "workload/scenario.hpp"

int main() {
  tg::ScenarioConfig config;
  config.seed = 7;
  config.horizon = tg::kQuarter;  // one reporting quarter
  config.mix.capacity_users = 60;
  config.mix.capability_users = 8;
  config.mix.gateway_end_users = 50;
  config.mix.workflow_users = 20;
  config.mix.coupled_users = 4;
  config.mix.viz_users = 10;
  config.mix.data_users = 10;
  config.mix.exploratory_users = 30;

  std::cout << "Simulating one quarter of a TeraGrid-like platform ("
            << config.mix.account_users() << " account users, "
            << config.mix.gateway_end_users << " gateway end users)...\n";

  tg::Scenario scenario(std::move(config));
  scenario.run();

  std::cout << "Jobs recorded:      " << scenario.db().jobs().size() << "\n"
            << "Transfers recorded: " << scenario.db().transfers().size()
            << "\n"
            << "Sessions recorded:  " << scenario.db().sessions().size()
            << "\n"
            << "Total charge:       " << scenario.db().total_nu() / 1e6
            << " MNU\n\n";

  const tg::RuleClassifier classifier;
  std::cout << "Usage modalities (measured from accounting records):\n"
            << scenario.report(classifier).to_table() << "\n";

  const auto labelled = scenario.predictions(classifier);
  const tg::ConfusionMatrix cm =
      tg::score_primary(labelled.truth, labelled.predicted);
  std::cout << "Classifier accuracy vs ground truth: "
            << tg::Table::pct(cm.accuracy()) << " over " << cm.total()
            << " users (macro-F1 " << tg::Table::num(cm.macro_f1(), 3)
            << ")\n";
  return 0;
}
