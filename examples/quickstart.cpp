// Quickstart: simulate a quarter of TeraGrid operation with a small user
// population, then print the modality usage report and classifier quality —
// the measurement programme of the paper, end to end, in ~40 lines.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/scoring.hpp"
#include "workload/scenario.hpp"

int main() {
  tg::PopulationMix mix;
  mix.capacity_users = 60;
  mix.capability_users = 8;
  mix.gateway_end_users = 50;
  mix.workflow_users = 20;
  mix.coupled_users = 4;
  mix.viz_users = 10;
  mix.data_users = 10;
  mix.exploratory_users = 30;

  std::cout << "Simulating one quarter of a TeraGrid-like platform ("
            << mix.account_users() << " account users, "
            << mix.gateway_end_users << " gateway end users)...\n";

  tg::Scenario scenario(tg::ScenarioConfig::defaults()
                            .with_seed(7)
                            .with_horizon(tg::kQuarter)  // one quarter
                            .with_mix(mix));
  scenario.run();

  std::cout << "Jobs recorded:      " << scenario.db().jobs().size() << "\n"
            << "Transfers recorded: " << scenario.db().transfers().size()
            << "\n"
            << "Sessions recorded:  " << scenario.db().sessions().size()
            << "\n"
            << "Total charge:       " << scenario.db().total_nu() / 1e6
            << " MNU\n\n";

  const tg::RuleClassifier classifier;
  std::cout << "Usage modalities (measured from accounting records):\n"
            << scenario.report(classifier).to_table() << "\n";

  const auto labelled = scenario.predictions(classifier);
  const tg::ConfusionMatrix cm =
      tg::score_primary(labelled.truth, labelled.predicted);
  std::cout << "Classifier accuracy vs ground truth: "
            << tg::Table::pct(cm.accuracy()) << " over " << cm.total()
            << " users (macro-F1 " << tg::Table::num(cm.macro_f1(), 3)
            << ")\n";
  return 0;
}
