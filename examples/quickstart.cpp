// Quickstart: simulate a quarter of TeraGrid operation with a small user
// population, then print the modality usage report and classifier quality —
// the measurement programme of the paper, end to end, in ~40 lines.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/scoring.hpp"
#include "workload/scenario.hpp"

int main() {
  tg::ArchetypeRegistry registry = tg::ArchetypeRegistry::builtin()
                                       .set_count("capacity", 60)
                                       .set_count("capability", 8)
                                       .set_count("gateway", 50)
                                       .set_count("workflow", 20)
                                       .set_count("coupled", 4)
                                       .set_count("viz", 10)
                                       .set_count("data", 10)
                                       .set_count("exploratory", 30);

  std::cout << "Simulating one quarter of a TeraGrid-like platform ("
            << registry.account_users() << " account users, "
            << registry.find("gateway")->count << " gateway end users)...\n";

  tg::Scenario scenario(tg::ScenarioConfig::defaults()
                            .with_seed(7)
                            .with_horizon(tg::kQuarter)  // one quarter
                            .with_registry(registry));
  scenario.run();

  std::cout << "Jobs recorded:      " << scenario.db().jobs().size() << "\n"
            << "Transfers recorded: " << scenario.db().transfers().size()
            << "\n"
            << "Sessions recorded:  " << scenario.db().sessions().size()
            << "\n"
            << "Total charge:       " << scenario.db().total_nu() / 1e6
            << " MNU\n\n";

  const tg::RuleClassifier classifier;
  std::cout << "Usage modalities (measured from accounting records):\n"
            << scenario.report(classifier).to_table() << "\n";

  const auto labelled = scenario.predictions(classifier);
  const tg::ConfusionMatrix cm =
      tg::score_primary(labelled.truth, labelled.predicted);
  std::cout << "Classifier accuracy vs ground truth: "
            << tg::Table::pct(cm.accuracy()) << " over " << cm.total()
            << " users (macro-F1 " << tg::Table::num(cm.macro_f1(), 3)
            << ")\n";
  return 0;
}
