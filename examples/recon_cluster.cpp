// Example: a small cluster with FPGA-augmented nodes running a mixed
// bioinformatics-style workload (the reconfigurable-node extension).
//
// Demonstrates: ReconCluster configuration, configuration caching and LRU
// eviction, the affinity scheduler, and the stats API.
//
// Run: ./build/examples/recon_cluster
#include <iostream>

#include "recon/recon.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace tg;

int main() {
  Engine engine;

  // 8 GPP nodes + 8 reconfigurable nodes with room for two resident
  // configurations each.
  std::vector<ReconNodeSpec> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back({false, 0.0});
  for (int i = 0; i < 8; ++i) nodes.push_back({true, 2.0});

  // Three accelerator bitstreams: alignment, folding, FFT.
  const std::vector<ReconConfig> configs{
      {1.0, 8 * kSecond, 24e6},   // smith-waterman
      {1.0, 12 * kSecond, 48e6},  // folding kernel
      {1.0, 6 * kSecond, 16e6},   // FFT
  };
  ReconCluster cluster(engine, nodes, configs, /*bitstream_link_gbps=*/1.0);

  // 500 tasks: 60% accelerable with kernel-specific speedups.
  Rng rng(11);
  const double speedups[] = {12.0, 9.0, 6.0};
  int accelerable = 0;
  for (int i = 0; i < 500; ++i) {
    ReconTask t;
    if (rng.bernoulli(0.6)) {
      t.config = static_cast<int>(rng.uniform_int(0, 2));
      t.speedup = speedups[t.config];
      ++accelerable;
    }
    t.gpp_runtime = rng.uniform_int(2 * kMinute, 20 * kMinute);
    cluster.submit(std::move(t));
  }
  engine.run();

  const ReconStats& s = cluster.stats();
  Table t({"Metric", "Value"});
  t.add_row({"Tasks completed", std::to_string(s.tasks_done)});
  t.add_row({"  on reconfigurable nodes", std::to_string(s.tasks_on_recon)});
  t.add_row({"  on GPP nodes", std::to_string(s.tasks_on_gpp)});
  t.add_row({"Accelerable tasks submitted", std::to_string(accelerable)});
  t.add_row({"Reconfigurations", std::to_string(s.reconfigurations)});
  t.add_row({"Config cache hits", std::to_string(s.config_hits)});
  t.add_row({"Time spent reconfiguring", format_duration(s.total_reconfig_time)});
  t.add_row({"Makespan", format_duration(engine.now())});
  std::cout << t;

  const double hit_rate =
      s.config_hits + s.reconfigurations > 0
          ? static_cast<double>(s.config_hits) /
                static_cast<double>(s.config_hits + s.reconfigurations)
          : 0.0;
  std::cout << "\nConfiguration-affinity scheduling reused a resident "
               "bitstream for "
            << Table::pct(hit_rate) << " of hardware placements.\n";
  return 0;
}
