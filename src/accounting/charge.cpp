#include "accounting/charge.hpp"

#include "util/error.hpp"

namespace tg {

Charge charge_for(const Job& job, const ComputeResource& res,
                  const ChargePolicy& policy) {
  TG_REQUIRE(job.start_time >= 0 && job.end_time >= job.start_time,
             "charging a job that did not run");
  if (!policy.charge_lost_work && (job.state == JobState::kRequeued ||
                                   job.state == JobState::kKilledByOutage)) {
    return {};  // lost to an outage: time held is refunded
  }
  const double hours = to_hours(job.end_time - job.start_time);
  Charge c;
  c.su = hours * static_cast<double>(job.req.nodes) *
         static_cast<double>(res.cores_per_node);
  c.nu = c.su * res.charge_factor;
  return c;
}

}  // namespace tg
