// Charging policy: converts finished jobs into service units (SUs,
// core-hours) and normalized units (NUs, cross-machine comparable).
#pragma once

#include "infra/platform.hpp"
#include "sched/job.hpp"

namespace tg {

struct Charge {
  double su = 0.0;  ///< core-hours of wall time actually held
  double nu = 0.0;  ///< su x machine normalization factor
};

struct ChargePolicy {
  /// Charge for work lost to infrastructure outages (requeued attempts and
  /// killed-by-outage jobs). TeraGrid sites typically refunded such time;
  /// the default follows them, so lost work shows up in records with a
  /// zero charge.
  bool charge_lost_work = false;
};

/// TeraGrid-style charging: jobs are charged for the node-hours they held,
/// at the machine's normalization factor. Failed and killed jobs are
/// charged for the time actually used (sites differed here; we follow the
/// majority policy). Outage-lost attempts are refunded unless the policy
/// says otherwise.
[[nodiscard]] Charge charge_for(const Job& job, const ComputeResource& res,
                                const ChargePolicy& policy = {});

}  // namespace tg
