// Charging policy: converts finished jobs into service units (SUs,
// core-hours) and normalized units (NUs, cross-machine comparable).
#pragma once

#include "infra/platform.hpp"
#include "sched/job.hpp"

namespace tg {

struct Charge {
  double su = 0.0;  ///< core-hours of wall time actually held
  double nu = 0.0;  ///< su x machine normalization factor
};

/// TeraGrid-style charging: jobs are charged for the node-hours they held,
/// at the machine's normalization factor. Failed and killed jobs are
/// charged for the time actually used (sites differed here; we follow the
/// majority policy).
[[nodiscard]] Charge charge_for(const Job& job, const ComputeResource& res);

}  // namespace tg
