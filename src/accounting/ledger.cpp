#include "accounting/ledger.hpp"

#include "util/error.hpp"

namespace tg {

AllocationLedger::AllocationLedger(const Community& community)
    : community_(community), charged_(community.projects().size(), 0.0) {}

void AllocationLedger::debit(ProjectId project, double nu) {
  TG_REQUIRE(nu >= 0.0, "cannot debit a negative charge");
  const auto idx = static_cast<std::size_t>(project.value());
  if (idx >= charged_.size()) charged_.resize(idx + 1, 0.0);
  charged_[idx] += nu;
  total_charged_ += nu;
}

double AllocationLedger::balance(ProjectId project) const {
  return community_.project(project).allocation_nu - charged(project);
}

double AllocationLedger::charged(ProjectId project) const {
  const auto idx = static_cast<std::size_t>(project.value());
  return idx < charged_.size() ? charged_[idx] : 0.0;
}

bool AllocationLedger::overdrawn(ProjectId project) const {
  return balance(project) < 0.0;
}

std::size_t AllocationLedger::overdrawn_count() const {
  std::size_t n = 0;
  for (const Project& p : community_.projects()) {
    if (overdrawn(p.id)) ++n;
  }
  return n;
}

}  // namespace tg
