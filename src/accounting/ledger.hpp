// Allocation ledger: tracks each project's normalized-unit balance.
//
// TeraGrid allocations were soft-enforced: projects could overdraw briefly
// and were then throttled at renewal. We track balances and overdraft so
// experiments can report usage against allocation, without hard-rejecting
// submissions (matching production behaviour).
#pragma once

#include <vector>

#include "infra/community.hpp"
#include "util/ids.hpp"

namespace tg {

class AllocationLedger {
 public:
  explicit AllocationLedger(const Community& community);

  /// Debits `nu` from the project's balance.
  void debit(ProjectId project, double nu);

  [[nodiscard]] double balance(ProjectId project) const;
  [[nodiscard]] double charged(ProjectId project) const;
  /// True if the project has used more than its award.
  [[nodiscard]] bool overdrawn(ProjectId project) const;
  /// Total NUs charged across all projects.
  [[nodiscard]] double total_charged() const { return total_charged_; }
  /// Number of overdrawn projects.
  [[nodiscard]] std::size_t overdrawn_count() const;

 private:
  const Community& community_;
  std::vector<double> charged_;
  double total_charged_ = 0.0;
};

}  // namespace tg
