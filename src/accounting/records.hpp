// The record types the central accounting database collects.
//
// These mirror what the TeraGrid central database (TGCDB, fed by AMIE
// packets) and auxiliary logs held: batch job records, GridFTP transfer
// records, interactive session records, and science-gateway end-user
// attributes. The modality classifier consumes *only* these records — it
// never inspects live simulator state — matching the paper's premise that
// modalities must be inferred from collected usage data.
#pragma once

#include <cstddef>
#include <cstdint>

#include "des/time.hpp"
#include "sched/job.hpp"
#include "util/error.hpp"
#include "util/ids.hpp"

namespace tg {

/// How a recorded job attempt ended. Records carry one disposition per
/// *attempt*: a job preempted by an outage leaves kRequeued attempt records
/// before its terminal record, so the stream mirrors what a degraded
/// accounting feed would actually contain.
enum class Disposition : std::uint8_t {
  kCompleted,
  kFailed,          ///< application failure mid-run
  kWalltimeKilled,  ///< hit its requested walltime
  kRequeued,        ///< attempt lost to an outage; the job ran again later
  kKilledByOutage,  ///< outage preemption after the retry budget was spent
  kCancelled,
};
inline constexpr std::size_t kDispositionCount = 6;

[[nodiscard]] constexpr const char* to_string(Disposition d) {
  switch (d) {
    case Disposition::kCompleted: return "completed";
    case Disposition::kFailed: return "failed";
    case Disposition::kWalltimeKilled: return "walltime-killed";
    case Disposition::kRequeued: return "requeued";
    case Disposition::kKilledByOutage: return "killed-by-outage";
    case Disposition::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// Disposition of an *ended* attempt. Live states (kQueued/kRunning) are a
/// recorder bug — a record written for a job that never finished — and
/// fail loudly instead of masquerading as kCompleted.
[[nodiscard]] inline Disposition disposition_of(JobState s) {
  switch (s) {
    case JobState::kQueued:
    case JobState::kRunning: break;
    case JobState::kCompleted: return Disposition::kCompleted;
    case JobState::kFailed: return Disposition::kFailed;
    case JobState::kKilled: return Disposition::kWalltimeKilled;
    case JobState::kRequeued: return Disposition::kRequeued;
    case JobState::kKilledByOutage: return Disposition::kKilledByOutage;
    case JobState::kCancelled: return Disposition::kCancelled;
  }
  TG_CHECK(false, "disposition_of(" << to_string(s)
                                    << "): job has not ended");
  return Disposition::kCompleted;  // unreachable
}

/// True if no later record for the same job can follow (kRequeued attempts
/// are followed by another attempt of the same JobId).
[[nodiscard]] constexpr bool is_terminal(Disposition d) {
  return d != Disposition::kRequeued;
}

struct JobRecord {
  JobId job;
  ResourceId resource;
  UserId user;           ///< the account the job ran under (community
                         ///< account for gateway jobs)
  ProjectId project;
  SimTime submit_time = 0;
  SimTime start_time = 0;
  SimTime end_time = 0;
  int nodes = 0;
  int cores_per_node = 0;
  Duration requested_walltime = 0;
  JobState final_state = JobState::kCompleted;
  /// Per-attempt completion disposition (derived from final_state by the
  /// Recorder; kept explicit so analysis never consults live state).
  Disposition disposition = Disposition::kCompleted;
  double charged_su = 0.0;  ///< core-hours
  double charged_nu = 0.0;  ///< normalized units (SU x machine factor)
  // Attributes (the paper's measurement hooks):
  GatewayId gateway;           ///< valid if submitted via a gateway
  /// Interned end-user attribute (resolve labels through the database's
  /// StringPool); invalid if unreported.
  EndUserId gateway_end_user;
  WorkflowId workflow;         ///< valid if part of a workflow/ensemble
  bool interactive = false;
  bool coallocated = false;
  bool viz_resource = false;  ///< ran on a visualization system
  // Data-grid stage-in outcome; all-zero for jobs that staged nothing.
  double bytes_read = 0.0;
  double bytes_from_cache = 0.0;
  Duration stage_in = 0;

  [[nodiscard]] Duration wait() const { return start_time - submit_time; }
  [[nodiscard]] Duration runtime() const { return end_time - start_time; }
  [[nodiscard]] int width_cores() const { return nodes * cores_per_node; }
};

struct TransferRecord {
  TransferId transfer;
  SiteId src;
  SiteId dst;
  UserId user;
  ProjectId project;
  double bytes = 0.0;
  SimTime submit_time = 0;
  SimTime end_time = 0;
};

/// An interactive login/visualization session on a resource.
struct SessionRecord {
  UserId user;
  ResourceId resource;
  SimTime start_time = 0;
  SimTime end_time = 0;
  bool viz = false;
};

}  // namespace tg
