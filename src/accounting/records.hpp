// The record types the central accounting database collects.
//
// These mirror what the TeraGrid central database (TGCDB, fed by AMIE
// packets) and auxiliary logs held: batch job records, GridFTP transfer
// records, interactive session records, and science-gateway end-user
// attributes. The modality classifier consumes *only* these records — it
// never inspects live simulator state — matching the paper's premise that
// modalities must be inferred from collected usage data.
#pragma once

#include <string>

#include "des/time.hpp"
#include "sched/job.hpp"
#include "util/ids.hpp"

namespace tg {

struct JobRecord {
  JobId job;
  ResourceId resource;
  UserId user;           ///< the account the job ran under (community
                         ///< account for gateway jobs)
  ProjectId project;
  SimTime submit_time = 0;
  SimTime start_time = 0;
  SimTime end_time = 0;
  int nodes = 0;
  int cores_per_node = 0;
  Duration requested_walltime = 0;
  JobState final_state = JobState::kCompleted;
  double charged_su = 0.0;  ///< core-hours
  double charged_nu = 0.0;  ///< normalized units (SU x machine factor)
  // Attributes (the paper's measurement hooks):
  GatewayId gateway;             ///< valid if submitted via a gateway
  std::string gateway_end_user;  ///< end-user attribute; empty if unreported
  WorkflowId workflow;           ///< valid if part of a workflow/ensemble
  bool interactive = false;
  bool coallocated = false;
  bool viz_resource = false;  ///< ran on a visualization system

  [[nodiscard]] Duration wait() const { return start_time - submit_time; }
  [[nodiscard]] Duration runtime() const { return end_time - start_time; }
  [[nodiscard]] int width_cores() const { return nodes * cores_per_node; }
};

struct TransferRecord {
  TransferId transfer;
  SiteId src;
  SiteId dst;
  UserId user;
  ProjectId project;
  double bytes = 0.0;
  SimTime submit_time = 0;
  SimTime end_time = 0;
};

/// An interactive login/visualization session on a resource.
struct SessionRecord {
  UserId user;
  ResourceId resource;
  SimTime start_time = 0;
  SimTime end_time = 0;
  bool viz = false;
};

}  // namespace tg
