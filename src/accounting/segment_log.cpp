#include "accounting/segment_log.hpp"

#include <cstdio>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace tg::seg_detail {

bool MappedFile::open(const std::string& path) {
  close();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return false;
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  void* p = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (p == MAP_FAILED) return false;
  data_ = static_cast<const std::byte*>(p);
  size_ = len;
  return true;
}

void MappedFile::close() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

bool write_file(const std::string& path, const void* bytes, std::size_t len) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = len == 0 || std::fwrite(bytes, 1, len, f) == len;
  const bool closed = std::fclose(f) == 0;
  return ok && closed;
}

}  // namespace tg::seg_detail
