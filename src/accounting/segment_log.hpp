// Spillable columnar record log: the out-of-core storage behind
// UsageDatabase's streaming mode.
//
// Records append into a bounded open segment; when it fills, the segment
// seals — the lazy per-stream index layout of PR 2 (per-user posting lists
// plus end-time ordering) is built once, per segment, and becomes
// immutable. Sealed segments past a small residency budget spill to disk
// as one flat file (raw record array + CSR posting index) and are mapped
// back read-only with mmap, so the page cache — not the heap — holds cold
// history and the database scales past RSS. Hot recent segments and the
// open segment stay resident.
//
// Query contract matches the monolithic store: per-user window gathers are
// O(log k + hits) per touched segment (segments outside [min_end, max_end)
// are skipped entirely), and results are emitted in append order. Record
// references handed out by a query stay valid until the next append (a
// seal may spill an older segment and unmap nothing — spilling replaces
// heap vectors with a file mapping that lives until the log is destroyed —
// but the open segment's buffer is reused across seals).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <type_traits>
#include <vector>

#include "des/time.hpp"
#include "util/error.hpp"
#include "util/ids.hpp"

namespace tg {

struct SegmentLogConfig {
  /// Records per segment before the open segment seals. 0 = one unbounded
  /// open segment (no sealing, no spilling — plain in-memory growth).
  std::uint32_t segment_records = 0;
  /// Directory for spilled segment files; empty = sealed segments stay in
  /// memory. The directory must exist and outlive the log.
  std::string spill_dir;
  /// Sealed segments kept resident (heap-backed) before the oldest spills.
  /// The open segment is always resident on top of this budget.
  std::size_t resident_segments = 2;
};

struct SegmentLogStats {
  std::uint64_t appended = 0;
  std::uint64_t sealed = 0;
  std::uint64_t spilled = 0;
  std::uint64_t spilled_bytes = 0;
  /// Segments that failed to spill (I/O error) and stayed resident.
  std::uint64_t spill_failures = 0;
};

namespace seg_detail {

/// Read-only whole-file mapping (RAII). Empty until open() succeeds.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { close(); }
  MappedFile(MappedFile&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      close();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only; false (and stays empty) on any failure.
  bool open(const std::string& path);
  void close();

  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Writes `bytes` to `path` (replacing it); false on any failure.
bool write_file(const std::string& path, const void* bytes, std::size_t len);

/// On-disk segment layout: this header, then 64-byte-aligned sections at
/// the recorded byte offsets. All integers little-endian host format — the
/// file is a same-machine spill artifact, not an interchange format.
struct SegmentFileHeader {
  static constexpr std::uint64_t kMagic = 0x314747455347544eULL;  // "NTGSEG1"
  std::uint64_t magic = kMagic;
  std::uint32_t record_size = 0;
  std::uint32_t count = 0;          ///< records
  std::uint32_t user_count = 0;     ///< distinct posting keys
  std::uint32_t posting_rows = 0;   ///< rows across all posting lists
  std::uint32_t flags = 0;          ///< bit 0: records end-time-sorted
  std::uint32_t reserved = 0;
  std::int64_t min_end = 0;
  std::int64_t max_end = 0;
  std::uint64_t off_records = 0;
  std::uint64_t off_keys = 0;
  std::uint64_t off_offsets = 0;
  std::uint64_t off_rows = 0;
  std::uint64_t off_by_end = 0;     ///< 0 when end-sorted (section absent)
};

[[nodiscard]] constexpr std::uint64_t align64(std::uint64_t n) {
  return (n + 63u) & ~std::uint64_t{63};
}

}  // namespace seg_detail

/// Append-only chunked store of one record stream. `Record` must expose
/// `UserId user` and `SimTime end_time` members and be trivially copyable
/// (segments are raw-copied to disk and mmap-read back).
template <class Record>
class SegmentLog {
  static_assert(std::is_trivially_copyable_v<Record>,
                "spilled segments are raw byte images of the record array");

 public:
  SegmentLog() : SegmentLog(SegmentLogConfig{}, "records") {}
  SegmentLog(SegmentLogConfig config, std::string stream_tag)
      : config_(config), tag_(std::move(stream_tag)) {
    if (config_.segment_records > 0) {
      open_records_.reserve(config_.segment_records);
    }
  }

  /// Appends one record (sealing/spilling first if the open segment is
  /// full) and returns a reference to the stored copy, valid until the
  /// next append.
  const Record& append(const Record& r) {
    if (config_.segment_records > 0 &&
        open_records_.size() >= config_.segment_records) {
      seal();
    }
    const auto row = static_cast<std::uint32_t>(open_records_.size());
    if (open_records_.empty() || r.end_time < open_min_end_) {
      open_min_end_ = r.end_time;
    }
    if (!open_records_.empty() && r.end_time < open_records_.back().end_time) {
      open_sorted_ = false;
    }
    open_max_end_ = std::max(open_max_end_, r.end_time);
    open_records_.push_back(r);
    if (r.user.valid()) {
      const auto slot = static_cast<std::size_t>(r.user.value());
      if (slot >= open_postings_.size()) open_postings_.resize(slot + 1);
      open_postings_[slot].push_back(row);
      user_limit_ = std::max(user_limit_, r.user.value() + 1);
    }
    ++stats_.appended;
    return open_records_.back();
  }

  [[nodiscard]] std::size_t size() const { return stats_.appended; }
  [[nodiscard]] bool empty() const { return stats_.appended == 0; }
  /// One past the largest valid user id appended (0 if none).
  [[nodiscard]] UserId::rep user_limit() const { return user_limit_; }
  [[nodiscard]] const SegmentLogStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t sealed_segments() const { return sealed_.size(); }

  /// Seals the open segment (if any) and spills every sealed segment to
  /// config.spill_dir regardless of the residency budget, so the log's
  /// entire history is on disk and a later process can reopen it with
  /// recover_from_spill(). Returns true when every segment reached disk;
  /// false with no spill_dir or on any I/O failure (failed segments stay
  /// resident and queryable). Appending after a checkpoint is fine — the
  /// next checkpoint writes only the segments sealed since.
  bool checkpoint() {
    if (config_.spill_dir.empty()) return false;
    if (!open_records_.empty()) seal();
    bool ok = true;
    for (std::size_t i = 0; i < sealed_.size(); ++i) {
      Sealed& s = sealed_[i];
      if (s.spilled()) continue;
      if (spill(s, i)) {
        s.spill_failed = false;
      } else {
        if (!s.spill_failed) {
          s.spill_failed = true;
          ++stats_.spill_failures;
        }
        ok = false;
      }
    }
    return ok;
  }

  /// Restart recovery: scans config.spill_dir for "<tag>-<seq>.tgseg"
  /// files written by an earlier process (checkpoint() or regular
  /// spilling), starting at seq 0 and stopping at the first gap. Each file
  /// is mapped read-only, its header validated (magic, record size,
  /// section bounds), and its immutable view rebuilt — the recovered log
  /// answers the same queries over the spilled history and accepts new
  /// appends after it. Must be called on a fresh, empty log. Returns the
  /// number of segments recovered. Throws on a corrupt file.
  std::size_t recover_from_spill() {
    TG_REQUIRE(empty() && sealed_.empty(),
               "recover_from_spill requires a fresh, empty log");
    TG_REQUIRE(!config_.spill_dir.empty(),
               "recover_from_spill needs config.spill_dir");
    using seg_detail::SegmentFileHeader;
    for (std::size_t seq = 0;; ++seq) {
      const std::string path = config_.spill_dir + "/" + tag_ + "-" +
                               std::to_string(seq) + ".tgseg";
      seg_detail::MappedFile map;
      if (!map.open(path)) break;  // first gap ends the sealed prefix
      TG_REQUIRE(map.size() >= sizeof(SegmentFileHeader),
                 "truncated segment file " << path);
      SegmentFileHeader h;
      std::memcpy(&h, map.data(), sizeof(h));
      TG_REQUIRE(h.magic == SegmentFileHeader::kMagic,
                 "bad magic in segment file " << path);
      TG_REQUIRE(h.record_size == sizeof(Record),
                 "segment file " << path << " holds records of "
                                 << h.record_size << " bytes, expected "
                                 << sizeof(Record));
      const bool end_sorted = (h.flags & 1u) != 0;
      std::uint64_t need = h.off_rows + h.posting_rows * sizeof(std::uint32_t);
      if (!end_sorted) {
        need = h.off_by_end + h.count * sizeof(std::uint32_t);
      }
      TG_REQUIRE(map.size() >= need, "segment file " << path
                                                     << " shorter than its "
                                                        "recorded sections");
      Sealed s;
      const std::byte* base = map.data();
      s.map = std::move(map);
      s.view.count = h.count;
      s.view.user_count = h.user_count;
      s.view.end_sorted = end_sorted;
      s.view.min_end = h.min_end;
      s.view.max_end = h.max_end;
      s.view.records = reinterpret_cast<const Record*>(base + h.off_records);
      s.view.keys =
          reinterpret_cast<const std::uint32_t*>(base + h.off_keys);
      s.view.offsets =
          reinterpret_cast<const std::uint32_t*>(base + h.off_offsets);
      s.view.rows = reinterpret_cast<const std::uint32_t*>(base + h.off_rows);
      s.view.by_end = end_sorted ? nullptr
                                 : reinterpret_cast<const std::uint32_t*>(
                                       base + h.off_by_end);
      if (h.user_count > 0) {
        user_limit_ = std::max<UserId::rep>(
            user_limit_, s.view.keys[h.user_count - 1] + 1);
      }
      stats_.appended += h.count;
      ++stats_.sealed;
      ++stats_.spilled;
      stats_.spilled_bytes += s.map.size();
      sealed_.push_back(std::move(s));
    }
    return sealed_.size();
  }

  /// `user`'s records with end time in [from, to), in append order.
  template <class Fn>
  void for_each_of(UserId user, SimTime from, SimTime to, Fn&& fn) const {
    if (from >= to || !user.valid()) return;
    const auto key = static_cast<std::uint32_t>(user.value());
    for (const Sealed& s : sealed_) {
      if (s.view.max_end < from || s.view.min_end >= to) continue;
      emit_user_window(s.view, key, from, to, fn);
    }
    if (open_records_.empty() || open_max_end_ < from || open_min_end_ >= to) {
      return;
    }
    const auto slot = static_cast<std::size_t>(user.value());
    if (slot >= open_postings_.size()) return;
    for (const std::uint32_t row : open_postings_[slot]) {
      const Record& r = open_records_[row];
      if (r.end_time >= from && r.end_time < to) fn(r);
    }
  }

  /// All of `user`'s records, in append order.
  template <class Fn>
  void for_each_of(UserId user, Fn&& fn) const {
    for_each_of(user, std::numeric_limits<SimTime>::min(), kMaxSimTime,
                std::forward<Fn>(fn));
  }

  /// Records with end time in [from, to), in append order (matching the
  /// monolithic store's jobs_ending_in contract).
  template <class Fn>
  void for_each_ending_in(SimTime from, SimTime to, Fn&& fn) const {
    if (from >= to) return;
    std::vector<std::uint32_t> scratch;
    for (const Sealed& s : sealed_) {
      if (s.view.max_end < from || s.view.min_end >= to) continue;
      emit_window(s.view, from, to, scratch, fn);
    }
    if (open_records_.empty() || open_max_end_ < from || open_min_end_ >= to) {
      return;
    }
    // Row-order scan of the open segment is already append order.
    for (const Record& r : open_records_) {
      if (r.end_time >= from && r.end_time < to) fn(r);
    }
  }

 private:
  /// Immutable pointer view over one sealed segment; targets either the
  /// segment's heap vectors or its file mapping.
  struct View {
    const Record* records = nullptr;
    std::uint32_t count = 0;
    const std::uint32_t* keys = nullptr;  ///< sorted distinct user ids
    std::uint32_t user_count = 0;
    const std::uint32_t* offsets = nullptr;  ///< CSR, [user_count + 1]
    const std::uint32_t* rows = nullptr;
    const std::uint32_t* by_end = nullptr;  ///< null when end_sorted
    bool end_sorted = true;
    SimTime min_end = 0;
    SimTime max_end = 0;
  };

  struct Sealed {
    View view;
    // Heap backing; swapped empty once the segment spills.
    std::vector<Record> records;
    std::vector<std::uint32_t> keys;
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint32_t> rows;
    std::vector<std::uint32_t> by_end;
    seg_detail::MappedFile map;
    bool spill_failed = false;

    [[nodiscard]] bool spilled() const { return map.data() != nullptr; }
  };

  template <class Fn>
  static void emit_user_window(const View& v, std::uint32_t key, SimTime from,
                               SimTime to, Fn&& fn) {
    const std::uint32_t* end = v.keys + v.user_count;
    const std::uint32_t* k = std::lower_bound(v.keys, end, key);
    if (k == end || *k != key) return;
    const auto u = static_cast<std::size_t>(k - v.keys);
    const std::uint32_t* first = v.rows + v.offsets[u];
    const std::uint32_t* last = v.rows + v.offsets[u + 1];
    if (v.end_sorted) {
      // Posting rows inherit the segment's end-time order: binary-search
      // the window bounds.
      const auto end_less = [&](std::uint32_t row, SimTime t) {
        return v.records[row].end_time < t;
      };
      first = std::lower_bound(first, last, from, end_less);
      last = std::lower_bound(first, last, to, end_less);
      for (const std::uint32_t* i = first; i != last; ++i) {
        fn(v.records[*i]);
      }
    } else {
      for (const std::uint32_t* i = first; i != last; ++i) {
        const Record& r = v.records[*i];
        if (r.end_time >= from && r.end_time < to) fn(r);
      }
    }
  }

  template <class Fn>
  static void emit_window(const View& v, SimTime from, SimTime to,
                          std::vector<std::uint32_t>& scratch, Fn&& fn) {
    if (v.end_sorted) {
      // The record array itself is end-sorted: one contiguous stretch,
      // already in append order.
      std::uint32_t lo = 0;
      std::uint32_t hi = v.count;
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (v.records[mid].end_time < from) lo = mid + 1; else hi = mid;
      }
      std::uint32_t lo2 = lo;
      std::uint32_t hi2 = v.count;
      while (lo2 < hi2) {
        const std::uint32_t mid = lo2 + (hi2 - lo2) / 2;
        if (v.records[mid].end_time < to) lo2 = mid + 1; else hi2 = mid;
      }
      for (std::uint32_t i = lo; i < lo2; ++i) fn(v.records[i]);
      return;
    }
    const std::uint32_t* first = v.by_end;
    const std::uint32_t* last = v.by_end + v.count;
    const auto end_less = [&](std::uint32_t row, SimTime t) {
      return v.records[row].end_time < t;
    };
    first = std::lower_bound(first, last, from, end_less);
    last = std::lower_bound(first, last, to, end_less);
    scratch.assign(first, last);
    std::sort(scratch.begin(), scratch.end());  // back to append order
    for (const std::uint32_t row : scratch) fn(v.records[row]);
  }

  void seal() {
    Sealed s;
    s.records = std::move(open_records_);
    s.view.count = static_cast<std::uint32_t>(s.records.size());
    s.view.min_end = open_min_end_;
    s.view.max_end = open_max_end_;
    s.view.end_sorted = open_sorted_;
    // Compact the dense open postings into the CSR (keys, offsets, rows)
    // triple; dense slots iterate ascending, so keys come out sorted.
    std::uint32_t total_rows = 0;
    for (const auto& p : open_postings_) {
      total_rows += static_cast<std::uint32_t>(p.size());
      if (!p.empty()) ++s.view.user_count;
    }
    s.keys.reserve(s.view.user_count);
    s.offsets.reserve(s.view.user_count + 1);
    s.rows.reserve(total_rows);
    s.offsets.push_back(0);
    for (std::size_t u = 0; u < open_postings_.size(); ++u) {
      const auto& p = open_postings_[u];
      if (p.empty()) continue;
      s.keys.push_back(static_cast<std::uint32_t>(u));
      s.rows.insert(s.rows.end(), p.begin(), p.end());
      s.offsets.push_back(static_cast<std::uint32_t>(s.rows.size()));
    }
    if (!s.view.end_sorted) {
      s.by_end.resize(s.records.size());
      std::iota(s.by_end.begin(), s.by_end.end(), 0u);
      std::stable_sort(s.by_end.begin(), s.by_end.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return s.records[a].end_time < s.records[b].end_time;
                       });
    }
    s.view.records = s.records.data();
    s.view.keys = s.keys.data();
    s.view.offsets = s.offsets.data();
    s.view.rows = s.rows.data();
    s.view.by_end = s.view.end_sorted ? nullptr : s.by_end.data();
    sealed_.push_back(std::move(s));
    ++stats_.sealed;

    // Recycle the open segment's buffers.
    open_records_.clear();
    open_records_.reserve(config_.segment_records);
    for (auto& p : open_postings_) p.clear();
    open_sorted_ = true;
    open_min_end_ = 0;
    open_max_end_ = std::numeric_limits<SimTime>::min();
    maybe_spill();
  }

  void maybe_spill() {
    if (config_.spill_dir.empty()) return;
    // Spill oldest-first until the residency budget holds; hot recent
    // segments stay heap-backed.
    std::size_t resident = 0;
    for (const Sealed& s : sealed_) {
      if (!s.spilled() && !s.spill_failed) ++resident;
    }
    for (std::size_t i = 0;
         i < sealed_.size() && resident > config_.resident_segments; ++i) {
      Sealed& s = sealed_[i];
      if (s.spilled() || s.spill_failed) continue;
      if (spill(s, i)) {
        --resident;
      } else {
        s.spill_failed = true;
        ++stats_.spill_failures;
      }
    }
  }

  [[nodiscard]] bool spill(Sealed& s, std::size_t seq) {
    using seg_detail::align64;
    seg_detail::SegmentFileHeader h;
    h.record_size = static_cast<std::uint32_t>(sizeof(Record));
    h.count = s.view.count;
    h.user_count = s.view.user_count;
    h.posting_rows = static_cast<std::uint32_t>(s.rows.size());
    h.flags = s.view.end_sorted ? 1u : 0u;
    h.min_end = s.view.min_end;
    h.max_end = s.view.max_end;
    h.off_records = align64(sizeof(h));
    h.off_keys = align64(h.off_records + h.count * sizeof(Record));
    h.off_offsets = align64(h.off_keys + h.user_count * sizeof(std::uint32_t));
    h.off_rows =
        align64(h.off_offsets + (h.user_count + 1) * sizeof(std::uint32_t));
    std::uint64_t end = h.off_rows + h.posting_rows * sizeof(std::uint32_t);
    if (!s.view.end_sorted) {
      h.off_by_end = align64(end);
      end = h.off_by_end + h.count * sizeof(std::uint32_t);
    }
    std::vector<std::byte> blob(static_cast<std::size_t>(end), std::byte{0});
    const auto put = [&](std::uint64_t off, const void* src, std::size_t n) {
      if (n > 0) std::memcpy(blob.data() + off, src, n);
    };
    put(0, &h, sizeof(h));
    put(h.off_records, s.records.data(), h.count * sizeof(Record));
    put(h.off_keys, s.keys.data(), h.user_count * sizeof(std::uint32_t));
    put(h.off_offsets, s.offsets.data(),
        (h.user_count + 1) * sizeof(std::uint32_t));
    put(h.off_rows, s.rows.data(), h.posting_rows * sizeof(std::uint32_t));
    if (!s.view.end_sorted) {
      put(h.off_by_end, s.by_end.data(), h.count * sizeof(std::uint32_t));
    }
    const std::string path = config_.spill_dir + "/" + tag_ + "-" +
                             std::to_string(seq) + ".tgseg";
    if (!seg_detail::write_file(path, blob.data(), blob.size())) return false;
    seg_detail::MappedFile map;
    if (!map.open(path) || map.size() < blob.size()) return false;
    // Rebind the view into the mapping, then release the heap backing.
    const std::byte* base = map.data();
    s.map = std::move(map);
    s.view.records = reinterpret_cast<const Record*>(base + h.off_records);
    s.view.keys =
        reinterpret_cast<const std::uint32_t*>(base + h.off_keys);
    s.view.offsets =
        reinterpret_cast<const std::uint32_t*>(base + h.off_offsets);
    s.view.rows = reinterpret_cast<const std::uint32_t*>(base + h.off_rows);
    s.view.by_end = s.view.end_sorted ? nullptr
                                      : reinterpret_cast<const std::uint32_t*>(
                                            base + h.off_by_end);
    std::vector<Record>().swap(s.records);
    std::vector<std::uint32_t>().swap(s.keys);
    std::vector<std::uint32_t>().swap(s.offsets);
    std::vector<std::uint32_t>().swap(s.rows);
    std::vector<std::uint32_t>().swap(s.by_end);
    ++stats_.spilled;
    stats_.spilled_bytes += blob.size();
    return true;
  }

  SegmentLogConfig config_;
  std::string tag_;
  std::vector<Sealed> sealed_;
  std::vector<Record> open_records_;
  /// Dense per-user posting lists for the open segment, maintained on
  /// append (no lazy rebuild: the open segment is the ingest hot path).
  std::vector<std::vector<std::uint32_t>> open_postings_;
  bool open_sorted_ = true;
  SimTime open_min_end_ = 0;
  SimTime open_max_end_ = std::numeric_limits<SimTime>::min();
  UserId::rep user_limit_ = 0;
  SegmentLogStats stats_;
};

}  // namespace tg
