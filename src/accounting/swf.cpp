#include "accounting/swf.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace tg {

namespace {

long to_swf_status(JobState state) {
  switch (state) {
    case JobState::kCompleted: return 1;
    case JobState::kFailed:
    case JobState::kKilled:
    case JobState::kKilledByOutage: return 0;
    // SWF status 2-4 mark partial executions of checkpointed/restarted
    // jobs; an outage-requeued attempt is exactly that.
    case JobState::kRequeued: return 2;
    case JobState::kCancelled: return 5;
    default: return -1;
  }
}

}  // namespace

std::string to_swf_line(const JobRecord& r, long job_number) {
  std::ostringstream os;
  const long submit = static_cast<long>(r.submit_time / kSecond);
  const long wait = static_cast<long>(r.wait() / kSecond);
  const long run = static_cast<long>(r.runtime() / kSecond);
  const long procs = r.width_cores();
  // Data-grid stage-in rides the memory/think-time fields (megabytes /
  // seconds); jobs that staged nothing keep the SWF missing value, so
  // grid-less exports are unchanged byte for byte.
  const long read_mb =
      r.bytes_read > 0.0 ? static_cast<long>(r.bytes_read / 1e6) : -1;
  const long cached_mb =
      r.bytes_read > 0.0 ? static_cast<long>(r.bytes_from_cache / 1e6) : -1;
  const long stage_in_s =
      r.stage_in > 0 ? static_cast<long>(r.stage_in / kSecond) : -1;
  os << job_number << ' '            // 1 job number
     << submit << ' '                // 2 submit time
     << wait << ' '                  // 3 wait time
     << run << ' '                   // 4 run time
     << procs << ' '                 // 5 allocated processors
     << -1 << ' '                    // 6 average CPU time
     << read_mb << ' '               // 7 used memory (staged input MB)
     << procs << ' '                 // 8 requested processors
     << static_cast<long>(r.requested_walltime / kSecond) << ' '  // 9
     << cached_mb << ' '             // 10 requested memory (cache-served MB)
     << to_swf_status(r.final_state) << ' '  // 11 status
     << r.user.value() << ' '        // 12 user
     << r.project.value() << ' '     // 13 group (project)
        // 14 executable: the interned gateway end-user id, so the
        // attribute round-trips through export/import without strings.
     << (r.gateway_end_user.valid()
             ? static_cast<long>(r.gateway_end_user.value())
             : -1) << ' '
     << (r.gateway.valid() ? 1 : 0) << ' '  // 15 queue (gateway flag)
     << r.resource.value() << ' '    // 16 partition (resource)
     << -1 << ' '                    // 17 preceding job
     << stage_in_s;                  // 18 think time (stage-in seconds)
  return os.str();
}

void export_swf(const UsageDatabase& db, std::ostream& out,
                const std::string& platform_name) {
  out << "; SWF export from tgsim\n"
      << "; Computer: " << platform_name << "\n"
      << "; MaxJobs: " << db.jobs().size() << "\n"
      << "; Note: field 14 (executable) is the interned gateway end-user id\n"
      << "; Note: field 15 (queue) is 1 for science-gateway jobs\n"
      << "; Note: field 16 (partition) is the tgsim resource id\n";
  long number = 1;
  for (const JobRecord& r : db.jobs()) {
    out << to_swf_line(r, number++) << '\n';
  }
}

namespace {
/// Extracts the 18 numeric SWF fields from a data line. Returns false on a
/// truncated line, a non-numeric token, a numeric overflow, or trailing
/// garbage — the caller skips the line instead of keeping garbage values.
bool parse_swf_fields(const std::string& line, long (&f)[18]) {
  std::istringstream fields(line);
  for (long& value : f) {
    if (!(fields >> value)) return false;
  }
  std::string rest;
  if (fields >> rest) return false;  // more than 18 tokens
  return true;
}
}  // namespace

void for_each_swf_job(std::istream& in,
                      const std::function<void(const SwfJob&)>& sink,
                      SwfParseStats* stats) {
  std::string line;
  long line_number = 0;
  SwfParseStats local;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == ';') continue;
    long f[18];
    if (!parse_swf_fields(line, f)) {
      ++local.skipped;
      if (local.first_skipped_line == 0) local.first_skipped_line = line_number;
      continue;
    }
    ++local.parsed;
    SwfJob job;
    job.job_number = f[0];
    job.submit_seconds = f[1];
    job.wait_seconds = f[2];
    job.run_seconds = f[3];
    job.allocated_procs = f[4];
    job.requested_procs = f[7];
    job.requested_seconds = f[8];
    job.status = static_cast<int>(f[10]);
    job.user = f[11];
    job.group = f[12];
    job.executable = f[13];
    job.queue = f[14];
    job.partition = f[15];
    job.used_memory = f[6];
    job.requested_memory = f[9];
    job.think_time = f[17];
    sink(job);
  }
  if (stats != nullptr) *stats = local;
}

std::vector<SwfJob> import_swf(std::istream& in, SwfParseStats* stats) {
  std::vector<SwfJob> out;
  for_each_swf_job(in, [&out](const SwfJob& job) { out.push_back(job); },
                   stats);
  return out;
}

JobRecord to_record(const SwfJob& job, int cores_per_node) {
  TG_REQUIRE(cores_per_node >= 1, "cores_per_node must be >= 1");
  JobRecord r;
  if (job.job_number >= 0) r.job = JobId{static_cast<JobId::rep>(job.job_number)};
  if (job.user >= 0) r.user = UserId{static_cast<UserId::rep>(job.user)};
  if (job.group >= 0) {
    r.project = ProjectId{static_cast<ProjectId::rep>(job.group)};
  }
  if (job.executable >= 0) {
    r.gateway_end_user = EndUserId{static_cast<EndUserId::rep>(job.executable)};
  }
  if (job.queue == 1) r.gateway = GatewayId{0};  // flag only: gateway unknown
  if (job.partition >= 0) {
    r.resource = ResourceId{static_cast<ResourceId::rep>(job.partition)};
  }
  const long submit = std::max(0L, job.submit_seconds);
  const long wait = std::max(0L, job.wait_seconds);
  const long run = std::max(1L, job.run_seconds);
  const long requested =
      job.requested_seconds > 0 ? job.requested_seconds : run;
  r.submit_time = submit * kSecond;
  r.start_time = (submit + wait) * kSecond;
  r.end_time = r.start_time + run * kSecond;
  const long procs =
      std::max(1L, job.requested_procs > 0 ? job.requested_procs
                                           : job.allocated_procs);
  r.nodes = static_cast<int>((procs + cores_per_node - 1) / cores_per_node);
  r.cores_per_node = cores_per_node;
  r.requested_walltime = std::max(run, requested) * kSecond;
  switch (job.status) {
    case 0: r.final_state = run < requested ? JobState::kFailed
                                            : JobState::kKilled; break;
    case 2:
    case 3:
    case 4: r.final_state = JobState::kRequeued; break;
    case 5: r.final_state = JobState::kCancelled; break;
    default: r.final_state = JobState::kCompleted; break;
  }
  r.disposition = disposition_of(r.final_state);
  // Reverse the field 7/10/18 stage-in conventions (see to_swf_line).
  if (job.used_memory >= 0) r.bytes_read = static_cast<double>(job.used_memory) * 1e6;
  if (job.requested_memory >= 0) {
    r.bytes_from_cache = static_cast<double>(job.requested_memory) * 1e6;
  }
  if (job.think_time > 0) r.stage_in = job.think_time * kSecond;
  // Core-hours at NU parity: the trace carries no normalization factor.
  r.charged_su = static_cast<double>(r.width_cores()) *
                 (static_cast<double>(run) / 3600.0);
  r.charged_nu = r.charged_su;
  return r;
}

SwfParseStats import_swf_records(std::istream& in, UsageDatabase& db,
                                 int cores_per_node) {
  SwfParseStats stats;
  for_each_swf_job(
      in,
      [&db, cores_per_node](const SwfJob& job) {
        db.add(to_record(job, cores_per_node));
      },
      &stats);
  return stats;
}

JobRequest to_request(const SwfJob& job, int cores_per_node) {
  TG_REQUIRE(cores_per_node >= 1, "cores_per_node must be >= 1");
  JobRequest req;
  if (job.user >= 0) req.user = UserId{static_cast<UserId::rep>(job.user)};
  if (job.group >= 0) {
    req.project = ProjectId{static_cast<ProjectId::rep>(job.group)};
  }
  if (job.executable >= 0) {
    req.gateway_end_user =
        EndUserId{static_cast<EndUserId::rep>(job.executable)};
  }
  const long procs =
      std::max(1L, job.requested_procs > 0 ? job.requested_procs
                                           : job.allocated_procs);
  req.nodes = static_cast<int>((procs + cores_per_node - 1) / cores_per_node);
  const long run = std::max(1L, job.run_seconds);
  req.actual_runtime = run * kSecond;
  const long requested =
      job.requested_seconds > 0 ? job.requested_seconds : run;
  req.requested_walltime = std::max<Duration>(req.actual_runtime,
                                              requested * kSecond);
  if (job.status == 0) {
    if (run < requested) {
      // Application failure at the recorded runtime.
      req.fails = true;
      req.fail_after = run * kSecond;
      req.actual_runtime = req.requested_walltime;
    } else {
      // Ran to the wall: reproduce as a walltime kill.
      req.actual_runtime = req.requested_walltime + kSecond;
    }
  }
  return req;
}

}  // namespace tg
