// Standard Workload Format (SWF) interchange.
//
// The Parallel Workloads Archive's SWF is the lingua franca for batch-job
// traces (and how TeraGrid-era accounting data circulated). This module
// exports a UsageDatabase's job records as SWF and parses SWF text back
// into replayable jobs, so tgsim output can be analyzed with standard
// tools and archive traces can drive the scheduler substrate.
//
// SWF is one line per job with 18 whitespace-separated fields; missing
// values are -1. Header lines start with ';'.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "accounting/usage_db.hpp"

namespace tg {

/// One parsed SWF job (field names follow the SWF standard).
struct SwfJob {
  long job_number = -1;
  long submit_seconds = -1;
  long wait_seconds = -1;
  long run_seconds = -1;
  long allocated_procs = -1;
  long requested_procs = -1;
  long requested_seconds = -1;
  int status = -1;  ///< 1 completed, 0 failed/killed, 5 cancelled
  long user = -1;
  long group = -1;  ///< we map the project here
  long executable = -1;  ///< we map the interned gateway end-user id here
  long queue = -1;  ///< we map the gateway flag here (1 = gateway job)
  long partition = -1;  ///< we map the resource id here
  long used_memory = -1;  ///< we map staged input megabytes here
  long requested_memory = -1;  ///< we map cache-served megabytes here
  long think_time = -1;  ///< we map stage-in seconds here
};

/// Serializes one job record as an SWF line. `job_number` is 1-based per
/// the SWF convention.
[[nodiscard]] std::string to_swf_line(const JobRecord& record,
                                      long job_number);

/// Writes the database's job records (in record order) as an SWF file with
/// a descriptive header.
void export_swf(const UsageDatabase& db, std::ostream& out,
                const std::string& platform_name = "tgsim");

/// Import diagnostics: how many data lines parsed and how many were
/// dropped as malformed (truncated, non-numeric, or out-of-range fields).
struct SwfParseStats {
  std::size_t parsed = 0;
  std::size_t skipped = 0;
  /// 1-based line number of the first skipped line (0 when none).
  long first_skipped_line = 0;
};

/// Streaming parse core: invokes `sink` once per well-formed data line, in
/// file order, holding only one line and one SwfJob at a time. Header/
/// comment lines are skipped; malformed or truncated data lines (archive
/// traces contain them) are dropped and counted in `stats` instead of
/// aborting the import — parsing never throws and never yields
/// partially-filled jobs. import_swf and import_swf_records are thin
/// wrappers over this.
void for_each_swf_job(std::istream& in,
                      const std::function<void(const SwfJob&)>& sink,
                      SwfParseStats* stats = nullptr);

/// Parses SWF text into a vector (materializes the whole trace; prefer
/// for_each_swf_job or import_swf_records for large archives).
[[nodiscard]] std::vector<SwfJob> import_swf(std::istream& in,
                                             SwfParseStats* stats = nullptr);

/// Converts a parsed SWF job into the JobRecord export_swf would have
/// serialized it from: times from submit/wait/run seconds, whole-node
/// widths on a `cores_per_node`-core machine, status mapped back to a
/// final state (0 becomes a walltime kill when the job ran to its request,
/// an application failure otherwise; 2-4 are outage-requeued attempts),
/// core-hour charges at NU parity, and the field 14/15/16 attribute
/// conventions reversed (end-user id, gateway flag, resource id).
[[nodiscard]] JobRecord to_record(const SwfJob& job, int cores_per_node);

/// Imports an SWF trace directly into `db` as job records, one line at a
/// time — memory stays bounded by the database's storage mode, not the
/// trace length (call db.enable_segments() first with a spill directory to
/// keep year-scale archives out of RSS). Returns the parse diagnostics
/// (identical to what import_swf reports for the same stream).
SwfParseStats import_swf_records(std::istream& in, UsageDatabase& db,
                                 int cores_per_node = 16);

/// Converts a parsed SWF job into a submittable request for replay on a
/// machine with `cores_per_node` cores. Runtimes/walltimes are clamped to
/// at least one second; processor counts round up to whole nodes.
[[nodiscard]] JobRequest to_request(const SwfJob& job, int cores_per_node);

}  // namespace tg
