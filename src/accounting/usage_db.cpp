#include "accounting/usage_db.hpp"

#include "accounting/charge.hpp"

namespace tg {

double UsageDatabase::total_nu() const {
  double total = 0.0;
  for (const auto& r : jobs_) total += r.charged_nu;
  return total;
}

std::vector<const JobRecord*> UsageDatabase::jobs_of(UserId user) const {
  std::vector<const JobRecord*> out;
  for (const auto& r : jobs_) {
    if (r.user == user) out.push_back(&r);
  }
  return out;
}

std::vector<const JobRecord*> UsageDatabase::jobs_in(SimTime from,
                                                     SimTime to) const {
  std::vector<const JobRecord*> out;
  for (const auto& r : jobs_) {
    if (r.end_time >= from && r.end_time < to) out.push_back(&r);
  }
  return out;
}

Recorder::Recorder(const Platform& platform, UsageDatabase& db,
                   AllocationLedger* ledger)
    : platform_(platform), db_(db), ledger_(ledger) {}

void Recorder::attach(SchedulerPool& pool) {
  pool.add_on_end_all([this](const Job& job) { on_job_end(job); });
}

void Recorder::attach(ResourceScheduler& scheduler) {
  scheduler.add_on_end([this](const Job& job) { on_job_end(job); });
}

void Recorder::attach(FlowManager& flows) {
  flows.set_transfer_observer([this](const Flow& flow) {
    TransferRecord r;
    r.transfer = flow.id;
    r.src = flow.src;
    r.dst = flow.dst;
    r.user = flow.user;
    r.project = flow.project;
    r.bytes = flow.total_bytes;
    r.submit_time = flow.submitted;
    r.end_time = flow.completed;
    db_.add(std::move(r));
  });
}

void Recorder::record_session(UserId user, ResourceId resource, SimTime start,
                              SimTime end, bool viz) {
  SessionRecord s;
  s.user = user;
  s.resource = resource;
  s.start_time = start;
  s.end_time = end;
  s.viz = viz;
  db_.add(std::move(s));
}

void Recorder::on_job_end(const Job& job) {
  if (job.state == JobState::kCancelled) return;  // never ran, no record
  const ComputeResource& res = platform_.compute_at(job.resource);
  const Charge charge = charge_for(job, res);

  JobRecord r;
  r.job = job.id;
  r.resource = job.resource;
  r.user = job.req.user;
  r.project = job.req.project;
  r.submit_time = job.submit_time;
  r.start_time = job.start_time;
  r.end_time = job.end_time;
  r.nodes = job.req.nodes;
  r.cores_per_node = res.cores_per_node;
  r.requested_walltime = job.req.requested_walltime;
  r.final_state = job.state;
  r.charged_su = charge.su;
  r.charged_nu = charge.nu;
  r.gateway = job.req.gateway;
  r.gateway_end_user = job.req.gateway_end_user;
  r.workflow = job.req.workflow;
  r.interactive = job.req.interactive;
  r.coallocated = job.req.coallocated;
  r.viz_resource = res.interactive_viz;
  if (ledger_ != nullptr) ledger_->debit(r.project, r.charged_nu);
  db_.add(std::move(r));
}

}  // namespace tg
