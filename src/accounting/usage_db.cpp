#include "accounting/usage_db.hpp"

#include <algorithm>
#include <numeric>

#include "accounting/charge.hpp"

namespace tg {

namespace {

/// First index in [0, n) whose end time is >= t, by binary search over an
/// end-time-sorted sequence accessed through `end_at`.
template <class EndAt>
std::size_t lower_end(std::size_t n, SimTime t, const EndAt& end_at) {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (end_at(mid) < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

template <class Record>
void UsageDatabase::build_index(const std::vector<Record>& records,
                                const StreamIndex& index) {
  UserId::rep max_user = -1;
  bool sorted = true;
  for (std::size_t i = 0; i < records.size(); ++i) {
    max_user = std::max(max_user, records[i].user.value());
    if (i > 0 && records[i].end_time < records[i - 1].end_time) {
      sorted = false;
    }
  }
  index.end_sorted = sorted;

  // Dense posting lists, sized by a counting pass so the row arrays are
  // allocated exactly once.
  const auto slots = static_cast<std::size_t>(max_user + 1);
  std::vector<std::uint32_t> counts(slots, 0);
  for (const Record& r : records) {
    if (r.user.valid()) ++counts[static_cast<std::size_t>(r.user.value())];
  }
  index.postings.assign(slots, {});
  for (std::size_t u = 0; u < slots; ++u) index.postings[u].reserve(counts[u]);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const UserId user = records[i].user;
    if (user.valid()) {
      index.postings[static_cast<std::size_t>(user.value())].push_back(
          static_cast<std::uint32_t>(i));
    }
  }

  // End-time row permutation. An already-sorted stream (the live Recorder
  // appends in completion order) gets the identity permutation for free.
  index.by_end.resize(records.size());
  std::iota(index.by_end.begin(), index.by_end.end(), 0u);
  if (!sorted) {
    std::stable_sort(index.by_end.begin(), index.by_end.end(),
                     [&records](std::uint32_t a, std::uint32_t b) {
                       return records[a].end_time < records[b].end_time;
                     });
  }
}

template <class Record>
void UsageDatabase::StreamIndex::ensure(
    const std::vector<Record>& records) const {
  if (built.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(build_mutex);
  if (built.load(std::memory_order_relaxed)) return;
  build_index(records, *this);
  built.store(true, std::memory_order_release);
}

template <class Record>
void UsageDatabase::gather_window(const std::vector<Record>& records,
                                  const StreamIndex& index, UserId user,
                                  SimTime from, SimTime to,
                                  std::vector<const Record*>& out) {
  if (from >= to || !user.valid()) return;
  index.ensure(records);
  const auto slot = static_cast<std::size_t>(user.value());
  if (slot >= index.postings.size()) return;
  const std::vector<std::uint32_t>& rows = index.postings[slot];
  if (index.end_sorted) {
    // The posting list inherits the stream's end-time order: binary-search
    // the window bounds, O(log k + hits).
    const auto end_at = [&](std::size_t i) {
      return records[rows[i]].end_time;
    };
    const std::size_t lo = lower_end(rows.size(), from, end_at);
    const std::size_t hi = lower_end(rows.size(), to, end_at);
    for (std::size_t i = lo; i < hi; ++i) out.push_back(&records[rows[i]]);
  } else {
    for (const std::uint32_t row : rows) {
      const Record& r = records[row];
      if (r.end_time >= from && r.end_time < to) out.push_back(&r);
    }
  }
}

void UsageDatabase::ensure_indexes() const {
  if (segmented_) return;  // per-segment indexes are built eagerly on seal
  jobs_index_.ensure(jobs_);
  transfers_index_.ensure(transfers_);
  sessions_index_.ensure(sessions_);
}

UserId::rep UsageDatabase::user_id_limit() const {
  if (segmented_) {
    return std::max({job_log_.user_limit(), transfer_log_.user_limit(),
                     session_log_.user_limit()});
  }
  ensure_indexes();
  const std::size_t slots =
      std::max({jobs_index_.postings.size(), transfers_index_.postings.size(),
                sessions_index_.postings.size()});
  return static_cast<UserId::rep>(slots);
}

namespace {
const std::vector<std::uint32_t>& rows_or_empty(
    const std::vector<std::vector<std::uint32_t>>& postings, UserId user) {
  static const std::vector<std::uint32_t> kEmpty;
  if (!user.valid()) return kEmpty;
  const auto slot = static_cast<std::size_t>(user.value());
  return slot < postings.size() ? postings[slot] : kEmpty;
}
}  // namespace

const std::vector<std::uint32_t>& UsageDatabase::job_rows_of(
    UserId user) const {
  TG_REQUIRE(!segmented_, "posting-list access requires monolithic storage");
  jobs_index_.ensure(jobs_);
  return rows_or_empty(jobs_index_.postings, user);
}

const std::vector<std::uint32_t>& UsageDatabase::transfer_rows_of(
    UserId user) const {
  TG_REQUIRE(!segmented_, "posting-list access requires monolithic storage");
  transfers_index_.ensure(transfers_);
  return rows_or_empty(transfers_index_.postings, user);
}

const std::vector<std::uint32_t>& UsageDatabase::session_rows_of(
    UserId user) const {
  TG_REQUIRE(!segmented_, "posting-list access requires monolithic storage");
  sessions_index_.ensure(sessions_);
  return rows_or_empty(sessions_index_.postings, user);
}

std::vector<const JobRecord*> UsageDatabase::jobs_of(UserId user) const {
  std::vector<const JobRecord*> out;
  if (segmented_) {
    job_log_.for_each_of(user,
                         [&](const JobRecord& r) { out.push_back(&r); });
    return out;
  }
  const std::vector<std::uint32_t>& rows = job_rows_of(user);
  out.reserve(rows.size());
  for (const std::uint32_t row : rows) out.push_back(&jobs_[row]);
  return out;
}

std::vector<const JobRecord*> UsageDatabase::jobs_ending_in(
    SimTime from, SimTime to) const {
  std::vector<const JobRecord*> out;
  if (from >= to) return out;
  if (segmented_) {
    job_log_.for_each_ending_in(
        from, to, [&](const JobRecord& r) { out.push_back(&r); });
    return out;
  }
  jobs_index_.ensure(jobs_);
  if (jobs_index_.end_sorted) {
    // Rows are already in end-time order; the window is one contiguous
    // stretch of the stream, emitted directly in arrival order.
    const auto end_at = [this](std::size_t i) { return jobs_[i].end_time; };
    const std::size_t lo = lower_end(jobs_.size(), from, end_at);
    const std::size_t hi = lower_end(jobs_.size(), to, end_at);
    out.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) out.push_back(&jobs_[i]);
    return out;
  }
  const std::vector<std::uint32_t>& by_end = jobs_index_.by_end;
  const auto end_at = [&](std::size_t i) { return jobs_[by_end[i]].end_time; };
  const std::size_t lo = lower_end(by_end.size(), from, end_at);
  const std::size_t hi = lower_end(by_end.size(), to, end_at);
  std::vector<std::uint32_t> rows(by_end.begin() + static_cast<long>(lo),
                                  by_end.begin() + static_cast<long>(hi));
  std::sort(rows.begin(), rows.end());  // back to arrival order
  out.reserve(rows.size());
  for (const std::uint32_t row : rows) out.push_back(&jobs_[row]);
  return out;
}

namespace {
template <class Record>
UsageDatabase::RowRange window_range(const std::vector<Record>& records,
                                     bool end_sorted, SimTime from,
                                     SimTime to) {
  UsageDatabase::RowRange range;
  if (!end_sorted) return range;
  range.contiguous = true;
  if (from >= to) return range;  // empty [0, 0)
  const auto end_at = [&](std::size_t i) { return records[i].end_time; };
  range.first =
      static_cast<std::uint32_t>(lower_end(records.size(), from, end_at));
  range.last =
      static_cast<std::uint32_t>(lower_end(records.size(), to, end_at));
  return range;
}
}  // namespace

UsageDatabase::RowRange UsageDatabase::job_window(SimTime from,
                                                  SimTime to) const {
  TG_REQUIRE(!segmented_, "row-range access requires monolithic storage");
  jobs_index_.ensure(jobs_);
  return window_range(jobs_, jobs_index_.end_sorted, from, to);
}

UsageDatabase::RowRange UsageDatabase::transfer_window(SimTime from,
                                                       SimTime to) const {
  TG_REQUIRE(!segmented_, "row-range access requires monolithic storage");
  transfers_index_.ensure(transfers_);
  return window_range(transfers_, transfers_index_.end_sorted, from, to);
}

UsageDatabase::RowRange UsageDatabase::session_window(SimTime from,
                                                      SimTime to) const {
  TG_REQUIRE(!segmented_, "row-range access requires monolithic storage");
  sessions_index_.ensure(sessions_);
  return window_range(sessions_, sessions_index_.end_sorted, from, to);
}

UserWindowRecords UsageDatabase::records_of(UserId user, SimTime from,
                                            SimTime to) const {
  UserWindowRecords out;
  records_of(user, from, to, out);
  return out;
}

void UsageDatabase::records_of(UserId user, SimTime from, SimTime to,
                               UserWindowRecords& out) const {
  out.clear();
  if (segmented_) {
    job_log_.for_each_of(user, from, to,
                         [&](const JobRecord& r) { out.jobs.push_back(&r); });
    transfer_log_.for_each_of(
        user, from, to,
        [&](const TransferRecord& r) { out.transfers.push_back(&r); });
    session_log_.for_each_of(
        user, from, to,
        [&](const SessionRecord& r) { out.sessions.push_back(&r); });
    return;
  }
  gather_window(jobs_, jobs_index_, user, from, to, out.jobs);
  gather_window(transfers_, transfers_index_, user, from, to, out.transfers);
  gather_window(sessions_, sessions_index_, user, from, to, out.sessions);
}

Recorder::Recorder(const Platform& platform, UsageDatabase& db,
                   AllocationLedger* ledger, ChargePolicy policy)
    : platform_(platform), db_(db), ledger_(ledger), policy_(policy) {}

void Recorder::attach(SchedulerPool& pool) {
  pool.add_on_end_all([this](const Job& job) { on_job_end(job); });
}

void Recorder::attach(ResourceScheduler& scheduler) {
  scheduler.add_on_end([this](const Job& job) { on_job_end(job); });
}

void Recorder::attach(FlowManager& flows) {
  flows.set_transfer_observer([this](const Flow& flow) {
    TransferRecord r;
    r.transfer = flow.id;
    r.src = flow.src;
    r.dst = flow.dst;
    r.user = flow.user;
    r.project = flow.project;
    r.bytes = flow.total_bytes;
    r.submit_time = flow.submitted;
    r.end_time = flow.completed;
    db_.add(std::move(r));
  });
}

void Recorder::record_session(UserId user, ResourceId resource, SimTime start,
                              SimTime end, bool viz) {
  SessionRecord s;
  s.user = user;
  s.resource = resource;
  s.start_time = start;
  s.end_time = end;
  s.viz = viz;
  db_.add(std::move(s));
}

void Recorder::on_job_end(const Job& job) {
  if (job.state == JobState::kCancelled) return;  // never ran, no record
  const ComputeResource& res = platform_.compute_at(job.resource);
  const Charge charge = charge_for(job, res, policy_);

  JobRecord r;
  r.job = job.id;
  r.resource = job.resource;
  r.user = job.req.user;
  r.project = job.req.project;
  r.submit_time = job.submit_time;
  r.start_time = job.start_time;
  r.end_time = job.end_time;
  r.nodes = job.req.nodes;
  r.cores_per_node = res.cores_per_node;
  r.requested_walltime = job.req.requested_walltime;
  r.final_state = job.state;
  r.disposition = disposition_of(job.state);
  r.charged_su = charge.su;
  r.charged_nu = charge.nu;
  r.gateway = job.req.gateway;
  r.gateway_end_user = job.req.gateway_end_user;
  r.workflow = job.req.workflow;
  r.interactive = job.req.interactive;
  r.coallocated = job.req.coallocated;
  r.viz_resource = res.interactive_viz;
  r.bytes_read = job.req.bytes_read;
  r.bytes_from_cache = job.req.bytes_from_cache;
  r.stage_in = job.req.stage_in;
  if (ledger_ != nullptr) ledger_->debit(r.project, r.charged_nu);
  db_.add(std::move(r));
}

}  // namespace tg
