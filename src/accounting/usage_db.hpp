// The central usage database (TGCDB analogue) and the Recorder that feeds
// it from live simulator components.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <vector>

#include <array>

#include "util/error.hpp"
#include "util/string_pool.hpp"

#include "accounting/charge.hpp"
#include "accounting/ledger.hpp"
#include "accounting/records.hpp"
#include "accounting/segment_log.hpp"
#include "des/engine.hpp"
#include "infra/community.hpp"
#include "infra/platform.hpp"
#include "net/flow.hpp"
#include "sched/pool.hpp"

namespace tg {

/// Job, transfer and session records for one user inside a time window
/// (record pointers, in append order). What `UsageDatabase::records_of`
/// returns and what the feature extractor consumes.
struct UserWindowRecords {
  std::vector<const JobRecord*> jobs;
  std::vector<const TransferRecord*> transfers;
  std::vector<const SessionRecord*> sessions;

  [[nodiscard]] bool empty() const {
    return jobs.empty() && transfers.empty() && sessions.empty();
  }
  void clear() {
    jobs.clear();
    transfers.clear();
    sessions.clear();
  }
};

/// Append-only store of usage records with columnar query indexes. The
/// modality classifier reads exactly this.
///
/// Every query is served from two lazily-built indexes per record stream:
///  * a dense per-user posting list (row numbers in append order), and
///  * an end-time-sorted row permutation for window queries.
/// Appending invalidates the affected stream's indexes; the next query
/// rebuilds them. Concurrent *queries* are safe (the lazy build is guarded);
/// appends must not race queries — the simulator writes single-threaded and
/// the analysis phase only reads.
class UsageDatabase {
 public:
  /// Observes every record the instant it lands in the store, in append
  /// order (the live Recorder appends in completion-time order, so this is
  /// the accounting stream). The reference is to the stored copy and is
  /// valid for the duration of the callback. Streaming analytics
  /// (StreamingExtractor) hang off this hook.
  class RecordObserver {
   public:
    virtual ~RecordObserver() = default;
    virtual void on_job(const JobRecord& r) { (void)r; }
    virtual void on_transfer(const TransferRecord& r) { (void)r; }
    virtual void on_session(const SessionRecord& r) { (void)r; }
  };

  UsageDatabase() = default;
  UsageDatabase(UsageDatabase&& other) noexcept
      : jobs_(std::move(other.jobs_)),
        transfers_(std::move(other.transfers_)),
        sessions_(std::move(other.sessions_)),
        segmented_(other.segmented_),
        job_log_(std::move(other.job_log_)),
        transfer_log_(std::move(other.transfer_log_)),
        session_log_(std::move(other.session_log_)),
        total_nu_(other.total_nu_),
        disposition_counts_(other.disposition_counts_),
        end_user_limit_(other.end_user_limit_),
        end_user_pool_(other.end_user_pool_),
        observers_(std::move(other.observers_)) {
    // The moved-from object's lazy indexes still say "built" but their
    // posting rows point into the vectors that just moved away; leave it
    // pristine instead of queryable-but-corrupt.
    other.reset_to_empty();
  }
  UsageDatabase& operator=(UsageDatabase&& other) noexcept {
    if (this != &other) {
      jobs_ = std::move(other.jobs_);
      transfers_ = std::move(other.transfers_);
      sessions_ = std::move(other.sessions_);
      segmented_ = other.segmented_;
      job_log_ = std::move(other.job_log_);
      transfer_log_ = std::move(other.transfer_log_);
      session_log_ = std::move(other.session_log_);
      total_nu_ = other.total_nu_;
      disposition_counts_ = other.disposition_counts_;
      end_user_limit_ = other.end_user_limit_;
      end_user_pool_ = other.end_user_pool_;
      observers_ = std::move(other.observers_);
      // Both sides' lazy indexes are stale now: ours describe the rows we
      // just dropped, the source's describe rows that moved here.
      jobs_index_.invalidate();
      transfers_index_.invalidate();
      sessions_index_.invalidate();
      other.reset_to_empty();
    }
    return *this;
  }

  /// Switches storage to the spillable columnar segment log (streaming /
  /// out-of-core mode). Allowed only while the database is empty.
  /// Contiguous access — jobs()/transfers()/sessions(), row ranges,
  /// posting lists — becomes unavailable; the windowed query surface
  /// (records_of, jobs_of, jobs_ending_in) is served from the per-segment
  /// indexes instead and keeps its O(log n + k) contract.
  void enable_segments(const SegmentLogConfig& config) {
    TG_REQUIRE(job_count() == 0 && transfer_count() == 0 &&
                   session_count() == 0,
               "enable_segments requires an empty database");
    segmented_ = true;
    job_log_ = SegmentLog<JobRecord>(config, "jobs");
    transfer_log_ = SegmentLog<TransferRecord>(config, "transfers");
    session_log_ = SegmentLog<SessionRecord>(config, "sessions");
  }
  [[nodiscard]] bool segmented() const { return segmented_; }
  /// Seals and spills all three streams' full history to the configured
  /// spill directory (see SegmentLog::checkpoint). True when everything
  /// reached disk.
  bool checkpoint_segments() {
    TG_REQUIRE(segmented_, "checkpoint_segments requires segmented storage");
    const bool jobs_ok = job_log_.checkpoint();
    const bool transfers_ok = transfer_log_.checkpoint();
    const bool sessions_ok = session_log_.checkpoint();
    return jobs_ok && transfers_ok && sessions_ok;
  }
  /// Restart recovery: switches to segmented storage and reopens the
  /// spilled history a previous process left in config.spill_dir (see
  /// SegmentLog::recover_from_spill). The database must be empty. Derived
  /// aggregates (total_nu, disposition counts, end-user limit) are rebuilt
  /// by replaying the recovered job stream.
  void recover_segments(const SegmentLogConfig& config) {
    enable_segments(config);
    job_log_.recover_from_spill();
    transfer_log_.recover_from_spill();
    session_log_.recover_from_spill();
    job_log_.for_each_ending_in(
        std::numeric_limits<SimTime>::min(), kMaxSimTime,
        [this](const JobRecord& r) {
          total_nu_ += r.charged_nu;
          ++disposition_counts_[static_cast<std::size_t>(r.disposition)];
          if (r.gateway_end_user.valid()) {
            end_user_limit_ =
                std::max(end_user_limit_, r.gateway_end_user.value() + 1);
          }
        });
  }
  /// Spill/seal counters summed across the three streams (zeros when
  /// segments are disabled).
  [[nodiscard]] SegmentLogStats segment_stats() const {
    SegmentLogStats s;
    for (const SegmentLogStats* p :
         {&job_log_.stats(), &transfer_log_.stats(), &session_log_.stats()}) {
      s.appended += p->appended;
      s.sealed += p->sealed;
      s.spilled += p->spilled;
      s.spilled_bytes += p->spilled_bytes;
      s.spill_failures += p->spill_failures;
    }
    return s;
  }

  /// Subscribes an append observer (notified in subscription order). The
  /// observer must outlive the database. Prefer Scenario::subscribe(),
  /// which forwards here.
  void add_observer(RecordObserver* observer) {
    TG_REQUIRE(observer != nullptr, "observer must be non-null");
    observers_.push_back(observer);
  }

  void add(JobRecord r) {
    total_nu_ += r.charged_nu;
    ++disposition_counts_[static_cast<std::size_t>(r.disposition)];
    if (r.gateway_end_user.valid()) {
      end_user_limit_ = std::max(end_user_limit_,
                                 r.gateway_end_user.value() + 1);
    }
    const JobRecord* stored;
    if (segmented_) {
      stored = &job_log_.append(r);
    } else {
      jobs_.push_back(std::move(r));
      jobs_index_.invalidate();
      stored = &jobs_.back();
    }
    for (RecordObserver* o : observers_) o->on_job(*stored);
  }
  void add(TransferRecord r) {
    const TransferRecord* stored;
    if (segmented_) {
      stored = &transfer_log_.append(r);
    } else {
      transfers_.push_back(std::move(r));
      transfers_index_.invalidate();
      stored = &transfers_.back();
    }
    for (RecordObserver* o : observers_) o->on_transfer(*stored);
  }
  void add(SessionRecord r) {
    const SessionRecord* stored;
    if (segmented_) {
      stored = &session_log_.append(r);
    } else {
      sessions_.push_back(std::move(r));
      sessions_index_.invalidate();
      stored = &sessions_.back();
    }
    for (RecordObserver* o : observers_) o->on_session(*stored);
  }

  /// Record counts, O(1) in both storage modes.
  [[nodiscard]] std::size_t job_count() const {
    return segmented_ ? job_log_.size() : jobs_.size();
  }
  [[nodiscard]] std::size_t transfer_count() const {
    return segmented_ ? transfer_log_.size() : transfers_.size();
  }
  [[nodiscard]] std::size_t session_count() const {
    return segmented_ ? session_log_.size() : sessions_.size();
  }

  /// Contiguous record arrays — monolithic storage only (segmented
  /// storage may have spilled cold history to disk).
  [[nodiscard]] const std::vector<JobRecord>& jobs() const {
    TG_REQUIRE(!segmented_,
               "contiguous jobs() access requires monolithic storage");
    return jobs_;
  }
  [[nodiscard]] const std::vector<TransferRecord>& transfers() const {
    TG_REQUIRE(!segmented_,
               "contiguous transfers() access requires monolithic storage");
    return transfers_;
  }
  [[nodiscard]] const std::vector<SessionRecord>& sessions() const {
    TG_REQUIRE(!segmented_,
               "contiguous sessions() access requires monolithic storage");
    return sessions_;
  }

  // --- Query surface --------------------------------------------------------
  // Everything below is read-only and index-backed; time windows are always
  // half-open [from, to) over a record's *end* time (the TGCDB convention:
  // a job is accounted when it finishes). Three tiers, cheapest first:
  //
  //  1. Aggregates maintained on append, O(1): total_nu(),
  //     disposition_count(), end_user_id_limit().
  //  2. Per-user and windowed record queries, served from the lazy columnar
  //     indexes: jobs_of(), jobs_ending_in(), records_of() (and its
  //     allocation-free overload — the feature extractor's inner loop).
  //  3. Raw index access for analytics that manage their own iteration:
  //     job_window()/transfer_window()/session_window() row ranges and the
  //     *_rows_of() posting lists, plus ensure_indexes() to force the
  //     build before fanning read-only work out over threads.

  /// Total NUs charged across all job records.
  [[nodiscard]] double total_nu() const { return total_nu_; }
  /// Number of job records with the given disposition (maintained on
  /// append; O(1)).
  [[nodiscard]] std::uint64_t disposition_count(Disposition d) const {
    return disposition_counts_[static_cast<std::size_t>(d)];
  }
  /// Job records for `user`, in arrival order.
  [[nodiscard]] std::vector<const JobRecord*> jobs_of(UserId user) const;
  /// Job records whose end time falls in [from, to), in arrival order.
  [[nodiscard]] std::vector<const JobRecord*> jobs_ending_in(
      SimTime from, SimTime to) const;
  /// All of `user`'s records with end time in [from, to), in arrival order.
  [[nodiscard]] UserWindowRecords records_of(UserId user, SimTime from,
                                             SimTime to) const;
  /// Allocation-free variant of records_of: appends into `out` (cleared
  /// first). The feature extractor's inner loop.
  void records_of(UserId user, SimTime from, SimTime to,
                  UserWindowRecords& out) const;

  /// One past the largest user id value present in any stream (0 if empty).
  /// Users are dense small integers, so [0, user_id_limit()) enumerates
  /// every possible record owner in id order.
  [[nodiscard]] UserId::rep user_id_limit() const;

  /// One past the largest interned end-user id in any job record (0 if no
  /// record carries the attribute). Maintained on append; O(1). Analytics
  /// use it to size dense per-end-user tables.
  [[nodiscard]] EndUserId::rep end_user_id_limit() const {
    return end_user_limit_;
  }

  /// Borrows the pool that interned this database's end-user attributes,
  /// for resolving ids back to labels at the I/O boundary (SWF export,
  /// display). The pool must outlive the database. May be null — queries
  /// and analytics never need it.
  void set_end_user_pool(const StringPool* pool) { end_user_pool_ = pool; }
  [[nodiscard]] const StringPool* end_user_pool() const {
    return end_user_pool_;
  }
  /// Label for an interned end-user id; empty when the id is invalid or no
  /// pool is attached.
  [[nodiscard]] std::string_view end_user_label(EndUserId id) const {
    return end_user_pool_ != nullptr ? end_user_pool_->at(id)
                                     : std::string_view{};
  }

  /// The append-order row range [first, last) covering exactly the records
  /// whose end time falls in [from, to) — available when the stream is
  /// end-time-sorted (`contiguous`). Otherwise callers must scan and
  /// filter; `first`/`last` are meaningless.
  struct RowRange {
    std::uint32_t first = 0;
    std::uint32_t last = 0;
    bool contiguous = false;
  };
  [[nodiscard]] RowRange job_window(SimTime from, SimTime to) const;
  [[nodiscard]] RowRange transfer_window(SimTime from, SimTime to) const;
  [[nodiscard]] RowRange session_window(SimTime from, SimTime to) const;

  /// Row numbers into jobs() owned by `user`, in append order.
  [[nodiscard]] const std::vector<std::uint32_t>& job_rows_of(
      UserId user) const;
  [[nodiscard]] const std::vector<std::uint32_t>& transfer_rows_of(
      UserId user) const;
  [[nodiscard]] const std::vector<std::uint32_t>& session_rows_of(
      UserId user) const;

  /// Forces all three stream indexes to exist. Call before fanning
  /// read-only analytics out over threads to keep the (guarded) lazy build
  /// off the hot path.
  void ensure_indexes() const;

 private:
  /// Columnar index over one record stream: per-user posting lists plus an
  /// end-time-sorted row permutation. Built lazily under a mutex; the
  /// `built` flag is the acquire/release hand-off so readers that see it
  /// set also see the index contents.
  struct StreamIndex {
    mutable std::vector<std::vector<std::uint32_t>> postings;  // [user]
    mutable std::vector<std::uint32_t> by_end;  // rows sorted by (end, row)
    /// True when the stream itself is already end-time-sorted (the live
    /// Recorder appends in completion order); posting lists then inherit
    /// the order and window queries binary-search instead of scanning.
    mutable bool end_sorted = false;
    mutable std::atomic<bool> built{false};
    mutable std::mutex build_mutex;

    void invalidate() { built.store(false, std::memory_order_release); }

    template <class Record>
    void ensure(const std::vector<Record>& records) const;
  };

  template <class Record>
  static void build_index(const std::vector<Record>& records,
                          const StreamIndex& index);
  /// Rows of `records` owned by `user` with end_time in [from, to),
  /// appended to `out` in row order.
  template <class Record>
  static void gather_window(const std::vector<Record>& records,
                            const StreamIndex& index, UserId user,
                            SimTime from, SimTime to,
                            std::vector<const Record*>& out);

  /// Returns a moved-from instance to the pristine empty state: vectors
  /// cleared, aggregates zeroed, lazy indexes invalidated. Without this a
  /// "built" index would keep posting rows into vectors whose contents
  /// moved away.
  void reset_to_empty() {
    jobs_.clear();
    transfers_.clear();
    sessions_.clear();
    segmented_ = false;
    job_log_ = SegmentLog<JobRecord>();
    transfer_log_ = SegmentLog<TransferRecord>();
    session_log_ = SegmentLog<SessionRecord>();
    total_nu_ = 0.0;
    disposition_counts_ = {};
    end_user_limit_ = 0;
    end_user_pool_ = nullptr;
    observers_.clear();
    jobs_index_.invalidate();
    transfers_index_.invalidate();
    sessions_index_.invalidate();
  }

  std::vector<JobRecord> jobs_;
  std::vector<TransferRecord> transfers_;
  std::vector<SessionRecord> sessions_;
  bool segmented_ = false;
  SegmentLog<JobRecord> job_log_{SegmentLogConfig{}, "jobs"};
  SegmentLog<TransferRecord> transfer_log_{SegmentLogConfig{}, "transfers"};
  SegmentLog<SessionRecord> session_log_{SegmentLogConfig{}, "sessions"};
  double total_nu_ = 0.0;
  std::array<std::uint64_t, kDispositionCount> disposition_counts_{};
  EndUserId::rep end_user_limit_ = 0;
  const StringPool* end_user_pool_ = nullptr;
  std::vector<RecordObserver*> observers_;
  StreamIndex jobs_index_;
  StreamIndex transfers_index_;
  StreamIndex sessions_index_;
};

/// Wires live components into the database: converts finished jobs into
/// charged JobRecords (debiting the ledger), completed flows into
/// TransferRecords, and exposes a session-logging entry point.
class Recorder {
 public:
  Recorder(const Platform& platform, UsageDatabase& db,
           AllocationLedger* ledger = nullptr, ChargePolicy policy = {});

  /// Observes every scheduler in the pool.
  void attach(SchedulerPool& pool);
  /// Observes one scheduler.
  void attach(ResourceScheduler& scheduler);
  /// Observes completed WAN transfers.
  void attach(FlowManager& flows);

  /// Interactive sessions are logged by the session owner (the workload
  /// generator calls this when a session ends).
  void record_session(UserId user, ResourceId resource, SimTime start,
                      SimTime end, bool viz);

 private:
  void on_job_end(const Job& job);

  const Platform& platform_;
  UsageDatabase& db_;
  AllocationLedger* ledger_;
  ChargePolicy policy_;
};

}  // namespace tg
