// The central usage database (TGCDB analogue) and the Recorder that feeds
// it from live simulator components.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <vector>

#include <array>

#include "util/string_pool.hpp"

#include "accounting/charge.hpp"
#include "accounting/ledger.hpp"
#include "accounting/records.hpp"
#include "des/engine.hpp"
#include "infra/community.hpp"
#include "infra/platform.hpp"
#include "net/flow.hpp"
#include "sched/pool.hpp"

namespace tg {

/// Job, transfer and session records for one user inside a time window
/// (record pointers, in append order). What `UsageDatabase::records_of`
/// returns and what the feature extractor consumes.
struct UserWindowRecords {
  std::vector<const JobRecord*> jobs;
  std::vector<const TransferRecord*> transfers;
  std::vector<const SessionRecord*> sessions;

  [[nodiscard]] bool empty() const {
    return jobs.empty() && transfers.empty() && sessions.empty();
  }
  void clear() {
    jobs.clear();
    transfers.clear();
    sessions.clear();
  }
};

/// Append-only store of usage records with columnar query indexes. The
/// modality classifier reads exactly this.
///
/// Every query is served from two lazily-built indexes per record stream:
///  * a dense per-user posting list (row numbers in append order), and
///  * an end-time-sorted row permutation for window queries.
/// Appending invalidates the affected stream's indexes; the next query
/// rebuilds them. Concurrent *queries* are safe (the lazy build is guarded);
/// appends must not race queries — the simulator writes single-threaded and
/// the analysis phase only reads.
class UsageDatabase {
 public:
  UsageDatabase() = default;
  UsageDatabase(UsageDatabase&& other) noexcept
      : jobs_(std::move(other.jobs_)),
        transfers_(std::move(other.transfers_)),
        sessions_(std::move(other.sessions_)),
        total_nu_(other.total_nu_),
        disposition_counts_(other.disposition_counts_),
        end_user_limit_(other.end_user_limit_),
        end_user_pool_(other.end_user_pool_) {}
  UsageDatabase& operator=(UsageDatabase&& other) noexcept {
    jobs_ = std::move(other.jobs_);
    transfers_ = std::move(other.transfers_);
    sessions_ = std::move(other.sessions_);
    total_nu_ = other.total_nu_;
    disposition_counts_ = other.disposition_counts_;
    end_user_limit_ = other.end_user_limit_;
    end_user_pool_ = other.end_user_pool_;
    jobs_index_.invalidate();
    transfers_index_.invalidate();
    sessions_index_.invalidate();
    return *this;
  }

  void add(JobRecord r) {
    total_nu_ += r.charged_nu;
    ++disposition_counts_[static_cast<std::size_t>(r.disposition)];
    if (r.gateway_end_user.valid()) {
      end_user_limit_ = std::max(end_user_limit_,
                                 r.gateway_end_user.value() + 1);
    }
    jobs_.push_back(std::move(r));
    jobs_index_.invalidate();
  }
  void add(TransferRecord r) {
    transfers_.push_back(std::move(r));
    transfers_index_.invalidate();
  }
  void add(SessionRecord r) {
    sessions_.push_back(std::move(r));
    sessions_index_.invalidate();
  }

  [[nodiscard]] const std::vector<JobRecord>& jobs() const { return jobs_; }
  [[nodiscard]] const std::vector<TransferRecord>& transfers() const {
    return transfers_;
  }
  [[nodiscard]] const std::vector<SessionRecord>& sessions() const {
    return sessions_;
  }

  // --- Query surface --------------------------------------------------------
  // Everything below is read-only and index-backed; time windows are always
  // half-open [from, to) over a record's *end* time (the TGCDB convention:
  // a job is accounted when it finishes). Three tiers, cheapest first:
  //
  //  1. Aggregates maintained on append, O(1): total_nu(),
  //     disposition_count(), end_user_id_limit().
  //  2. Per-user and windowed record queries, served from the lazy columnar
  //     indexes: jobs_of(), jobs_ending_in(), records_of() (and its
  //     allocation-free overload — the feature extractor's inner loop).
  //  3. Raw index access for analytics that manage their own iteration:
  //     job_window()/transfer_window()/session_window() row ranges and the
  //     *_rows_of() posting lists, plus ensure_indexes() to force the
  //     build before fanning read-only work out over threads.

  /// Total NUs charged across all job records.
  [[nodiscard]] double total_nu() const { return total_nu_; }
  /// Number of job records with the given disposition (maintained on
  /// append; O(1)).
  [[nodiscard]] std::uint64_t disposition_count(Disposition d) const {
    return disposition_counts_[static_cast<std::size_t>(d)];
  }
  /// Job records for `user`, in arrival order.
  [[nodiscard]] std::vector<const JobRecord*> jobs_of(UserId user) const;
  /// Job records whose end time falls in [from, to), in arrival order.
  [[nodiscard]] std::vector<const JobRecord*> jobs_ending_in(
      SimTime from, SimTime to) const;
  /// All of `user`'s records with end time in [from, to), in arrival order.
  [[nodiscard]] UserWindowRecords records_of(UserId user, SimTime from,
                                             SimTime to) const;
  /// Allocation-free variant of records_of: appends into `out` (cleared
  /// first). The feature extractor's inner loop.
  void records_of(UserId user, SimTime from, SimTime to,
                  UserWindowRecords& out) const;

  /// One past the largest user id value present in any stream (0 if empty).
  /// Users are dense small integers, so [0, user_id_limit()) enumerates
  /// every possible record owner in id order.
  [[nodiscard]] UserId::rep user_id_limit() const;

  /// One past the largest interned end-user id in any job record (0 if no
  /// record carries the attribute). Maintained on append; O(1). Analytics
  /// use it to size dense per-end-user tables.
  [[nodiscard]] EndUserId::rep end_user_id_limit() const {
    return end_user_limit_;
  }

  /// Borrows the pool that interned this database's end-user attributes,
  /// for resolving ids back to labels at the I/O boundary (SWF export,
  /// display). The pool must outlive the database. May be null — queries
  /// and analytics never need it.
  void set_end_user_pool(const StringPool* pool) { end_user_pool_ = pool; }
  [[nodiscard]] const StringPool* end_user_pool() const {
    return end_user_pool_;
  }
  /// Label for an interned end-user id; empty when the id is invalid or no
  /// pool is attached.
  [[nodiscard]] std::string_view end_user_label(EndUserId id) const {
    return end_user_pool_ != nullptr ? end_user_pool_->at(id)
                                     : std::string_view{};
  }

  /// The append-order row range [first, last) covering exactly the records
  /// whose end time falls in [from, to) — available when the stream is
  /// end-time-sorted (`contiguous`). Otherwise callers must scan and
  /// filter; `first`/`last` are meaningless.
  struct RowRange {
    std::uint32_t first = 0;
    std::uint32_t last = 0;
    bool contiguous = false;
  };
  [[nodiscard]] RowRange job_window(SimTime from, SimTime to) const;
  [[nodiscard]] RowRange transfer_window(SimTime from, SimTime to) const;
  [[nodiscard]] RowRange session_window(SimTime from, SimTime to) const;

  /// Row numbers into jobs() owned by `user`, in append order.
  [[nodiscard]] const std::vector<std::uint32_t>& job_rows_of(
      UserId user) const;
  [[nodiscard]] const std::vector<std::uint32_t>& transfer_rows_of(
      UserId user) const;
  [[nodiscard]] const std::vector<std::uint32_t>& session_rows_of(
      UserId user) const;

  /// Forces all three stream indexes to exist. Call before fanning
  /// read-only analytics out over threads to keep the (guarded) lazy build
  /// off the hot path.
  void ensure_indexes() const;

 private:
  /// Columnar index over one record stream: per-user posting lists plus an
  /// end-time-sorted row permutation. Built lazily under a mutex; the
  /// `built` flag is the acquire/release hand-off so readers that see it
  /// set also see the index contents.
  struct StreamIndex {
    mutable std::vector<std::vector<std::uint32_t>> postings;  // [user]
    mutable std::vector<std::uint32_t> by_end;  // rows sorted by (end, row)
    /// True when the stream itself is already end-time-sorted (the live
    /// Recorder appends in completion order); posting lists then inherit
    /// the order and window queries binary-search instead of scanning.
    mutable bool end_sorted = false;
    mutable std::atomic<bool> built{false};
    mutable std::mutex build_mutex;

    void invalidate() { built.store(false, std::memory_order_release); }

    template <class Record>
    void ensure(const std::vector<Record>& records) const;
  };

  template <class Record>
  static void build_index(const std::vector<Record>& records,
                          const StreamIndex& index);
  /// Rows of `records` owned by `user` with end_time in [from, to),
  /// appended to `out` in row order.
  template <class Record>
  static void gather_window(const std::vector<Record>& records,
                            const StreamIndex& index, UserId user,
                            SimTime from, SimTime to,
                            std::vector<const Record*>& out);

  std::vector<JobRecord> jobs_;
  std::vector<TransferRecord> transfers_;
  std::vector<SessionRecord> sessions_;
  double total_nu_ = 0.0;
  std::array<std::uint64_t, kDispositionCount> disposition_counts_{};
  EndUserId::rep end_user_limit_ = 0;
  const StringPool* end_user_pool_ = nullptr;
  StreamIndex jobs_index_;
  StreamIndex transfers_index_;
  StreamIndex sessions_index_;
};

/// Wires live components into the database: converts finished jobs into
/// charged JobRecords (debiting the ledger), completed flows into
/// TransferRecords, and exposes a session-logging entry point.
class Recorder {
 public:
  Recorder(const Platform& platform, UsageDatabase& db,
           AllocationLedger* ledger = nullptr, ChargePolicy policy = {});

  /// Observes every scheduler in the pool.
  void attach(SchedulerPool& pool);
  /// Observes one scheduler.
  void attach(ResourceScheduler& scheduler);
  /// Observes completed WAN transfers.
  void attach(FlowManager& flows);

  /// Interactive sessions are logged by the session owner (the workload
  /// generator calls this when a session ends).
  void record_session(UserId user, ResourceId resource, SimTime start,
                      SimTime end, bool viz);

 private:
  void on_job_end(const Job& job);

  const Platform& platform_;
  UsageDatabase& db_;
  AllocationLedger* ledger_;
  ChargePolicy policy_;
};

}  // namespace tg
