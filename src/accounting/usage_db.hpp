// The central usage database (TGCDB analogue) and the Recorder that feeds
// it from live simulator components.
#pragma once

#include <functional>
#include <vector>

#include "accounting/ledger.hpp"
#include "accounting/records.hpp"
#include "des/engine.hpp"
#include "infra/community.hpp"
#include "infra/platform.hpp"
#include "net/flow.hpp"
#include "sched/pool.hpp"

namespace tg {

/// Append-only store of usage records with simple query helpers. The
/// modality classifier reads exactly this.
class UsageDatabase {
 public:
  void add(JobRecord r) { jobs_.push_back(std::move(r)); }
  void add(TransferRecord r) { transfers_.push_back(std::move(r)); }
  void add(SessionRecord r) { sessions_.push_back(std::move(r)); }

  [[nodiscard]] const std::vector<JobRecord>& jobs() const { return jobs_; }
  [[nodiscard]] const std::vector<TransferRecord>& transfers() const {
    return transfers_;
  }
  [[nodiscard]] const std::vector<SessionRecord>& sessions() const {
    return sessions_;
  }

  /// Total NUs charged across all job records.
  [[nodiscard]] double total_nu() const;
  /// Job records for `user`, in arrival order.
  [[nodiscard]] std::vector<const JobRecord*> jobs_of(UserId user) const;
  /// Records whose end time falls in [from, to).
  [[nodiscard]] std::vector<const JobRecord*> jobs_in(SimTime from,
                                                      SimTime to) const;

 private:
  std::vector<JobRecord> jobs_;
  std::vector<TransferRecord> transfers_;
  std::vector<SessionRecord> sessions_;
};

/// Wires live components into the database: converts finished jobs into
/// charged JobRecords (debiting the ledger), completed flows into
/// TransferRecords, and exposes a session-logging entry point.
class Recorder {
 public:
  Recorder(const Platform& platform, UsageDatabase& db,
           AllocationLedger* ledger = nullptr);

  /// Observes every scheduler in the pool.
  void attach(SchedulerPool& pool);
  /// Observes one scheduler.
  void attach(ResourceScheduler& scheduler);
  /// Observes completed WAN transfers.
  void attach(FlowManager& flows);

  /// Interactive sessions are logged by the session owner (the workload
  /// generator calls this when a session ends).
  void record_session(UserId user, ResourceId resource, SimTime start,
                      SimTime end, bool viz);

 private:
  void on_job_end(const Job& job);

  const Platform& platform_;
  UsageDatabase& db_;
  AllocationLedger* ledger_;
};

}  // namespace tg
