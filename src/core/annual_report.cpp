#include "core/annual_report.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "core/report.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace tg {

std::vector<ResourceUsageRow> per_resource_usage(const Platform& platform,
                                                 const UsageDatabase& db,
                                                 SimTime from, SimTime to) {
  std::vector<ResourceUsageRow> rows;
  rows.reserve(platform.compute().size());
  std::map<ResourceId, std::size_t> index;
  for (const ComputeResource& res : platform.compute()) {
    index[res.id] = rows.size();
    ResourceUsageRow row;
    row.resource = res.id;
    rows.push_back(row);
  }
  std::vector<RunningStats> waits(rows.size());
  for (const JobRecord& r : db.jobs()) {
    if (r.end_time < from || r.end_time >= to) continue;
    const auto it = index.find(r.resource);
    if (it == index.end()) continue;
    ResourceUsageRow& row = rows[it->second];
    ++row.jobs;
    row.nu += r.charged_nu;
    row.core_seconds += to_seconds(r.runtime()) * r.width_cores();
    waits[it->second].add(to_hours(r.wait()));
  }
  const double span = to_seconds(to - from);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ComputeResource& res = platform.compute()[i];
    rows[i].utilization =
        span > 0 ? rows[i].core_seconds / (res.total_cores() * span) : 0.0;
    rows[i].mean_wait_hours = waits[i].mean();
  }
  return rows;
}

std::vector<std::pair<FieldOfScience, double>> usage_by_field(
    const Community& community, const UsageDatabase& db, SimTime from,
    SimTime to) {
  std::map<FieldOfScience, double> by_field;
  for (const JobRecord& r : db.jobs()) {
    if (r.end_time < from || r.end_time >= to) continue;
    const auto idx = static_cast<std::size_t>(r.project.value());
    if (idx >= community.projects().size()) continue;
    by_field[community.projects()[idx].field] += r.charged_nu;
  }
  std::vector<std::pair<FieldOfScience, double>> out(by_field.begin(),
                                                     by_field.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::string generate_annual_report(const Platform& platform,
                                   const Community& community,
                                   const UsageDatabase& db,
                                   const AnnualReportOptions& options) {
  std::ostringstream os;
  const SimTime from = options.from;
  const SimTime to = options.to;

  os << "==================================================================\n"
     << " CYBERINFRASTRUCTURE USAGE REPORT  (" << format_duration(to - from)
     << " period)\n"
     << "==================================================================\n\n";

  // --- platform inventory ---
  os << "1. Platform\n-----------\n"
     << platform.sites().size() << " resource-provider sites, "
     << platform.compute().size() << " compute systems ("
     << platform.total_cores() << " cores), " << platform.storage().size()
     << " storage systems, " << platform.links().size() << " WAN links\n\n";

  // --- headline numbers ---
  double total_nu = 0.0;
  long total_jobs = 0;
  std::set<UserId> active_users;
  for (const JobRecord& r : db.jobs()) {
    if (r.end_time < from || r.end_time >= to) continue;
    total_nu += r.charged_nu;
    ++total_jobs;
    active_users.insert(r.user);
  }
  os << "2. Headline usage\n-----------------\n"
     << "jobs completed:    " << total_jobs << "\n"
     << "NUs charged:       " << si_format(total_nu) << "\n"
     << "active accounts:   " << active_users.size() << "\n"
     << "gateway end users: " << count_gateway_end_users(db, from, to)
     << " (from attribute records)\n\n";

  // --- modalities ---
  const RuleClassifier classifier(options.thresholds);
  const ModalityReport modality =
      ModalityReport::build(platform, db, classifier, from, to,
                            options.features);
  os << "3. Usage modalities\n-------------------\n"
     << modality.to_table() << "\n";

  // --- per resource ---
  os << "4. Resources\n------------\n";
  Table res_table({"Resource", "Site", "Jobs", "NUs (M)", "Utilization",
                   "Mean wait (h)"});
  for (const ResourceUsageRow& row :
       per_resource_usage(platform, db, from, to)) {
    const ComputeResource& res = platform.compute_at(row.resource);
    res_table.add_row({res.name, platform.site(res.site).name,
                       Table::num(static_cast<std::int64_t>(row.jobs)),
                       Table::num(row.nu / 1e6, 3),
                       Table::pct(row.utilization),
                       Table::num(row.mean_wait_hours, 2)});
  }
  os << res_table << "\n";

  // --- fields of science ---
  os << "5. Fields of science (by charge)\n"
     << "--------------------------------\n";
  Table field_table({"Field", "NUs (M)", "Share"});
  for (const auto& [field, nu] : usage_by_field(community, db, from, to)) {
    field_table.add_row({to_string(field), Table::num(nu / 1e6, 3),
                         Table::pct(total_nu > 0 ? nu / total_nu : 0.0)});
  }
  os << field_table << "\n";

  // --- data movement ---
  if (options.include_transfers) {
    os << "6. WAN data movement\n--------------------\n";
    double total_bytes = 0.0;
    std::map<std::pair<SiteId, SiteId>, double> by_pair;
    long transfers = 0;
    for (const TransferRecord& r : db.transfers()) {
      if (r.end_time < from || r.end_time >= to) continue;
      ++transfers;
      total_bytes += r.bytes;
      by_pair[{r.src, r.dst}] += r.bytes;
    }
    os << transfers << " transfers, " << si_format(total_bytes)
       << "B moved\n";
    std::vector<std::pair<double, std::pair<SiteId, SiteId>>> top;
    for (const auto& [pair, bytes] : by_pair) top.push_back({bytes, pair});
    std::sort(top.rbegin(), top.rend());
    Table pair_table({"Route", "Bytes", "Share"});
    for (std::size_t i = 0; i < std::min<std::size_t>(5, top.size()); ++i) {
      const auto& [bytes, pair] = top[i];
      pair_table.add_row(
          {platform.site(pair.first).name + " -> " +
               platform.site(pair.second).name,
           si_format(bytes) + "B",
           Table::pct(total_bytes > 0 ? bytes / total_bytes : 0.0)});
    }
    if (!top.empty()) os << pair_table;
    os << "\n";
  }
  return os.str();
}

}  // namespace tg
