// The "annual report" generator: everything the TeraGrid published about a
// reporting period, regenerated from the central database — platform
// inventory, the modality table, per-resource delivery and utilization,
// usage by field of science, gateway statistics, and WAN data movement.
// This is the production artifact the paper's measurement programme feeds.
#pragma once

#include <string>

#include "accounting/usage_db.hpp"
#include "core/classifier.hpp"
#include "infra/community.hpp"
#include "infra/platform.hpp"

namespace tg {

struct AnnualReportOptions {
  SimTime from = 0;
  SimTime to = kYear;
  FeatureConfig features;
  ClassifierThresholds thresholds;
  /// Include the per-site data-movement section.
  bool include_transfers = true;
};

/// Renders the full multi-section report as printable text.
[[nodiscard]] std::string generate_annual_report(
    const Platform& platform, const Community& community,
    const UsageDatabase& db, const AnnualReportOptions& options = {});

/// Per-resource delivery summary (one section of the report, also useful
/// on its own).
struct ResourceUsageRow {
  ResourceId resource;
  long jobs = 0;
  double nu = 0.0;
  double core_seconds = 0.0;
  double utilization = 0.0;  ///< over [from, to)
  double mean_wait_hours = 0.0;
};

[[nodiscard]] std::vector<ResourceUsageRow> per_resource_usage(
    const Platform& platform, const UsageDatabase& db, SimTime from,
    SimTime to);

/// NUs charged per field of science (via each record's project).
[[nodiscard]] std::vector<std::pair<FieldOfScience, double>> usage_by_field(
    const Community& community, const UsageDatabase& db, SimTime from,
    SimTime to);

}  // namespace tg
