#include "core/classifier.hpp"

#include "util/error.hpp"

namespace tg {

RuleClassifier::RuleClassifier(ClassifierThresholds thresholds)
    : thresholds_(thresholds) {
  TG_REQUIRE(thresholds.gateway_fraction > 0.0 &&
                 thresholds.gateway_fraction <= 1.0,
             "gateway fraction must be a probability");
  TG_REQUIRE(thresholds.capability_machine_fraction > 0.0 &&
                 thresholds.capability_machine_fraction <= 1.0,
             "capability fraction must be a probability");
}

ModalitySet RuleClassifier::classify(const UserFeatures& f) const {
  const ClassifierThresholds& t = thresholds_;
  ModalitySet set;
  const bool any_activity =
      f.jobs > 0 || f.bytes_transferred > 0 || f.sessions > 0;
  if (!any_activity) return set;

  if (f.jobs > 0 && f.gateway_fraction >= t.gateway_fraction) {
    set.add(Modality::kGateway);
  }
  if (f.jobs > 0 && f.coalloc_fraction >= t.coalloc_fraction) {
    set.add(Modality::kTightlyCoupled);
  }
  if (f.viz_sessions > 0 ||
      (f.jobs > 0 && f.viz_fraction >= t.viz_fraction)) {
    set.add(Modality::kRemoteInteractive);
  }
  if (f.jobs > 0 && (f.workflow_fraction >= t.workflow_fraction ||
                     f.burst_fraction >= t.workflow_fraction)) {
    set.add(Modality::kWorkflowEnsemble);
  }
  if (f.max_machine_fraction >= t.capability_machine_fraction &&
      f.max_width_cores >= t.capability_min_cores) {
    set.add(Modality::kCapabilityBatch);
  }
  if (f.bytes_transferred >= t.data_min_bytes &&
      f.bytes_per_nu() >= t.data_bytes_per_nu) {
    set.add(Modality::kDataCentric);
  }
  // Data-intensive compute: jobs whose staged input footprint dwarfs the
  // charge. Only the data grid fills bytes_read, so this never fires in
  // scenarios without one.
  if (f.bytes_read >= t.data_min_bytes_read &&
      f.read_per_nu() >= t.data_read_per_nu) {
    set.add(Modality::kDataCentric);
  }
  const bool tiny_compute = f.total_nu <= t.exploratory_max_nu &&
                            f.max_width_cores <= t.exploratory_max_cores;
  // Records lost to infrastructure (requeued attempts, outage kills) are
  // measurement noise, not user behaviour: evaluate the application-failure
  // signal over the delivered fraction of the record stream so outages
  // cannot dilute it below threshold.
  const double delivered_fraction =
      1.0 - f.requeued_fraction - f.outage_killed_fraction;
  const double app_failed_fraction = delivered_fraction > 0.0
                                         ? f.failed_fraction / delivered_fraction
                                         : f.failed_fraction;
  const bool failure_heavy =
      f.jobs >= 3 && app_failed_fraction >= t.exploratory_fail_fraction;
  if (f.jobs > 0 && set.members.none() && (tiny_compute || failure_heavy)) {
    set.add(Modality::kExploratory);
  }
  if (f.jobs > 0 && set.members.none()) {
    set.add(Modality::kCapacityBatch);
  }
  if (set.members.none()) {
    // Transfers/sessions only (no jobs): data-centric by construction.
    set.add(Modality::kDataCentric);
  }

  // Primary attribution: the most specific mechanism wins.
  static constexpr Modality kPrecedence[] = {
      Modality::kGateway,          Modality::kTightlyCoupled,
      Modality::kRemoteInteractive, Modality::kWorkflowEnsemble,
      Modality::kCapabilityBatch,  Modality::kDataCentric,
      Modality::kExploratory,      Modality::kCapacityBatch,
  };
  for (Modality m : kPrecedence) {
    if (set.has(m)) {
      set.primary = m;
      break;
    }
  }
  return set;
}

std::vector<ModalitySet> RuleClassifier::classify(
    const std::vector<UserFeatures>& features) const {
  std::vector<ModalitySet> out;
  out.reserve(features.size());
  for (const auto& f : features) out.push_back(classify(f));
  return out;
}

}  // namespace tg
