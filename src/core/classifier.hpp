// The rule-based modality classifier.
//
// Maps per-user features to a set of modalities plus a primary attribution.
// The rules implement the measurement mechanisms of DESIGN.md §2; every
// threshold is exposed so the sensitivity experiment (F4) can sweep them.
#pragma once

#include <vector>

#include "core/features.hpp"
#include "core/modality.hpp"

namespace tg {

struct ClassifierThresholds {
  /// A user is gateway-modality if at least this fraction of their jobs
  /// carries a gateway tag (community accounts are ~1.0).
  double gateway_fraction = 0.5;
  /// Workflow/ensemble: workflow-tagged or burst fraction at least this.
  double workflow_fraction = 0.25;
  /// Tightly-coupled: co-allocated fraction at least this.
  double coalloc_fraction = 0.05;
  /// Interactive/viz: viz job fraction at least this, or any viz session.
  double viz_fraction = 0.25;
  /// Capability: some job reached this fraction of a machine AND at least
  /// this many cores. (Half of a small cluster is not a hero run; the
  /// absolute floor keeps clamped jobs on small machines out.)
  double capability_machine_fraction = 0.5;
  int capability_min_cores = 2048;
  /// Data-centric: at least this many bytes moved ...
  double data_min_bytes = 1e12;
  /// ... and at least this many bytes per charged NU.
  double data_bytes_per_nu = 1e9;
  /// Data-centric via staged compute input: at least this many bytes
  /// staged in by the data grid over the window (a quarter-TB: an order
  /// of magnitude past what incidental dataset reads accumulate) ...
  double data_min_bytes_read = 2.5e11;
  /// ... and at least this many staged bytes per charged NU. Both gates
  /// are unreachable at bytes_read == 0 (scenarios without a data grid).
  double data_read_per_nu = 2.5e8;
  /// Exploratory: total charge below this many NUs ...
  double exploratory_max_nu = 500.0;
  /// ... and widest job below this many cores; or failure fraction above
  /// exploratory_fail_fraction.
  int exploratory_max_cores = 64;
  double exploratory_fail_fraction = 0.4;
};

class RuleClassifier {
 public:
  explicit RuleClassifier(ClassifierThresholds thresholds = {});

  /// Classifies one user. Users with no activity at all come back with an
  /// empty member set.
  [[nodiscard]] ModalitySet classify(const UserFeatures& f) const;

  /// Classifies a batch of users, preserving order.
  [[nodiscard]] std::vector<ModalitySet> classify(
      const std::vector<UserFeatures>& features) const;

  [[nodiscard]] const ClassifierThresholds& thresholds() const {
    return thresholds_;
  }

 private:
  ClassifierThresholds thresholds_;
};

}  // namespace tg
