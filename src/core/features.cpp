#include "core/features.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace tg {

FeatureExtractor::FeatureExtractor(const Platform& platform,
                                   FeatureConfig config)
    : platform_(platform), config_(config) {
  TG_REQUIRE(config.burst_window > 0 && config.burst_min_jobs >= 2,
             "invalid burst parameters");
}

namespace {

/// Counts jobs that belong to a burst: >= min_jobs submissions with the
/// same (nodes, walltime) geometry inside a sliding window.
int count_burst_jobs(const std::vector<const JobRecord*>& jobs,
                     Duration window, int min_jobs) {
  // Group by geometry, then sweep submit times.
  std::map<std::pair<int, Duration>, std::vector<SimTime>> by_geometry;
  for (const JobRecord* r : jobs) {
    by_geometry[{r->nodes, r->requested_walltime}].push_back(r->submit_time);
  }
  int burst_jobs = 0;
  for (auto& [geom, times] : by_geometry) {
    std::sort(times.begin(), times.end());
    std::vector<bool> in_burst(times.size(), false);
    std::size_t lo = 0;
    for (std::size_t hi = 0; hi < times.size(); ++hi) {
      while (times[hi] - times[lo] > window) ++lo;
      if (hi - lo + 1 >= static_cast<std::size_t>(min_jobs)) {
        for (std::size_t k = lo; k <= hi; ++k) in_burst[k] = true;
      }
    }
    burst_jobs += static_cast<int>(
        std::count(in_burst.begin(), in_burst.end(), true));
  }
  return burst_jobs;
}

}  // namespace

std::vector<UserFeatures> FeatureExtractor::extract(const UsageDatabase& db,
                                                    SimTime from,
                                                    SimTime to) const {
  // Single pass over each record stream, grouping by user.
  std::map<UserId, std::vector<const JobRecord*>> jobs_by_user;
  std::map<UserId, std::vector<const TransferRecord*>> transfers_by_user;
  std::map<UserId, std::vector<const SessionRecord*>> sessions_by_user;
  for (const auto& r : db.jobs()) {
    if (r.end_time >= from && r.end_time < to) {
      jobs_by_user[r.user].push_back(&r);
    }
  }
  for (const auto& r : db.transfers()) {
    if (r.end_time >= from && r.end_time < to) {
      transfers_by_user[r.user].push_back(&r);
    }
  }
  for (const auto& r : db.sessions()) {
    if (r.end_time >= from && r.end_time < to) {
      sessions_by_user[r.user].push_back(&r);
    }
  }
  std::set<UserId> users;
  for (const auto& [u, v] : jobs_by_user) users.insert(u);
  for (const auto& [u, v] : transfers_by_user) users.insert(u);
  for (const auto& [u, v] : sessions_by_user) users.insert(u);

  static const std::vector<const JobRecord*> kNoJobs;
  static const std::vector<const TransferRecord*> kNoTransfers;
  static const std::vector<const SessionRecord*> kNoSessions;
  std::vector<UserFeatures> out;
  out.reserve(users.size());
  for (UserId u : users) {
    const auto j = jobs_by_user.find(u);
    const auto t = transfers_by_user.find(u);
    const auto s = sessions_by_user.find(u);
    out.push_back(compute(u, j != jobs_by_user.end() ? j->second : kNoJobs,
                          t != transfers_by_user.end() ? t->second
                                                       : kNoTransfers,
                          s != sessions_by_user.end() ? s->second
                                                      : kNoSessions));
  }
  return out;
}

UserFeatures FeatureExtractor::extract_user(const UsageDatabase& db,
                                            UserId user, SimTime from,
                                            SimTime to) const {
  std::vector<const JobRecord*> jobs;
  for (const auto& r : db.jobs()) {
    if (r.user == user && r.end_time >= from && r.end_time < to) {
      jobs.push_back(&r);
    }
  }
  std::vector<const TransferRecord*> transfers;
  for (const auto& r : db.transfers()) {
    if (r.user == user && r.end_time >= from && r.end_time < to) {
      transfers.push_back(&r);
    }
  }
  std::vector<const SessionRecord*> sessions;
  for (const auto& r : db.sessions()) {
    if (r.user == user && r.end_time >= from && r.end_time < to) {
      sessions.push_back(&r);
    }
  }
  return compute(user, jobs, transfers, sessions);
}

UserFeatures FeatureExtractor::compute(
    UserId user, const std::vector<const JobRecord*>& jobs,
    const std::vector<const TransferRecord*>& transfers,
    const std::vector<const SessionRecord*>& sessions) const {
  UserFeatures f;
  f.user = user;
  f.jobs = static_cast<int>(jobs.size());

  int gateway = 0;
  int workflow = 0;
  int coalloc = 0;
  int viz = 0;
  int failed = 0;
  double width_sum = 0.0;
  std::vector<double> runtimes;
  std::set<ResourceId> resources;
  for (const JobRecord* r : jobs) {
    f.total_nu += r->charged_nu;
    f.total_su += r->charged_su;
    if (r->gateway.valid()) ++gateway;
    if (r->workflow.valid()) ++workflow;
    if (r->coallocated) ++coalloc;
    if (r->interactive || r->viz_resource) ++viz;
    if (r->final_state == JobState::kFailed) ++failed;
    f.max_width_cores = std::max(f.max_width_cores, r->width_cores());
    const ComputeResource& res = platform_.compute_at(r->resource);
    f.max_machine_fraction =
        std::max(f.max_machine_fraction,
                 static_cast<double>(r->nodes) / res.nodes);
    width_sum += r->width_cores();
    runtimes.push_back(to_seconds(r->runtime()));
    resources.insert(r->resource);
  }
  if (!jobs.empty()) {
    const double n = static_cast<double>(jobs.size());
    f.gateway_fraction = gateway / n;
    f.workflow_fraction = workflow / n;
    f.coalloc_fraction = coalloc / n;
    f.viz_fraction = viz / n;
    f.failed_fraction = failed / n;
    f.mean_width_cores = width_sum / n;
    f.mean_runtime_s =
        std::accumulate(runtimes.begin(), runtimes.end(), 0.0) / n;
    f.median_runtime_s = percentile(runtimes, 0.5);
    f.burst_fraction =
        count_burst_jobs(jobs, config_.burst_window, config_.burst_min_jobs) /
        n;
  }
  f.distinct_resources = static_cast<int>(resources.size());

  for (const TransferRecord* r : transfers) f.bytes_transferred += r->bytes;
  for (const SessionRecord* r : sessions) {
    ++f.sessions;
    if (r->viz) ++f.viz_sessions;
  }
  return f;
}

}  // namespace tg
