#include "core/features.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace tg {

FeatureExtractor::FeatureExtractor(const Platform& platform,
                                   FeatureConfig config)
    : platform_(platform), config_(config) {
  TG_REQUIRE(config.burst_window > 0 && config.burst_min_jobs >= 2,
             "invalid burst parameters");
}

int count_burst_jobs(std::vector<BurstGeometry>& arena, Duration window,
                     int min_jobs) {
  std::sort(arena.begin(), arena.end(), [](const auto& a, const auto& b) {
    if (a.nodes != b.nodes) return a.nodes < b.nodes;
    if (a.walltime != b.walltime) return a.walltime < b.walltime;
    return a.submit < b.submit;
  });
  const auto in_group = [](const auto& a, const auto& b) {
    return a.nodes == b.nodes && a.walltime == b.walltime;
  };
  int burst_jobs = 0;
  const std::size_t n = arena.size();
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i + 1;
    while (j < n && in_group(arena[i], arena[j])) ++j;
    // Sweep this geometry's submit times, counting the union of every
    // window that reaches min_jobs (marked_until = end of counted prefix).
    std::size_t lo = i;
    std::size_t marked_until = i;
    for (std::size_t hi = i; hi < j; ++hi) {
      while (arena[hi].submit - arena[lo].submit > window) ++lo;
      if (hi - lo + 1 >= static_cast<std::size_t>(min_jobs)) {
        const std::size_t start = std::max(lo, marked_until);
        burst_jobs += static_cast<int>(hi + 1 - start);
        marked_until = hi + 1;
      }
    }
    i = j;
  }
  return burst_jobs;
}

namespace {

/// Two-pass CSR gather of one stream's window rows: counts per user, prefix
/// sums into `offsets`, then fills `items` so that user u's records occupy
/// items[offsets[u], offsets[u+1]) in append order. Sequential over the
/// window's row range when the stream is end-time-sorted, a sequential
/// filtered scan otherwise — never a random per-user walk.
template <class Record>
void gather_csr(const std::vector<Record>& records,
                UsageDatabase::RowRange range, SimTime from, SimTime to,
                std::size_t limit, std::vector<std::uint32_t>& offsets,
                std::vector<const Record*>& items) {
  std::vector<std::uint32_t> cursor;
  offsets.assign(limit + 1, 0);
  const auto each = [&](auto&& fn) {
    if (range.contiguous) {
      for (std::uint32_t i = range.first; i < range.last; ++i) fn(records[i]);
    } else {
      for (const Record& r : records) {
        if (r.end_time >= from && r.end_time < to) fn(r);
      }
    }
  };
  each([&](const Record& r) {
    if (r.user.valid()) {
      ++offsets[static_cast<std::size_t>(r.user.value()) + 1];
    }
  });
  for (std::size_t u = 0; u < limit; ++u) offsets[u + 1] += offsets[u];
  cursor.assign(offsets.begin(), offsets.end());
  items.resize(offsets[limit]);
  each([&](const Record& r) {
    if (r.user.valid()) {
      items[cursor[static_cast<std::size_t>(r.user.value())]++] = &r;
    }
  });
}

template <class Record>
std::span<const Record* const> user_span(
    const std::vector<std::uint32_t>& offsets,
    const std::vector<const Record*>& items, std::size_t u) {
  return {items.data() + offsets[u], offsets[u + 1] - offsets[u]};
}

}  // namespace

namespace {

/// Read-only CSR gather of one extraction window, shared by every worker:
/// per-user offsets (size limit+1) and flat record-pointer arrays, one pair
/// per stream. Built sequentially, then only read.
struct Gather {
  std::vector<std::uint32_t> job_off, transfer_off, session_off;
  std::vector<const JobRecord*> job_items;
  std::vector<const TransferRecord*> transfer_items;
  std::vector<const SessionRecord*> session_items;
};

}  // namespace

std::vector<UserFeatures> FeatureExtractor::extract(const UsageDatabase& db,
                                                    SimTime from, SimTime to,
                                                    ThreadPool* pool) const {
  if (db.segmented()) {
    // Segmented storage exposes no raw row ranges for the CSR gather;
    // answer from the per-segment user indexes instead, one user at a
    // time. Each user's records arrive in append order — the same order
    // the gather would have produced — so the features are bit-identical
    // to the monolithic pass. Sequential (`pool` unused): the per-user
    // window buffers reuse one scratch.
    const auto limit = static_cast<std::size_t>(db.user_id_limit());
    std::vector<UserFeatures> out;
    Scratch scratch;
    for (std::size_t u = 0; u < limit; ++u) {
      const UserId user{static_cast<UserId::rep>(u)};
      db.records_of(user, from, to, scratch.window);
      if (scratch.window.empty()) continue;
      out.push_back(compute(user, scratch.window.jobs,
                            scratch.window.transfers, scratch.window.sessions,
                            scratch));
    }
    return out;
  }
  // Columnar pass: CSR-gather each stream's window once (sequential), then
  // walk users in id order over dense buckets. No maps, no per-user
  // allocation, no random access into the record arrays.
  db.ensure_indexes();
  const auto limit = static_cast<std::size_t>(db.user_id_limit());
  Gather gather;
  gather_csr(db.jobs(), db.job_window(from, to), from, to, limit,
             gather.job_off, gather.job_items);
  gather_csr(db.transfers(), db.transfer_window(from, to), from, to, limit,
             gather.transfer_off, gather.transfer_items);
  gather_csr(db.sessions(), db.session_window(from, to), from, to, limit,
             gather.session_off, gather.session_items);
  // Users with any record in the window, in id order — the output rows.
  std::vector<std::uint32_t> active;
  for (std::size_t u = 0; u < limit; ++u) {
    if (gather.job_off[u] != gather.job_off[u + 1] ||
        gather.transfer_off[u] != gather.transfer_off[u + 1] ||
        gather.session_off[u] != gather.session_off[u + 1]) {
      active.push_back(static_cast<std::uint32_t>(u));
    }
  }
  std::vector<UserFeatures> out(active.size());
  const auto run_range = [&](std::size_t lo, std::size_t hi,
                             Scratch& scratch) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto u = static_cast<std::size_t>(active[i]);
      out[i] = compute(UserId{static_cast<UserId::rep>(u)},
                       user_span(gather.job_off, gather.job_items, u),
                       user_span(gather.transfer_off, gather.transfer_items, u),
                       user_span(gather.session_off, gather.session_items, u),
                       scratch);
    }
  };
  if (pool == nullptr || pool->size() <= 1 || active.size() < 2) {
    Scratch scratch;
    run_range(0, active.size(), scratch);
  } else {
    // Contiguous id-ordered chunks; each worker fills disjoint output rows
    // with its own scratch, so the result is byte-identical to the
    // sequential pass. More chunks than workers evens out skewed users.
    const std::size_t chunks = std::min(active.size(), pool->size() * 4);
    parallel_for(*pool, chunks, [&](std::size_t c) {
      Scratch scratch;
      run_range(active.size() * c / chunks, active.size() * (c + 1) / chunks,
                scratch);
    });
  }
  return out;
}

UserFeatures FeatureExtractor::extract_user(const UsageDatabase& db,
                                            UserId user, SimTime from,
                                            SimTime to) const {
  Scratch scratch;
  db.records_of(user, from, to, scratch.window);
  return compute(user, scratch.window.jobs, scratch.window.transfers,
                 scratch.window.sessions, scratch);
}

UserFeatures FeatureExtractor::compute(
    UserId user, std::span<const JobRecord* const> jobs,
    std::span<const TransferRecord* const> transfers,
    std::span<const SessionRecord* const> sessions,
    Scratch& scratch) const {
  UserFeatures f;
  f.user = user;
  f.jobs = static_cast<int>(jobs.size());

  int gateway = 0;
  int workflow = 0;
  int coalloc = 0;
  int viz = 0;
  int failed = 0;
  int requeued = 0;
  int outage_killed = 0;
  int distinct_resources = 0;
  bool invalid_resource_seen = false;
  double width_sum = 0.0;
  scratch.runtimes.clear();
  ++scratch.resource_stamp;
  for (const JobRecord* r : jobs) {
    f.total_nu += r->charged_nu;
    f.total_su += r->charged_su;
    f.bytes_read += r->bytes_read;
    f.bytes_read_cached += r->bytes_from_cache;
    f.stage_in_s += to_seconds(r->stage_in);
    if (r->gateway.valid()) ++gateway;
    if (r->workflow.valid()) ++workflow;
    if (r->coallocated) ++coalloc;
    if (r->interactive || r->viz_resource) ++viz;
    if (r->final_state == JobState::kFailed) ++failed;
    if (r->disposition == Disposition::kRequeued) ++requeued;
    if (r->disposition == Disposition::kKilledByOutage) ++outage_killed;
    f.max_width_cores = std::max(f.max_width_cores, r->width_cores());
    const ComputeResource& res = platform_.compute_at(r->resource);
    f.max_machine_fraction =
        std::max(f.max_machine_fraction,
                 static_cast<double>(r->nodes) / res.nodes);
    width_sum += r->width_cores();
    scratch.runtimes.push_back(to_seconds(r->runtime()));
    if (r->resource.valid()) {
      const auto slot = static_cast<std::size_t>(r->resource.value());
      if (slot >= scratch.resource_mark.size()) {
        scratch.resource_mark.resize(slot + 1, 0);
      }
      if (scratch.resource_mark[slot] != scratch.resource_stamp) {
        scratch.resource_mark[slot] = scratch.resource_stamp;
        ++distinct_resources;
      }
    } else if (!invalid_resource_seen) {
      invalid_resource_seen = true;
      ++distinct_resources;
    }
  }
  if (!jobs.empty()) {
    const double n = static_cast<double>(jobs.size());
    f.gateway_fraction = gateway / n;
    f.workflow_fraction = workflow / n;
    f.coalloc_fraction = coalloc / n;
    f.viz_fraction = viz / n;
    f.failed_fraction = failed / n;
    f.requeued_fraction = requeued / n;
    f.outage_killed_fraction = outage_killed / n;
    f.mean_width_cores = width_sum / n;
    double runtime_sum = 0.0;
    for (const double rt : scratch.runtimes) runtime_sum += rt;
    f.mean_runtime_s = runtime_sum / n;
    std::sort(scratch.runtimes.begin(), scratch.runtimes.end());
    f.median_runtime_s = percentile_sorted(scratch.runtimes, 0.5);
    scratch.geometry.clear();
    scratch.geometry.reserve(jobs.size());
    for (const JobRecord* r : jobs) {
      scratch.geometry.push_back(
          {r->nodes, r->requested_walltime, r->submit_time});
    }
    f.burst_fraction = count_burst_jobs(scratch.geometry, config_.burst_window,
                                        config_.burst_min_jobs) /
                       n;
  }
  f.distinct_resources = distinct_resources;

  for (const TransferRecord* r : transfers) f.bytes_transferred += r->bytes;
  for (const SessionRecord* r : sessions) {
    ++f.sessions;
    if (r->viz) ++f.viz_sessions;
  }
  return f;
}

}  // namespace tg
