// Per-user feature extraction from accounting records.
//
// The classifier sees users only through these features, which are computed
// from the central database exactly as a TeraGrid analyst could — this is
// the measurability constraint at the heart of the paper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "accounting/usage_db.hpp"
#include "des/time.hpp"
#include "infra/platform.hpp"
#include "util/ids.hpp"

namespace tg {

struct UserFeatures {
  UserId user;
  int jobs = 0;
  double total_nu = 0.0;
  double total_su = 0.0;
  /// Fraction of jobs carrying a gateway tag (≈1 for community accounts).
  double gateway_fraction = 0.0;
  /// Fraction of jobs carrying a workflow tag.
  double workflow_fraction = 0.0;
  /// Fraction of jobs belonging to a same-geometry submission burst, the
  /// signature of manual ensembles/sweeps (no workflow tag needed).
  double burst_fraction = 0.0;
  double coalloc_fraction = 0.0;
  /// Fraction of jobs that were interactive or ran on a viz resource.
  double viz_fraction = 0.0;
  double failed_fraction = 0.0;
  /// Fraction of records that were outage-requeued attempts — how degraded
  /// this user's slice of the accounting stream is.
  double requeued_fraction = 0.0;
  /// Fraction of records for jobs killed outright by an outage.
  double outage_killed_fraction = 0.0;
  int max_width_cores = 0;
  /// Max over jobs of nodes / machine nodes — capability signal.
  double max_machine_fraction = 0.0;
  double mean_width_cores = 0.0;
  double mean_runtime_s = 0.0;
  double median_runtime_s = 0.0;
  int distinct_resources = 0;
  double bytes_transferred = 0.0;
  int sessions = 0;
  int viz_sessions = 0;
  /// Data-grid stage-in footprint summed over the user's jobs (zero unless
  /// the scenario ran with a data grid).
  double bytes_read = 0.0;
  double bytes_read_cached = 0.0;
  double stage_in_s = 0.0;

  [[nodiscard]] double bytes_per_nu() const {
    return total_nu > 0.0 ? bytes_transferred / total_nu
                          : bytes_transferred;
  }
  /// Staged input bytes per normalized unit of compute — the data-intensity
  /// ratio the classifier keys on.
  [[nodiscard]] double read_per_nu() const {
    return total_nu > 0.0 ? bytes_read / total_nu : bytes_read;
  }
  /// Fraction of staged bytes served by the site cache tier.
  [[nodiscard]] double cache_hit_fraction() const {
    return bytes_read > 0.0 ? bytes_read_cached / bytes_read : 0.0;
  }
};

struct FeatureConfig {
  /// Jobs with identical (nodes, requested walltime) submitted within this
  /// window of each other form a burst.
  Duration burst_window = 2 * kHour;
  /// Minimum burst size for membership to count.
  int burst_min_jobs = 8;
};

/// Submission geometry of one job in the burst-detection arena.
struct BurstGeometry {
  int nodes;
  Duration walltime;
  SimTime submit;
};

/// Counts jobs that belong to a burst: >= min_jobs submissions with the
/// same (nodes, walltime) geometry inside a sliding window. Sort-based
/// grouping over the caller's arena (sorted in place, one entry per job).
/// Shared by the batch extractor and the streaming path so both produce
/// bit-identical burst fractions.
[[nodiscard]] int count_burst_jobs(std::vector<BurstGeometry>& arena,
                                   Duration window, int min_jobs);

class ThreadPool;

class FeatureExtractor {
 public:
  FeatureExtractor(const Platform& platform, FeatureConfig config = {});

  /// Features for every user with at least one record whose end time falls
  /// in [from, to). Sorted by user id. Drives the database's columnar
  /// per-user indexes in one pass; no per-user map/set allocation.
  ///
  /// With a non-null `pool`, per-user computation fans out over the pool in
  /// contiguous id-ordered chunks and the results land by index, so the
  /// output is byte-identical to the sequential pass at any worker count.
  /// Must not be called from a task already running on `pool` (the wait
  /// would occupy a worker the chunks need).
  [[nodiscard]] std::vector<UserFeatures> extract(
      const UsageDatabase& db, SimTime from, SimTime to,
      ThreadPool* pool = nullptr) const;

  /// Features for one user (empty-record users yield a zeroed entry).
  [[nodiscard]] UserFeatures extract_user(const UsageDatabase& db, UserId user,
                                          SimTime from, SimTime to) const;

 private:
  /// Per-worker buffers reused across the users one worker computes:
  /// runtime samples, the burst-detection geometry arena, a stamped
  /// distinct-resource marker and the extract_user record window. Never
  /// shared between threads.
  struct Scratch {
    UserWindowRecords window;
    std::vector<double> runtimes;
    std::vector<BurstGeometry> geometry;
    std::vector<std::uint32_t> resource_mark;
    std::uint32_t resource_stamp = 0;
  };

  [[nodiscard]] UserFeatures compute(
      UserId user, std::span<const JobRecord* const> jobs,
      std::span<const TransferRecord* const> transfers,
      std::span<const SessionRecord* const> sessions,
      Scratch& scratch) const;

  const Platform& platform_;
  FeatureConfig config_;
};

}  // namespace tg
