#include "core/modality.hpp"

#include <array>

namespace tg {

const char* to_string(Modality m) {
  switch (m) {
    case Modality::kCapacityBatch: return "Capacity batch computing";
    case Modality::kCapabilityBatch: return "Capability (hero) runs";
    case Modality::kGateway: return "Science-gateway use";
    case Modality::kWorkflowEnsemble: return "Workflow / ensemble / sweep";
    case Modality::kTightlyCoupled: return "Tightly-coupled distributed";
    case Modality::kRemoteInteractive: return "Remote interactive / viz";
    case Modality::kDataCentric: return "Data-centric (storage/transfer)";
    case Modality::kExploratory: return "Exploratory / porting";
  }
  return "Unknown";
}

const char* short_name(Modality m) {
  switch (m) {
    case Modality::kCapacityBatch: return "capacity";
    case Modality::kCapabilityBatch: return "capability";
    case Modality::kGateway: return "gateway";
    case Modality::kWorkflowEnsemble: return "workflow";
    case Modality::kTightlyCoupled: return "coupled";
    case Modality::kRemoteInteractive: return "interactive";
    case Modality::kDataCentric: return "data";
    case Modality::kExploratory: return "exploratory";
  }
  return "unknown";
}

std::span<const ModalityInfo> taxonomy() {
  static constexpr std::array<ModalityInfo, kModalityCount> kTable{{
      {Modality::kCapacityBatch, "Capacity batch computing",
       "moderate-width batch jobs on a single resource",
       "central job accounting records"},
      {Modality::kCapabilityBatch, "Capability (hero) runs",
       "jobs at >= 50% of a machine's nodes",
       "job records vs machine size"},
      {Modality::kGateway, "Science-gateway use",
       "jobs under a community account on behalf of portal users",
       "gateway end-user attributes on job records"},
      {Modality::kWorkflowEnsemble, "Workflow / ensemble / sweep",
       "bursts of related jobs, often with dependencies",
       "workflow tags; geometry/burst clustering of job records"},
      {Modality::kTightlyCoupled, "Tightly-coupled distributed",
       "simultaneous co-allocated jobs on multiple resources",
       "co-allocation reservations; overlapping job records"},
      {Modality::kRemoteInteractive, "Remote interactive / viz",
       "interactive sessions and jobs on visualization systems",
       "session logs; viz-resource job records"},
      {Modality::kDataCentric, "Data-centric (storage/transfer)",
       "large WAN transfers and storage use, modest compute",
       "GridFTP transfer records; storage allocations"},
      {Modality::kExploratory, "Exploratory / porting",
       "small short jobs, low total charge, frequent failures",
       "job records (small totals, failure fraction)"},
  }};
  return kTable;
}

}  // namespace tg
