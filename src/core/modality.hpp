// The usage-modality taxonomy — the paper's central object.
//
// A modality is *what a user is doing with the cyberinfrastructure and how*:
// the abstract says TeraGrid wants to measure modalities "to understand what
// objectives our users are pursuing, how they go about achieving them, and
// why". The taxonomy below is reconstructed from the paper's companion
// TeraGrid literature (see DESIGN.md §2); each modality carries the
// measurement mechanism the TeraGrid proposed for it.
#pragma once

#include <bitset>
#include <cstdint>
#include <span>

namespace tg {

enum class Modality : std::uint8_t {
  kCapacityBatch = 0,   ///< ordinary batch production runs on one resource
  kCapabilityBatch,     ///< hero runs at >= half a machine
  kGateway,             ///< access through a science gateway
  kWorkflowEnsemble,    ///< workflows, ensembles, parameter sweeps
  kTightlyCoupled,      ///< co-allocated multi-resource computations
  kRemoteInteractive,   ///< interactive / visualization / steering
  kDataCentric,         ///< storage- and transfer-dominated use
  kExploratory,         ///< porting, benchmarking, education, trial use
};

inline constexpr std::size_t kModalityCount = 8;

[[nodiscard]] const char* to_string(Modality m);
/// Short (<=12 char) label for table columns.
[[nodiscard]] const char* short_name(Modality m);

/// Static description of a modality: its behavioural signature and the
/// measurement mechanism that identifies it in accounting data.
struct ModalityInfo {
  Modality modality;
  const char* name;
  const char* signature;
  const char* mechanism;
};

/// The full taxonomy, in enum order.
[[nodiscard]] std::span<const ModalityInfo> taxonomy();

/// A user may exhibit several modalities; `primary` is the one their usage
/// is attributed to in the headline tables.
struct ModalitySet {
  std::bitset<kModalityCount> members;
  Modality primary = Modality::kCapacityBatch;

  [[nodiscard]] bool has(Modality m) const {
    return members.test(static_cast<std::size_t>(m));
  }
  void add(Modality m) { members.set(static_cast<std::size_t>(m)); }
  [[nodiscard]] std::size_t count() const { return members.count(); }
};

}  // namespace tg
