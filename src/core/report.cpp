#include "core/report.hpp"

#include <map>
#include <set>

namespace tg {

int count_gateway_end_users(const UsageDatabase& db, SimTime from,
                            SimTime to) {
  std::set<std::string> labels;
  for (const auto& r : db.jobs()) {
    if (r.end_time >= from && r.end_time < to && !r.gateway_end_user.empty()) {
      labels.insert(r.gateway_end_user);
    }
  }
  return static_cast<int>(labels.size());
}

ModalityReport ModalityReport::build(const Platform& platform,
                                     const UsageDatabase& db,
                                     const RuleClassifier& classifier,
                                     SimTime from, SimTime to,
                                     FeatureConfig feature_config) {
  const FeatureExtractor extractor(platform, feature_config);
  const std::vector<UserFeatures> features = extractor.extract(db, from, to);
  const std::vector<ModalitySet> sets = classifier.classify(features);

  ModalityReport report;
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    report.rows_[m].modality = static_cast<Modality>(m);
  }
  for (std::size_t i = 0; i < features.size(); ++i) {
    const UserFeatures& f = features[i];
    const ModalitySet& s = sets[i];
    if (s.members.none()) continue;
    ++report.total_users_;
    report.total_jobs_ += f.jobs;
    report.total_nu_ += f.total_nu;
    for (std::size_t m = 0; m < kModalityCount; ++m) {
      if (s.members.test(m)) ++report.rows_[m].users;
    }
    auto& prow = report.rows_[static_cast<std::size_t>(s.primary)];
    ++prow.primary_users;
    prow.jobs += f.jobs;
    prow.nu += f.total_nu;
  }
  for (auto& row : report.rows_) {
    row.user_share = report.total_users_ > 0
                         ? static_cast<double>(row.primary_users) /
                               report.total_users_
                         : 0.0;
    row.nu_share = report.total_nu_ > 0 ? row.nu / report.total_nu_ : 0.0;
  }
  report.gateway_end_users_ = count_gateway_end_users(db, from, to);
  return report;
}

Table ModalityReport::to_table() const {
  Table t({"Modality", "Users", "Primary", "Jobs", "NUs (M)", "User %",
           "NU %"});
  for (const auto& row : rows_) {
    t.add_row({to_string(row.modality), Table::num(std::int64_t{row.users}),
               Table::num(std::int64_t{row.primary_users}),
               Table::num(static_cast<std::int64_t>(row.jobs)),
               Table::num(row.nu / 1e6, 3), Table::pct(row.user_share),
               Table::pct(row.nu_share)});
  }
  t.add_rule();
  t.add_row({"Total", Table::num(std::int64_t{total_users_}), "",
             Table::num(static_cast<std::int64_t>(total_jobs_)),
             Table::num(total_nu_ / 1e6, 3), "", ""});
  return t;
}

ModalityTimeSeries quarterly_series(const Platform& platform,
                                    const UsageDatabase& db,
                                    const RuleClassifier& classifier,
                                    SimTime from, SimTime to,
                                    FeatureConfig feature_config) {
  ModalityTimeSeries series;
  const FeatureExtractor extractor(platform, feature_config);
  for (SimTime q = from; q < to; q += series.bucket) {
    const SimTime qend = std::min(q + series.bucket, to);
    const auto features = extractor.extract(db, q, qend);
    const auto sets = classifier.classify(features);
    std::array<int, kModalityCount> counts{};
    for (const auto& s : sets) {
      if (s.members.none()) continue;
      ++counts[static_cast<std::size_t>(s.primary)];
    }
    series.primary_users.push_back(counts);
    series.gateway_end_users.push_back(count_gateway_end_users(db, q, qend));
  }
  return series;
}

}  // namespace tg
