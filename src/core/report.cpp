#include "core/report.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "parallel/thread_pool.hpp"

namespace tg {

int count_gateway_end_users(const UsageDatabase& db, SimTime from,
                            SimTime to) {
  const auto limit = static_cast<std::size_t>(db.end_user_id_limit());
  if (limit == 0) return 0;
  std::vector<std::uint8_t> seen(limit, 0);
  int count = 0;
  const auto mark = [&](const JobRecord& r) {
    if (!r.gateway_end_user.valid()) return;
    std::uint8_t& slot = seen[static_cast<std::size_t>(
        r.gateway_end_user.value())];
    count += 1 - slot;
    slot = 1;
  };
  if (db.segmented()) {
    for (const JobRecord* r : db.jobs_ending_in(from, to)) mark(*r);
    return count;
  }
  const UsageDatabase::RowRange range = db.job_window(from, to);
  if (range.contiguous) {
    for (std::uint32_t i = range.first; i < range.last; ++i) {
      mark(db.jobs()[i]);
    }
  } else {
    for (const auto& r : db.jobs()) {
      if (r.end_time >= from && r.end_time < to) mark(r);
    }
  }
  return count;
}

ModalityReport ModalityReport::build(const Platform& platform,
                                     const UsageDatabase& db,
                                     const RuleClassifier& classifier,
                                     SimTime from, SimTime to,
                                     FeatureConfig feature_config,
                                     ThreadPool* pool,
                                     obs::TraceBuffer* trace) {
  // Spans are stamped with the window end: analytics run post-horizon,
  // where the simulated clock no longer advances.
  const FeatureExtractor extractor(platform, feature_config);
  std::vector<UserFeatures> features;
  {
    obs::TraceSpan span(trace, to, obs::TraceCategory::kAnalytics,
                        obs::TracePoint::kFeatureExtract);
    features = extractor.extract(db, from, to, pool);
    span.set_payload(static_cast<std::int64_t>(features.size()));
  }
  std::vector<ModalitySet> sets;
  {
    obs::TraceSpan span(trace, to, obs::TraceCategory::kAnalytics,
                        obs::TracePoint::kClassify);
    sets = classifier.classify(features);
    span.set_payload(static_cast<std::int64_t>(sets.size()));
  }
  obs::TraceSpan aggregate_span(trace, to, obs::TraceCategory::kAnalytics,
                                obs::TracePoint::kAggregate);
  aggregate_span.set_payload(static_cast<std::int64_t>(kModalityCount));

  ModalityReport report;
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    report.rows_[m].modality = static_cast<Modality>(m);
  }
  for (std::size_t i = 0; i < features.size(); ++i) {
    const UserFeatures& f = features[i];
    const ModalitySet& s = sets[i];
    if (s.members.none()) continue;
    ++report.total_users_;
    report.total_jobs_ += f.jobs;
    report.total_nu_ += f.total_nu;
    for (std::size_t m = 0; m < kModalityCount; ++m) {
      if (s.members.test(m)) ++report.rows_[m].users;
    }
    auto& prow = report.rows_[static_cast<std::size_t>(s.primary)];
    ++prow.primary_users;
    prow.jobs += f.jobs;
    prow.nu += f.total_nu;
  }
  for (auto& row : report.rows_) {
    row.user_share = report.total_users_ > 0
                         ? static_cast<double>(row.primary_users) /
                               report.total_users_
                         : 0.0;
    row.nu_share = report.total_nu_ > 0 ? row.nu / report.total_nu_ : 0.0;
  }
  report.gateway_end_users_ = count_gateway_end_users(db, from, to);
  return report;
}

Table ModalityReport::to_table() const {
  Table t({"Modality", "Users", "Primary", "Jobs", "NUs (M)", "User %",
           "NU %"});
  for (const auto& row : rows_) {
    t.add_row({to_string(row.modality), Table::num(std::int64_t{row.users}),
               Table::num(std::int64_t{row.primary_users}),
               Table::num(static_cast<std::int64_t>(row.jobs)),
               Table::num(row.nu / 1e6, 3), Table::pct(row.user_share),
               Table::pct(row.nu_share)});
  }
  t.add_rule();
  t.add_row({"Total", Table::num(std::int64_t{total_users_}), "",
             Table::num(static_cast<std::int64_t>(total_jobs_)),
             Table::num(total_nu_ / 1e6, 3), "", ""});
  return t;
}

ModalityTimeSeries quarterly_series(const Platform& platform,
                                    const UsageDatabase& db,
                                    const RuleClassifier& classifier,
                                    SimTime from, SimTime to,
                                    FeatureConfig feature_config,
                                    ThreadPool* pool,
                                    obs::TraceBuffer* trace) {
  obs::TraceSpan span(trace, to, obs::TraceCategory::kAnalytics,
                      obs::TracePoint::kClassifySeries);
  ModalityTimeSeries series;
  const FeatureExtractor extractor(platform, feature_config);
  std::vector<std::pair<SimTime, SimTime>> windows;
  for (SimTime q = from; q < to; q += series.bucket) {
    windows.emplace_back(q, std::min(q + series.bucket, to));
  }
  struct WindowCounts {
    std::array<int, kModalityCount> primary{};
    int gateway_end_users = 0;
  };
  const auto one = [&](std::size_t i) {
    const auto [ws, we] = windows[i];
    // Sequential extraction inside: the fan-out here is across windows.
    const auto features = extractor.extract(db, ws, we);
    const auto sets = classifier.classify(features);
    WindowCounts counts;
    for (const auto& s : sets) {
      if (s.members.none()) continue;
      ++counts.primary[static_cast<std::size_t>(s.primary)];
    }
    counts.gateway_end_users = count_gateway_end_users(db, ws, we);
    return counts;
  };
  std::vector<WindowCounts> counted;
  if (pool != nullptr && pool->size() > 1 && windows.size() > 1) {
    // Each window only reads the database; force the lazy index build
    // before fanning out. Results land in index (chronological) order.
    db.ensure_indexes();
    counted = parallel_map<WindowCounts>(*pool, windows.size(), one);
  } else {
    counted.reserve(windows.size());
    for (std::size_t i = 0; i < windows.size(); ++i) {
      counted.push_back(one(i));
    }
  }
  for (const WindowCounts& c : counted) {
    series.primary_users.push_back(c.primary);
    series.gateway_end_users.push_back(c.gateway_end_users);
  }
  span.set_payload(static_cast<std::int64_t>(windows.size()));
  return series;
}

}  // namespace tg
