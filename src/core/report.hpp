// Modality reporting: the tables the paper wants the TeraGrid to produce.
#pragma once

#include <array>
#include <vector>

#include "core/classifier.hpp"
#include "core/modality.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace tg {

struct ModalityRow {
  Modality modality = Modality::kCapacityBatch;
  int users = 0;          ///< users exhibiting the modality (multi-member)
  int primary_users = 0;  ///< users attributed primarily to it
  long jobs = 0;          ///< jobs of primary-attributed users
  double nu = 0.0;        ///< NUs of primary-attributed users
  double user_share = 0.0;
  double nu_share = 0.0;
};

class ThreadPool;

class ModalityReport {
 public:
  /// Builds the modality usage report over the window [from, to). A
  /// non-null `pool` parallelizes the per-user feature extraction
  /// (deterministic: byte-identical output at any worker count). A
  /// non-null `trace` records extract/classify/aggregate spans — emitted
  /// from the coordinating thread only, so the trace stays deterministic
  /// at any worker count.
  static ModalityReport build(const Platform& platform,
                              const UsageDatabase& db,
                              const RuleClassifier& classifier, SimTime from,
                              SimTime to, FeatureConfig feature_config = {},
                              ThreadPool* pool = nullptr,
                              obs::TraceBuffer* trace = nullptr);

  [[nodiscard]] const std::array<ModalityRow, kModalityCount>& rows() const {
    return rows_;
  }
  [[nodiscard]] const ModalityRow& row(Modality m) const {
    return rows_[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] int total_users() const { return total_users_; }
  [[nodiscard]] long total_jobs() const { return total_jobs_; }
  [[nodiscard]] double total_nu() const { return total_nu_; }
  /// Distinct gateway end-user attributes observed (the paper's gateway
  /// user count; undercounts truth by the attribute-coverage gap).
  [[nodiscard]] int gateway_end_users() const { return gateway_end_users_; }

  /// Renders the headline table (T2).
  [[nodiscard]] Table to_table() const;

 private:
  std::array<ModalityRow, kModalityCount> rows_{};
  int total_users_ = 0;
  long total_jobs_ = 0;
  double total_nu_ = 0.0;
  int gateway_end_users_ = 0;
};

/// Quarterly active-user counts per modality — the F1 time-series figure.
/// Element [q][m] is the number of users whose quarter-q usage classifies
/// primarily as modality m; gateway end-user attribute counts are reported
/// separately in `gateway_end_users[q]`.
struct ModalityTimeSeries {
  std::vector<std::array<int, kModalityCount>> primary_users;
  std::vector<int> gateway_end_users;
  Duration bucket = kQuarter;
};

/// A non-null `pool` fans the (independent) quarterly windows out across
/// its workers and collects them in index order — byte-identical to the
/// sequential pass at any worker count. Must not be called from a task
/// already running on `pool`.
[[nodiscard]] ModalityTimeSeries quarterly_series(
    const Platform& platform, const UsageDatabase& db,
    const RuleClassifier& classifier, SimTime from, SimTime to,
    FeatureConfig feature_config = {}, ThreadPool* pool = nullptr,
    obs::TraceBuffer* trace = nullptr);

/// Distinct gateway end-user attributes in job records ending in [from,to).
/// One pass over the window's rows into a dense seen-bitmap sized by the
/// database's interned end-user id limit — no strings, no set.
[[nodiscard]] int count_gateway_end_users(const UsageDatabase& db,
                                          SimTime from, SimTime to);

}  // namespace tg
