#include "core/scoring.hpp"

#include "util/error.hpp"

namespace tg {

void ConfusionMatrix::add(Modality truth, Modality predicted) {
  ++counts_[static_cast<std::size_t>(truth)]
           [static_cast<std::size_t>(predicted)];
  ++total_;
}

long ConfusionMatrix::count(Modality truth, Modality predicted) const {
  return counts_[static_cast<std::size_t>(truth)]
                [static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  long correct = 0;
  for (std::size_t m = 0; m < kModalityCount; ++m) correct += counts_[m][m];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(Modality m) const {
  const auto col = static_cast<std::size_t>(m);
  long predicted = 0;
  for (std::size_t t = 0; t < kModalityCount; ++t) predicted += counts_[t][col];
  if (predicted == 0) return 0.0;
  return static_cast<double>(counts_[col][col]) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::recall(Modality m) const {
  const auto row = static_cast<std::size_t>(m);
  long truth = 0;
  for (std::size_t p = 0; p < kModalityCount; ++p) truth += counts_[row][p];
  if (truth == 0) return 0.0;
  return static_cast<double>(counts_[row][row]) / static_cast<double>(truth);
}

double ConfusionMatrix::f1(Modality m) const {
  const double p = precision(m);
  const double r = recall(m);
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  int classes = 0;
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    long truth = 0;
    for (std::size_t p = 0; p < kModalityCount; ++p) truth += counts_[m][p];
    if (truth == 0) continue;
    sum += f1(static_cast<Modality>(m));
    ++classes;
  }
  return classes > 0 ? sum / classes : 0.0;
}

Table ConfusionMatrix::to_table() const {
  std::vector<std::string> header{"truth \\ predicted"};
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    header.emplace_back(short_name(static_cast<Modality>(m)));
  }
  Table t(std::move(header));
  for (std::size_t truth = 0; truth < kModalityCount; ++truth) {
    std::vector<std::string> row{short_name(static_cast<Modality>(truth))};
    for (std::size_t pred = 0; pred < kModalityCount; ++pred) {
      row.push_back(Table::num(static_cast<std::int64_t>(counts_[truth][pred])));
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table ConfusionMatrix::per_class_table() const {
  Table t({"Modality", "Precision", "Recall", "F1"});
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    const auto mod = static_cast<Modality>(m);
    t.add_row({to_string(mod), Table::num(precision(mod), 3),
               Table::num(recall(mod), 3), Table::num(f1(mod), 3)});
  }
  return t;
}

ConfusionMatrix score_primary(const std::vector<Modality>& truth,
                              const std::vector<Modality>& predicted) {
  TG_REQUIRE(truth.size() == predicted.size(),
             "truth/predicted size mismatch");
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    cm.add(truth[i], predicted[i]);
  }
  return cm;
}

}  // namespace tg
