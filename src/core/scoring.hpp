// Ground-truth scoring of the classifier.
//
// In production the TeraGrid could never know a user's true modality — the
// paper's motivating problem. Our synthetic population carries its
// generating archetype, so here we can quantify how well the proposed
// measurement mechanisms recover the truth.
#pragma once

#include <array>
#include <vector>

#include "core/modality.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

namespace tg {

/// Ground-truth primary modality per user id (dense index).
struct GroundTruth {
  std::vector<Modality> primary;

  [[nodiscard]] Modality of(UserId u) const {
    return primary[static_cast<std::size_t>(u.value())];
  }
};

class ConfusionMatrix {
 public:
  /// Accumulates one (truth, predicted-primary) observation.
  void add(Modality truth, Modality predicted);

  [[nodiscard]] long count(Modality truth, Modality predicted) const;
  [[nodiscard]] long total() const { return total_; }
  [[nodiscard]] double accuracy() const;
  /// Of users predicted m, the fraction truly m.
  [[nodiscard]] double precision(Modality m) const;
  /// Of users truly m, the fraction predicted m.
  [[nodiscard]] double recall(Modality m) const;
  [[nodiscard]] double f1(Modality m) const;
  /// Unweighted mean F1 over modalities with any true members.
  [[nodiscard]] double macro_f1() const;

  [[nodiscard]] Table to_table() const;
  [[nodiscard]] Table per_class_table() const;

 private:
  std::array<std::array<long, kModalityCount>, kModalityCount> counts_{};
  long total_ = 0;
};

/// Scores aligned (truth, predicted) vectors.
[[nodiscard]] ConfusionMatrix score_primary(
    const std::vector<Modality>& truth,
    const std::vector<Modality>& predicted);

}  // namespace tg
