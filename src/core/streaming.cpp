#include "core/streaming.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace tg {

StreamingExtractor::StreamingExtractor(const Platform& platform,
                                       StreamingConfig config)
    : platform_(platform), config_(config), classifier_(config.thresholds) {
  TG_REQUIRE(config_.series_end > config_.series_start,
             "streaming series range is empty");
  TG_REQUIRE(config_.bucket > 0, "streaming bucket must be positive");
  TG_REQUIRE(config_.features.burst_window > 0 &&
                 config_.features.burst_min_jobs >= 2,
             "invalid burst parameters");
  window_from_ = config_.series_start;
  window_to_ = std::min(window_from_ + config_.bucket, config_.series_end);
}

bool StreamingExtractor::admit(SimTime t) {
  if (t < config_.series_start || t >= config_.series_end) {
    TG_METRIC_INC(stats_.records_dropped);
    return false;
  }
  TG_CHECK(!finished_, "record appended after finish()");
  TG_CHECK(t >= window_from_,
           "streaming record at t=" << t
                                    << " regressed before the open window ["
                                    << window_from_ << ", " << window_to_
                                    << ") — the accounting stream must be "
                                       "end-time monotone across windows");
  while (t >= window_to_) close_window();
  return true;
}

StreamingExtractor::UserState& StreamingExtractor::touch(UserId::rep uid) {
  const auto slot = static_cast<std::size_t>(uid);
  if (slot >= users_.size()) users_.resize(slot + 1);
  UserState& s = users_[slot];
  if (s.gen != window_gen_) {
    s.gen = window_gen_;
    s.jobs = 0;
    s.total_nu = 0.0;
    s.total_su = 0.0;
    s.bytes_read = 0.0;
    s.bytes_read_cached = 0.0;
    s.stage_in_s = 0.0;
    s.gateway = 0;
    s.workflow = 0;
    s.coalloc = 0;
    s.viz = 0;
    s.failed = 0;
    s.requeued = 0;
    s.outage_killed = 0;
    s.max_width_cores = 0;
    s.max_machine_fraction = 0.0;
    s.width_sum = 0.0;
    s.distinct_resources = 0;
    s.invalid_resource_seen = false;
    s.bytes_transferred = 0.0;
    s.sessions = 0;
    s.viz_sessions = 0;
    s.runtimes.clear();
    s.geometry.clear();
    s.seen_resources.clear();
    active_.push_back(static_cast<std::uint32_t>(slot));
  }
  return s;
}

void StreamingExtractor::mark_end_user(EndUserId id) {
  const auto slot = static_cast<std::size_t>(id.value());
  if (slot >= eu_stamp_.size()) eu_stamp_.resize(slot + 1, 0);
  if (eu_stamp_[slot] != window_gen_) {
    eu_stamp_[slot] = window_gen_;
    ++eu_count_;
  }
}

void StreamingExtractor::on_job(const JobRecord& r) {
  TG_METRIC_INC(stats_.jobs_ingested);
  if (!admit(r.end_time)) return;
  // The end-user attribute counts for every job record in the window,
  // exactly like count_gateway_end_users (user validity is irrelevant).
  if (r.gateway_end_user.valid()) mark_end_user(r.gateway_end_user);
  if (!r.user.valid()) return;
  UserState& s = touch(r.user.value());
  // Mirror FeatureExtractor::compute's per-job pass, same operations in
  // the same (append) order — the byte-identity contract hangs on this.
  ++s.jobs;
  s.total_nu += r.charged_nu;
  s.total_su += r.charged_su;
  s.bytes_read += r.bytes_read;
  s.bytes_read_cached += r.bytes_from_cache;
  s.stage_in_s += to_seconds(r.stage_in);
  if (r.gateway.valid()) ++s.gateway;
  if (r.workflow.valid()) ++s.workflow;
  if (r.coallocated) ++s.coalloc;
  if (r.interactive || r.viz_resource) ++s.viz;
  if (r.final_state == JobState::kFailed) ++s.failed;
  if (r.disposition == Disposition::kRequeued) ++s.requeued;
  if (r.disposition == Disposition::kKilledByOutage) ++s.outage_killed;
  s.max_width_cores = std::max(s.max_width_cores, r.width_cores());
  const ComputeResource& res = platform_.compute_at(r.resource);
  s.max_machine_fraction =
      std::max(s.max_machine_fraction,
               static_cast<double>(r.nodes) / res.nodes);
  s.width_sum += r.width_cores();
  s.runtimes.push_back(to_seconds(r.runtime()));
  s.geometry.push_back({r.nodes, r.requested_walltime, r.submit_time});
  if (r.resource.valid()) {
    if (std::find(s.seen_resources.begin(), s.seen_resources.end(),
                  r.resource.value()) == s.seen_resources.end()) {
      s.seen_resources.push_back(r.resource.value());
      ++s.distinct_resources;
    }
  } else if (!s.invalid_resource_seen) {
    s.invalid_resource_seen = true;
    ++s.distinct_resources;
  }
}

void StreamingExtractor::on_transfer(const TransferRecord& r) {
  TG_METRIC_INC(stats_.transfers_ingested);
  if (!admit(r.end_time)) return;
  if (!r.user.valid()) return;
  UserState& s = touch(r.user.value());
  s.bytes_transferred += r.bytes;
}

void StreamingExtractor::on_session(const SessionRecord& r) {
  TG_METRIC_INC(stats_.sessions_ingested);
  if (!admit(r.end_time)) return;
  if (!r.user.valid()) return;
  UserState& s = touch(r.user.value());
  ++s.sessions;
  if (r.viz) ++s.viz_sessions;
}

UserFeatures StreamingExtractor::finalize(UserState& s, UserId user) const {
  // The tail of FeatureExtractor::compute, verbatim, over the accumulated
  // state: same divisions, same runtime-sum order, same sort + percentile,
  // same shared burst counter.
  UserFeatures f;
  f.user = user;
  f.jobs = s.jobs;
  f.total_nu = s.total_nu;
  f.total_su = s.total_su;
  f.bytes_read = s.bytes_read;
  f.bytes_read_cached = s.bytes_read_cached;
  f.stage_in_s = s.stage_in_s;
  f.max_width_cores = s.max_width_cores;
  f.max_machine_fraction = s.max_machine_fraction;
  if (s.jobs > 0) {
    const double n = static_cast<double>(s.jobs);
    f.gateway_fraction = s.gateway / n;
    f.workflow_fraction = s.workflow / n;
    f.coalloc_fraction = s.coalloc / n;
    f.viz_fraction = s.viz / n;
    f.failed_fraction = s.failed / n;
    f.requeued_fraction = s.requeued / n;
    f.outage_killed_fraction = s.outage_killed / n;
    f.mean_width_cores = s.width_sum / n;
    double runtime_sum = 0.0;
    for (const double rt : s.runtimes) runtime_sum += rt;
    f.mean_runtime_s = runtime_sum / n;
    std::sort(s.runtimes.begin(), s.runtimes.end());
    f.median_runtime_s = percentile_sorted(s.runtimes, 0.5);
    f.burst_fraction = count_burst_jobs(s.geometry, config_.features.burst_window,
                                        config_.features.burst_min_jobs) /
                       n;
  }
  f.distinct_resources = s.distinct_resources;
  f.bytes_transferred = s.bytes_transferred;
  f.sessions = s.sessions;
  f.viz_sessions = s.viz_sessions;
  return f;
}

void StreamingExtractor::close_window() {
  TG_CHECK(window_from_ < config_.series_end, "no open window to close");
  // Batch extract walks users in id order; first-touch order sorts to the
  // same sequence.
  std::sort(active_.begin(), active_.end());
  window_.from = window_from_;
  window_.to = window_to_;
  window_.features.clear();
  window_.features.reserve(active_.size());
  for (const std::uint32_t uid : active_) {
    window_.features.push_back(
        finalize(users_[uid], UserId{static_cast<UserId::rep>(uid)}));
  }
  window_.sets = classifier_.classify(window_.features);
  window_.primary_users = {};
  WindowModalities mods(users_.size(), kInactiveUser);
  for (std::size_t i = 0; i < window_.features.size(); ++i) {
    const ModalitySet& set = window_.sets[i];
    if (set.members.none()) continue;
    mods[static_cast<std::size_t>(window_.features[i].user.value())] =
        static_cast<std::int8_t>(set.primary);
    ++window_.primary_users[static_cast<std::size_t>(set.primary)];
  }
  window_.gateway_end_users = eu_count_;
  TG_METRIC_INC(stats_.windows_closed);
  TG_METRIC_ADD(stats_.users_classified, window_.features.size());
  stats_.active_users_high_water.max_of(
      static_cast<double>(active_.size()));
  series_.push_back(std::move(mods));
  ts_primary_.push_back(window_.primary_users);
  ts_gateway_.push_back(window_.gateway_end_users);
  for (const auto& sink : sinks_) sink(window_);

  active_.clear();
  eu_count_ = 0;
  ++window_gen_;
  window_from_ = window_to_;
  window_to_ = std::min(window_from_ + config_.bucket, config_.series_end);
}

void StreamingExtractor::finish() {
  if (finished_) return;
  while (window_from_ < config_.series_end) close_window();
  // Uniform row length: earlier windows predate later users; pad them to
  // the final horizon so churn/trend see rectangular series.
  for (WindowModalities& w : series_) {
    w.resize(users_.size(), kInactiveUser);
  }
  finished_ = true;
}

const std::vector<WindowModalities>& StreamingExtractor::series() const {
  TG_REQUIRE(finished_, "series() requires finish()");
  return series_;
}

ModalityTimeSeries StreamingExtractor::time_series() const {
  TG_REQUIRE(finished_, "time_series() requires finish()");
  ModalityTimeSeries ts;
  ts.bucket = config_.bucket;
  ts.primary_users = ts_primary_;
  ts.gateway_end_users = ts_gateway_;
  return ts;
}

void StreamingExtractor::bind_metrics(obs::MetricsRegistry& registry) const {
  registry.bind_counter("streaming.jobs_ingested", stats_.jobs_ingested);
  registry.bind_counter("streaming.transfers_ingested",
                        stats_.transfers_ingested);
  registry.bind_counter("streaming.sessions_ingested",
                        stats_.sessions_ingested);
  registry.bind_counter("streaming.records_dropped", stats_.records_dropped);
  registry.bind_counter("streaming.windows_closed", stats_.windows_closed);
  registry.bind_counter("streaming.users_classified",
                        stats_.users_classified);
  registry.bind_gauge("streaming.active_users_high_water",
                      stats_.active_users_high_water);
}

}  // namespace tg
