// Streaming modality measurement: the incremental counterpart of the batch
// FeatureExtractor + classifier pipeline.
//
// A StreamingExtractor hangs off UsageDatabase's append observer and
// consumes the accounting stream record by record, maintaining per-user
// running feature state for the currently open quarter window. When a
// record's end time crosses the window boundary the open window closes:
// active users finalize (in id order), classify, and the quarterly series
// grows by one entry — classification happens *during* the run, and memory
// is bounded by one window's activity, never by total history.
//
// Equivalence contract (DESIGN.md §5.9): at every window boundary the
// finalized features are byte-identical to
// `FeatureExtractor::extract(db, from, to)` over the same records. This is
// achieved by replaying the batch path's exact floating-point operation
// order — per-user accumulators add in append order (the order batch
// iterates posting lists), the median sorts the same runtime array, and the
// burst fraction runs the same shared count_burst_jobs over an arena filled
// in the same order. No tolerance, no epsilon: memcmp-equal features.
//
// The live Recorder appends in completion-time order, so windows close in
// order; a record that regresses before the open window is a contract
// violation (TG_CHECK). Records ending before the series start or at/after
// the series end are outside every window and are dropped (counted).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "accounting/usage_db.hpp"
#include "core/classifier.hpp"
#include "core/features.hpp"
#include "core/report.hpp"
#include "core/trend.hpp"
#include "obs/metrics.hpp"

namespace tg {

struct StreamingConfig {
  /// Half-open measurement range [series_start, series_end), split into
  /// `bucket`-sized tumbling windows (the last window may be partial),
  /// exactly like quarterly_series(from, to).
  SimTime series_start = 0;
  SimTime series_end = 0;
  Duration bucket = kQuarter;
  FeatureConfig features;
  ClassifierThresholds thresholds;
};

/// One closed window, handed to the optional sink as it closes: the
/// finalized features (id-ordered, byte-identical to the batch extract of
/// the same window), their classifications, and the window's aggregate
/// counts.
struct StreamingWindow {
  SimTime from = 0;
  SimTime to = 0;
  std::vector<UserFeatures> features;
  std::vector<ModalitySet> sets;
  std::array<int, kModalityCount> primary_users{};
  int gateway_end_users = 0;
};

class StreamingExtractor final : public UsageDatabase::RecordObserver {
 public:
  StreamingExtractor(const Platform& platform, StreamingConfig config);

  // RecordObserver: one call per appended record, in stream order.
  void on_job(const JobRecord& r) override;
  void on_transfer(const TransferRecord& r) override;
  void on_session(const SessionRecord& r) override;

  /// Closes every remaining window (trailing windows with no records close
  /// empty) and pads earlier windows' modality rows to the final user id
  /// horizon so all entries have uniform length. Idempotent. Must be
  /// called before reading series()/time_series().
  void finish();
  [[nodiscard]] bool finished() const { return finished_; }

  /// Per-window primary modalities, densely indexed by user id — the
  /// streaming equivalent of classify_series. Available after finish().
  /// Entries are sized by the streaming user id horizon (users that only
  /// appear in dropped records don't widen it); pad against
  /// `db.user_id_limit()` when comparing with the batch path.
  [[nodiscard]] const std::vector<WindowModalities>& series() const;

  /// The F1 quarterly series — the streaming equivalent of
  /// quarterly_series. Available after finish().
  [[nodiscard]] ModalityTimeSeries time_series() const;

  /// Subscribes a sink invoked synchronously as each window closes (before
  /// finish() returns for the trailing windows), in subscription order.
  /// The StreamingWindow is reused across windows: copy out what you keep.
  /// Prefer Scenario::subscribe(), which forwards here.
  void add_window_sink(std::function<void(const StreamingWindow&)> sink) {
    sinks_.push_back(std::move(sink));
  }

  /// Deterministic ingest/classify counters (sim-stream functions only, no
  /// wall clock — DESIGN.md §5.5).
  struct Stats {
    obs::Counter jobs_ingested;
    obs::Counter transfers_ingested;
    obs::Counter sessions_ingested;
    /// Records outside [series_start, series_end) — never classified.
    obs::Counter records_dropped;
    obs::Counter windows_closed;
    obs::Counter users_classified;  ///< summed over closed windows
    obs::Gauge active_users_high_water;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Binds the counters under "streaming.*". Cells are borrowed: this
  /// extractor must outlive the registry's last snapshot.
  void bind_metrics(obs::MetricsRegistry& registry) const;

 private:
  /// Running feature state of one user inside the open window. The window
  /// generation stamp makes reset lazy: state resets on first touch after
  /// a window advance, so closing a window never walks the user slab.
  struct UserState {
    std::uint32_t gen = 0;
    int jobs = 0;
    double total_nu = 0.0;
    double total_su = 0.0;
    double bytes_read = 0.0;
    double bytes_read_cached = 0.0;
    double stage_in_s = 0.0;
    int gateway = 0;
    int workflow = 0;
    int coalloc = 0;
    int viz = 0;
    int failed = 0;
    int requeued = 0;
    int outage_killed = 0;
    int max_width_cores = 0;
    double max_machine_fraction = 0.0;
    double width_sum = 0.0;
    int distinct_resources = 0;
    bool invalid_resource_seen = false;
    double bytes_transferred = 0.0;
    int sessions = 0;
    int viz_sessions = 0;
    // Per-window buffers (cleared on reset, capacity retained): the only
    // state whose size scales with in-window activity.
    std::vector<double> runtimes;
    std::vector<BurstGeometry> geometry;
    std::vector<ResourceId::rep> seen_resources;
  };

  /// Admits a record ending at `t` into the open window, closing windows
  /// the stream has moved past. False (drop) when t is outside the series.
  bool admit(SimTime t);
  UserState& touch(UserId::rep uid);
  void mark_end_user(EndUserId id);
  void close_window();
  [[nodiscard]] UserFeatures finalize(UserState& s, UserId user) const;

  const Platform& platform_;
  StreamingConfig config_;
  RuleClassifier classifier_;

  SimTime window_from_ = 0;
  SimTime window_to_ = 0;
  std::uint32_t window_gen_ = 1;
  bool finished_ = false;

  std::vector<UserState> users_;        ///< dense by user id
  std::vector<std::uint32_t> active_;   ///< first-touch order; sorted on close
  std::vector<std::uint32_t> eu_stamp_; ///< gateway end-user seen stamps
  int eu_count_ = 0;

  StreamingWindow window_;  ///< reused across closes (sink sees it)
  std::vector<WindowModalities> series_;
  std::vector<std::array<int, kModalityCount>> ts_primary_;
  std::vector<int> ts_gateway_;

  std::vector<std::function<void(const StreamingWindow&)>> sinks_;
  Stats stats_;
};

}  // namespace tg
