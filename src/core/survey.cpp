#include "core/survey.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tg {

double SurveyEstimate::total_users() const {
  double total = 0.0;
  for (double u : users) total += u;
  return total;
}

SurveyEstimator::SurveyEstimator(SurveyConfig config) : config_(config) {
  TG_REQUIRE(config.sample_fraction > 0.0 && config.sample_fraction <= 1.0,
             "sample fraction must be in (0,1]");
  TG_REQUIRE(config.response_rate > 0.0 && config.response_rate <= 1.0,
             "response rate must be in (0,1]");
  TG_REQUIRE(config.misreport_rate >= 0.0 && config.misreport_rate < 1.0,
             "misreport rate must be in [0,1)");
  TG_REQUIRE(config.heavy_user_bias >= 0.0, "bias must be non-negative");
}

SurveyEstimate SurveyEstimator::run(const std::vector<Modality>& truth,
                                    const std::vector<double>& usage_weight,
                                    Rng& rng) const {
  TG_REQUIRE(usage_weight.empty() || usage_weight.size() == truth.size(),
             "usage weights misaligned with population");
  SurveyEstimate est;
  if (truth.empty()) return est;

  // Normalize weights to mean 1 so heavy_user_bias scales around the base
  // response rate.
  double mean_weight = 1.0;
  if (!usage_weight.empty()) {
    double sum = 0.0;
    for (double w : usage_weight) sum += w;
    mean_weight = std::max(1e-12, sum / static_cast<double>(truth.size()));
  }

  std::array<int, kModalityCount> responses{};
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (!rng.bernoulli(config_.sample_fraction)) continue;
    ++est.invited;
    double response = config_.response_rate;
    if (!usage_weight.empty() && config_.heavy_user_bias != 1.0) {
      const double rel = usage_weight[i] / mean_weight;
      // Interpolate the response rate toward heavy users: bias>1 means
      // users with above-average usage respond proportionally more.
      response *= std::pow(std::max(rel, 1e-3),
                           std::log2(std::max(config_.heavy_user_bias, 1e-3)));
      response = std::clamp(response, 0.0, 1.0);
    }
    if (!rng.bernoulli(response)) continue;
    ++est.responded;
    Modality reported = truth[i];
    if (rng.bernoulli(config_.misreport_rate)) {
      // Misreports land on a uniformly random *other* modality.
      const auto shift = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(kModalityCount) - 1));
      reported = static_cast<Modality>(
          (static_cast<std::size_t>(reported) + shift) % kModalityCount);
    }
    ++responses[static_cast<std::size_t>(reported)];
  }

  // Inverse-probability scaling from respondents to population. The
  // analyst knows the invitation fraction and observed response count; the
  // scale factor is population / respondents.
  if (est.responded > 0) {
    const double scale =
        static_cast<double>(truth.size()) / static_cast<double>(est.responded);
    for (std::size_t m = 0; m < kModalityCount; ++m) {
      est.users[m] = responses[m] * scale;
    }
  }
  return est;
}

double survey_mape(const SurveyEstimate& estimate,
                   const std::array<int, kModalityCount>& truth_counts) {
  double sum = 0.0;
  int classes = 0;
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    if (truth_counts[m] == 0) continue;
    sum += std::fabs(estimate.users[m] - truth_counts[m]) /
           static_cast<double>(truth_counts[m]);
    ++classes;
  }
  return classes > 0 ? sum / classes : 0.0;
}

std::array<int, kModalityCount> count_by_modality(
    const std::vector<Modality>& truth) {
  std::array<int, kModalityCount> counts{};
  for (Modality m : truth) ++counts[static_cast<std::size_t>(m)];
  return counts;
}

}  // namespace tg
