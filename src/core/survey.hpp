// Survey-based modality estimation.
//
// Besides instrumenting accounting records, the TeraGrid's other proposed
// way of learning usage modalities was to *ask*: user surveys and audits of
// allocation proposals. This module models that mechanism so the two can
// be compared quantitatively: a survey samples users, only some respond,
// respondents occasionally misreport, and population counts are estimated
// by inverse-probability scaling. The exp_survey_vs_records experiment
// pits this against the record-based classifier.
#pragma once

#include <array>
#include <vector>

#include "core/modality.hpp"
#include "core/scoring.hpp"
#include "util/rng.hpp"

namespace tg {

struct SurveyConfig {
  /// Fraction of the user population invited.
  double sample_fraction = 0.2;
  /// Fraction of invitees who answer.
  double response_rate = 0.35;
  /// Probability a respondent reports the wrong primary modality.
  double misreport_rate = 0.1;
  /// Response-rate multiplier for heavy users (charge-weighted bias:
  /// engaged users answer more often). 1.0 = unbiased.
  double heavy_user_bias = 1.0;
};

struct SurveyEstimate {
  /// Estimated number of users per primary modality (scaled to population).
  std::array<double, kModalityCount> users{};
  int invited = 0;
  int responded = 0;

  [[nodiscard]] double total_users() const;
};

/// Simulates one survey wave over a population with known true modalities.
/// `usage_weight` (optional, same length as `truth`) drives the
/// heavy-user response bias; pass empty for uniform response.
class SurveyEstimator {
 public:
  explicit SurveyEstimator(SurveyConfig config = {});

  [[nodiscard]] SurveyEstimate run(const std::vector<Modality>& truth,
                                   const std::vector<double>& usage_weight,
                                   Rng& rng) const;

  [[nodiscard]] const SurveyConfig& config() const { return config_; }

 private:
  SurveyConfig config_;
};

/// Mean absolute percentage error of an estimate against true per-modality
/// counts (classes with zero truth are skipped).
[[nodiscard]] double survey_mape(
    const SurveyEstimate& estimate,
    const std::array<int, kModalityCount>& truth_counts);

/// Helper: per-modality counts of a truth vector.
[[nodiscard]] std::array<int, kModalityCount> count_by_modality(
    const std::vector<Modality>& truth);

}  // namespace tg
