#include "core/trend.hpp"

#include <algorithm>
#include <cmath>

#include "core/features.hpp"
#include "parallel/thread_pool.hpp"

namespace tg {

WindowModalities classify_window(const Platform& platform,
                                 const UsageDatabase& db,
                                 const RuleClassifier& classifier,
                                 SimTime from, SimTime to,
                                 const FeatureConfig& features) {
  const FeatureExtractor extractor(platform, features);
  const auto feats = extractor.extract(db, from, to);
  const auto sets = classifier.classify(feats);
  WindowModalities out(static_cast<std::size_t>(db.user_id_limit()),
                       kInactiveUser);
  for (std::size_t i = 0; i < feats.size(); ++i) {
    if (!sets[i].members.none()) {
      out[static_cast<std::size_t>(feats[i].user.value())] =
          static_cast<std::int8_t>(sets[i].primary);
    }
  }
  return out;
}

std::vector<WindowModalities> classify_series(
    const Platform& platform, const UsageDatabase& db,
    const RuleClassifier& classifier, SimTime from, SimTime to,
    Duration bucket, const FeatureConfig& features, ThreadPool* pool,
    obs::TraceBuffer* trace) {
  // Stamped with the series end; emitted from the coordinating thread
  // only, so the span is identical at any worker count.
  obs::TraceSpan span(trace, to, obs::TraceCategory::kAnalytics,
                      obs::TracePoint::kClassifySeries);
  std::vector<SimTime> starts;
  for (SimTime q = from; q + bucket <= to; q += bucket) starts.push_back(q);
  span.set_payload(static_cast<std::int64_t>(starts.size()));
  const auto one = [&](std::size_t i) {
    return classify_window(platform, db, classifier, starts[i],
                           starts[i] + bucket, features);
  };
  if (pool != nullptr && pool->size() > 1 && starts.size() > 1) {
    db.ensure_indexes();  // keep the guarded lazy build off the fan-out
    return parallel_map<WindowModalities>(*pool, starts.size(), one);
  }
  std::vector<WindowModalities> series;
  series.reserve(starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i) series.push_back(one(i));
  return series;
}

long ModalityChurn::total_transitions() const {
  long total = 0;
  for (const auto& row : transitions) {
    for (long v : row) total += v;
  }
  return total;
}

double ModalityChurn::retention(Modality m) const {
  const auto row = static_cast<std::size_t>(m);
  long row_total = 0;
  for (long v : transitions[row]) row_total += v;
  if (row_total == 0) return 0.0;
  return static_cast<double>(transitions[row][row]) /
         static_cast<double>(row_total);
}

Table ModalityChurn::to_table() const {
  std::vector<std::string> header{"q -> q+1"};
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    header.emplace_back(short_name(static_cast<Modality>(m)));
  }
  header.emplace_back("left");
  Table t(std::move(header));
  for (std::size_t from = 0; from < kModalityCount; ++from) {
    std::vector<std::string> row{short_name(static_cast<Modality>(from))};
    for (std::size_t to = 0; to < kModalityCount; ++to) {
      row.push_back(Table::num(static_cast<std::int64_t>(
          transitions[from][to])));
    }
    row.push_back(Table::num(static_cast<std::int64_t>(departed[from])));
    t.add_row(std::move(row));
  }
  std::vector<std::string> arrivals{"(new)"};
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    arrivals.push_back(Table::num(static_cast<std::int64_t>(arrived[m])));
  }
  arrivals.emplace_back("-");
  t.add_rule();
  t.add_row(std::move(arrivals));
  return t;
}

ModalityChurn churn_from(const std::vector<WindowModalities>& series) {
  ModalityChurn churn;
  for (std::size_t q = 1; q < series.size(); ++q) {
    const WindowModalities& previous = series[q - 1];
    const WindowModalities& current = series[q];
    ++churn.quarter_pairs;
    // One linear sweep over the dense user axis; ids past a shorter
    // window's end are inactive in that window.
    const std::size_t n = std::max(previous.size(), current.size());
    for (std::size_t u = 0; u < n; ++u) {
      const std::int8_t was = u < previous.size() ? previous[u]
                                                  : kInactiveUser;
      const std::int8_t now = u < current.size() ? current[u]
                                                 : kInactiveUser;
      if (was >= 0 && now >= 0) {
        ++churn.transitions[static_cast<std::size_t>(was)]
                           [static_cast<std::size_t>(now)];
      } else if (was >= 0) {
        ++churn.departed[static_cast<std::size_t>(was)];
      } else if (now >= 0) {
        ++churn.arrived[static_cast<std::size_t>(now)];
      }
    }
  }
  return churn;
}

ModalityChurn compute_churn(const Platform& platform, const UsageDatabase& db,
                            const RuleClassifier& classifier, SimTime from,
                            SimTime to, Duration bucket,
                            FeatureConfig features, ThreadPool* pool,
                            obs::TraceBuffer* trace) {
  return churn_from(classify_series(platform, db, classifier, from, to,
                                    bucket, features, pool, trace));
}

ModalityTrend trend_from(const std::vector<WindowModalities>& series) {
  ModalityTrend trend;
  trend.quarters = static_cast<int>(series.size());
  if (series.size() < 2) return trend;
  std::array<int, kModalityCount> first{};
  std::array<int, kModalityCount> last{};
  for (const std::int8_t m : series.front()) {
    if (m >= 0) ++first[static_cast<std::size_t>(m)];
  }
  for (const std::int8_t m : series.back()) {
    if (m >= 0) ++last[static_cast<std::size_t>(m)];
  }
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    trend.first_quarter_users[m] = first[m];
    trend.last_quarter_users[m] = last[m];
    if (first[m] > 0 && last[m] > 0) {
      const double ratio =
          static_cast<double>(last[m]) / static_cast<double>(first[m]);
      trend.quarterly_growth[m] =
          std::pow(ratio, 1.0 / static_cast<double>(series.size() - 1)) - 1.0;
    }
  }
  return trend;
}

ModalityTrend compute_trend(const Platform& platform, const UsageDatabase& db,
                            const RuleClassifier& classifier, SimTime from,
                            SimTime to, Duration bucket,
                            FeatureConfig features, ThreadPool* pool,
                            obs::TraceBuffer* trace) {
  return trend_from(classify_series(platform, db, classifier, from, to,
                                    bucket, features, pool, trace));
}

}  // namespace tg
