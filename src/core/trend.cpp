#include "core/trend.hpp"

#include <cmath>
#include <map>

#include "core/features.hpp"

namespace tg {

namespace {

/// Window series for [from, to) in `bucket` steps, computed sequentially.
std::vector<std::map<UserId, Modality>> classify_series(
    const Platform& platform, const UsageDatabase& db,
    const RuleClassifier& classifier, SimTime from, SimTime to,
    Duration bucket, const FeatureConfig& features) {
  std::vector<std::map<UserId, Modality>> series;
  for (SimTime q = from; q + bucket <= to; q += bucket) {
    series.push_back(
        classify_window(platform, db, classifier, q, q + bucket, features));
  }
  return series;
}

}  // namespace

std::map<UserId, Modality> classify_window(const Platform& platform,
                                           const UsageDatabase& db,
                                           const RuleClassifier& classifier,
                                           SimTime from, SimTime to,
                                           const FeatureConfig& features) {
  const FeatureExtractor extractor(platform, features);
  const auto feats = extractor.extract(db, from, to);
  const auto sets = classifier.classify(feats);
  std::map<UserId, Modality> out;
  for (std::size_t i = 0; i < feats.size(); ++i) {
    if (!sets[i].members.none()) out[feats[i].user] = sets[i].primary;
  }
  return out;
}

long ModalityChurn::total_transitions() const {
  long total = 0;
  for (const auto& row : transitions) {
    for (long v : row) total += v;
  }
  return total;
}

double ModalityChurn::retention(Modality m) const {
  const auto row = static_cast<std::size_t>(m);
  long row_total = 0;
  for (long v : transitions[row]) row_total += v;
  if (row_total == 0) return 0.0;
  return static_cast<double>(transitions[row][row]) /
         static_cast<double>(row_total);
}

Table ModalityChurn::to_table() const {
  std::vector<std::string> header{"q -> q+1"};
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    header.emplace_back(short_name(static_cast<Modality>(m)));
  }
  header.emplace_back("left");
  Table t(std::move(header));
  for (std::size_t from = 0; from < kModalityCount; ++from) {
    std::vector<std::string> row{short_name(static_cast<Modality>(from))};
    for (std::size_t to = 0; to < kModalityCount; ++to) {
      row.push_back(Table::num(static_cast<std::int64_t>(
          transitions[from][to])));
    }
    row.push_back(Table::num(static_cast<std::int64_t>(departed[from])));
    t.add_row(std::move(row));
  }
  std::vector<std::string> arrivals{"(new)"};
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    arrivals.push_back(Table::num(static_cast<std::int64_t>(arrived[m])));
  }
  arrivals.emplace_back("-");
  t.add_rule();
  t.add_row(std::move(arrivals));
  return t;
}

ModalityChurn churn_from(
    const std::vector<std::map<UserId, Modality>>& series) {
  ModalityChurn churn;
  for (std::size_t q = 1; q < series.size(); ++q) {
    const auto& previous = series[q - 1];
    const auto& current = series[q];
    ++churn.quarter_pairs;
    for (const auto& [user, was] : previous) {
      const auto it = current.find(user);
      if (it == current.end()) {
        ++churn.departed[static_cast<std::size_t>(was)];
      } else {
        ++churn.transitions[static_cast<std::size_t>(was)]
                           [static_cast<std::size_t>(it->second)];
      }
    }
    for (const auto& [user, now] : current) {
      if (!previous.count(user)) {
        ++churn.arrived[static_cast<std::size_t>(now)];
      }
    }
  }
  return churn;
}

ModalityChurn compute_churn(const Platform& platform, const UsageDatabase& db,
                            const RuleClassifier& classifier, SimTime from,
                            SimTime to, Duration bucket,
                            FeatureConfig features) {
  return churn_from(
      classify_series(platform, db, classifier, from, to, bucket, features));
}

ModalityTrend trend_from(
    const std::vector<std::map<UserId, Modality>>& series) {
  ModalityTrend trend;
  trend.quarters = static_cast<int>(series.size());
  if (series.size() < 2) return trend;
  std::array<int, kModalityCount> first{};
  std::array<int, kModalityCount> last{};
  for (const auto& [user, m] : series.front()) {
    ++first[static_cast<std::size_t>(m)];
  }
  for (const auto& [user, m] : series.back()) {
    ++last[static_cast<std::size_t>(m)];
  }
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    trend.first_quarter_users[m] = first[m];
    trend.last_quarter_users[m] = last[m];
    if (first[m] > 0 && last[m] > 0) {
      const double ratio =
          static_cast<double>(last[m]) / static_cast<double>(first[m]);
      trend.quarterly_growth[m] =
          std::pow(ratio, 1.0 / static_cast<double>(series.size() - 1)) - 1.0;
    }
  }
  return trend;
}

ModalityTrend compute_trend(const Platform& platform, const UsageDatabase& db,
                            const RuleClassifier& classifier, SimTime from,
                            SimTime to, Duration bucket,
                            FeatureConfig features) {
  return trend_from(
      classify_series(platform, db, classifier, from, to, bucket, features));
}

}  // namespace tg
