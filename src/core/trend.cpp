#include "core/trend.hpp"

#include <cmath>
#include <map>

#include "core/features.hpp"

namespace tg {

namespace {

/// Primary modality per user for one window.
std::map<UserId, Modality> classify_window(const Platform& platform,
                                           const UsageDatabase& db,
                                           const RuleClassifier& classifier,
                                           SimTime from, SimTime to,
                                           const FeatureConfig& features) {
  const FeatureExtractor extractor(platform, features);
  const auto feats = extractor.extract(db, from, to);
  const auto sets = classifier.classify(feats);
  std::map<UserId, Modality> out;
  for (std::size_t i = 0; i < feats.size(); ++i) {
    if (!sets[i].members.none()) out[feats[i].user] = sets[i].primary;
  }
  return out;
}

}  // namespace

long ModalityChurn::total_transitions() const {
  long total = 0;
  for (const auto& row : transitions) {
    for (long v : row) total += v;
  }
  return total;
}

double ModalityChurn::retention(Modality m) const {
  const auto row = static_cast<std::size_t>(m);
  long row_total = 0;
  for (long v : transitions[row]) row_total += v;
  if (row_total == 0) return 0.0;
  return static_cast<double>(transitions[row][row]) /
         static_cast<double>(row_total);
}

Table ModalityChurn::to_table() const {
  std::vector<std::string> header{"q -> q+1"};
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    header.emplace_back(short_name(static_cast<Modality>(m)));
  }
  header.emplace_back("left");
  Table t(std::move(header));
  for (std::size_t from = 0; from < kModalityCount; ++from) {
    std::vector<std::string> row{short_name(static_cast<Modality>(from))};
    for (std::size_t to = 0; to < kModalityCount; ++to) {
      row.push_back(Table::num(static_cast<std::int64_t>(
          transitions[from][to])));
    }
    row.push_back(Table::num(static_cast<std::int64_t>(departed[from])));
    t.add_row(std::move(row));
  }
  std::vector<std::string> arrivals{"(new)"};
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    arrivals.push_back(Table::num(static_cast<std::int64_t>(arrived[m])));
  }
  arrivals.emplace_back("-");
  t.add_rule();
  t.add_row(std::move(arrivals));
  return t;
}

ModalityChurn compute_churn(const Platform& platform, const UsageDatabase& db,
                            const RuleClassifier& classifier, SimTime from,
                            SimTime to, Duration bucket,
                            FeatureConfig features) {
  ModalityChurn churn;
  std::map<UserId, Modality> previous;
  bool have_previous = false;
  for (SimTime q = from; q + bucket <= to; q += bucket) {
    auto current =
        classify_window(platform, db, classifier, q, q + bucket, features);
    if (have_previous) {
      ++churn.quarter_pairs;
      for (const auto& [user, was] : previous) {
        const auto it = current.find(user);
        if (it == current.end()) {
          ++churn.departed[static_cast<std::size_t>(was)];
        } else {
          ++churn.transitions[static_cast<std::size_t>(was)]
                             [static_cast<std::size_t>(it->second)];
        }
      }
      for (const auto& [user, now] : current) {
        if (!previous.count(user)) {
          ++churn.arrived[static_cast<std::size_t>(now)];
        }
      }
    }
    previous = std::move(current);
    have_previous = true;
  }
  return churn;
}

ModalityTrend compute_trend(const Platform& platform, const UsageDatabase& db,
                            const RuleClassifier& classifier, SimTime from,
                            SimTime to, Duration bucket,
                            FeatureConfig features) {
  ModalityTrend trend;
  std::vector<std::array<int, kModalityCount>> series;
  for (SimTime q = from; q + bucket <= to; q += bucket) {
    const auto window =
        classify_window(platform, db, classifier, q, q + bucket, features);
    std::array<int, kModalityCount> counts{};
    for (const auto& [user, m] : window) {
      ++counts[static_cast<std::size_t>(m)];
    }
    series.push_back(counts);
  }
  trend.quarters = static_cast<int>(series.size());
  if (series.size() < 2) return trend;
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    trend.first_quarter_users[m] = series.front()[m];
    trend.last_quarter_users[m] = series.back()[m];
    if (series.front()[m] > 0 && series.back()[m] > 0) {
      const double ratio = static_cast<double>(series.back()[m]) /
                           static_cast<double>(series.front()[m]);
      trend.quarterly_growth[m] =
          std::pow(ratio, 1.0 / static_cast<double>(series.size() - 1)) - 1.0;
    }
  }
  return trend;
}

}  // namespace tg
