// Quarter-over-quarter modality dynamics.
//
// The abstract's second clause — understand "how they go about achieving
// [their objectives] ... so that we can make changes in the TeraGrid to
// better support them" — needs more than a snapshot: it needs to know how
// users *move* between modalities (exploratory users graduating to
// capacity production, capacity users adopting ensembles, gateway-first
// users appearing). This module computes per-quarter transition (churn)
// matrices and modality growth rates from classified records.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/classifier.hpp"
#include "core/modality.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace tg {

class ThreadPool;

/// One classified window, densely indexed by user id: entry u is the
/// modality ordinal of user u's primary classification, or kInactiveUser
/// when u had no classified activity in the window. Every window drawn
/// from one database has the same length (the database's user_id_limit).
using WindowModalities = std::vector<std::int8_t>;
inline constexpr std::int8_t kInactiveUser = -1;

/// Primary modality per user with any classified activity in [from, to).
/// One entry of the quarterly series the churn/trend statistics run over;
/// windows are independent, so callers may compute them in parallel and
/// reduce with churn_from / trend_from.
[[nodiscard]] WindowModalities classify_window(
    const Platform& platform, const UsageDatabase& db,
    const RuleClassifier& classifier, SimTime from, SimTime to,
    const FeatureConfig& features = {});

/// The window series for [from, to) in `bucket` steps, chronological. With
/// a non-null `pool` the (independent, read-only) windows fan out across
/// its workers and land in index order — byte-identical to the sequential
/// pass at any worker count. Must not be called from a task already
/// running on `pool`.
[[nodiscard]] std::vector<WindowModalities> classify_series(
    const Platform& platform, const UsageDatabase& db,
    const RuleClassifier& classifier, SimTime from, SimTime to,
    Duration bucket = kQuarter, const FeatureConfig& features = {},
    ThreadPool* pool = nullptr, obs::TraceBuffer* trace = nullptr);

/// Transition counts between consecutive reporting quarters.
struct ModalityChurn {
  /// [from][to] = users primarily in `from` during quarter q that are
  /// primarily in `to` during quarter q+1 (summed over quarter pairs).
  std::array<std::array<long, kModalityCount>, kModalityCount> transitions{};
  /// Users active in q but not in q+1, by their quarter-q modality.
  std::array<long, kModalityCount> departed{};
  /// Users active in q+1 but not in q, by their quarter-(q+1) modality.
  std::array<long, kModalityCount> arrived{};
  int quarter_pairs = 0;

  [[nodiscard]] long total_transitions() const;
  /// Of users in `m` one quarter, the fraction still primarily `m` the
  /// next (diagonal mass / row mass; 0 if the row is empty).
  [[nodiscard]] double retention(Modality m) const;
  [[nodiscard]] Table to_table() const;
};

/// Churn over an already-classified window series (consecutive windows in
/// chronological order, as produced by classify_window per quarter).
[[nodiscard]] ModalityChurn churn_from(
    const std::vector<WindowModalities>& series);

/// Computes churn over consecutive `bucket`-sized windows of [from, to).
/// A non-null `pool` parallelizes the window classifications.
[[nodiscard]] ModalityChurn compute_churn(const Platform& platform,
                                          const UsageDatabase& db,
                                          const RuleClassifier& classifier,
                                          SimTime from, SimTime to,
                                          Duration bucket = kQuarter,
                                          FeatureConfig features = {},
                                          ThreadPool* pool = nullptr,
                                          obs::TraceBuffer* trace = nullptr);

/// Per-modality compound quarterly growth rate of primary-user counts over
/// the series (last vs first non-empty quarter, annualized per quarter).
struct ModalityTrend {
  std::array<double, kModalityCount> quarterly_growth{};  ///< e.g. 0.18 = +18%/q
  std::array<int, kModalityCount> first_quarter_users{};
  std::array<int, kModalityCount> last_quarter_users{};
  int quarters = 0;
};

/// Growth over an already-classified window series.
[[nodiscard]] ModalityTrend trend_from(
    const std::vector<WindowModalities>& series);

/// A non-null `pool` parallelizes the window classifications.
[[nodiscard]] ModalityTrend compute_trend(const Platform& platform,
                                          const UsageDatabase& db,
                                          const RuleClassifier& classifier,
                                          SimTime from, SimTime to,
                                          Duration bucket = kQuarter,
                                          FeatureConfig features = {},
                                          ThreadPool* pool = nullptr,
                                          obs::TraceBuffer* trace = nullptr);

}  // namespace tg
