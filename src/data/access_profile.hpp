// Data-access modelling types shared between the data grid and the workload
// layer.
//
// A DataAccessSpec is an *orthogonal archetype trait* (see
// workload/archetype_registry.hpp): it describes which datasets an
// archetype's jobs read — working-set size, popularity skew, per-job
// dataset count, dataset size distribution, replication degree — without
// saying anything about the archetype's compute shape. A DataAccessProfile
// is one job's resolved input set, drawn from those distributions; the
// DataGrid turns a profile into cache hits or WAN stage-in transfers whose
// latency delays the job's submission (Begy et al., "Simulating Data Access
// Profiles of Computational Jobs in Data Grids").
#pragma once

#include <cstdint>
#include <vector>

#include "des/time.hpp"
#include "util/ids.hpp"

namespace tg {

/// Per-archetype data-access trait. Disabled by default: an archetype with
/// `enabled == false` draws no datasets, consumes no randomness, and its
/// jobs carry zeroed data fields — the PR 3 zero-rate discipline, so
/// data-free runs are byte-identical to builds without this subsystem.
struct DataAccessSpec {
  bool enabled = false;
  /// Datasets in this archetype's community working set (the replica
  /// catalog gets one entry per dataset at scenario construction).
  int pool_datasets = 256;
  /// Zipf popularity skew over the pool (rank 1 = hottest dataset).
  double zipf_s = 1.1;
  /// Input datasets per job, uniform over [min, max].
  int datasets_min = 1;
  int datasets_max = 4;
  /// Dataset sizes: bounded Pareto (heavy tail of large inputs).
  double bytes_alpha = 1.4;
  double bytes_min = 5e9;   ///< 5 GB
  double bytes_max = 2e12;  ///< 2 TB
  /// Replica copies per dataset, placed on distinct random sites.
  int replicas = 2;

  DataAccessSpec& with_pool(int datasets) {
    pool_datasets = datasets;
    return *this;
  }
  DataAccessSpec& with_zipf(double s) {
    zipf_s = s;
    return *this;
  }
  DataAccessSpec& with_datasets_per_job(int min, int max) {
    datasets_min = min;
    datasets_max = max;
    return *this;
  }
  DataAccessSpec& with_bytes(double alpha, double min, double max) {
    bytes_alpha = alpha;
    bytes_min = min;
    bytes_max = max;
    return *this;
  }
  DataAccessSpec& with_replicas(int n) {
    replicas = n;
    return *this;
  }

  /// A ready-to-enable profile with the defaults above.
  [[nodiscard]] static DataAccessSpec enabled_defaults() {
    DataAccessSpec s;
    s.enabled = true;
    return s;
  }
};

/// One job's resolved input set (datasets are distinct; bytes are summed
/// from the catalog).
struct DataAccessProfile {
  std::vector<DatasetId> datasets;
  double total_bytes = 0.0;

  [[nodiscard]] bool empty() const { return datasets.empty(); }
};

/// What stage-in resolution hands back to the submitter.
struct StageInResult {
  double bytes_read = 0.0;        ///< total input bytes
  double bytes_from_cache = 0.0;  ///< served by the destination site cache
  Duration stage_in = 0;          ///< WAN transfer latency before submission
};

enum class CachePolicy : std::uint8_t {
  kLru,           ///< evict the least recently used dataset
  kSizeAwareLru,  ///< evict the largest dataset in the LRU tail window
};

[[nodiscard]] constexpr const char* to_string(CachePolicy p) {
  switch (p) {
    case CachePolicy::kLru: return "lru";
    case CachePolicy::kSizeAwareLru: return "size-aware";
  }
  return "unknown";
}

/// Scenario-level data grid configuration. Disabled by default; when
/// disabled no DataGrid is constructed, no "data" RNG substream is forked,
/// and every run is byte-identical to a build without src/data.
struct DataGridConfig {
  bool enabled = false;
  /// Per-site storage cache capacity in bytes.
  double site_cache_bytes = 50e12;  ///< 50 TB
  CachePolicy policy = CachePolicy::kLru;
  /// Analytic stage-in fallback when WAN flows are disabled: a miss of B
  /// bytes costs rtt + B / (wan_gbps Gb/s).
  double wan_gbps = 10.0;
  Duration wan_rtt = 50 * kMillisecond;

  DataGridConfig& with_cache_bytes(double bytes) {
    site_cache_bytes = bytes;
    return *this;
  }
  DataGridConfig& with_policy(CachePolicy p) {
    policy = p;
    return *this;
  }
  DataGridConfig& with_wan(double gbps, Duration rtt) {
    wan_gbps = gbps;
    wan_rtt = rtt;
    return *this;
  }

  [[nodiscard]] static DataGridConfig enabled_defaults() {
    DataGridConfig c;
    c.enabled = true;
    return c;
  }
};

}  // namespace tg
