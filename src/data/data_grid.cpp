#include "data/data_grid.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace tg {

DataGrid::DataGrid(Engine& engine, const Platform& platform,
                   FlowManager* flows, const DataGridConfig& config,
                   std::vector<DataAccessSpec> archetype_data, Rng rng)
    : engine_(engine), platform_(platform), flows_(flows), config_(config) {
  const auto nsites = platform.sites().size();
  TG_REQUIRE(nsites > 0, "data grid needs at least one site");
  caches_.reserve(nsites);
  for (std::size_t s = 0; s < nsites; ++s) {
    caches_.emplace_back(config.site_cache_bytes, config.policy);
  }
  // Pools are built in archetype order so the "data" substream's draw
  // sequence is a pure function of the registry — independent of sharding,
  // worker counts and flow timing.
  pools_.resize(archetype_data.size());
  for (std::size_t a = 0; a < archetype_data.size(); ++a) {
    const DataAccessSpec& spec = archetype_data[a];
    if (!spec.enabled) continue;
    TG_REQUIRE(spec.pool_datasets > 0, "enabled spec needs a dataset pool");
    TG_REQUIRE(spec.datasets_min >= 1 &&
                   spec.datasets_max >= spec.datasets_min,
               "invalid datasets-per-job range");
    Pool& pool = pools_[a];
    pool.datasets_min = spec.datasets_min;
    pool.datasets_max = spec.datasets_max;
    const BoundedPareto size_dist(spec.bytes_alpha, spec.bytes_min,
                                  spec.bytes_max);
    const int replicas =
        std::min<int>(std::max(1, spec.replicas), static_cast<int>(nsites));
    pool.datasets.reserve(static_cast<std::size_t>(spec.pool_datasets));
    for (int d = 0; d < spec.pool_datasets; ++d) {
      const DatasetId id =
          catalog_.add("a" + std::to_string(a) + "-ds-" + std::to_string(d),
                       size_dist.sample(rng));
      pool.datasets.push_back(id);
      // Distinct replica sites, first-draw order.
      for (int r = 0; r < replicas; ++r) {
        SiteId site{static_cast<SiteId::rep>(
            rng.uniform_int(0, static_cast<std::int64_t>(nsites) - 1))};
        while (std::find(catalog_.replicas(id).begin(),
                         catalog_.replicas(id).end(),
                         site) != catalog_.replicas(id).end()) {
          site = SiteId{static_cast<SiteId::rep>(
              (site.value() + 1) % static_cast<SiteId::rep>(nsites))};
        }
        catalog_.add_replica(id, site);
      }
    }
    pool.pick = std::make_unique<Zipf>(
        static_cast<std::size_t>(spec.pool_datasets), spec.zipf_s);
  }
}

bool DataGrid::has_pool(std::size_t archetype) const {
  return archetype < pools_.size() && pools_[archetype].pick != nullptr;
}

DataAccessProfile DataGrid::draw_profile(std::size_t archetype,
                                         Rng& rng) const {
  TG_REQUIRE(has_pool(archetype),
             "archetype " << archetype << " has no dataset pool");
  const Pool& pool = pools_[archetype];
  const int n = static_cast<int>(
      rng.uniform_int(pool.datasets_min, pool.datasets_max));
  DataAccessProfile profile;
  profile.datasets.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Zipf rank 1 = hottest dataset = pool index 0.
    const DatasetId id = pool.datasets[pool.pick->sample(rng) - 1];
    if (std::find(profile.datasets.begin(), profile.datasets.end(), id) !=
        profile.datasets.end()) {
      continue;  // duplicates collapse; the draw still consumed randomness
    }
    profile.datasets.push_back(id);
    profile.total_bytes += catalog_.bytes(id);
  }
  return profile;
}

void DataGrid::stage_in(ResourceId target, UserId user, ProjectId project,
                        DataAccessProfile profile,
                        std::function<void(const StageInResult&)> done) {
  TG_REQUIRE(done != nullptr, "stage_in needs a completion callback");
  const SiteId dst = platform_.compute_at(target).site;
  StorageCache& cache = caches_[static_cast<std::size_t>(dst.value())];

  auto pending = std::make_shared<PendingStageIn>();
  pending->started = engine_.now();
  pending->dst = dst;
  pending->done = std::move(done);
  pending->result.bytes_read = profile.total_bytes;

  // Transfer groups: missed bytes bucketed by nearest replica site, in
  // first-miss order.
  std::vector<std::pair<SiteId, double>> groups;
  for (const DatasetId d : profile.datasets) {
    const double bytes = catalog_.bytes(d);
    const auto& replicas = catalog_.replicas(d);
    TG_CHECK(!replicas.empty(), "dataset " << d << " has no replica");
    // A replica on the destination site is site-local storage: served
    // without touching the cache tier or the WAN.
    if (std::find(replicas.begin(), replicas.end(), dst) != replicas.end()) {
      continue;
    }
    if (cache.lookup(d, bytes)) {
      pending->result.bytes_from_cache += bytes;
      continue;
    }
    // Nearest source by path latency (lowest site id on ties); without a
    // flow manager there is no topology metric, so lowest id throughout.
    SiteId src = replicas.front();
    if (flows_ != nullptr) {
      Duration best = flows_->path_latency(src, dst);
      for (std::size_t i = 1; i < replicas.size(); ++i) {
        const Duration lat = flows_->path_latency(replicas[i], dst);
        if (lat < best || (lat == best && replicas[i] < src)) {
          best = lat;
          src = replicas[i];
        }
      }
    } else {
      src = *std::min_element(replicas.begin(), replicas.end());
    }
    auto group = std::find_if(groups.begin(), groups.end(),
                              [src](const auto& g) { return g.first == src; });
    if (group == groups.end()) {
      groups.emplace_back(src, bytes);
    } else {
      group->second += bytes;
    }
    pending->to_admit.push_back(d);
  }

  ++stats_.stage_ins;
  stats_.bytes_read += pending->result.bytes_read;
  stats_.bytes_from_cache += pending->result.bytes_from_cache;

  if (groups.empty()) {
    ++stats_.local_stage_ins;
    pending->result.stage_in = 0;
    pending->done(pending->result);
    return;
  }

  if (flows_ != nullptr) {
    pending->remaining = static_cast<int>(groups.size());
    for (const auto& [src, bytes] : groups) {
      stats_.bytes_transferred += bytes;
      ++stats_.transfers;
      flows_->start_transfer(src, dst, bytes, user, project,
                             [this, pending](const Flow&) {
                               if (--pending->remaining == 0) {
                                 finish_stage_in(pending);
                               }
                             });
    }
  } else {
    // Analytic fallback: the slowest group bounds the stage-in.
    const double bps = config_.wan_gbps * 1e9 / 8.0;
    Duration latency = 0;
    for (const auto& [src, bytes] : groups) {
      stats_.bytes_transferred += bytes;
      ++stats_.transfers;
      latency = std::max(
          latency, config_.wan_rtt + from_seconds(bytes / bps));
    }
    engine_.schedule_in(latency,
                        [this, pending] { finish_stage_in(pending); },
                        EventPriority::kSubmission);
  }
}

void DataGrid::finish_stage_in(const std::shared_ptr<PendingStageIn>& pending) {
  StorageCache& cache =
      caches_[static_cast<std::size_t>(pending->dst.value())];
  for (const DatasetId d : pending->to_admit) {
    cache.admit(d, catalog_.bytes(d));
  }
  pending->result.stage_in = engine_.now() - pending->started;
  stats_.stage_in_total += pending->result.stage_in;
  pending->done(pending->result);
}

CacheStats DataGrid::total_cache_stats() const {
  CacheStats total;
  for (const StorageCache& c : caches_) total += c.stats();
  return total;
}

void DataGrid::bind_metrics(obs::MetricsRegistry& registry) const {
  const CacheStats cache = total_cache_stats();
  registry.counter("data.cache.hits").set(cache.hits);
  registry.counter("data.cache.misses").set(cache.misses);
  registry.counter("data.cache.insertions").set(cache.insertions);
  registry.counter("data.cache.evictions").set(cache.evictions);
  registry.counter("data.cache.rejected").set(cache.rejected);
  registry.gauge("data.cache.bytes_hit").set(cache.bytes_hit);
  registry.gauge("data.cache.bytes_missed").set(cache.bytes_missed);
  registry.gauge("data.cache.bytes_evicted").set(cache.bytes_evicted);
  registry.counter("data.stage_ins").set(stats_.stage_ins);
  registry.counter("data.stage_ins_local").set(stats_.local_stage_ins);
  registry.counter("data.transfers").set(stats_.transfers);
  registry.gauge("data.bytes_read").set(stats_.bytes_read);
  registry.gauge("data.bytes_from_cache").set(stats_.bytes_from_cache);
  registry.gauge("data.bytes_transferred").set(stats_.bytes_transferred);
  registry.gauge("data.stage_in_total_s")
      .set(to_seconds(stats_.stage_in_total));
  registry.counter("data.datasets").set(catalog_.size());
}

}  // namespace tg
