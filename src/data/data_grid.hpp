// The data grid: replica catalog + per-site storage caches + the stage-in
// model.
//
// Construction seeds one dataset pool per archetype that carries an enabled
// DataAccessSpec (sizes from a bounded Pareto, replicas on distinct random
// sites) on a dedicated "data" RNG substream — traffic and fault randomness
// are never perturbed, and a scenario with no enabled spec forks nothing
// and draws nothing (zero-rate discipline).
//
// At campaign time the workload generator draws a DataAccessProfile from
// the job's archetype pool; at submission time stage_in() resolves the
// profile against the destination site's cache. Cache hits and datasets
// already replicated on the destination site are served locally; remaining
// datasets are grouped by their nearest replica site and staged over the
// WAN as real FlowManager transfers (they land in the accounting stream as
// TransferRecords). The job is submitted only when the last transfer
// completes, so stage-in latency feeds job wait exactly as the paper's
// data-intensive users experienced it.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "data/access_profile.hpp"
#include "data/replica_catalog.hpp"
#include "data/storage_cache.hpp"
#include "des/engine.hpp"
#include "infra/platform.hpp"
#include "net/flow.hpp"
#include "obs/metrics.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace tg {

class DataGrid {
 public:
  /// `archetype_data[i]` is archetype i's DataAccessSpec (disabled entries
  /// build no pool). `flows` may be null: stage-in then uses the analytic
  /// WAN model from `config` instead of real flows.
  DataGrid(Engine& engine, const Platform& platform, FlowManager* flows,
           const DataGridConfig& config,
           std::vector<DataAccessSpec> archetype_data, Rng rng);

  /// True when archetype `a` has an enabled spec (and therefore a pool).
  [[nodiscard]] bool has_pool(std::size_t archetype) const;

  /// Draws one job's input set from archetype `a`'s pool: dataset count
  /// uniform in [datasets_min, datasets_max], picks Zipf-skewed by
  /// popularity, duplicates collapsed. Requires has_pool(a).
  [[nodiscard]] DataAccessProfile draw_profile(std::size_t archetype,
                                               Rng& rng) const;

  /// Resolves `profile` at the site of `target` and hands the job's data
  /// fields to `done` — synchronously when everything is local, otherwise
  /// after the last stage-in transfer lands. Missed datasets are admitted
  /// to the site cache on arrival.
  void stage_in(ResourceId target, UserId user, ProjectId project,
                DataAccessProfile profile,
                std::function<void(const StageInResult&)> done);

  [[nodiscard]] const ReplicaCatalog& catalog() const { return catalog_; }
  [[nodiscard]] const StorageCache& cache(SiteId site) const {
    return caches_[static_cast<std::size_t>(site.value())];
  }
  /// Cache counters summed over every site.
  [[nodiscard]] CacheStats total_cache_stats() const;
  /// Stage-in aggregates (deterministic sim-stream counters).
  struct Stats {
    std::uint64_t stage_ins = 0;       ///< stage_in() calls
    std::uint64_t local_stage_ins = 0; ///< resolved without any WAN transfer
    std::uint64_t transfers = 0;       ///< WAN transfers started
    double bytes_read = 0.0;
    double bytes_from_cache = 0.0;
    double bytes_transferred = 0.0;
    Duration stage_in_total = 0;  ///< summed stage-in latency
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Binds "data.*" counters. The registry must not outlive this grid.
  void bind_metrics(obs::MetricsRegistry& registry) const;

 private:
  struct Pool {
    std::vector<DatasetId> datasets;  ///< rank order: [0] is hottest
    std::unique_ptr<Zipf> pick;
    int datasets_min = 1;
    int datasets_max = 1;
  };
  /// One in-flight stage-in joining its transfer group completions.
  struct PendingStageIn {
    int remaining = 0;
    SimTime started = 0;
    SiteId dst;
    StageInResult result;
    std::vector<DatasetId> to_admit;
    std::function<void(const StageInResult&)> done;
  };

  void finish_stage_in(const std::shared_ptr<PendingStageIn>& pending);

  Engine& engine_;
  const Platform& platform_;
  FlowManager* flows_;
  DataGridConfig config_;
  ReplicaCatalog catalog_;
  std::vector<StorageCache> caches_;  ///< dense by SiteId
  std::vector<Pool> pools_;           ///< dense by archetype index
  Stats stats_;
};

}  // namespace tg
