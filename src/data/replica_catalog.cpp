#include "data/replica_catalog.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tg {

std::size_t ReplicaCatalog::index(DatasetId id) const {
  TG_REQUIRE(id.valid() && static_cast<std::size_t>(id.value()) < size(),
             "unknown dataset id " << id);
  return static_cast<std::size_t>(id.value());
}

DatasetId ReplicaCatalog::add(std::string_view name, double bytes) {
  TG_REQUIRE(!name.empty(), "dataset name must be non-empty");
  TG_REQUIRE(bytes > 0.0, "dataset size must be positive");
  TG_REQUIRE(!names_.find(name).valid(),
             "dataset '" << name << "' registered twice");
  const auto pooled = names_.intern(name);
  const DatasetId id{static_cast<DatasetId::rep>(pooled.value())};
  TG_CHECK(static_cast<std::size_t>(id.value()) == bytes_.size(),
           "catalog ids must stay dense");
  bytes_.push_back(bytes);
  replicas_.emplace_back();
  return id;
}

void ReplicaCatalog::add_replica(DatasetId id, SiteId site) {
  auto& sites = replicas_[index(id)];
  if (std::find(sites.begin(), sites.end(), site) == sites.end()) {
    sites.push_back(site);
  }
}

std::string_view ReplicaCatalog::name(DatasetId id) const {
  return names_.at(EndUserId{static_cast<EndUserId::rep>(index(id))});
}

double ReplicaCatalog::replicated_bytes() const {
  double total = 0.0;
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    total += bytes_[i] * static_cast<double>(replicas_[i].size());
  }
  return total;
}

}  // namespace tg
