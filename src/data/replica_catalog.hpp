// The replica catalog: dataset names, sizes and replica locations.
//
// Models the grid-wide replica location service (RLS/LFC analogue): every
// dataset is registered once with its size, names are interned through the
// existing StringPool so the hot path moves dense 4-byte DatasetIds, and
// each dataset lists the sites holding a replica. The catalog is built at
// scenario construction and read-only afterwards.
#pragma once

#include <string_view>
#include <vector>

#include "util/ids.hpp"
#include "util/string_pool.hpp"

namespace tg {

class ReplicaCatalog {
 public:
  ReplicaCatalog() = default;

  /// Registers a dataset; the name is interned and the returned id is dense
  /// in first-registration order. Registering the same name twice is a bug
  /// (datasets are created once, by the DataGrid).
  DatasetId add(std::string_view name, double bytes);

  /// Adds a replica location (duplicates are ignored).
  void add_replica(DatasetId id, SiteId site);

  [[nodiscard]] double bytes(DatasetId id) const {
    return bytes_[index(id)];
  }
  [[nodiscard]] const std::vector<SiteId>& replicas(DatasetId id) const {
    return replicas_[index(id)];
  }
  [[nodiscard]] std::string_view name(DatasetId id) const;
  /// Number of datasets registered (ids are dense [0, size())).
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  /// Total replicated bytes (sum of size * replica count).
  [[nodiscard]] double replicated_bytes() const;

 private:
  [[nodiscard]] std::size_t index(DatasetId id) const;

  /// Dataset names; StringPool ids are dense in first-intern order, so a
  /// DatasetId and the pool id of its name share the same value.
  StringPool names_;
  std::vector<double> bytes_;
  std::vector<std::vector<SiteId>> replicas_;
};

}  // namespace tg
