#include "data/storage_cache.hpp"

#include "util/error.hpp"

namespace tg {

StorageCache::StorageCache(double capacity_bytes, CachePolicy policy)
    : capacity_bytes_(capacity_bytes), policy_(policy) {
  TG_REQUIRE(capacity_bytes > 0.0, "cache capacity must be positive");
}

std::int32_t StorageCache::slot_of(DatasetId id) const {
  if (!id.valid()) return kNil;
  const auto v = static_cast<std::size_t>(id.value());
  return v < slot_by_dataset_.size() ? slot_by_dataset_[v] : kNil;
}

bool StorageCache::contains(DatasetId id) const { return slot_of(id) != kNil; }

bool StorageCache::lookup(DatasetId id, double bytes) {
  const std::int32_t slot = slot_of(id);
  if (slot == kNil) {
    ++stats_.misses;
    stats_.bytes_missed += bytes;
    return false;
  }
  ++stats_.hits;
  stats_.bytes_hit += bytes;
  touch(slot);
  return true;
}

void StorageCache::admit(DatasetId id, double bytes) {
  TG_REQUIRE(id.valid(), "cannot admit the invalid dataset id");
  TG_REQUIRE(bytes > 0.0, "dataset bytes must be positive");
  std::int32_t slot = slot_of(id);
  if (slot != kNil) {
    touch(slot);
    return;
  }
  if (bytes > capacity_bytes_) {
    ++stats_.rejected;
    return;
  }
  while (used_bytes_ + bytes > capacity_bytes_) evict_one();
  if (free_slots_.empty()) {
    slot = static_cast<std::int32_t>(slab_.size());
    slab_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  e.id = id;
  e.bytes = bytes;
  const auto v = static_cast<std::size_t>(id.value());
  if (v >= slot_by_dataset_.size()) slot_by_dataset_.resize(v + 1, kNil);
  slot_by_dataset_[v] = slot;
  push_front(slot);
  used_bytes_ += bytes;
  ++resident_;
  ++stats_.insertions;
}

void StorageCache::touch(std::int32_t slot) {
  if (head_ == slot) return;
  unlink(slot);
  push_front(slot);
}

void StorageCache::unlink(std::int32_t slot) {
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  if (e.prev != kNil) {
    slab_[static_cast<std::size_t>(e.prev)].next = e.next;
  } else {
    head_ = e.next;
  }
  if (e.next != kNil) {
    slab_[static_cast<std::size_t>(e.next)].prev = e.prev;
  } else {
    tail_ = e.prev;
  }
  e.prev = e.next = kNil;
}

void StorageCache::push_front(std::int32_t slot) {
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  e.prev = kNil;
  e.next = head_;
  if (head_ != kNil) slab_[static_cast<std::size_t>(head_)].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

void StorageCache::evict_one() {
  TG_CHECK(tail_ != kNil, "eviction from an empty cache");
  std::int32_t victim = tail_;
  if (policy_ == CachePolicy::kSizeAwareLru) {
    // Largest dataset among the last kSizeAwareWindow LRU entries; on a
    // byte tie the least recently used (closest to the tail) wins, so the
    // choice is fully deterministic.
    std::int32_t cursor = tail_;
    double victim_bytes = slab_[static_cast<std::size_t>(victim)].bytes;
    for (int i = 0; i < kSizeAwareWindow && cursor != kNil;
         ++i, cursor = slab_[static_cast<std::size_t>(cursor)].prev) {
      const Entry& e = slab_[static_cast<std::size_t>(cursor)];
      if (e.bytes > victim_bytes) {
        victim = cursor;
        victim_bytes = e.bytes;
      }
    }
  }
  Entry& e = slab_[static_cast<std::size_t>(victim)];
  unlink(victim);
  slot_by_dataset_[static_cast<std::size_t>(e.id.value())] = kNil;
  used_bytes_ -= e.bytes;
  --resident_;
  ++stats_.evictions;
  stats_.bytes_evicted += e.bytes;
  e.id = DatasetId{};
  free_slots_.push_back(victim);
}

}  // namespace tg
