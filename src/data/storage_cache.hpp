// Per-site dataset storage cache.
//
// Each site fronts its WAN stage-ins with a bounded cache of whole datasets
// (the disk-cache tier of an HEP-style data federation). Two deterministic
// eviction policies: plain LRU, and a size-aware variant that evicts the
// largest dataset among the LRU tail window — large one-shot inputs leave
// first, small hot datasets survive. All counters are sim-deterministic;
// there is no wall-clock or randomness anywhere in this file.
//
// Implementation: an intrusive doubly-linked LRU list over a slab of
// entries, with a dense DatasetId -> slab slot table (dataset ids are dense
// small integers handed out by the ReplicaCatalog). Every operation is O(1)
// except an eviction sweep, which is O(evictions + tail window).
#pragma once

#include <cstdint>
#include <vector>

#include "data/access_profile.hpp"
#include "util/ids.hpp"

namespace tg {

/// Observability counters (hit/miss/eviction dynamics — what the cache
/// policy experiment sweeps).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Admissions skipped because the dataset alone exceeds capacity.
  std::uint64_t rejected = 0;
  double bytes_hit = 0.0;
  double bytes_missed = 0.0;
  double bytes_evicted = 0.0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
  [[nodiscard]] double byte_hit_rate() const {
    const double total = bytes_hit + bytes_missed;
    return total > 0.0 ? bytes_hit / total : 0.0;
  }

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    insertions += o.insertions;
    evictions += o.evictions;
    rejected += o.rejected;
    bytes_hit += o.bytes_hit;
    bytes_missed += o.bytes_missed;
    bytes_evicted += o.bytes_evicted;
    return *this;
  }
};

class StorageCache {
 public:
  StorageCache(double capacity_bytes, CachePolicy policy);

  /// True (and touches + counts a hit) if `id` is resident; counts a miss
  /// otherwise. `bytes` feeds the byte-level hit/miss counters.
  bool lookup(DatasetId id, double bytes);

  /// Inserts `id` after a miss was staged in, evicting per policy until it
  /// fits. A dataset larger than the whole cache is rejected (counted), not
  /// admitted. Admitting a resident dataset just touches it.
  void admit(DatasetId id, double bytes);

  /// Residency probe without stats side effects (tests, reporting).
  [[nodiscard]] bool contains(DatasetId id) const;

  [[nodiscard]] double used_bytes() const { return used_bytes_; }
  [[nodiscard]] double capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] std::size_t resident() const { return resident_; }
  [[nodiscard]] CachePolicy policy() const { return policy_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

 private:
  static constexpr std::int32_t kNil = -1;
  /// How deep into the LRU tail the size-aware policy looks for its victim.
  static constexpr int kSizeAwareWindow = 8;

  struct Entry {
    DatasetId id;
    double bytes = 0.0;
    std::int32_t prev = kNil;
    std::int32_t next = kNil;
  };

  void touch(std::int32_t slot);
  void unlink(std::int32_t slot);
  void push_front(std::int32_t slot);
  void evict_one();
  [[nodiscard]] std::int32_t slot_of(DatasetId id) const;

  double capacity_bytes_;
  CachePolicy policy_;
  double used_bytes_ = 0.0;
  std::size_t resident_ = 0;
  std::vector<Entry> slab_;
  std::vector<std::int32_t> free_slots_;
  std::vector<std::int32_t> slot_by_dataset_;  ///< dense by DatasetId value
  std::int32_t head_ = kNil;  ///< most recently used
  std::int32_t tail_ = kNil;  ///< least recently used
  CacheStats stats_;
};

}  // namespace tg
