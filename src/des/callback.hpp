// Small-buffer-optimized event callback.
//
// The DES hot path schedules millions of short-lived closures; std::function
// heap-allocates most of them and drags in RTTI machinery. EventCallback
// stores any callable whose captures fit in kInlineSize bytes directly inside
// the object (no allocation on schedule), falling back to the heap only for
// oversized captures. It is move-only: an event callback has exactly one
// owner (the engine slab) and is consumed when fired.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tg {

class EventCallback {
 public:
  /// Captures up to this size (and max_align_t alignment) are stored inline.
  static constexpr std::size_t kInlineSize = 48;

  EventCallback() noexcept = default;
  EventCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wraps any void() callable. Intentionally implicit so call sites keep
  /// passing plain lambdas, exactly as with std::function.
  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, EventCallback> &&
                                     !std::is_same_v<D, std::nullptr_t> &&
                                     std::is_invocable_r_v<void, D&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Replaces the held callable, constructing the new one in place (the
  /// engine uses this to build callbacks directly inside slab slots).
  template <class F, class D = std::decay_t<F>>
  void emplace(F&& f) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &heap_ops<D>;
    }
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Destroys the held callable (and frees its heap block, if any).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// True if a callable of type D is stored inline (diagnostics/tests).
  template <class D>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    void (*invoke)(std::byte*);
    void (*relocate)(std::byte* dst, std::byte* src);  // move + destroy src
    void (*destroy)(std::byte*);
  };

  template <class D>
  static constexpr Ops inline_ops = {
      [](std::byte* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](std::byte* dst, std::byte* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (static_cast<void*>(dst)) D(std::move(*s));
        s->~D();
      },
      [](std::byte* p) { std::launder(reinterpret_cast<D*>(p))->~D(); }};

  template <class D>
  static constexpr Ops heap_ops = {
      [](std::byte* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](std::byte* dst, std::byte* src) {
        ::new (static_cast<void*>(dst))
            D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](std::byte* p) { delete *std::launder(reinterpret_cast<D**>(p)); }};

  void move_from(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace tg
