#include "des/engine.hpp"

#include <algorithm>
#include <chrono>
#include <future>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace tg {

namespace detail {
thread_local EngineFireCtx* t_engine_fire_ctx = nullptr;
}  // namespace detail

namespace {

/// RAII installer for the thread-local fire context (exception-safe: a
/// throwing callback must not leave a dangling context on a pool thread).
class ScopedFireCtx {
 public:
  explicit ScopedFireCtx(detail::EngineFireCtx* ctx)
      : prev_(detail::t_engine_fire_ctx) {
    detail::t_engine_fire_ctx = ctx;
  }
  ~ScopedFireCtx() { detail::t_engine_fire_ctx = prev_; }
  ScopedFireCtx(const ScopedFireCtx&) = delete;
  ScopedFireCtx& operator=(const ScopedFireCtx&) = delete;

 private:
  detail::EngineFireCtx* prev_;
};

class ScopedTraceRedirect {
 public:
  explicit ScopedTraceRedirect(obs::TraceRedirect* redirect) {
    obs::TraceBuffer::set_thread_redirect(redirect);
  }
  ~ScopedTraceRedirect() { obs::TraceBuffer::set_thread_redirect(nullptr); }
  ScopedTraceRedirect(const ScopedTraceRedirect&) = delete;
  ScopedTraceRedirect& operator=(const ScopedTraceRedirect&) = delete;
};

}  // namespace

std::uint32_t Engine::acquire_slot(Partition& p, SimTime t) {
  TG_REQUIRE(t >= now(), "cannot schedule in the past: t=" << t << " now="
                                                           << now());
  if (!p.free_slots.empty()) {
    const std::uint32_t slot = p.free_slots.back();
    p.free_slots.pop_back();
    return slot;
  }
  TG_CHECK(p.slab_size < (1u << kSlotBits), "event slab exhausted");
  if ((p.slab_size >> kChunkShift) == p.chunks.size()) {
    p.chunks.push_back(std::make_unique<Slot[]>(std::size_t{1} << kChunkShift));
  }
  return p.slab_size++;
}

EventId Engine::commit_slot(Partition& p, std::uint32_t shard, SimTime t,
                            std::uint32_t slot, EventPriority priority,
                            EventClass cls) {
  if (const detail::EngineFireCtx* c = detail::t_engine_fire_ctx;
      c != nullptr && c->engine == this) {
    // Window workers may only extend their own partition's local stream;
    // anything cross-partition (or wall-class, which would tighten a cut
    // already handed to other workers) must come from a wall. Staged
    // effects run after their window closed and may not schedule at all.
    TG_CHECK(!c->replay, "staged effects must not schedule events");
    if (c->staging) {
      TG_CHECK(shard == c->shard && cls == EventClass::kLocal,
               "window events may only schedule kLocal events on their own "
               "partition (tried shard "
                   << shard << " from " << c->shard << ")");
    }
  }
  Slot& s = slot_ref(p, slot);
  s.armed = true;
  heap_push(p.heap[cls == EventClass::kLocal ? 1 : 0],
            Item{t, p.next_seq++, slot, static_cast<std::int32_t>(priority)});
  ++p.live;
  ++p.scheduled;
  const std::size_t depth = p.heap[0].size() + p.heap[1].size();
  if (depth > p.heap_high_water) p.heap_high_water = depth;
  return make_id(shard, slot, s.generation);
}

EventId Engine::schedule_at(SimTime t, Callback cb, EventPriority priority) {
  return schedule_at(t, std::move(cb), priority, default_binding());
}

EventId Engine::schedule_at(SimTime t, Callback cb, EventPriority priority,
                            EventBinding binding) {
  TG_REQUIRE(static_cast<bool>(cb), "event callback must not be null");
  Partition& p = partition_for(binding.shard);
  const std::uint32_t slot = acquire_slot(p, t);
  slot_ref(p, slot).cb = std::move(cb);
  return commit_slot(p, binding.shard, t, slot, priority, binding.cls);
}

EventId Engine::schedule_in(Duration dt, Callback cb, EventPriority priority) {
  return schedule_in(dt, std::move(cb), priority, default_binding());
}

EventId Engine::schedule_in(Duration dt, Callback cb, EventPriority priority,
                            EventBinding binding) {
  TG_REQUIRE(dt >= 0, "negative delay " << dt);
  return schedule_at(now() + dt, std::move(cb), priority, binding);
}

bool Engine::cancel(EventId id) {
  const std::uint32_t shard = shard_of(id);
  if (shard >= parts_.size()) return false;
  Partition& p = parts_[shard];
  const std::uint32_t slot = slot_of(id);
  if (slot >= p.slab_size) return false;
  Slot& s = slot_ref(p, slot);
  if (!s.armed || s.generation != generation_of(id)) return false;
  if (const detail::EngineFireCtx* c = detail::t_engine_fire_ctx;
      c != nullptr && c->engine == this) {
    TG_CHECK(!c->replay, "staged effects must not cancel events");
    TG_CHECK(!c->staging || shard == c->shard,
             "window events may only cancel events on their own partition");
  }
  // Tombstone: the heap entry stays and is reclaimed when it surfaces, but
  // the callback (and its captures) dies now.
  s.armed = false;
  s.cb.reset();
  --p.live;
  ++p.cancelled;
  return true;
}

void Engine::release(Partition& p, std::uint32_t slot) {
  Slot& s = slot_ref(p, slot);
  s.cb.reset();
  ++s.generation;  // invalidate any handle still pointing here
  p.free_slots.push_back(slot);
}

void Engine::heap_push(std::vector<Item>& heap, const Item& item) {
  heap.push_back(item);  // grows capacity; the value is overwritten below
  std::size_t hole = heap.size() - 1;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) >> 2;
    if (!before(item, heap[parent])) break;
    heap[hole] = heap[parent];
    hole = parent;
  }
  heap[hole] = item;
}

Engine::Item Engine::heap_pop(std::vector<Item>& heap) {
  const Item top = heap.front();
  const Item last = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size();
  if (n > 0) {
    // Bottom-up deletion (Wegener): walk the hole down to a leaf along the
    // best-child path without comparing against `last` (it nearly always
    // belongs near the bottom anyway), then sift `last` up from the leaf.
    // Saves one comparison per level and its branch misprediction, and the
    // upward phase terminates after O(1) expected steps.
    std::size_t hole = 0;
    std::size_t first;
    while ((first = (hole << 2) + 1) < n) {
      const std::size_t end = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(heap[c], heap[best])) best = c;
      }
      heap[hole] = heap[best];
      hole = best;
    }
    while (hole > 0) {
      const std::size_t parent = (hole - 1) >> 2;
      if (!before(last, heap[parent])) break;
      heap[hole] = heap[parent];
      hole = parent;
    }
    heap[hole] = last;
  }
  return top;
}

Engine::Item Engine::heap_remove(std::vector<Item>& heap, std::size_t pos) {
  const Item removed = heap[pos];
  const Item last = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size();
  if (pos < n) {
    std::size_t hole = pos;
    std::size_t first;
    while ((first = (hole << 2) + 1) < n) {
      const std::size_t end = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(heap[c], heap[best])) best = c;
      }
      heap[hole] = heap[best];
      hole = best;
    }
    while (hole > 0) {
      const std::size_t parent = (hole - 1) >> 2;
      if (!before(last, heap[parent])) break;
      heap[hole] = heap[parent];
      hole = parent;
    }
    heap[hole] = last;
  }
  return removed;
}

void Engine::skim(Partition& p, int h) {
  std::vector<Item>& heap = p.heap[h];
  while (!heap.empty()) {
    const std::uint32_t slot = heap.front().slot;
    if (slot_ref(p, slot).armed) return;
    heap_pop(heap);
    ++p.tombstones;
    release(p, slot);
  }
}

bool Engine::merged_step(SimTime bound) {
  // Pop the globally-minimal live event across every partition heap. The
  // scan is O(partitions); partition counts are small (a platform has ~a
  // dozen sites) and the single-partition case reduces to the classic
  // two-heap peek.
  Partition* best_p = nullptr;
  std::vector<Item>* best_heap = nullptr;
  Key best{};
  std::uint32_t best_shard = 0;
  for (std::uint32_t shard = 0; shard < parts_.size(); ++shard) {
    Partition& p = parts_[shard];
    for (int h = 0; h < 2; ++h) {
      skim(p, h);
      if (p.heap[h].empty()) continue;
      const Key k = key_of(p.heap[h].front(), shard);
      if (best_heap == nullptr || key_before(k, best)) {
        best = k;
        best_p = &p;
        best_heap = &p.heap[h];
        best_shard = shard;
      }
    }
  }
  if (best_heap == nullptr || best.time > bound) return false;

  Item item;
  if (choice_hook_ != nullptr) {
    // Model-checking path: present the whole (time, priority) tie set and
    // fire whichever member the hook picks. key_before already fixes the
    // full order, so the unhooked engine never consults anything but the
    // global min; the hook is how the explorer reaches the other orders.
    collect_tie_set(best);
    std::size_t pick = 0;
    if (tie_view_.size() > 1) {
      pick = choice_hook_->choose(tie_view_);
      TG_REQUIRE(pick < tie_view_.size(), "choice hook picked index "
                                              << pick << " of a tie set of "
                                              << tie_view_.size());
    }
    const TieEntry& chosen = tie_entries_[pick];
    best_shard = chosen.cand.shard;
    best_p = &parts_[best_shard];
    item = heap_remove(best_p->heap[chosen.h], chosen.pos);
    choice_hook_->on_fire(chosen.cand);
  } else {
    item = heap_pop(*best_heap);
  }
  Partition& p = *best_p;
  Slot& s = slot_ref(p, item.slot);
  TG_CHECK(item.time >= now_, "event queue went backwards");
  now_ = item.time;
  s.armed = false;
  --p.live;
  ++p.fired;
  // Invoke in place: chunk storage is stable, so `s` stays valid even if
  // the callback schedules (growing the slab) or cancels other events.
  // The slot itself is released only afterwards, so a handle to this
  // event stays stale (armed == false) rather than aliasing a new one.
  in_event_ = true;
  seq_fire_shard_ = best_shard;
  s.cb();
  in_event_ = false;
  seq_fire_shard_ = 0;
  s.cb.reset();
  release(p, item.slot);
  return true;
}

void Engine::collect_tie_set(const Key& best) {
  tie_entries_.clear();
  for (std::uint32_t shard = 0; shard < parts_.size(); ++shard) {
    Partition& p = parts_[shard];
    for (int h = 0; h < 2; ++h) {
      std::vector<Item>& heap = p.heap[h];
      if (heap.empty() || heap[0].time != best.time ||
          heap[0].priority != best.priority) {
        continue;
      }
      // Heap order is (time, priority, seq), so an entry matching the top
      // in (time, priority) has ancestors that all match too: the matches
      // are one connected subtree and the walk below never visits a
      // non-matching node's children.
      tie_walk_.clear();
      tie_walk_.push_back(0);
      while (!tie_walk_.empty()) {
        const std::size_t pos = tie_walk_.back();
        tie_walk_.pop_back();
        const Item& it = heap[pos];
        if (it.time != best.time || it.priority != best.priority) continue;
        if (slot_ref(p, it.slot).armed) {  // tombstones link, never fire
          tie_entries_.push_back(TieEntry{
              ChoiceHook::Candidate{
                  it.time, it.priority, shard, it.seq,
                  h == 1 ? EventClass::kLocal : EventClass::kBarrier,
                  p.serialize_count > 0},
              h, pos});
        }
        const std::size_t first = (pos << 2) + 1;
        const std::size_t end =
            first + 4 < heap.size() ? first + 4 : heap.size();
        for (std::size_t c = first; c < end; ++c) tie_walk_.push_back(c);
      }
    }
  }
  std::sort(tie_entries_.begin(), tie_entries_.end(),
            [](const TieEntry& a, const TieEntry& b) {
              if (a.cand.shard != b.cand.shard) {
                return a.cand.shard < b.cand.shard;
              }
              return a.cand.seq < b.cand.seq;
            });
  tie_view_.clear();
  for (const TieEntry& e : tie_entries_) tie_view_.push_back(e.cand);
}

void Engine::set_choice_hook(ChoiceHook* hook) {
  TG_REQUIRE(hook == nullptr || !windows_enabled_,
             "choice hook requires merged execution (disable windows)");
  TG_REQUIRE(!in_event(), "cannot swap the choice hook from inside an event");
  choice_hook_ = hook;
}

void Engine::stage_trace_thunk(void* ctx, obs::TraceBuffer* target,
                               const obs::TraceEvent& event) {
  auto* c = static_cast<detail::EngineFireCtx*>(ctx);
  Partition& p = c->engine->parts_[c->shard];
  p.staged.push_back(Effect{Key{c->now, c->priority, c->shard, c->seq},
                            c->ordinal++, target, event, {}});
}

void Engine::stage_effect(std::function<void()> effect) {
  detail::EngineFireCtx* c = detail::t_engine_fire_ctx;
  TG_REQUIRE(c != nullptr && c->engine == this && c->staging,
             "stage_effect is only valid inside a window");
  Partition& p = parts_[c->shard];
  p.staged.push_back(Effect{Key{c->now, c->priority, c->shard, c->seq},
                            c->ordinal++, nullptr, obs::TraceEvent{},
                            std::move(effect)});
}

std::size_t Engine::run_window_partition(std::uint32_t shard,
                                         const Key& cut) {
  Partition& p = parts_[shard];
  detail::EngineFireCtx ctx;
  ctx.engine = this;
  ctx.shard = shard;
  ctx.staging = true;
  obs::TraceRedirect redirect{&Engine::stage_trace_thunk, &ctx, 0};
  ScopedFireCtx ctx_guard(&ctx);
  ScopedTraceRedirect redirect_guard(&redirect);

  std::size_t fired = 0;
  std::vector<Item>& local = p.heap[1];
  for (;;) {
    skim(p, 1);
    if (local.empty()) break;
    if (!key_before(key_of(local.front(), shard), cut)) break;
    const Item item = heap_pop(local);
    Slot& s = slot_ref(p, item.slot);
    ctx.now = item.time;
    ctx.priority = item.priority;
    ctx.seq = item.seq;
    ctx.ordinal = 0;
    s.armed = false;
    --p.live;
    ++p.fired;
    ++fired;
    s.cb();
    s.cb.reset();
    release(p, item.slot);
  }
  // Only this worker writes its partition; the driver reads after the
  // join, so the clock sync below is race-free.
  if (fired > 0) p.window_last = ctx.now;
  p.window_fired.add(fired);
  return fired;
}

void Engine::replay_staged() {
  std::size_t total = 0;
  for (Partition& p : parts_) total += p.staged.size();
  if (total == 0) return;
  replay_scratch_.clear();
  replay_scratch_.reserve(total);
  for (Partition& p : parts_) {
    for (Effect& e : p.staged) replay_scratch_.push_back(std::move(e));
    p.staged.clear();
  }
  // (key, ordinal) is a strict total order: keys are unique per event and
  // ordinals number the emissions within one event.
  std::sort(replay_scratch_.begin(), replay_scratch_.end(),
            [](const Effect& a, const Effect& b) {
              if (key_before(a.key, b.key)) return true;
              if (key_before(b.key, a.key)) return false;
              return a.ordinal < b.ordinal;
            });
  detail::EngineFireCtx ctx;
  ctx.engine = this;
  ctx.replay = true;
  ScopedFireCtx ctx_guard(&ctx);
  for (Effect& e : replay_scratch_) {
    if (e.trace_target != nullptr) {
      e.trace_target->append_prestamped(e.trace);
    } else {
      ctx.now = e.key.time;
      ctx.shard = e.key.shard;
      e.sink();
    }
  }
  shard_stats_.staged_effects.add(total);
  replay_scratch_.clear();
}

bool Engine::try_window_round(SimTime t, std::size_t& fired) {
  // The cut: strictly below the earliest wall, and never past the end of
  // the run_until target (the first canonical key with time > t bounds the
  // round when no wall does).
  Key cut{t < kMaxSimTime ? t + 1 : kMaxSimTime, INT32_MIN, 0, 0};
  for (std::uint32_t shard = 0; shard < parts_.size(); ++shard) {
    Partition& p = parts_[shard];
    skim(p, 0);
    if (!p.heap[0].empty()) {
      const Key k = key_of(p.heap[0].front(), shard);
      if (key_before(k, cut)) cut = k;
    }
    if (p.serialize_count > 0) {
      // A serialized partition's locals fire on the merged loop, where
      // they may schedule cross-partition — so, like walls, nothing may
      // run past them.
      skim(p, 1);
      if (!p.heap[1].empty()) {
        const Key k = key_of(p.heap[1].front(), shard);
        if (key_before(k, cut)) cut = k;
      }
    }
  }
  eligible_.clear();
  for (std::uint32_t shard = 0; shard < parts_.size(); ++shard) {
    Partition& p = parts_[shard];
    if (p.serialize_count > 0) continue;
    skim(p, 1);
    if (p.heap[1].empty()) continue;
    if (key_before(key_of(p.heap[1].front(), shard), cut)) {
      eligible_.push_back(shard);
    }
  }
  // A round needs >= 2 partitions to overlap; a lone eligible partition is
  // cheaper on the merged loop (same canonical order either way).
  if (eligible_.size() < 2) return false;

  shard_stats_.window_rounds.inc();
  shard_stats_.window_horizon_ms.observe(
      static_cast<double>(cut.time - now_));
  std::size_t round_fired = 0;
  if (pool_ != nullptr) {
    std::vector<std::future<std::size_t>> futures;
    futures.reserve(eligible_.size());
    for (const std::uint32_t shard : eligible_) {
      futures.push_back(pool_->submit(
          [this, shard, cut] { return run_window_partition(shard, cut); }));
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (auto& f : futures) round_fired += f.get();
    const auto t1 = std::chrono::steady_clock::now();
    shard_stats_.barrier_wait_ns.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  } else {
    for (const std::uint32_t shard : eligible_) {
      round_fired += run_window_partition(shard, cut);
    }
  }
  shard_stats_.window_events.add(round_fired);
  // Sync the driver clock to the round's last fired event — the merged
  // oracle would have advanced now_ through exactly these events, and
  // callers read now() after the run (e.g. the report window end).
  // Every eligible partition fired at least one event (eligibility
  // checked a live local below the cut), so window_last is fresh.
  for (const std::uint32_t shard : eligible_) {
    now_ = std::max(now_, parts_[shard].window_last);
  }
  replay_staged();
  fired += round_fired;
  return true;
}

void Engine::bind_metrics(obs::MetricsRegistry& registry) const {
  refresh_stats();
  registry.bind_counter("engine.events_scheduled", stats_.scheduled);
  registry.bind_counter("engine.events_cancelled", stats_.cancelled);
  registry.bind_counter("engine.events_fired", stats_.fired);
  registry.bind_counter("engine.heap_tombstones", stats_.tombstones);
  registry.bind_gauge("engine.heap_high_water", stats_.heap_high_water);
}

void Engine::bind_shard_metrics(obs::MetricsRegistry& registry) const {
  registry.bind_counter("shard.window_rounds", shard_stats_.window_rounds);
  registry.bind_counter("shard.window_events", shard_stats_.window_events);
  registry.bind_counter("shard.staged_effects", shard_stats_.staged_effects);
  registry.bind_counter("shard.barrier_wait_ns",
                        shard_stats_.barrier_wait_ns);
  registry.bind_histogram("shard.window_horizon_ms",
                          shard_stats_.window_horizon_ms);
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    std::string name = "shard.p";
    name += static_cast<char>('0' + i / 10);
    name += static_cast<char>('0' + i % 10);
    name += ".window_events";
    registry.bind_counter(name, parts_[i].window_fired);
  }
}

void Engine::refresh_stats() const {
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t fired = 0;
  std::uint64_t tombstones = 0;
  std::size_t high_water = 0;
  for (const Partition& p : parts_) {
    scheduled += p.scheduled;
    cancelled += p.cancelled;
    fired += p.fired;
    tombstones += p.tombstones;
    high_water += p.heap_high_water;
  }
  stats_.scheduled.set(scheduled);
  stats_.cancelled.set(cancelled);
  stats_.fired.set(fired);
  stats_.tombstones.set(tombstones);
  stats_.heap_high_water.set(static_cast<double>(high_water));
}

std::size_t Engine::pending() const {
  std::size_t live = 0;
  for (const Partition& p : parts_) live += p.live;
  return live;
}

std::uint64_t Engine::events_processed() const {
  std::uint64_t fired = 0;
  for (const Partition& p : parts_) fired += p.fired;
  return fired;
}

const Engine::Stats& Engine::stats() const {
  refresh_stats();
  return stats_;
}

void Engine::configure_partitions(std::uint32_t count) {
  TG_REQUIRE(count >= 1 && count <= kMaxPartitions,
             "partition count " << count << " outside 1.." << kMaxPartitions);
  TG_REQUIRE(now_ == 0 && !in_event_ && pending() == 0 &&
                 events_processed() == 0,
             "configure_partitions requires a pristine engine: the "
             "partition id is part of the canonical event order");
  parts_.clear();
  parts_.resize(count);
}

void Engine::set_window_execution(bool enabled, ThreadPool* pool) {
  TG_REQUIRE(!enabled || choice_hook_ == nullptr,
             "windowed execution is incompatible with a choice hook");
  windows_enabled_ = enabled;
  pool_ = enabled ? pool : nullptr;
}

void Engine::serialize_partition(std::uint32_t shard, bool on) {
  if (const detail::EngineFireCtx* c = detail::t_engine_fire_ctx;
      c != nullptr && c->engine == this) {
    TG_CHECK(!c->staging && !c->replay,
             "serialize_partition is sequential-context only");
  }
  Partition& p = partition_for(shard);
  p.serialize_count += on ? 1 : -1;
  TG_CHECK(p.serialize_count >= 0, "unbalanced serialize_partition calls");
}

std::size_t Engine::drain(SimTime t) {
  std::size_t n = 0;
  const bool windowed = windows_enabled_ && parts_.size() > 1;
  while (!stopped_) {
    if (windowed && try_window_round(t, n)) continue;
    if (!merged_step(t)) break;
    ++n;
  }
  return n;
}

std::size_t Engine::run() {
  stopped_ = false;
  const std::size_t n = drain(kMaxSimTime);
  refresh_stats();
  return n;
}

std::size_t Engine::run_until(SimTime t) {
  TG_REQUIRE(t >= now_, "run_until into the past");
  stopped_ = false;
  const std::size_t n = drain(t);
  if (!stopped_) now_ = std::max(now_, t);
  refresh_stats();
  return n;
}

}  // namespace tg
