#include "des/engine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tg {

EventId Engine::schedule_at(SimTime t, Callback cb, EventPriority priority) {
  TG_REQUIRE(t >= now_, "cannot schedule in the past: t=" << t
                                                          << " now=" << now_);
  TG_REQUIRE(cb != nullptr, "event callback must not be null");
  const EventId id = next_id_++;
  heap_.push(Item{t, static_cast<int>(priority), id, std::move(cb)});
  live_.insert(id);
  return id;
}

EventId Engine::schedule_in(Duration dt, Callback cb, EventPriority priority) {
  TG_REQUIRE(dt >= 0, "negative delay " << dt);
  return schedule_at(now_ + dt, std::move(cb), priority);
}

bool Engine::cancel(EventId id) {
  // Lazy cancellation: the heap item remains and is skipped on pop.
  return live_.erase(id) > 0;
}

bool Engine::step() {
  while (!heap_.empty()) {
    // priority_queue exposes only a const top(); the cast is safe because we
    // pop the element immediately after moving from it.
    Item item = std::move(const_cast<Item&>(heap_.top()));
    heap_.pop();
    if (live_.erase(item.id) == 0) continue;  // cancelled
    TG_CHECK(item.time >= now_, "event queue went backwards");
    now_ = item.time;
    ++processed_;
    item.cb();
    return true;
  }
  return false;
}

std::size_t Engine::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::size_t Engine::run_until(SimTime t) {
  TG_REQUIRE(t >= now_, "run_until into the past");
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && !heap_.empty()) {
    // Peek through cancelled items to find the next live event time.
    while (!heap_.empty() && live_.count(heap_.top().id) == 0) {
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().time > t) break;
    if (step()) ++n;
  }
  if (!stopped_) now_ = std::max(now_, t);
  return n;
}

}  // namespace tg
