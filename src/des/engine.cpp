#include "des/engine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tg {

std::uint32_t Engine::acquire_slot(SimTime t) {
  TG_REQUIRE(t >= now_, "cannot schedule in the past: t=" << t
                                                          << " now=" << now_);
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  TG_CHECK(slab_size_ < UINT32_MAX, "event slab exhausted");
  if ((slab_size_ >> kChunkShift) == chunks_.size()) {
    chunks_.push_back(std::make_unique<Slot[]>(std::size_t{1} << kChunkShift));
  }
  return slab_size_++;
}

EventId Engine::commit_slot(SimTime t, std::uint32_t slot,
                            EventPriority priority) {
  Slot& s = slot_ref(slot);
  s.armed = true;
  heap_push(Item{t, next_seq_++, slot, static_cast<std::int32_t>(priority)});
  ++live_count_;
  TG_METRIC_INC(stats_.scheduled);
  stats_.heap_high_water.max_of(static_cast<double>(heap_.size()));
  return (static_cast<EventId>(slot) << 32) | s.generation;
}

EventId Engine::schedule_at(SimTime t, Callback cb, EventPriority priority) {
  TG_REQUIRE(static_cast<bool>(cb), "event callback must not be null");
  const std::uint32_t slot = acquire_slot(t);
  slot_ref(slot).cb = std::move(cb);
  return commit_slot(t, slot, priority);
}

EventId Engine::schedule_in(Duration dt, Callback cb, EventPriority priority) {
  TG_REQUIRE(dt >= 0, "negative delay " << dt);
  return schedule_at(now_ + dt, std::move(cb), priority);
}

bool Engine::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slab_size_) return false;
  Slot& s = slot_ref(slot);
  if (!s.armed || s.generation != generation_of(id)) return false;
  // Tombstone: the heap entry stays and is reclaimed when it surfaces, but
  // the callback (and its captures) dies now.
  s.armed = false;
  s.cb.reset();
  --live_count_;
  TG_METRIC_INC(stats_.cancelled);
  return true;
}

void Engine::release(std::uint32_t slot) {
  Slot& s = slot_ref(slot);
  s.cb.reset();
  ++s.generation;  // invalidate any handle still pointing here
  free_slots_.push_back(slot);
}

void Engine::heap_push(const Item& item) {
  heap_.push_back(item);  // grows capacity; the value is overwritten below
  std::size_t hole = heap_.size() - 1;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) >> 2;
    if (!before(item, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = item;
}

Engine::Item Engine::heap_pop() {
  const Item top = heap_.front();
  const Item last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    // Bottom-up deletion (Wegener): walk the hole down to a leaf along the
    // best-child path without comparing against `last` (it nearly always
    // belongs near the bottom anyway), then sift `last` up from the leaf.
    // Saves one comparison per level and its branch misprediction, and the
    // upward phase terminates after O(1) expected steps.
    std::size_t hole = 0;
    std::size_t first;
    while ((first = (hole << 2) + 1) < n) {
      const std::size_t end = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      heap_[hole] = heap_[best];
      hole = best;
    }
    while (hole > 0) {
      const std::size_t parent = (hole - 1) >> 2;
      if (!before(last, heap_[parent])) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = last;
  }
  return top;
}

void Engine::skim_tombstones() {
  while (!heap_.empty()) {
    const std::uint32_t slot = heap_.front().slot;
    if (slot_ref(slot).armed) return;
    heap_pop();
    TG_METRIC_INC(stats_.tombstones);
    release(slot);
  }
}

bool Engine::step() {
  while (!heap_.empty()) {
    const Item item = heap_pop();
    Slot& s = slot_ref(item.slot);
    if (!s.armed) {  // cancelled; reclaim the slot lazily
      TG_METRIC_INC(stats_.tombstones);
      release(item.slot);
      continue;
    }
    TG_CHECK(item.time >= now_, "event queue went backwards");
    now_ = item.time;
    s.armed = false;
    --live_count_;
    TG_METRIC_INC(stats_.fired);
    // Invoke in place: chunk storage is stable, so `s` stays valid even if
    // the callback schedules (growing the slab) or cancels other events.
    // The slot itself is released only afterwards, so a handle to this
    // event stays stale (armed == false) rather than aliasing a new one.
    in_event_ = true;
    s.cb();
    in_event_ = false;
    s.cb.reset();
    release(item.slot);
    return true;
  }
  return false;
}

void Engine::bind_metrics(obs::MetricsRegistry& registry) const {
  registry.bind_counter("engine.events_scheduled", stats_.scheduled);
  registry.bind_counter("engine.events_cancelled", stats_.cancelled);
  registry.bind_counter("engine.events_fired", stats_.fired);
  registry.bind_counter("engine.heap_tombstones", stats_.tombstones);
  registry.bind_gauge("engine.heap_high_water", stats_.heap_high_water);
}

std::size_t Engine::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::size_t Engine::run_until(SimTime t) {
  TG_REQUIRE(t >= now_, "run_until into the past");
  stopped_ = false;
  std::size_t n = 0;
  for (;;) {
    skim_tombstones();  // heap top, if any, is now the next live event
    if (stopped_ || heap_.empty() || heap_.front().time > t) break;
    if (step()) ++n;
  }
  if (!stopped_) now_ = std::max(now_, t);
  return n;
}

}  // namespace tg
