// The discrete-event simulation engine.
//
// A single-threaded, deterministic event loop: events are (time, priority,
// sequence, callback) tuples processed in strictly non-decreasing time
// order; ties break by priority (lower runs first) and then by scheduling
// order, so a given seed always produces an identical trace.
//
// Internals (see DESIGN.md "DES event core"): callbacks live in a chunked
// slab of recycled slots addressed by generation-tagged EventId handles.
// A 4-ary implicit heap orders 24-byte POD keys only, cancel() is an O(1)
// tombstone flag checked when the heap entry surfaces, and the common
// schedule path does zero heap allocations (EventCallback stores small
// captures inline, constructed directly in the slab slot). Chunks never
// move, so a firing callback is invoked in place -- no move out, no copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "des/callback.hpp"
#include "des/time.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace tg {

/// Handle for cancelling a scheduled event. Encodes (slot << 32 | generation)
/// into the engine's slab; a slot's generation is bumped on every reuse, so
/// stale handles (already fired or cancelled) are recognized and rejected.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Priority classes: completions run before submissions at the same tick so
/// freed resources are visible to arriving work, and deferred scheduling
/// passes (kReplan) run after every state change of the tick has landed —
/// that ordering is what lets a wave of same-tick completions coalesce into
/// one replan instead of N.
enum class EventPriority : int {
  kCompletion = 0,
  kDefault = 10,
  kSubmission = 20,
  kReplan = 30,
  kReporting = 100,
};

class Engine {
 public:
  using Callback = EventCallback;

  /// Lightweight event-core counters, cheap enough to maintain always.
  /// The cells are obs value types so bind_metrics() can hand them to a
  /// MetricsRegistry by reference; they still read as plain integers.
  struct Stats {
    obs::Counter scheduled;   ///< schedule_at/schedule_in calls
    obs::Counter cancelled;   ///< successful cancel() calls
    obs::Counter fired;       ///< callbacks actually run
    obs::Counter tombstones;  ///< cancelled entries popped off the heap
    obs::Gauge heap_high_water;  ///< max heap size observed

    /// Fraction of heap pops that were dead entries (cancellation churn).
    [[nodiscard]] double tombstone_ratio() const {
      const std::uint64_t pops = fired + tombstones;
      return pops == 0 ? 0.0
                       : static_cast<double>(tombstones.value()) /
                             static_cast<double>(pops);
    }
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback cb,
                      EventPriority priority = EventPriority::kDefault);

  /// Overload for plain callables: the callback is constructed directly in
  /// its slab slot, skipping the move through a temporary EventCallback.
  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                     !std::is_same_v<D, std::nullptr_t> &&
                                     std::is_invocable_r_v<void, D&>>>
  EventId schedule_at(SimTime t, F&& f,
                      EventPriority priority = EventPriority::kDefault) {
    if constexpr (std::is_constructible_v<bool, const D&>) {
      TG_REQUIRE(static_cast<bool>(f), "event callback must not be null");
    }
    const std::uint32_t slot = acquire_slot(t);
    slot_ref(slot).cb.emplace(std::forward<F>(f));
    return commit_slot(t, slot, priority);
  }

  /// Schedules `cb` after `dt` ticks (must be >= 0).
  EventId schedule_in(Duration dt, Callback cb,
                      EventPriority priority = EventPriority::kDefault);

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                     !std::is_same_v<D, std::nullptr_t> &&
                                     std::is_invocable_r_v<void, D&>>>
  EventId schedule_in(Duration dt, F&& f,
                      EventPriority priority = EventPriority::kDefault) {
    TG_REQUIRE(dt >= 0, "negative delay " << dt);
    return schedule_at(now_ + dt, std::forward<F>(f), priority);
  }

  /// Cancels a pending event in O(1). Returns false if already fired or
  /// cancelled. The callback (and any heap block behind its captures) is
  /// destroyed immediately; the heap entry is reclaimed when it surfaces.
  bool cancel(EventId id);

  /// Runs until the queue drains or stop() is called. Returns #events fired.
  std::size_t run();

  /// Processes every event with time <= `t`, then advances the clock to `t`.
  std::size_t run_until(SimTime t);

  /// Requests the current run()/run_until() to return after the in-flight
  /// callback completes.
  void stop() { stopped_ = true; }

  /// True while a callback is being run by the event loop. Components use
  /// this to pick between synchronous work (direct API calls, e.g. from
  /// tests, expect immediate effects) and deferring to a same-tick event
  /// (so same-timestamp triggers batch into one pass).
  [[nodiscard]] bool in_event() const { return in_event_; }

  [[nodiscard]] std::size_t pending() const { return live_count_; }
  [[nodiscard]] std::uint64_t events_processed() const { return stats_.fired; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Registers the event-core counters with `registry` under "engine.".
  /// The cells live in this Engine; the registry must not outlive it.
  void bind_metrics(obs::MetricsRegistry& registry) const;

 private:
  /// Slab cell backing one scheduled event. `armed` is the tombstone flag:
  /// cleared by cancel() (and on fire), checked when the heap entry pops.
  struct Slot {
    Callback cb;
    std::uint32_t generation = 1;
    bool armed = false;
  };

  /// Slots live in fixed-size chunks so their addresses are stable even
  /// while a callback running in place schedules new events.
  static constexpr std::uint32_t kChunkShift = 9;  // 512 slots per chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;

  /// Heap entries are 24-byte PODs; the callback never moves during sift.
  struct Item {
    SimTime time;
    std::uint64_t seq;  ///< global schedule order; the FIFO tiebreaker
    std::uint32_t slot;
    std::int32_t priority;
  };
  /// True if `a` fires before `b`.
  static bool before(const Item& a, const Item& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq < b.seq;
  }

  static constexpr std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static constexpr std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }

  Slot& slot_ref(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }

  /// Validates `t` and pops a recycled slot (or grows the slab).
  std::uint32_t acquire_slot(SimTime t);
  /// Arms the slot, pushes its heap entry, and mints the handle.
  EventId commit_slot(SimTime t, std::uint32_t slot, EventPriority priority);

  /// Pops and runs the next live event; returns false if none remain.
  bool step();
  /// Pops dead entries so heap top (if any) is the next live event.
  void skim_tombstones();
  /// Returns a slot to the free list, invalidating outstanding handles.
  void release(std::uint32_t slot);

  // 4-ary implicit min-heap with hole sifting: half the depth of a binary
  // heap and one cache line per visited node, which is where the pop path
  // of a million-event run spends its time.
  void heap_push(const Item& item);
  Item heap_pop();

  std::vector<Item> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slab_size_ = 0;
  std::vector<std::uint32_t> free_slots_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
  Stats stats_;
  bool stopped_ = false;
  bool in_event_ = false;  ///< a callback is currently running (see in_event)
};

}  // namespace tg
