// The discrete-event simulation engine.
//
// A single-threaded, deterministic event loop: events are (time, priority,
// sequence, callback) tuples processed in strictly non-decreasing time
// order; ties break by priority (lower runs first) and then by scheduling
// order, so a given seed always produces an identical trace.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "des/time.hpp"

namespace tg {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Priority classes: completions run before submissions at the same tick so
/// freed resources are visible to arriving work.
enum class EventPriority : int {
  kCompletion = 0,
  kDefault = 10,
  kSubmission = 20,
  kReporting = 100,
};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback cb,
                      EventPriority priority = EventPriority::kDefault);

  /// Schedules `cb` after `dt` ticks (must be >= 0).
  EventId schedule_in(Duration dt, Callback cb,
                      EventPriority priority = EventPriority::kDefault);

  /// Cancels a pending event. Returns false if already fired or cancelled.
  bool cancel(EventId id);

  /// Runs until the queue drains or stop() is called. Returns #events fired.
  std::size_t run();

  /// Processes every event with time <= `t`, then advances the clock to `t`.
  std::size_t run_until(SimTime t);

  /// Requests the current run()/run_until() to return after the in-flight
  /// callback completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending() const { return live_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Item {
    SimTime time;
    int priority;
    EventId id;  // doubles as the FIFO tiebreaker
    Callback cb;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.id > b.id;
    }
  };

  /// Pops and runs the next live event; returns false if none remain.
  bool step();

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  /// Ids of scheduled-but-not-yet-fired events; cancellation removes the
  /// id here and the heap entry is skipped lazily on pop.
  std::unordered_set<EventId> live_;
  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace tg
