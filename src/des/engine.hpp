// The discrete-event simulation engine, partitioned for sharded execution.
//
// Events live in per-partition queues and are processed in one canonical
// total order: (time, priority, partition, local sequence). Ties at equal
// time break by priority (lower runs first), then by partition id (the
// coordinator, partition 0, before any site), then by scheduling order
// within the partition — so a given seed always produces an identical
// trace, whether the engine runs the partitions merged on one thread or in
// parallel time windows (DESIGN.md §5.7).
//
// Partitioning is *logical* and fixed by the caller (one partition per
// site plus coordinator 0 for cross-site machinery); it defines the
// canonical order for every execution mode. Execution is chosen
// separately:
//
//  * merged (default): one loop pops the globally-minimal event across all
//    partition heaps — the sequential reference oracle.
//  * windowed (set_window_execution): events carry an EventClass. kBarrier
//    events ("walls") are synchronization points — anything whose effects
//    may cross partitions. kLocal events are provably partition-local.
//    Each round the driver computes the cut C = min over all wall keys;
//    every partition may run its kLocal events with key < C concurrently
//    (on a parallel::ThreadPool, or inline for --shards=1), because no
//    wall — the only cross-partition influence — separates them. Side
//    effects that must interleave deterministically across partitions
//    (trace emissions, observer callbacks) are staged per partition and
//    replayed at the barrier in canonical key order, so a windowed run is
//    byte-identical to the merged loop by construction.
//
// Window events may only schedule kLocal events on their own partition —
// enforced by TG_CHECK. Anything cross-partition must be scheduled from a
// wall (which runs sequentially, totally ordered with everything).
//
// Internals (see DESIGN.md "DES event core"): callbacks live in chunked
// per-partition slabs of recycled slots addressed by generation-tagged
// EventId handles. 4-ary implicit heaps order 24-byte POD keys only,
// cancel() is an O(1) tombstone flag checked when the heap entry surfaces,
// and the common schedule path does zero heap allocations (EventCallback
// stores small captures inline, constructed directly in the slab slot).
// Chunks never move, so a firing callback is invoked in place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "des/callback.hpp"
#include "des/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace tg {

class Engine;
class ThreadPool;

/// Handle for cancelling a scheduled event. Encodes
/// ((partition << 26 | slot) << 32 | generation) into the engine's
/// per-partition slabs; a slot's generation is bumped on every reuse, so
/// stale handles (already fired or cancelled) are recognized and rejected.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Priority classes: completions run before submissions at the same tick so
/// freed resources are visible to arriving work, and deferred scheduling
/// passes (kReplan) run after every state change of the tick has landed —
/// that ordering is what lets a wave of same-tick completions coalesce into
/// one replan instead of N.
enum class EventPriority : int {
  kCompletion = 0,
  kDefault = 10,
  kSubmission = 20,
  kReplan = 30,
  kReporting = 100,
};

/// Synchronization class of an event under windowed execution.
enum class EventClass : std::uint8_t {
  /// A wall: firing it may influence other partitions (submit across
  /// sites, start WAN flows, touch coordinator state). Walls bound every
  /// time window and always run sequentially. This is the safe default.
  kBarrier = 0,
  /// Provably partition-local: fires concurrently inside windows. The
  /// scheduler marks completions, wakeups, requeues and replan passes
  /// kLocal only when their effects cannot leave the partition.
  kLocal = 1,
};

/// Where an event lives in the partitioned engine and how it
/// synchronizes. Defaults — partition of the currently-firing event (or
/// the coordinator outside of events), kBarrier — are always safe.
struct EventBinding {
  std::uint32_t shard = 0;
  EventClass cls = EventClass::kBarrier;
};

/// Observer/controller for tie-set resolution on the merged loop — the
/// model-checking hook (DESIGN.md §5.8). When installed, every merged step
/// first collects the *tie set*: all armed events sharing the minimal
/// (time, priority) across every partition heap. If the set has >= 2
/// members the hook picks which fires first; the engine then fires exactly
/// that event and re-collects, so a pick vector addresses every reachable
/// interleaving of same-key events. The hook also observes each fired
/// event (tied or forced), which is what trace signatures hash.
class ChoiceHook {
 public:
  /// One armed event inside a tie set, identified by its canonical key
  /// plus the synchronization facts the independence relation needs.
  struct Candidate {
    SimTime time = 0;
    std::int32_t priority = 0;
    std::uint32_t shard = 0;
    std::uint64_t seq = 0;
    EventClass cls = EventClass::kBarrier;
    bool serialized = false;  ///< partition was serialized at choice time

    [[nodiscard]] bool same_event(const Candidate& o) const {
      return shard == o.shard && seq == o.seq && time == o.time &&
             priority == o.priority;
    }
  };

  virtual ~ChoiceHook() = default;

  /// Called when >= 2 armed events share the minimal (time, priority).
  /// `tie` is sorted by (shard, seq); index 0 is what the unhooked engine
  /// would fire. Returns the index of the event to fire first; the rest
  /// stay pending and (if still tied) reappear in the next tie set.
  virtual std::size_t choose(const std::vector<Candidate>& tie) = 0;

  /// Called for every event the merged loop fires, immediately before its
  /// callback runs, in execution order.
  virtual void on_fire(const Candidate& fired) { (void)fired; }
};

namespace detail {
/// Thread-local fire context: installed while a callback runs on a window
/// worker (staging) or while a staged effect replays at the barrier.
/// Engine::now()/in_event()/default bindings consult it so component code
/// is oblivious to which thread fires it.
struct EngineFireCtx {
  Engine* engine = nullptr;
  SimTime now = 0;
  std::uint32_t shard = 0;
  bool staging = false;  ///< inside a window worker: effects must stage
  bool replay = false;   ///< inside barrier replay: scheduling forbidden
  // Canonical identity of the firing event ((now, priority, shard, seq))
  // plus the running emission ordinal, stamped onto staged effects so the
  // barrier replay can reproduce the merged loop's exact effect order.
  std::int32_t priority = 0;
  std::uint64_t seq = 0;
  std::uint32_t ordinal = 0;
};
extern thread_local EngineFireCtx* t_engine_fire_ctx;
}  // namespace detail

class Engine {
 public:
  using Callback = EventCallback;

  /// Partition id fits in 6 EventId bits.
  static constexpr std::uint32_t kMaxPartitions = 64;

  /// Lightweight event-core counters, cheap enough to maintain always.
  /// Counts are kept per partition (single-writer under windowed
  /// execution) and aggregated into these obs cells when a run finishes or
  /// an accessor reads them; bind_metrics() hands the cells to a
  /// MetricsRegistry by reference. All values are deterministic across
  /// execution modes; heap_high_water is the *sum* of per-partition heap
  /// high-water marks.
  struct Stats {
    obs::Counter scheduled;   ///< schedule_at/schedule_in calls
    obs::Counter cancelled;   ///< successful cancel() calls
    obs::Counter fired;       ///< callbacks actually run
    obs::Counter tombstones;  ///< cancelled entries popped off the heap
    obs::Gauge heap_high_water;  ///< summed per-partition max heap sizes

    /// Fraction of heap pops that were dead entries (cancellation churn).
    [[nodiscard]] double tombstone_ratio() const {
      const std::uint64_t pops = fired + tombstones;
      return pops == 0 ? 0.0
                       : static_cast<double>(tombstones.value()) /
                             static_cast<double>(pops);
    }
  };

  /// Windowed-execution counters (`shard.*` under --metrics). Everything
  /// here is a deterministic function of the simulation except
  /// barrier_wait_ns, which reads the wall clock like obs::PhaseProfiler's
  /// phases and exists purely for performance diagnosis.
  struct ShardStats {
    obs::Counter window_rounds;   ///< synchronization rounds run windowed
    obs::Counter window_events;   ///< events fired inside windows
    obs::Counter staged_effects;  ///< effects replayed at barriers
    obs::Counter barrier_wait_ns;  ///< wall-clock spent joining workers
    obs::Histogram window_horizon_ms;  ///< per-round safe horizon - now
  };

  Engine() { parts_.resize(1); }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time. Inside a window worker this is the firing
  /// event's time (partitions at different points of the window disagree,
  /// which is the point); everywhere else it is the global clock.
  [[nodiscard]] SimTime now() const {
    const detail::EngineFireCtx* c = detail::t_engine_fire_ctx;
    return (c != nullptr && c->engine == this) ? c->now : now_;
  }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback cb,
                      EventPriority priority = EventPriority::kDefault);
  EventId schedule_at(SimTime t, Callback cb, EventPriority priority,
                      EventBinding binding);

  /// Overload for plain callables: the callback is constructed directly in
  /// its slab slot, skipping the move through a temporary EventCallback.
  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                     !std::is_same_v<D, std::nullptr_t> &&
                                     std::is_invocable_r_v<void, D&>>>
  EventId schedule_at(SimTime t, F&& f,
                      EventPriority priority = EventPriority::kDefault) {
    return schedule_at(t, std::forward<F>(f), priority, default_binding());
  }

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                     !std::is_same_v<D, std::nullptr_t> &&
                                     std::is_invocable_r_v<void, D&>>>
  EventId schedule_at(SimTime t, F&& f, EventPriority priority,
                      EventBinding binding) {
    if constexpr (std::is_constructible_v<bool, const D&>) {
      TG_REQUIRE(static_cast<bool>(f), "event callback must not be null");
    }
    Partition& p = partition_for(binding.shard);
    const std::uint32_t slot = acquire_slot(p, t);
    slot_ref(p, slot).cb.emplace(std::forward<F>(f));
    return commit_slot(p, binding.shard, t, slot, priority, binding.cls);
  }

  /// Schedules `cb` after `dt` ticks (must be >= 0).
  EventId schedule_in(Duration dt, Callback cb,
                      EventPriority priority = EventPriority::kDefault);
  EventId schedule_in(Duration dt, Callback cb, EventPriority priority,
                      EventBinding binding);

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                     !std::is_same_v<D, std::nullptr_t> &&
                                     std::is_invocable_r_v<void, D&>>>
  EventId schedule_in(Duration dt, F&& f,
                      EventPriority priority = EventPriority::kDefault) {
    return schedule_in(dt, std::forward<F>(f), priority, default_binding());
  }

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                     !std::is_same_v<D, std::nullptr_t> &&
                                     std::is_invocable_r_v<void, D&>>>
  EventId schedule_in(Duration dt, F&& f, EventPriority priority,
                      EventBinding binding) {
    TG_REQUIRE(dt >= 0, "negative delay " << dt);
    return schedule_at(now() + dt, std::forward<F>(f), priority, binding);
  }

  /// Cancels a pending event in O(1). Returns false if already fired or
  /// cancelled. The callback (and any heap block behind its captures) is
  /// destroyed immediately; the heap entry is reclaimed when it surfaces.
  /// Inside a window, only events of the worker's own partition may be
  /// cancelled.
  bool cancel(EventId id);

  /// Runs until the queue drains or stop() is called. Uses windowed
  /// execution when enabled (the cut is simply unbounded by a target
  /// time), the merged loop otherwise; both fire the identical event
  /// sequence. Returns #events fired.
  std::size_t run();

  /// Processes every event with time <= `t`, then advances the clock to
  /// `t`. Uses windowed execution when enabled, the merged loop otherwise;
  /// both fire the identical event sequence.
  std::size_t run_until(SimTime t);

  /// Requests the current run()/run_until() to return after the in-flight
  /// callback (or window round) completes. Call from walls or from outside
  /// the loop, not from events firing inside a window.
  void stop() { stopped_ = true; }

  /// True while a callback is being run by the event loop (including
  /// window workers and barrier replay). Components use this to pick
  /// between synchronous work (direct API calls, e.g. from tests, expect
  /// immediate effects) and deferring to a same-tick event (so
  /// same-timestamp triggers batch into one pass).
  [[nodiscard]] bool in_event() const {
    const detail::EngineFireCtx* c = detail::t_engine_fire_ctx;
    return (c != nullptr && c->engine == this) ? true : in_event_;
  }

  /// True while the calling thread is firing events inside a time window.
  /// Effects that must interleave deterministically with other partitions
  /// (observer callbacks, anything ordered against other partitions'
  /// output) must then be deferred via stage_effect().
  [[nodiscard]] bool in_window() const {
    const detail::EngineFireCtx* c = detail::t_engine_fire_ctx;
    return c != nullptr && c->engine == this && c->staging;
  }

  /// Defers `effect` to the next barrier, where all partitions' staged
  /// effects run on the driver thread in canonical event order — exactly
  /// the order a merged sequential run would have produced them in. Only
  /// valid while in_window(). Staged effects must not schedule or cancel
  /// events (TG_CHECKed): an effect that needs to schedule belongs on a
  /// wall instead.
  void stage_effect(std::function<void()> effect);

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t events_processed() const;
  [[nodiscard]] const Stats& stats() const;

  /// Registers the event-core counters with `registry` under "engine.".
  /// The cells live in this Engine; the registry must not outlive it.
  void bind_metrics(obs::MetricsRegistry& registry) const;

  // -- Partitioning & windowed execution (DESIGN.md §5.7) ----------------

  /// Splits the engine into `count` logical partitions (1..kMaxPartitions).
  /// Must be called on a pristine engine (nothing scheduled or fired):
  /// the partition id is part of the canonical event order, so it cannot
  /// change mid-run. Invalidates cells bound by bind_shard_metrics().
  void configure_partitions(std::uint32_t count);
  [[nodiscard]] std::uint32_t partitions() const {
    return static_cast<std::uint32_t>(parts_.size());
  }

  /// Enables conservative time-window execution for run_until(). With a
  /// null `pool` windows run inline on the calling thread (useful to
  /// exercise the window machinery deterministically without threads);
  /// otherwise one task per eligible partition is submitted per round.
  /// No-op in effect unless the engine has >= 2 partitions.
  void set_window_execution(bool enabled, ThreadPool* pool = nullptr);
  [[nodiscard]] bool window_execution() const { return windows_enabled_; }

  /// Marks/unmarks partition `shard` as serialized (calls nest; each `on`
  /// needs a matching `off`). A serialized partition never participates in
  /// window rounds: its local events join the cut like walls and fire on
  /// the merged loop, where cross-partition effects are legal. Components
  /// use this when previously-local event streams gain feedback coupling —
  /// e.g. a scheduler whose queue holds a workflow or co-allocated job,
  /// whose start would have to create a wall (forbidden inside windows).
  /// Only callable from sequential context (never from a window worker or
  /// barrier replay); the canonical event order is unaffected either way.
  void serialize_partition(std::uint32_t shard, bool on);

  /// Installs (nullptr clears) the merged-loop tie-set hook. Mutually
  /// exclusive with windowed execution: the hook's whole point is to
  /// explore orders the windowed mode's canonical replay forbids. The
  /// caller keeps ownership; the hook must outlive the run.
  void set_choice_hook(ChoiceHook* hook);
  [[nodiscard]] ChoiceHook* choice_hook() const { return choice_hook_; }

  /// Windowed-execution counters; see ShardStats.
  [[nodiscard]] const ShardStats& shard_stats() const { return shard_stats_; }

  /// Registers shard.* metrics (aggregate ShardStats cells plus one
  /// window-event counter per partition). Cells live in this Engine and
  /// are invalidated by configure_partitions().
  void bind_shard_metrics(obs::MetricsRegistry& registry) const;

 private:
  /// Slab cell backing one scheduled event. `armed` is the tombstone flag:
  /// cleared by cancel() (and on fire), checked when the heap entry pops.
  struct Slot {
    Callback cb;
    std::uint32_t generation = 1;
    bool armed = false;
  };

  /// Slots live in fixed-size chunks so their addresses are stable even
  /// while a callback running in place schedules new events.
  static constexpr std::uint32_t kChunkShift = 9;  // 512 slots per chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;

  /// EventId layout: [partition:6 | slot:26 | generation:32].
  static constexpr std::uint32_t kSlotBits = 26;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

  /// Heap entries are 24-byte PODs; the callback never moves during sift.
  struct Item {
    SimTime time;
    std::uint64_t seq;  ///< partition-local schedule order; FIFO tiebreak
    std::uint32_t slot;
    std::int32_t priority;
  };
  /// True if `a` fires before `b` *within one partition*.
  static bool before(const Item& a, const Item& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq < b.seq;
  }

  /// Canonical cross-partition event order.
  struct Key {
    SimTime time;
    std::int32_t priority;
    std::uint32_t shard;
    std::uint64_t seq;
  };
  static bool key_before(const Key& a, const Key& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.seq < b.seq;
  }
  static Key key_of(const Item& it, std::uint32_t shard) {
    return Key{it.time, it.priority, shard, it.seq};
  }

  /// A side effect staged by a window worker for barrier replay: either a
  /// pre-rendered trace event or an opaque sink callback, tagged with the
  /// emitting event's canonical key and its emission ordinal within that
  /// event.
  struct Effect {
    Key key;
    std::uint32_t ordinal;
    obs::TraceBuffer* trace_target;  ///< null => sink effect
    obs::TraceEvent trace;
    std::function<void()> sink;
  };

  /// One engine partition: two heaps (walls and locals), a callback slab,
  /// a local sequence counter and plain single-writer stat counters.
  struct Partition {
    std::vector<Item> heap[2];  ///< [0] kBarrier walls, [1] kLocal
    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::uint32_t slab_size = 0;
    std::vector<std::uint32_t> free_slots;
    std::uint64_t next_seq = 1;
    std::size_t live = 0;
    std::uint64_t scheduled = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t fired = 0;
    std::uint64_t tombstones = 0;
    std::size_t heap_high_water = 0;
    /// > 0: excluded from window rounds; locals bound the cut like walls.
    int serialize_count = 0;
    /// Time of this partition's last window-fired event; the driver maxes
    /// these into now_ after each round (merged-clock equivalence).
    SimTime window_last = 0;
    obs::Counter window_fired;  ///< obs cell: bound per-partition metric
    std::vector<Effect> staged;  ///< window outbox, drained at the barrier
  };

  static constexpr std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32) & kSlotMask;
  }
  static constexpr std::uint32_t shard_of(EventId id) {
    return static_cast<std::uint32_t>(id >> (32 + kSlotBits));
  }
  static constexpr std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static constexpr EventId make_id(std::uint32_t shard, std::uint32_t slot,
                                   std::uint32_t generation) {
    return ((static_cast<EventId>(shard) << kSlotBits |
             static_cast<EventId>(slot))
            << 32) |
           generation;
  }

  static Slot& slot_ref(Partition& p, std::uint32_t slot) {
    return p.chunks[slot >> kChunkShift][slot & kChunkMask];
  }

  Partition& partition_for(std::uint32_t shard) {
    TG_REQUIRE(shard < parts_.size(),
               "event binding names partition " << shard << " of "
                                                << parts_.size());
    return parts_[shard];
  }

  /// Shard/class applied when a schedule call names no binding: the firing
  /// partition (so an event's unannotated children stay with it in every
  /// execution mode) and the always-safe kBarrier class.
  [[nodiscard]] EventBinding default_binding() const {
    const detail::EngineFireCtx* c = detail::t_engine_fire_ctx;
    if (c != nullptr && c->engine == this) {
      return EventBinding{c->shard, EventClass::kBarrier};
    }
    return EventBinding{seq_fire_shard_, EventClass::kBarrier};
  }

  /// Validates `t` and pops a recycled slot (or grows the slab).
  std::uint32_t acquire_slot(Partition& p, SimTime t);
  /// Arms the slot, pushes its heap entry, and mints the handle.
  EventId commit_slot(Partition& p, std::uint32_t shard, SimTime t,
                      std::uint32_t slot, EventPriority priority,
                      EventClass cls);

  /// Shared run()/run_until() loop body: window rounds when enabled,
  /// merged steps otherwise/between, bounded by `t`. No clock advance.
  std::size_t drain(SimTime t);
  /// Fires the globally-minimal live event if its time is <= `bound`;
  /// returns false when none qualifies. The merged sequential loop.
  bool merged_step(SimTime bound);
  /// Pops dead entries so heap `h` of `p` (if any) tops a live event.
  void skim(Partition& p, int h);
  /// Returns a slot to the free list, invalidating outstanding handles.
  void release(Partition& p, std::uint32_t slot);

  /// One windowed synchronization round: compute the cut, fire eligible
  /// partitions' local events below it (pool or inline), replay staged
  /// effects. Returns false when fewer than two partitions are eligible
  /// (the caller falls back to a merged step).
  bool try_window_round(SimTime t, std::size_t& fired);
  /// Worker body: fires partition `shard`'s kLocal events with key < cut.
  std::size_t run_window_partition(std::uint32_t shard, const Key& cut);
  /// Merges all partitions' staged effects and runs them in key order.
  void replay_staged();
  static void stage_trace_thunk(void* ctx, obs::TraceBuffer* target,
                                const obs::TraceEvent& event);

  /// Folds per-partition counters into the public Stats/ShardStats cells.
  void refresh_stats() const;

  // 4-ary implicit min-heap with hole sifting: half the depth of a binary
  // heap and one cache line per visited node, which is where the pop path
  // of a million-event run spends its time.
  static void heap_push(std::vector<Item>& heap, const Item& item);
  static Item heap_pop(std::vector<Item>& heap);
  /// Removes the entry at `pos` (the choice hook fires non-top tie
  /// members); same bottom-up hole walk as heap_pop, then a sift-up from
  /// the leaf, which may carry the former tail above `pos`.
  static Item heap_remove(std::vector<Item>& heap, std::size_t pos);

  /// A tie-set member plus where its heap entry lives (valid only until
  /// the next heap mutation).
  struct TieEntry {
    ChoiceHook::Candidate cand;
    int h;  ///< which of the partition's two heaps
    std::size_t pos;
  };
  /// Fills tie_entries_/tie_view_ with every armed entry matching
  /// (best.time, best.priority), sorted by (shard, seq). Equal-key entries
  /// form a connected subtree at each heap's top, so the scan is
  /// O(tie set), not O(heap).
  void collect_tie_set(const Key& best);

  std::vector<Partition> parts_;
  SimTime now_ = 0;
  mutable Stats stats_;
  ShardStats shard_stats_;
  bool stopped_ = false;
  bool in_event_ = false;  ///< a merged-loop callback is running
  /// Partition of the event the merged loop is currently firing (0 outside
  /// events), so default bindings agree between merged and windowed modes.
  std::uint32_t seq_fire_shard_ = 0;
  bool windows_enabled_ = false;
  ThreadPool* pool_ = nullptr;  ///< null => windows run inline
  ChoiceHook* choice_hook_ = nullptr;  ///< null => canonical order, no cost
  std::vector<TieEntry> tie_entries_;            ///< tie-set scratch
  std::vector<ChoiceHook::Candidate> tie_view_;  ///< what choose() sees
  std::vector<std::size_t> tie_walk_;            ///< subtree-walk scratch
  std::vector<std::uint32_t> eligible_;  ///< driver scratch
  std::vector<Effect> replay_scratch_;   ///< barrier merge scratch
};

}  // namespace tg
