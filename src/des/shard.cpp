#include "des/shard.hpp"

#include "util/error.hpp"

namespace tg {

std::uint32_t ShardPlan::partition_of_site(std::size_t site_index) const {
  TG_REQUIRE(site_index < site_partition.size(),
             "site " << site_index << " outside the shard plan ("
                     << site_partition.size() << " sites)");
  return site_partition[site_index];
}

ShardPlan plan_shards(std::size_t sites,
                      const std::vector<Duration>& latencies) {
  ShardPlan plan;
  plan.partitions = static_cast<std::uint32_t>(1 + sites);
  plan.site_partition.resize(sites);
  for (std::size_t i = 0; i < sites; ++i) {
    plan.site_partition[i] = static_cast<std::uint32_t>(1 + i);
  }
  plan.wan_lookahead = 0;
  for (const Duration latency : latencies) {
    TG_REQUIRE(latency >= 0, "negative link latency " << latency);
    if (plan.wan_lookahead == 0 || latency < plan.wan_lookahead) {
      plan.wan_lookahead = latency;
    }
  }
  return plan;
}

}  // namespace tg
