// The shard plan: how a platform's sites map onto engine partitions.
//
// Partition 0 is the coordinator — it owns every cross-site mechanism
// (traffic generation, gateway dispatch, WAN flow activation and rate
// recomputation, fault processes, reporting). Each site gets one partition
// of its own (1 + site index), holding that site's scheduler events. The
// plan is a pure function of the platform topology, independent of how
// many worker threads (if any) execute the partitions — it defines the
// canonical event order for every execution mode (DESIGN.md §5.7).
//
// The plan also records the conservative lookahead implied by the WAN: the
// minimum link latency, i.e. the earliest a message sent between sites
// over tg::net could take effect remotely. In this codebase every
// *control* edge between partitions (job submission, outage calls, flow
// completion hand-offs) is synchronous at the tick of the wall event that
// causes it, so the safe horizon the window driver may use is exactly the
// earliest wall — a zero-lookahead cut — and `wan_lookahead` is reported
// for diagnosis rather than added to the horizon. See the §5.7 proof
// sketch for why adding WAN lookahead to the cut would be unsound here.
#pragma once

#include <cstdint>
#include <vector>

#include "des/time.hpp"

namespace tg {

struct ShardPlan {
  /// The coordinator partition id.
  static constexpr std::uint32_t kCoordinator = 0;

  /// 1 (coordinator) + one partition per site.
  std::uint32_t partitions = 1;
  /// Site index (SiteId::value()) -> partition id.
  std::vector<std::uint32_t> site_partition;
  /// Minimum WAN link latency; 0 when the platform has no links
  /// (single-site or degenerate platforms fall back to zero lookahead).
  Duration wan_lookahead = 0;

  [[nodiscard]] std::uint32_t partition_of_site(std::size_t site_index) const;
};

/// Builds the plan from a site count and the platform's WAN link latencies
/// (kept free of infra types so the mapping is unit-testable on its own;
/// `infra::make_shard_plan(Platform)` adapts a real platform).
[[nodiscard]] ShardPlan plan_shards(std::size_t sites,
                                    const std::vector<Duration>& latencies);

}  // namespace tg
