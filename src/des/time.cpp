#include "des/time.hpp"

#include <cstdio>

namespace tg {

std::string format_duration(Duration d) {
  const char* sign = d < 0 ? "-" : "";
  if (d < 0) d = -d;
  const std::int64_t days = d / kDay;
  const std::int64_t hours = (d % kDay) / kHour;
  const std::int64_t mins = (d % kHour) / kMinute;
  const std::int64_t secs = (d % kMinute) / kSecond;
  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldd %02lld:%02lld:%02lld", sign,
                  static_cast<long long>(days), static_cast<long long>(hours),
                  static_cast<long long>(mins), static_cast<long long>(secs));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld:%02lld", sign,
                  static_cast<long long>(hours), static_cast<long long>(mins),
                  static_cast<long long>(secs));
  }
  return buf;
}

}  // namespace tg
