// Simulated time.
//
// SimTime is an integer count of milliseconds since simulation start.
// Integer time keeps event ordering exact and runs bit-reproducible; a
// millisecond granularity is fine for a grid where the shortest interesting
// interval is a network round trip and the longest is a yearly allocation.
#pragma once

#include <cstdint>
#include <string>

namespace tg {

using SimTime = std::int64_t;  ///< milliseconds since simulation start
using Duration = std::int64_t; ///< milliseconds

/// Sentinel "end of time" (run-to-drain bounds, unreachable cut keys).
inline constexpr SimTime kMaxSimTime = INT64_MAX;

inline constexpr Duration kMillisecond = 1;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;
inline constexpr Duration kWeek = 7 * kDay;
/// Reporting quarter: 91 days, so 4 quarters ~= 1 year.
inline constexpr Duration kQuarter = 91 * kDay;
inline constexpr Duration kYear = 365 * kDay;

/// Converts wall seconds (possibly fractional) to SimTime ticks, rounding.
[[nodiscard]] constexpr Duration from_seconds(double seconds) {
  return static_cast<Duration>(seconds * static_cast<double>(kSecond) + 0.5);
}

[[nodiscard]] constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

[[nodiscard]] constexpr double to_hours(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kHour);
}

[[nodiscard]] constexpr double to_days(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kDay);
}

/// "1d 03:25:07"-style rendering for logs and tables.
[[nodiscard]] std::string format_duration(Duration d);

}  // namespace tg
