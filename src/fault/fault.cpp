#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/error.hpp"

namespace tg {

namespace {

[[nodiscard]] Duration from_hours(double hours) {
  return static_cast<Duration>(
      std::llround(hours * static_cast<double>(kHour)));
}

}  // namespace

FaultModel::FaultModel(Engine& engine, SchedulerPool& pool, FaultConfig config,
                       Duration horizon, Rng rng,
                       std::vector<std::unique_ptr<Gateway>>* gateways)
    : engine_(engine),
      pool_(pool),
      config_(config),
      horizon_(horizon),
      gateways_(gateways),
      ids_(pool.resource_ids()),
      hazard_rng_(rng.fork("hazards")) {
  const OutageProcess& o = config_.outage;
  TG_REQUIRE(o.mtbf_hours >= 0.0, "MTBF must be non-negative");
  TG_REQUIRE(o.weibull_shape > 0.0, "Weibull shape must be positive");
  TG_REQUIRE(o.repair_mean_hours > 0.0, "mean repair time must be positive");
  TG_REQUIRE(o.repair_cv >= 0.0, "repair CV must be non-negative");
  TG_REQUIRE(0.0 <= o.nodes_fraction_min &&
                 o.nodes_fraction_min <= o.nodes_fraction_max &&
                 o.nodes_fraction_max <= 1.0,
             "outage node fractions must satisfy 0 <= min <= max <= 1");
  TG_REQUIRE(o.full_outage_prob >= 0.0 && o.full_outage_prob <= 1.0,
             "full-outage probability must be a probability");
  TG_REQUIRE(config_.job_failure_rate_per_hour >= 0.0,
             "job failure rate must be non-negative");
  TG_REQUIRE(config_.gateway_brownouts_per_week >= 0.0,
             "brownout rate must be non-negative");
  TG_REQUIRE(config_.brownout_mean_hours > 0.0,
             "mean brownout duration must be positive");

  // Substreams are forked up front, in platform order, so fault randomness
  // is independent of event interleaving and of every other consumer.
  const Rng outage_parent = rng.fork("outages");
  resource_rngs_.reserve(ids_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    resource_rngs_.push_back(outage_parent.fork(static_cast<std::uint64_t>(i)));
  }
  if (gateways_ != nullptr) {
    const Rng brownout_parent = rng.fork("brownouts");
    gateway_rngs_.reserve(gateways_->size());
    for (std::size_t g = 0; g < gateways_->size(); ++g) {
      gateway_rngs_.push_back(
          brownout_parent.fork(static_cast<std::uint64_t>(g)));
    }
  }
}

void FaultModel::start() {
  if (config_.outage.mtbf_hours > 0.0) {
    for (std::size_t i = 0; i < ids_.size(); ++i) schedule_outage(i);
  }
  if (config_.job_failure_rate_per_hour > 0.0) {
    pool_.add_on_start_all([this](const Job& job) { on_job_start(job); });
  }
  if (config_.gateway_brownouts_per_week > 0.0 && gateways_ != nullptr) {
    for (std::size_t g = 0; g < gateways_->size(); ++g) schedule_brownout(g);
  }
}

double FaultModel::sample_interarrival_hours(Rng& rng) const {
  const OutageProcess& o = config_.outage;
  if (o.arrival == OutageProcess::Arrival::kWeibull) {
    const double scale = o.mtbf_hours / std::tgamma(1.0 + 1.0 / o.weibull_shape);
    return Weibull(o.weibull_shape, scale).sample(rng);
  }
  return Exponential(1.0 / o.mtbf_hours).sample(rng);
}

double FaultModel::sample_repair_hours(Rng& rng) const {
  const OutageProcess& o = config_.outage;
  if (o.repair == OutageProcess::Repair::kLogNormal && o.repair_cv > 0.0) {
    return LogNormal::from_mean_cv(o.repair_mean_hours, o.repair_cv)
        .sample(rng);
  }
  return o.repair_mean_hours;
}

void FaultModel::schedule_outage(std::size_t i) {
  Rng& rng = resource_rngs_[i];
  const Duration gap =
      std::max<Duration>(kMinute, from_hours(sample_interarrival_hours(rng)));
  const SimTime at = engine_.now() + gap;
  if (at >= horizon_) return;  // stop initiating; lets the drain terminate
  engine_.schedule_at(at, [this, i] { begin_outage(i); });
}

void FaultModel::begin_outage(std::size_t i) {
  Rng& rng = resource_rngs_[i];
  ResourceScheduler& sched = pool_.at(ids_[i]);
  const ComputeResource& res = sched.resource();
  int nodes = res.nodes;
  if (!rng.bernoulli(config_.outage.full_outage_prob)) {
    const double fraction = rng.uniform(config_.outage.nodes_fraction_min,
                                        config_.outage.nodes_fraction_max);
    nodes = std::clamp(
        static_cast<int>(std::ceil(fraction * static_cast<double>(res.nodes))),
        1, res.nodes);
  }
  const Duration repair =
      std::max<Duration>(kMinute, from_hours(sample_repair_hours(rng)));
  const SimTime until = engine_.now() + repair;
  // Overlapping outages on one machine: take whatever is still up.
  const int taken =
      std::min(nodes, sched.resource().nodes - sched.nodes_down());
  if (taken > 0) {
    const int got = sched.begin_outage(taken, until);
    TG_METRIC_INC(stats_.outages);
    stats_.node_hours_lost.add(static_cast<double>(got) * to_hours(repair));
    engine_.schedule_at(until, [this, i, got] { end_outage(i, got); },
                        EventPriority::kCompletion);
  } else {
    engine_.schedule_at(until, [this, i] { end_outage(i, 0); },
                        EventPriority::kCompletion);
  }
}

void FaultModel::end_outage(std::size_t i, int taken) {
  if (taken > 0) {
    pool_.at(ids_[i]).end_outage(taken);
    TG_METRIC_INC(stats_.repairs);
  }
  schedule_outage(i);
}

void FaultModel::on_job_start(const Job& job) {
  // The natural end of this attempt; a hazard beyond it never fires.
  const Duration natural =
      std::min(job.req.actual_runtime, job.req.requested_walltime);
  const Duration at = from_hours(
      Exponential(config_.job_failure_rate_per_hour).sample(hazard_rng_));
  if (at <= 0 || at >= natural) return;
  const JobId id = job.id;
  const ResourceId res = job.resource;
  engine_.schedule_in(at, [this, id, res] {
    if (pool_.at(res).interrupt(id, JobState::kFailed)) {
      TG_METRIC_INC(stats_.hazard_failures);
      if (trace_ != nullptr) {
        trace_->emit(engine_.now(), obs::TraceCategory::kFault,
                     obs::TracePoint::kHazardFail, id.value(), res.value());
      }
    }
  });
}

void FaultModel::schedule_brownout(std::size_t g) {
  Rng& rng = gateway_rngs_[g];
  const double weeks =
      Exponential(config_.gateway_brownouts_per_week).sample(rng);
  const Duration gap =
      std::max<Duration>(kMinute, from_hours(weeks * 7.0 * 24.0));
  const SimTime at = engine_.now() + gap;
  if (at >= horizon_) return;
  engine_.schedule_at(at, [this, g] { begin_brownout(g); });
}

void FaultModel::begin_brownout(std::size_t g) {
  Rng& rng = gateway_rngs_[g];
  Gateway& gateway = *(*gateways_)[g];
  gateway.set_available(false);
  TG_METRIC_INC(stats_.brownouts);
  const Duration length = std::max<Duration>(
      kMinute, from_hours(Exponential(1.0 / config_.brownout_mean_hours)
                              .sample(rng)));
  if (trace_ != nullptr) {
    trace_->emit(engine_.now(), obs::TraceCategory::kFault,
                 obs::TracePoint::kBrownoutBegin, gateway.id().value(),
                 length);
  }
  engine_.schedule_in(length, [this, g] {
    (*gateways_)[g]->set_available(true);
    if (trace_ != nullptr) {
      trace_->emit(engine_.now(), obs::TraceCategory::kFault,
                   obs::TracePoint::kBrownoutEnd, (*gateways_)[g]->id().value());
    }
    schedule_brownout(g);
  });
}

void FaultModel::bind_metrics(obs::MetricsRegistry& registry) const {
  registry.bind_counter("fault.outages", stats_.outages);
  registry.bind_counter("fault.repairs", stats_.repairs);
  registry.bind_gauge("fault.node_hours_lost", stats_.node_hours_lost);
  registry.bind_counter("fault.hazard_failures", stats_.hazard_failures);
  registry.bind_counter("fault.brownouts", stats_.brownouts);
}

}  // namespace tg
