// Seeded, deterministic fault injection.
//
// Real grid accounting streams are shaped by operational noise — node
// crashes, machine outages, failed and requeued jobs, gateway brownouts
// (Grid'5000's operational studies put infrastructure failures among the
// dominant trace features). FaultModel reproduces that noise as ordinary
// DES events: per-resource outage processes (exponential or Weibull
// interarrivals, fixed or lognormal repairs), per-job failure hazards, and
// gateway brownouts. Everything is driven by forked Rng substreams, so a
// fault-enabled run is exactly as reproducible as a clean one, and a
// disabled FaultModel (the default config) schedules nothing and draws
// nothing — zero behaviour change.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/engine.hpp"
#include "gateway/gateway.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/pool.hpp"
#include "util/rng.hpp"

namespace tg {

/// One resource-outage process, applied independently to every machine.
struct OutageProcess {
  /// Mean time between outages per resource, in hours; 0 disables
  /// resource outages entirely.
  double mtbf_hours = 0.0;
  enum class Arrival : std::uint8_t { kExponential, kWeibull };
  Arrival arrival = Arrival::kExponential;
  /// Weibull shape when arrival == kWeibull (scale is derived so the mean
  /// stays mtbf_hours); > 1 models wear-out clustering.
  double weibull_shape = 1.5;
  enum class Repair : std::uint8_t { kFixed, kLogNormal };
  Repair repair = Repair::kLogNormal;
  double repair_mean_hours = 4.0;
  /// Coefficient of variation of lognormal repairs.
  double repair_cv = 1.0;
  /// Partial outages take a uniform fraction of the machine in
  /// [nodes_fraction_min, nodes_fraction_max] (rounded up, at least 1).
  double nodes_fraction_min = 0.05;
  double nodes_fraction_max = 0.5;
  /// Probability an outage takes the whole machine down instead.
  double full_outage_prob = 0.15;
};

struct FaultConfig {
  OutageProcess outage;
  /// Per-running-job failure hazard (exponential, failures per hour of
  /// runtime); 0 disables. Injected as JobState::kFailed interrupts.
  double job_failure_rate_per_hour = 0.0;
  /// Gateway brownout initiation rate per gateway per week; 0 disables.
  double gateway_brownouts_per_week = 0.0;
  /// Mean brownout duration (exponential), hours.
  double brownout_mean_hours = 2.0;

  /// False for the default config: no processes run, no randomness is
  /// drawn, simulation output is bit-identical to a build without faults.
  [[nodiscard]] bool enabled() const {
    return outage.mtbf_hours > 0.0 || job_failure_rate_per_hour > 0.0 ||
           gateway_brownouts_per_week > 0.0;
  }
};

class FaultModel {
 public:
  /// Cells are obs value types (readable as plain integers/doubles) so
  /// bind_metrics can export them by reference.
  struct Stats {
    obs::Counter outages;  ///< outages that actually took nodes
    obs::Counter repairs;
    /// Node-hours removed from service (planned repair durations).
    obs::Gauge node_hours_lost;
    obs::Counter hazard_failures;  ///< jobs killed by the hazard
    obs::Counter brownouts;
  };

  /// `gateways` may be null (or empty) when brownouts are disabled or the
  /// scenario has no gateways. New faults stop initiating at `horizon` so
  /// the post-horizon drain terminates; in-flight repairs still complete.
  FaultModel(Engine& engine, SchedulerPool& pool, FaultConfig config,
             Duration horizon, Rng rng,
             std::vector<std::unique_ptr<Gateway>>* gateways = nullptr);

  FaultModel(const FaultModel&) = delete;
  FaultModel& operator=(const FaultModel&) = delete;

  /// Schedules the initial fault events. Call once, before Engine::run.
  void start();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Attaches a trace buffer recording hazard failures and brownout
  /// begin/end (node outages are traced by the scheduler they hit).
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

  /// Registers the fault tallies with `registry` under "fault.".
  void bind_metrics(obs::MetricsRegistry& registry) const;

 private:
  void schedule_outage(std::size_t i);
  void begin_outage(std::size_t i);
  void end_outage(std::size_t i, int taken);
  void on_job_start(const Job& job);
  void schedule_brownout(std::size_t g);
  void begin_brownout(std::size_t g);
  [[nodiscard]] double sample_interarrival_hours(Rng& rng) const;
  [[nodiscard]] double sample_repair_hours(Rng& rng) const;

  Engine& engine_;
  SchedulerPool& pool_;
  FaultConfig config_;
  Duration horizon_;
  std::vector<std::unique_ptr<Gateway>>* gateways_;
  std::vector<ResourceId> ids_;    ///< pool resources, in platform order
  std::vector<Rng> resource_rngs_; ///< one outage stream per resource
  Rng hazard_rng_;
  std::vector<Rng> gateway_rngs_;  ///< one brownout stream per gateway
  Stats stats_;
  obs::TraceBuffer* trace_ = nullptr;  ///< optional flight recorder
};

}  // namespace tg
