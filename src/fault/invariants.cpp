#include "fault/invariants.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace tg {

namespace {

/// Relative comparison for accumulated floating-point quantities.
[[nodiscard]] bool close(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) <= 1e-9 * scale;
}

class Auditor {
 public:
  explicit Auditor(InvariantReport& report) : report_(report) {}

  template <class... Parts>
  void expect(bool condition, const Parts&... parts) {
    ++report_.checks;
    if (condition) return;
    ++violation_count_;
    if (violation_count_ == kMaxViolations + 1) {
      report_.violations.push_back("... further violations suppressed");
      return;
    }
    if (violation_count_ > kMaxViolations) return;
    std::ostringstream os;
    (os << ... << parts);
    report_.violations.push_back(os.str());
  }

 private:
  InvariantReport& report_;
  std::size_t violation_count_ = 0;
};

}  // namespace

std::string InvariantReport::to_string() const {
  if (ok()) {
    std::ostringstream os;
    os << "OK (" << checks << " checks)";
    return os.str();
  }
  std::ostringstream os;
  os << violations.size() << " invariant violation(s):";
  for (const std::string& v : violations) os << "\n  " << v;
  return os.str();
}

InvariantReport check_invariants(const Platform& platform,
                                 const UsageDatabase& db,
                                 const AllocationLedger* ledger,
                                 const Community* community,
                                 const SchedulerPool* pool,
                                 const ChargePolicy& policy,
                                 AuditPhase phase) {
  InvariantReport report;
  Auditor audit(report);

  // --- 1+2: record sanity and stream monotonicity ---------------------------
  SimTime prev_end = 0;
  for (std::size_t i = 0; i < db.jobs().size(); ++i) {
    const JobRecord& r = db.jobs()[i];
    audit.expect(r.submit_time <= r.start_time && r.start_time <= r.end_time,
                 "job record ", i, " (job ", r.job.value(),
                 "): times out of order (submit=", r.submit_time,
                 " start=", r.start_time, " end=", r.end_time, ")");
    audit.expect(r.end_time >= prev_end, "job record ", i,
                 ": stream not end-time sorted (", r.end_time, " after ",
                 prev_end, ")");
    prev_end = std::max(prev_end, r.end_time);
  }
  prev_end = 0;
  for (std::size_t i = 0; i < db.transfers().size(); ++i) {
    const TransferRecord& r = db.transfers()[i];
    audit.expect(r.submit_time <= r.end_time && r.bytes >= 0.0,
                 "transfer record ", i, ": bad times or negative bytes");
    audit.expect(r.end_time >= prev_end, "transfer record ", i,
                 ": stream not end-time sorted");
    prev_end = std::max(prev_end, r.end_time);
  }
  prev_end = 0;
  for (std::size_t i = 0; i < db.sessions().size(); ++i) {
    const SessionRecord& r = db.sessions()[i];
    audit.expect(r.start_time <= r.end_time, "session record ", i,
                 ": start after end");
    audit.expect(r.end_time >= prev_end, "session record ", i,
                 ": stream not end-time sorted");
    prev_end = std::max(prev_end, r.end_time);
  }

  // --- 3: charge conservation ------------------------------------------------
  double sum_nu = 0.0;
  std::vector<double> project_nu;
  std::array<std::uint64_t, kDispositionCount> disposition_seen{};
  for (std::size_t i = 0; i < db.jobs().size(); ++i) {
    const JobRecord& r = db.jobs()[i];
    ++disposition_seen[static_cast<std::size_t>(r.disposition)];
    sum_nu += r.charged_nu;
    audit.expect(r.charged_su >= 0.0 && r.charged_nu >= 0.0, "job record ", i,
                 ": negative charge");
    if (!r.resource.valid() || !platform.is_compute(r.resource)) {
      audit.expect(false, "job record ", i, ": unknown resource");
      continue;
    }
    const ComputeResource& res = platform.compute_at(r.resource);
    audit.expect(close(r.charged_nu, r.charged_su * res.charge_factor),
                 "job record ", i, ": nu ", r.charged_nu, " != su ",
                 r.charged_su, " x factor ", res.charge_factor);
    const bool refunded = !policy.charge_lost_work &&
                          (r.disposition == Disposition::kRequeued ||
                           r.disposition == Disposition::kKilledByOutage);
    const double held_su = to_hours(r.end_time - r.start_time) *
                           static_cast<double>(r.nodes) *
                           static_cast<double>(res.cores_per_node);
    audit.expect(close(r.charged_su, refunded ? 0.0 : held_su), "job record ",
                 i, ": su ", r.charged_su, " != held node-hours ",
                 refunded ? 0.0 : held_su, " (", to_string(r.disposition),
                 ")");
    if (r.project.valid()) {
      const auto p = static_cast<std::size_t>(r.project.value());
      if (p >= project_nu.size()) project_nu.resize(p + 1, 0.0);
      project_nu[p] += r.charged_nu;
    }
  }
  audit.expect(close(sum_nu, db.total_nu()), "record NU sum ", sum_nu,
               " != database total ", db.total_nu());
  if (ledger != nullptr) {
    audit.expect(close(sum_nu, ledger->total_charged()), "record NU sum ",
                 sum_nu, " != ledger total ", ledger->total_charged());
    if (community != nullptr) {
      for (const Project& p : community->projects()) {
        const auto idx = static_cast<std::size_t>(p.id.value());
        const double recorded = idx < project_nu.size() ? project_nu[idx] : 0.0;
        audit.expect(ledger->charged(p.id) >= 0.0, "project ", p.name,
                     ": negative ledger charge");
        audit.expect(close(recorded, ledger->charged(p.id)), "project ",
                     p.name, ": record NU ", recorded, " != ledger charge ",
                     ledger->charged(p.id));
      }
    }
  }

  // --- 4: disposition lifecycle ----------------------------------------------
  for (std::size_t d = 0; d < kDispositionCount; ++d) {
    audit.expect(
        disposition_seen[d] == db.disposition_count(static_cast<Disposition>(d)),
        "disposition counter mismatch for ",
        to_string(static_cast<Disposition>(d)), ": stream has ",
        disposition_seen[d], ", counter says ",
        db.disposition_count(static_cast<Disposition>(d)));
  }
  {
    std::unordered_map<std::int64_t, std::size_t> last_row;
    last_row.reserve(db.jobs().size());
    for (std::size_t i = 0; i < db.jobs().size(); ++i) {
      last_row[db.jobs()[i].job.value()] = i;
    }
    for (std::size_t i = 0; i < db.jobs().size(); ++i) {
      const JobRecord& r = db.jobs()[i];
      const bool last = last_row[r.job.value()] == i;
      if (last) {
        // Mid-run, a job's newest record may be kRequeued: its next
        // attempt simply has not ended yet.
        audit.expect(phase == AuditPhase::kMidRun ||
                         is_terminal(r.disposition),
                     "job ", r.job.value(),
                     ": last record is non-terminal (",
                     to_string(r.disposition), ")");
      } else {
        audit.expect(r.disposition == Disposition::kRequeued, "job ",
                     r.job.value(), ": non-final record has disposition ",
                     to_string(r.disposition), " (only requeued attempts may ",
                     "be followed by another attempt)");
      }
    }
  }

  // --- 5: capacity conservation ----------------------------------------------
  {
    // Sweep each resource's (start, +nodes)/(end, -nodes) deltas; releases
    // sort before acquisitions at equal times (a node freed at t can be
    // reused at t).
    struct Delta {
      SimTime t;
      int order;  // 0 = release, 1 = acquire
      int nodes;
    };
    std::unordered_map<std::int32_t, std::vector<Delta>> by_resource;
    for (const JobRecord& r : db.jobs()) {
      if (!r.resource.valid() || !platform.is_compute(r.resource)) continue;
      if (r.end_time <= r.start_time) continue;  // zero-length attempt
      auto& deltas = by_resource[r.resource.value()];
      deltas.push_back({r.start_time, 1, r.nodes});
      deltas.push_back({r.end_time, 0, -r.nodes});
    }
    for (auto& [id, deltas] : by_resource) {
      std::sort(deltas.begin(), deltas.end(), [](const Delta& a,
                                                 const Delta& b) {
        if (a.t != b.t) return a.t < b.t;
        return a.order < b.order;
      });
      const ComputeResource& res =
          platform.compute_at(ResourceId{id});
      int in_use = 0;
      int peak = 0;
      for (const Delta& d : deltas) {
        in_use += d.nodes;
        peak = std::max(peak, in_use);
      }
      audit.expect(peak <= res.nodes, "resource ", res.name,
                   ": records imply ", peak, " concurrent nodes on a ",
                   res.nodes, "-node machine");
      audit.expect(in_use == 0, "resource ", res.name,
                   ": node acquisitions and releases do not balance");
    }
  }

  // --- 6: quiescence ----------------------------------------------------------
  if (pool != nullptr && phase == AuditPhase::kFinal) {
    for (const ResourceId id : pool->resource_ids()) {
      const ResourceScheduler& sched = pool->at(id);
      const std::string& name = sched.resource().name;
      audit.expect(sched.running_jobs() == 0, "resource ", name, ": ",
                   sched.running_jobs(), " jobs still running after drain");
      audit.expect(sched.queue_length() == 0, "resource ", name, ": ",
                   sched.queue_length(), " jobs still queued after drain");
      audit.expect(sched.nodes_down() == 0, "resource ", name, ": ",
                   sched.nodes_down(), " nodes still down after drain");
      audit.expect(sched.free_nodes() == sched.resource().nodes, "resource ",
                   name, ": ", sched.free_nodes(), " of ",
                   sched.resource().nodes, " nodes free after drain");
    }
  } else if (pool != nullptr) {
    // --- 6': mid-run node accounting ----------------------------------------
    // Jobs may be running and nodes may be down, but the scheduler's node
    // bookkeeping must still balance: nothing negative, and down + free
    // never more than the machine (running/reserved jobs hold the rest).
    for (const ResourceId id : pool->resource_ids()) {
      const ResourceScheduler& sched = pool->at(id);
      const std::string& name = sched.resource().name;
      const int nodes = sched.resource().nodes;
      audit.expect(sched.free_nodes() >= 0, "resource ", name, ": ",
                   sched.free_nodes(), " free nodes (negative)");
      audit.expect(sched.nodes_down() >= 0 && sched.nodes_down() <= nodes,
                   "resource ", name, ": ", sched.nodes_down(),
                   " nodes down on a ", nodes, "-node machine");
      audit.expect(sched.free_nodes() + sched.nodes_down() <= nodes,
                   "resource ", name, ": free ", sched.free_nodes(),
                   " + down ", sched.nodes_down(), " exceeds ", nodes,
                   " nodes");
    }
  }

  return report;
}

}  // namespace tg
