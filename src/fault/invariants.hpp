// Simulation invariant harness.
//
// check_invariants() audits a finished (or drained) simulation from the
// outside: it reads only the accounting database, the ledger and public
// scheduler state — the same surfaces an operator could audit on the real
// TeraGrid — and verifies the conservation laws that fault injection is most
// likely to break. Runnable from unit tests and from experiment binaries
// (exp_common's --check-invariants flag).
//
// Invariant families:
//  1. Record sanity: submit <= start <= end for every job record; session
//     and transfer timestamps ordered.
//  2. Stream monotonicity: each record stream is sorted by end time (the
//     live Recorder appends in completion order).
//  3. Charge conservation: charges are non-negative, nu == su x the
//     machine's charge factor, su matches the attempt's held node-hours —
//     and outage-refunded attempts are charged zero under a refunding
//     policy. Sum of record NUs == database total == ledger total, and
//     per-project record sums match the ledger (no NU created or destroyed
//     between a job ending and the ledger debit).
//  4. Disposition lifecycle: every job's *last* record is terminal, only
//     kRequeued records may be followed by another attempt of the same
//     JobId, and the database's O(1) disposition counters match the stream.
//  5. Capacity conservation: per resource, the concurrent node usage implied
//     by record [start, end) intervals never exceeds the machine size —
//     outage/repair cycles must not double-allocate nodes.
//  6. Quiescence (when a pool is supplied; call after the drain): no queued
//     or running jobs, no nodes still down, all nodes free.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "accounting/charge.hpp"
#include "accounting/ledger.hpp"
#include "accounting/usage_db.hpp"
#include "infra/community.hpp"
#include "infra/platform.hpp"
#include "sched/pool.hpp"

namespace tg {

struct InvariantReport {
  /// Human-readable descriptions of every violated invariant (bounded: at
  /// most kMaxViolations are recorded, with a truncation marker).
  std::vector<std::string> violations;
  /// Number of individual checks evaluated (a sanity guard that the audit
  /// actually ran over real data).
  std::size_t checks = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// "OK (N checks)" or a newline-joined violation list.
  [[nodiscard]] std::string to_string() const;
};

inline constexpr std::size_t kMaxViolations = 32;

/// When the audit runs relative to the simulation. Families 1-3 and 5 hold
/// at any quiescent point (record streams only ever contain *ended*
/// attempts); kMidRun relaxes the two families that assume a drained
/// simulation: a job's last record may still be kRequeued (its retry is
/// pending), and the pool check verifies node-accounting bounds
/// (0 <= free, 0 <= down, free + down <= nodes) instead of emptiness.
enum class AuditPhase {
  kFinal,   ///< after the drain: full six families
  kMidRun,  ///< at a quiescent mid-simulation point (e.g. --audit-every)
};

/// Audits database/ledger/scheduler state. `ledger`, `community` and `pool`
/// are optional; each unlocks the corresponding invariant family. `policy`
/// must be the charge policy the run's Recorder used.
[[nodiscard]] InvariantReport check_invariants(
    const Platform& platform, const UsageDatabase& db,
    const AllocationLedger* ledger = nullptr,
    const Community* community = nullptr, const SchedulerPool* pool = nullptr,
    const ChargePolicy& policy = {}, AuditPhase phase = AuditPhase::kFinal);

}  // namespace tg
