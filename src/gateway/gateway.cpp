#include "gateway/gateway.hpp"

#include "util/error.hpp"

namespace tg {

Gateway::Gateway(Engine& engine, SchedulerPool& pool, GatewayId id,
                 GatewayConfig config)
    : engine_(engine),
      pool_(pool),
      id_(id),
      config_(std::move(config)),
      target_picker_(config_.target_weights.empty()
                         ? std::vector<double>(config_.targets.size(), 1.0)
                         : config_.target_weights) {
  TG_REQUIRE(!config_.targets.empty(), "gateway " << config_.name
                                                  << " has no targets");
  TG_REQUIRE(config_.target_weights.empty() ||
                 config_.target_weights.size() == config_.targets.size(),
             "gateway target/weight size mismatch");
  TG_REQUIRE(config_.attribute_coverage >= 0.0 &&
                 config_.attribute_coverage <= 1.0,
             "attribute coverage must be a probability");
}

JobId Gateway::submit(EndUserId end_user, const GatewayJobSpec& spec,
                      Rng& rng) {
  if (!available_) {
    TG_METRIC_INC(dropped_);
    if (trace_ != nullptr) {
      trace_->emit(engine_.now(), obs::TraceCategory::kGateway,
                   obs::TracePoint::kGatewayDrop, end_user.value(),
                   id_.value());
    }
    return JobId{};
  }
  const ResourceId target = config_.targets[target_picker_.sample(rng)];
  JobRequest req;
  req.user = config_.community_account;
  req.project = config_.project;
  req.nodes = spec.nodes;
  req.requested_walltime = spec.requested_walltime;
  req.actual_runtime = spec.actual_runtime;
  req.fails = spec.fails;
  req.fail_after = spec.fail_after;
  req.gateway = id_;
  if (rng.bernoulli(config_.attribute_coverage)) {
    req.gateway_end_user = end_user;
  }
  TG_METRIC_INC(submitted_);
  const JobId job = pool_.at(target).submit(std::move(req));
  if (trace_ != nullptr) {
    trace_->emit(engine_.now(), obs::TraceCategory::kGateway,
                 obs::TracePoint::kGatewaySubmit, end_user.value(),
                 id_.value(), job.value());
  }
  return job;
}

void Gateway::bind_metrics(obs::MetricsRegistry& registry) const {
  const std::string base = "gateway." + config_.name;
  registry.bind_counter(base + ".jobs_submitted", submitted_);
  registry.bind_counter(base + ".jobs_dropped", dropped_);
}

}  // namespace tg
