// Science-gateway model.
//
// A gateway (nanoHUB-style) runs all jobs under one *community account* and
// charges one community allocation; the identity of the human behind each
// job is carried — when the gateway implements it — as a per-job end-user
// attribute. That attribute is the paper's measurement mechanism for the
// gateway modality, and its incomplete coverage is the measurement gap the
// paper discusses; `attribute_coverage` models it directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "obs/trace.hpp"
#include "sched/pool.hpp"
#include "util/distributions.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace tg {

struct GatewayConfig {
  std::string name;
  /// The community account all gateway jobs run under.
  UserId community_account;
  ProjectId project;
  /// Probability that a job record carries the end-user attribute.
  double attribute_coverage = 0.95;
  /// Resources the gateway submits to, with selection weights.
  std::vector<ResourceId> targets;
  std::vector<double> target_weights;
};

/// Geometry of one gateway job, decided by the calling workload model.
struct GatewayJobSpec {
  int nodes = 1;
  Duration requested_walltime = kHour;
  Duration actual_runtime = 30 * kMinute;
  bool fails = false;
  Duration fail_after = 0;
};

class Gateway {
 public:
  Gateway(Engine& engine, SchedulerPool& pool, GatewayId id,
          GatewayConfig config);

  /// Submits a job on behalf of `end_user` — the interned id of an opaque
  /// label such as "nanohub:4711" (see Population::end_user_pool). The
  /// target resource is sampled from the configured weights; the end-user
  /// attribute is attached with probability `attribute_coverage`. During a
  /// brownout the submission is dropped and an invalid JobId is returned —
  /// what a user of a browned-out gateway portal actually experiences.
  JobId submit(EndUserId end_user, const GatewayJobSpec& spec, Rng& rng);

  /// Brownout control (driven by src/fault/FaultModel): while unavailable,
  /// every submit is dropped.
  void set_available(bool available) { available_ = available; }
  [[nodiscard]] bool available() const { return available_; }
  [[nodiscard]] std::uint64_t jobs_dropped() const { return dropped_; }

  [[nodiscard]] GatewayId id() const { return id_; }
  [[nodiscard]] const GatewayConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t jobs_submitted() const { return submitted_; }

  /// Attaches a trace buffer recording submissions and brownout drops
  /// (nullptr detaches). Must outlive the gateway or the next set_trace.
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

  /// Registers submission tallies with `registry` under
  /// "gateway.<name>.".
  void bind_metrics(obs::MetricsRegistry& registry) const;

 private:
  Engine& engine_;
  SchedulerPool& pool_;
  GatewayId id_;
  GatewayConfig config_;
  Discrete target_picker_;
  obs::Counter submitted_;
  obs::Counter dropped_;
  bool available_ = true;
  obs::TraceBuffer* trace_ = nullptr;
};

}  // namespace tg
