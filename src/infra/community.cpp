#include "infra/community.hpp"

#include "util/error.hpp"

namespace tg {

const char* to_string(FieldOfScience f) {
  switch (f) {
    case FieldOfScience::kPhysics: return "Physics";
    case FieldOfScience::kChemistry: return "Chemistry";
    case FieldOfScience::kBiosciences: return "Biosciences";
    case FieldOfScience::kEngineering: return "Engineering";
    case FieldOfScience::kGeosciences: return "Geosciences";
    case FieldOfScience::kAstronomy: return "Astronomy";
    case FieldOfScience::kComputerScience: return "Computer Science";
    case FieldOfScience::kSocialSciences: return "Social Sciences";
    case FieldOfScience::kOther: return "Other";
  }
  return "Unknown";
}

ProjectId Community::add_project(std::string name, FieldOfScience field,
                                 double allocation_nu) {
  TG_REQUIRE(allocation_nu >= 0.0, "allocation must be non-negative");
  const ProjectId id{static_cast<ProjectId::rep>(projects_.size())};
  projects_.push_back(Project{id, std::move(name), field, allocation_nu});
  return id;
}

UserId Community::add_user(std::string name, ProjectId project) {
  TG_REQUIRE(project.valid() &&
                 static_cast<std::size_t>(project.value()) < projects_.size(),
             "user references unknown project");
  const UserId id{static_cast<UserId::rep>(users_.size())};
  users_.push_back(User{id, project, std::move(name)});
  return id;
}

const Project& Community::project(ProjectId id) const {
  TG_REQUIRE(id.valid() &&
                 static_cast<std::size_t>(id.value()) < projects_.size(),
             "unknown project " << id);
  return projects_[static_cast<std::size_t>(id.value())];
}

const User& Community::user(UserId id) const {
  TG_REQUIRE(id.valid() && static_cast<std::size_t>(id.value()) < users_.size(),
             "unknown user " << id);
  return users_[static_cast<std::size_t>(id.value())];
}

}  // namespace tg
