// The user community: users grouped into allocated projects.
//
// A project corresponds to a TeraGrid allocation (a PI's award of normalized
// units); users charge jobs against their project. Fields of science are
// carried for reporting parity with TeraGrid annual reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace tg {

enum class FieldOfScience : std::uint8_t {
  kPhysics,
  kChemistry,
  kBiosciences,
  kEngineering,
  kGeosciences,
  kAstronomy,
  kComputerScience,
  kSocialSciences,
  kOther,
};

[[nodiscard]] const char* to_string(FieldOfScience f);

struct Project {
  ProjectId id;
  std::string name;
  FieldOfScience field = FieldOfScience::kOther;
  /// Awarded normalized units for the allocation year.
  double allocation_nu = 0.0;
};

struct User {
  UserId id;
  ProjectId project;
  std::string name;
};

/// Registry of users and projects. Ids are dense indices, so lookups are
/// O(1) vector accesses.
class Community {
 public:
  ProjectId add_project(std::string name, FieldOfScience field,
                        double allocation_nu);
  UserId add_user(std::string name, ProjectId project);

  [[nodiscard]] const std::vector<Project>& projects() const {
    return projects_;
  }
  [[nodiscard]] const std::vector<User>& users() const { return users_; }
  [[nodiscard]] const Project& project(ProjectId id) const;
  [[nodiscard]] const User& user(UserId id) const;
  [[nodiscard]] std::size_t user_count() const { return users_.size(); }

 private:
  std::vector<Project> projects_;
  std::vector<User> users_;
};

}  // namespace tg
