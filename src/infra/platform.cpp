#include "infra/platform.hpp"

#include "util/error.hpp"

namespace tg {

SiteId Platform::add_site(std::string name) {
  const SiteId id{static_cast<SiteId::rep>(sites_.size())};
  sites_.push_back(Site{id, std::move(name)});
  return id;
}

ResourceId Platform::add_compute(ComputeResource spec) {
  TG_REQUIRE(spec.nodes > 0 && spec.cores_per_node > 0,
             "compute resource " << spec.name << " needs nodes and cores");
  TG_REQUIRE(spec.site.valid() &&
                 static_cast<std::size_t>(spec.site.value()) < sites_.size(),
             "compute resource " << spec.name << " references unknown site");
  const ResourceId id{static_cast<ResourceId::rep>(compute_.size())};
  spec.id = id;
  compute_.push_back(std::move(spec));
  return id;
}

ResourceId Platform::add_storage(StorageResource spec) {
  TG_REQUIRE(spec.site.valid() &&
                 static_cast<std::size_t>(spec.site.value()) < sites_.size(),
             "storage resource " << spec.name << " references unknown site");
  // Storage ids live in a namespace above compute ids so a single
  // ResourceId can name either; see is_compute().
  const ResourceId id{static_cast<ResourceId::rep>(kStorageIdBase +
                                                   storage_.size())};
  spec.id = id;
  storage_.push_back(std::move(spec));
  return id;
}

LinkId Platform::add_link(SiteId a, SiteId b, double gbps, Duration latency) {
  TG_REQUIRE(a != b, "link endpoints must differ");
  TG_REQUIRE(gbps > 0.0, "link bandwidth must be positive");
  const LinkId id{static_cast<LinkId::rep>(links_.size())};
  links_.push_back(Link{id, a, b, gbps, latency});
  return id;
}

const Site& Platform::site(SiteId id) const {
  TG_REQUIRE(id.valid() && static_cast<std::size_t>(id.value()) < sites_.size(),
             "unknown site " << id);
  return sites_[static_cast<std::size_t>(id.value())];
}

const ComputeResource& Platform::compute_at(ResourceId id) const {
  TG_REQUIRE(is_compute(id), "resource " << id << " is not compute");
  return compute_[static_cast<std::size_t>(id.value())];
}

const StorageResource& Platform::storage_at(ResourceId id) const {
  const auto idx = static_cast<std::size_t>(id.value()) - kStorageIdBase;
  TG_REQUIRE(id.value() >= static_cast<ResourceId::rep>(kStorageIdBase) &&
                 idx < storage_.size(),
             "resource " << id << " is not storage");
  return storage_[idx];
}

const Link& Platform::link(LinkId id) const {
  TG_REQUIRE(id.valid() && static_cast<std::size_t>(id.value()) < links_.size(),
             "unknown link " << id);
  return links_[static_cast<std::size_t>(id.value())];
}

const ComputeResource& Platform::compute_by_name(const std::string& name) const {
  for (const auto& r : compute_) {
    if (r.name == name) return r;
  }
  TG_REQUIRE(false, "no compute resource named " << name);
  // Unreachable; TG_REQUIRE throws.
  return compute_.front();
}

bool Platform::is_compute(ResourceId id) const {
  return id.valid() &&
         static_cast<std::size_t>(id.value()) < compute_.size();
}

long Platform::total_cores() const {
  long total = 0;
  for (const auto& r : compute_) total += r.total_cores();
  return total;
}

Platform teragrid_2010() {
  Platform p;
  // Resource-provider sites. The hub models the Chicago/StarLight exchange.
  const SiteId hub = p.add_site("Chicago-Hub");
  const SiteId ncsa = p.add_site("NCSA");
  const SiteId sdsc = p.add_site("SDSC");
  const SiteId tacc = p.add_site("TACC");
  const SiteId psc = p.add_site("PSC");
  const SiteId nics = p.add_site("NICS");
  const SiteId iu = p.add_site("Indiana");
  const SiteId purdue = p.add_site("Purdue");
  const SiteId anl = p.add_site("ANL");
  const SiteId ornl = p.add_site("ORNL");
  const SiteId loni = p.add_site("LONI");

  // Compute systems at ~1/8 production node counts. charge_factor mirrors
  // the TeraGrid NU normalization (faster cores charge more NUs/core-hour).
  const auto mk = [](SiteId site, const char* name, int nodes, int cpn,
                     double charge, Duration maxwt, bool viz = false) {
    ComputeResource r;
    r.site = site;
    r.name = name;
    r.nodes = nodes;
    r.cores_per_node = cpn;
    r.charge_factor = charge;
    r.max_walltime = maxwt;
    r.interactive_viz = viz;
    return r;
  };
  p.add_compute(mk(nics, "Kraken", 1032, 12, 1.00, 24 * kHour));
  p.add_compute(mk(tacc, "Ranger", 492, 16, 0.85, 48 * kHour));
  p.add_compute(mk(tacc, "Lonestar", 160, 8, 0.90, 48 * kHour));
  p.add_compute(mk(ncsa, "Abe", 150, 8, 0.80, 48 * kHour));
  p.add_compute(mk(ncsa, "Lincoln", 24, 8, 1.20, 24 * kHour));
  p.add_compute(mk(sdsc, "Trestles", 40, 32, 0.95, 48 * kHour));
  p.add_compute(mk(sdsc, "Dash", 8, 16, 1.10, 24 * kHour));
  p.add_compute(mk(psc, "Pople", 96, 16, 0.75, 96 * kHour));
  p.add_compute(mk(purdue, "Steele", 112, 8, 0.70, 72 * kHour));
  p.add_compute(mk(iu, "BigRed", 96, 8, 0.70, 48 * kHour));
  p.add_compute(mk(loni, "QueenBee", 84, 8, 0.80, 48 * kHour));
  // Viz-capable systems (Longhorn at TACC, Nautilus at NICS).
  p.add_compute(mk(tacc, "Longhorn", 32, 8, 1.00, 12 * kHour, /*viz=*/true));
  p.add_compute(mk(nics, "Nautilus", 16, 16, 1.00, 12 * kHour, /*viz=*/true));

  // Storage systems.
  StorageResource s;
  s.site = iu;
  s.name = "DataCapacitor";
  s.capacity_tb = 350;
  s.bandwidth_gbps = 10;
  p.add_storage(s);
  s.site = sdsc;
  s.name = "HPSS-SDSC";
  s.capacity_tb = 2000;
  s.bandwidth_gbps = 5;
  p.add_storage(s);
  s.site = ncsa;
  s.name = "MSS-NCSA";
  s.capacity_tb = 3000;
  s.bandwidth_gbps = 5;
  p.add_storage(s);
  s.site = ornl;
  s.name = "HPSS-ORNL";
  s.capacity_tb = 2500;
  s.bandwidth_gbps = 5;
  p.add_storage(s);

  // Hub-and-spoke 10-Gb/s backbone; TACC and NCSA multi-homed at 2x10G.
  for (const SiteId spoke : {ncsa, sdsc, tacc, psc, nics, iu, purdue, anl,
                             ornl, loni}) {
    p.add_link(hub, spoke, 10.0, 25 * kMillisecond);
  }
  p.add_link(hub, tacc, 10.0, 25 * kMillisecond);  // second lambda
  p.add_link(hub, ncsa, 10.0, 10 * kMillisecond);  // second lambda
  return p;
}

Platform mini_platform() {
  Platform p;
  const SiteId a = p.add_site("SiteA");
  const SiteId b = p.add_site("SiteB");
  ComputeResource c;
  c.site = a;
  c.name = "ClusterA";
  c.nodes = 16;
  c.cores_per_node = 8;
  c.charge_factor = 1.0;
  c.max_walltime = 24 * kHour;
  p.add_compute(c);
  c.site = b;
  c.name = "ClusterB";
  c.nodes = 8;
  c.cores_per_node = 8;
  c.charge_factor = 0.8;
  p.add_compute(c);
  StorageResource s;
  s.site = b;
  s.name = "StoreB";
  s.capacity_tb = 100;
  p.add_storage(s);
  p.add_link(a, b, 10.0, 20 * kMillisecond);
  return p;
}

ShardPlan make_shard_plan(const Platform& platform) {
  std::vector<Duration> latencies;
  latencies.reserve(platform.links().size());
  for (const Link& link : platform.links()) {
    latencies.push_back(link.latency);
  }
  return plan_shards(platform.sites().size(), latencies);
}

}  // namespace tg
