// Static model of a federated cyberinfrastructure: sites, compute/viz
// resources, storage systems, and the WAN links between sites.
//
// The Platform is pure description — dynamics (queues, flows) live in
// tg::sched and tg::net. A preset reproducing the 2010-era TeraGrid at
// reduced scale is provided by `teragrid_2010()`.
#pragma once

#include <string>
#include <vector>

#include "des/shard.hpp"
#include "des/time.hpp"
#include "util/ids.hpp"

namespace tg {

struct Site {
  SiteId id;
  std::string name;
};

/// A space-shared parallel computer. `interactive_viz` marks resources that
/// support interactive/visualization sessions (e.g. TACC Longhorn/Spur).
struct ComputeResource {
  ResourceId id;
  SiteId site;
  std::string name;
  int nodes = 0;
  int cores_per_node = 0;
  /// Normalized-unit charge per core-hour (TeraGrid "NU" normalization).
  double charge_factor = 1.0;
  /// Site-enforced maximum requested walltime.
  Duration max_walltime = 48 * kHour;
  bool interactive_viz = false;

  [[nodiscard]] int total_cores() const { return nodes * cores_per_node; }
};

/// An archival or parallel-filesystem storage system.
struct StorageResource {
  ResourceId id;
  SiteId site;
  std::string name;
  double capacity_tb = 0.0;
  /// Local ingest/egress ceiling, independent of WAN links.
  double bandwidth_gbps = 10.0;
};

/// A WAN link between two sites (full duplex; capacity applies per
/// direction). The 2010 TeraGrid backbone was a 10-Gb/s hub-and-spoke
/// overlay with some sites multi-homed.
struct Link {
  LinkId id;
  SiteId a;
  SiteId b;
  double gbps = 10.0;
  Duration latency = 30 * kMillisecond;
};

/// Storage resources are numbered from this base so that one ResourceId
/// namespace covers both compute and storage.
inline constexpr std::size_t kStorageIdBase = 1'000'000;

class Platform {
 public:
  SiteId add_site(std::string name);
  ResourceId add_compute(ComputeResource spec);  ///< id/site fields of spec.id ignored
  ResourceId add_storage(StorageResource spec);
  LinkId add_link(SiteId a, SiteId b, double gbps,
                  Duration latency = 30 * kMillisecond);

  [[nodiscard]] const std::vector<Site>& sites() const { return sites_; }
  [[nodiscard]] const std::vector<ComputeResource>& compute() const {
    return compute_;
  }
  [[nodiscard]] const std::vector<StorageResource>& storage() const {
    return storage_;
  }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  [[nodiscard]] const Site& site(SiteId id) const;
  [[nodiscard]] const ComputeResource& compute_at(ResourceId id) const;
  [[nodiscard]] const StorageResource& storage_at(ResourceId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;

  /// Looks a compute resource up by name; throws if absent.
  [[nodiscard]] const ComputeResource& compute_by_name(
      const std::string& name) const;

  /// True if `id` names a compute resource (vs storage).
  [[nodiscard]] bool is_compute(ResourceId id) const;

  /// Total cores across all compute resources.
  [[nodiscard]] long total_cores() const;

 private:
  std::vector<Site> sites_;
  std::vector<ComputeResource> compute_;
  std::vector<StorageResource> storage_;
  std::vector<Link> links_;
};

/// Builds a reduced-scale model of the 2010 TeraGrid: 11 resource-provider
/// sites, 12 compute systems (two of them viz-capable), 4 storage systems,
/// and a 10-Gb/s hub-and-spoke WAN (Chicago hub). Node counts are scaled to
/// ~1/8 of production so that year-long simulations stay fast; charge
/// factors preserve the relative NU normalization between machines.
[[nodiscard]] Platform teragrid_2010();

/// A 2-site / 2-resource micro platform used by unit tests and quickstart.
[[nodiscard]] Platform mini_platform();

/// Derives the shard plan (coordinator + one partition per site, WAN
/// lookahead from the minimum link latency) from a platform's topology.
[[nodiscard]] ShardPlan make_shard_plan(const Platform& platform);

}  // namespace tg
