// Concrete ChoiceHook implementations: scripted replay (the DFS explorer's
// and the reproducer's steering mechanism) and uniform random tie-breaking
// (the cheap sampling complement, --mc-random).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "des/engine.hpp"
#include "mc/hash.hpp"
#include "util/rng.hpp"

namespace tg::mc {

/// One resolved choice point: the tie set presented and the index fired.
struct Choice {
  std::vector<ChoiceHook::Candidate> tie;
  std::size_t pick = 0;
};

/// Follows a scripted pick list positionally (canonical index 0 beyond its
/// end), recording every choice point it passes and the Foata signature of
/// the full fired sequence. The building block for both DFS exploration
/// and reproducer replay: the same pick vector always steers the engine
/// down the same branch.
class ScriptedChoices : public ChoiceHook {
 public:
  ScriptedChoices() = default;
  explicit ScriptedChoices(std::vector<std::size_t> picks)
      : picks_(std::move(picks)) {}

  std::size_t choose(const std::vector<Candidate>& tie) override {
    Choice& c = log_.emplace_back();
    c.tie = tie;
    const std::size_t i = log_.size() - 1;
    c.pick = i < picks_.size() ? picks_[i] : 0;
    if (c.pick >= tie.size()) c.pick = 0;  // stale script: fall back
    return c.pick;
  }

  void on_fire(const Candidate& fired) override { signature_.add(fired); }

  /// Every choice point encountered, in order, with the pick taken.
  [[nodiscard]] const std::vector<Choice>& log() const { return log_; }
  [[nodiscard]] const FoataSignature& signature() const { return signature_; }

 private:
  std::vector<std::size_t> picks_;
  std::vector<Choice> log_;
  FoataSignature signature_;
};

/// Resolves every tie uniformly at random from a seeded stream. No DFS
/// machinery: a full-size scenario can run under this hook at ordinary
/// simulation speed, sampling one causally-possible order per seed.
class RandomTieBreaker : public ChoiceHook {
 public:
  explicit RandomTieBreaker(std::uint64_t seed) : rng_(seed) {}

  std::size_t choose(const std::vector<Candidate>& tie) override {
    ++choice_points_;
    const std::size_t pick = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(tie.size()) - 1));
    if (pick != 0) ++non_canonical_;
    if (tie.size() > max_tie_) max_tie_ = tie.size();
    return pick;
  }

  [[nodiscard]] std::uint64_t choice_points() const { return choice_points_; }
  [[nodiscard]] std::uint64_t non_canonical() const { return non_canonical_; }
  [[nodiscard]] std::size_t max_tie() const { return max_tie_; }

 private:
  Rng rng_;
  std::uint64_t choice_points_ = 0;
  std::uint64_t non_canonical_ = 0;
  std::size_t max_tie_ = 0;
};

}  // namespace tg::mc
