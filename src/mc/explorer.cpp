#include "mc/explorer.hpp"

#include <exception>
#include <sstream>

#include "mc/choice.hpp"
#include "mc/hash.hpp"

namespace tg::mc {

namespace {

bool ties_match(const std::vector<ChoiceHook::Candidate>& a,
                const std::vector<ChoiceHook::Candidate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].same_event(b[i])) return false;
  }
  return true;
}

std::string describe_tie(const std::vector<ChoiceHook::Candidate>& tie) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < tie.size(); ++i) {
    const ChoiceHook::Candidate& c = tie[i];
    os << (i > 0 ? " " : "") << "s" << c.shard << "#" << c.seq << "@"
       << c.time << "/" << c.priority;
  }
  os << "}";
  return os.str();
}

}  // namespace

/// The explorer's steering hook: replays the pinned prefix (validating
/// determinism), then materializes frontier frames with inherited sleep
/// sets, then coasts canonically past the depth bound.
class DfsHook : public ChoiceHook {
 public:
  DfsHook(ExplorerResult& result, std::vector<Explorer::Frame>& stack,
          const ExplorerOptions& opts)
      : result_(result), stack_(stack), opts_(opts) {}

  std::size_t choose(const std::vector<Candidate>& tie) override {
    const std::size_t depth = depth_++;
    if (!result_.nondeterminism.empty()) return 0;  // coast to drain
    if (depth < stack_.size()) {
      Explorer::Frame& f = stack_[depth];
      if (!ties_match(f.tie, tie)) {
        std::ostringstream os;
        os << "replay diverged at choice point " << depth << ": expected "
           << describe_tie(f.tie) << ", engine presented "
           << describe_tie(tie);
        result_.nondeterminism = os.str();
        return 0;
      }
      return f.chosen;
    }
    if (depth >= opts_.max_choice_points) {
      ++result_.depth_clipped;
      return 0;
    }

    Explorer::Frame f;
    f.tie = tie;
    f.asleep.assign(tie.size(), false);
    f.inherited.assign(tie.size(), false);
    f.explored.assign(tie.size(), false);
    if (opts_.sleep_sets && !stack_.empty()) {
      // Sleep-set inheritance: a candidate the parent already explored (or
      // itself inherited) stays asleep here iff it is independent of the
      // transition that led to this frame — firing it now would only
      // commute independent events into an order already covered.
      const Explorer::Frame& parent = stack_.back();
      const Candidate& via = parent.tie[parent.chosen];
      for (std::size_t j = 0; j < tie.size(); ++j) {
        for (std::size_t k = 0; k < parent.tie.size(); ++k) {
          if (k == parent.chosen || !parent.asleep[k]) continue;
          if (parent.tie[k].same_event(tie[j]) &&
              independent(parent.tie[k], via)) {
            f.asleep[j] = true;
            f.inherited[j] = true;
            break;
          }
        }
      }
    }
    f.chosen = 0;
    for (std::size_t j = 0; j < tie.size(); ++j) {
      if (!f.asleep[j]) {
        f.chosen = j;
        break;
      }
    }
    f.explored[f.chosen] = true;
    stack_.push_back(std::move(f));
    ++result_.choice_points;
    if (stack_.size() > result_.max_depth) result_.max_depth = stack_.size();
    return stack_.back().chosen;
  }

  void on_fire(const Candidate& fired) override { signature_.add(fired); }

  [[nodiscard]] std::uint64_t signature() const { return signature_.value(); }

 private:
  ExplorerResult& result_;
  std::vector<Explorer::Frame>& stack_;
  const ExplorerOptions& opts_;
  std::size_t depth_ = 0;
  FoataSignature signature_;
};

Outcome replay_trace(const RunFn& run,
                     const std::vector<std::size_t>& picks) {
  ScriptedChoices hook(picks);
  try {
    return run(hook);
  } catch (const std::exception& e) {
    Outcome out;
    out.ok = false;
    out.failure = e.what();
    return out;
  }
}

std::vector<std::size_t> Explorer::current_picks() const {
  std::vector<std::size_t> picks;
  picks.reserve(stack_.size());
  for (const Frame& f : stack_) picks.push_back(f.chosen);
  while (!picks.empty() && picks.back() == 0) picks.pop_back();
  return picks;
}

bool Explorer::advance() {
  while (!stack_.empty()) {
    Frame& f = stack_.back();
    f.asleep[f.chosen] = true;  // fully explored below this pick
    std::size_t next = f.tie.size();
    for (std::size_t j = 0; j < f.tie.size(); ++j) {
      if (!f.asleep[j]) {
        next = j;
        break;
      }
    }
    if (next < f.tie.size()) {
      f.chosen = next;
      f.explored[next] = true;
      return true;
    }
    for (std::size_t j = 0; j < f.tie.size(); ++j) {
      if (f.inherited[j] && !f.explored[j]) ++result_.sleep_pruned;
    }
    stack_.pop_back();
  }
  return false;
}

void Explorer::shrink(const RunFn& run) {
  // Greedy delta-debugging, latest decision first: a pick reset to the
  // canonical 0 is dropped from the trace if the violation still
  // reproduces without it.
  std::vector<std::size_t> picks = result_.violation_trace;
  for (std::size_t i = picks.size(); i-- > 0;) {
    if (picks[i] == 0) continue;
    std::vector<std::size_t> trial = picks;
    trial[i] = 0;
    ++result_.shrink_executions;
    if (!replay_trace(run, trial).ok) picks = std::move(trial);
  }
  while (!picks.empty() && picks.back() == 0) picks.pop_back();
  result_.violation_trace = std::move(picks);
}

ExplorerResult Explorer::explore(const RunFn& run) {
  result_ = ExplorerResult{};
  stack_.clear();
  classes_.clear();

  for (;;) {
    DfsHook hook(result_, stack_, opts_);
    Outcome out;
    try {
      out = run(hook);
    } catch (const std::exception& e) {
      out.ok = false;
      out.failure = e.what();
    }
    ++result_.executions;
    if (!result_.nondeterminism.empty()) break;
    if (!out.ok) {
      result_.violation_found = true;
      result_.violation = out.failure;
      result_.violation_trace = current_picks();
      break;
    }
    const auto [it, inserted] =
        classes_.emplace(hook.signature(), out.terminal_hash);
    if (inserted) {
      ++result_.distinct_classes;
    } else {
      ++result_.equivalence_checks;
      if (it->second != out.terminal_hash) {
        result_.violation_found = true;
        std::ostringstream os;
        os << "terminal-record divergence: this interleaving is equivalent "
              "(same Mazurkiewicz class, Foata signature 0x"
           << std::hex << hook.signature() << std::dec
           << ") to an earlier one but produced different final records — "
              "supposedly independent events do not commute";
        result_.violation = os.str();
        result_.violation_trace = current_picks();
        break;
      }
    }
    if (result_.executions >= opts_.max_executions) {
      result_.hit_budget = true;
      break;
    }
    if (!advance()) {
      result_.exhausted = true;
      break;
    }
  }

  if (result_.violation_found && opts_.shrink) shrink(run);
  return result_;
}

}  // namespace tg::mc
