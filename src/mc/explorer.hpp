// Bounded stateless DFS over same-key event interleavings (DESIGN.md
// §5.8). The explorer re-executes a deterministic scenario once per
// branch, steering each run through the Engine's ChoiceHook: the DFS
// stack holds one frame per choice point on the current path, a replayed
// prefix pins earlier picks, and the first unexplored frontier frame
// branches. Sleep sets (Godefroid) prune branches that only commute
// independent events; PR 7's partition relation (mc::independent) supplies
// the independence facts. Every branch is audited two ways: the
// scenario's own invariant check, and terminal-record equivalence between
// interleavings in the same Mazurkiewicz class (FoataSignature).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "des/engine.hpp"

namespace tg::mc {

/// What one bounded-scenario execution reports back to the explorer.
struct Outcome {
  bool ok = true;
  std::string failure;              ///< invariant violations / exception
  std::uint64_t terminal_hash = 0;  ///< hash_terminal_records at drain
};

/// A scenario under test: builds a fresh simulation, installs `hook` as
/// the engine's choice hook, runs to drain, audits invariants, and
/// reports. Must be deterministic given the hook's picks — the explorer
/// verifies this by checking that replayed prefixes present identical tie
/// sets, and reports any divergence as nondeterminism.
using RunFn = std::function<Outcome(ChoiceHook& hook)>;

struct ExplorerOptions {
  std::size_t max_executions = 100000;  ///< budget: schedules to run
  /// Choice points deeper than this take the canonical pick instead of
  /// branching; bounds the frontier on scenarios with long tie chains.
  std::size_t max_choice_points = 512;
  bool sleep_sets = true;  ///< prune with the independence relation
  /// On violation, greedily re-run with late picks zeroed to find a
  /// smaller trace that still fails.
  bool shrink = true;
};

struct ExplorerResult {
  std::size_t executions = 0;     ///< distinct interleavings run
  std::size_t choice_points = 0;  ///< DFS frames created
  std::size_t max_depth = 0;      ///< deepest frame stack reached
  std::size_t sleep_pruned = 0;   ///< branches never run: asleep at birth
  std::size_t depth_clipped = 0;  ///< choose() calls past max_choice_points
  std::size_t shrink_executions = 0;  ///< extra runs spent minimizing
  bool exhausted = false;             ///< whole (pruned) tree covered
  bool hit_budget = false;
  std::size_t distinct_classes = 0;    ///< Mazurkiewicz classes seen
  std::size_t equivalence_checks = 0;  ///< class revisits compared

  bool violation_found = false;
  std::string violation;
  /// Pick-vector reproducer for the failing branch (positional; choice
  /// points beyond its end take the canonical pick 0).
  std::vector<std::size_t> violation_trace;
  /// Non-empty when a replayed prefix presented a different tie set than
  /// it did the first time — the scenario is not deterministic and no
  /// exploration result can be trusted.
  std::string nondeterminism;

  [[nodiscard]] bool ok() const {
    return !violation_found && nondeterminism.empty();
  }
};

class Explorer {
 public:
  explicit Explorer(ExplorerOptions opts = {}) : opts_(opts) {}

  /// Runs the bounded DFS; `run` executes once per explored branch.
  ExplorerResult explore(const RunFn& run);

 private:
  friend class DfsHook;

  /// One choice point on the current DFS path.
  struct Frame {
    std::vector<ChoiceHook::Candidate> tie;
    std::vector<bool> asleep;     ///< do-not-branch (inherited or explored)
    std::vector<bool> inherited;  ///< asleep at frame creation (sleep set)
    std::vector<bool> explored;   ///< pick was executed at least once
    std::size_t chosen = 0;
  };

  /// Advances the deepest frame with an awake candidate; pops exhausted
  /// frames, crediting their never-run inherited picks to sleep_pruned.
  bool advance();
  [[nodiscard]] std::vector<std::size_t> current_picks() const;
  void shrink(const RunFn& run);

  ExplorerOptions opts_;
  ExplorerResult result_;
  std::vector<Frame> stack_;
  /// Foata class signature -> terminal-record hash of its first witness.
  std::unordered_map<std::uint64_t, std::uint64_t> classes_;
};

/// Replays one pick vector (tgmc replay, tests): runs the scenario once
/// under a ScriptedChoices hook, converting exceptions into failures.
Outcome replay_trace(const RunFn& run, const std::vector<std::size_t>& picks);

}  // namespace tg::mc
