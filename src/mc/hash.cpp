#include "mc/hash.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>

#include "accounting/records.hpp"
#include "accounting/usage_db.hpp"

namespace tg::mc {

bool independent(const ChoiceHook::Candidate& a,
                 const ChoiceHook::Candidate& b) {
  return a.shard != b.shard && a.cls == EventClass::kLocal &&
         b.cls == EventClass::kLocal && !a.serialized && !b.serialized;
}

namespace {

/// Chained field mixer: order-sensitive, which is fine because callers
/// feed fields (and records) in a canonical order.
class Chain {
 public:
  void add(std::uint64_t v) { h_ = mix64(h_ ^ v); }
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }
  void add(SimTime t) { add(static_cast<std::uint64_t>(t)); }
  void add(int v) { add(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void add(bool v) { add(std::uint64_t{v}); }
  template <class Tag, class Rep>
  void add(Id<Tag, Rep> id) {
    add(static_cast<std::uint64_t>(static_cast<std::int64_t>(id.value())));
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0x6d6f64616c697479ULL;  // arbitrary non-zero seed
};

void add_record(Chain& c, const JobRecord& r) {
  c.add(r.job);
  c.add(r.resource);
  c.add(r.user);
  c.add(r.project);
  c.add(r.submit_time);
  c.add(r.start_time);
  c.add(r.end_time);
  c.add(r.nodes);
  c.add(r.cores_per_node);
  c.add(r.requested_walltime);
  c.add(static_cast<std::uint64_t>(r.final_state));
  c.add(static_cast<std::uint64_t>(r.disposition));
  c.add(r.charged_su);
  c.add(r.charged_nu);
  c.add(r.gateway);
  c.add(r.gateway_end_user);
  c.add(r.workflow);
  c.add(r.interactive);
  c.add(r.coallocated);
  c.add(r.viz_resource);
}

void add_record(Chain& c, const TransferRecord& r) {
  c.add(r.transfer);
  c.add(r.src);
  c.add(r.dst);
  c.add(r.user);
  c.add(r.project);
  c.add(r.bytes);
  c.add(r.submit_time);
  c.add(r.end_time);
}

void add_record(Chain& c, const SessionRecord& r) {
  c.add(r.user);
  c.add(r.resource);
  c.add(r.start_time);
  c.add(r.end_time);
  c.add(r.viz);
}

/// Hashes `records` in the order induced by `less` (a strict weak order
/// that is total on distinct record content at equal end times).
template <class Record, class Less>
void add_stream(Chain& c, const std::vector<Record>& records, Less less) {
  std::vector<const Record*> sorted;
  sorted.reserve(records.size());
  for (const Record& r : records) sorted.push_back(&r);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](const Record* a, const Record* b) {
                     return less(*a, *b);
                   });
  c.add(std::uint64_t{records.size()});
  for (const Record* r : sorted) add_record(c, *r);
}

}  // namespace

std::uint64_t hash_terminal_records(const UsageDatabase& db) {
  Chain c;
  add_stream(c, db.jobs(), [](const JobRecord& a, const JobRecord& b) {
    if (a.end_time != b.end_time) return a.end_time < b.end_time;
    if (a.job != b.job) return a.job < b.job;
    return a.start_time < b.start_time;
  });
  add_stream(c, db.transfers(),
             [](const TransferRecord& a, const TransferRecord& b) {
               if (a.end_time != b.end_time) return a.end_time < b.end_time;
               return a.transfer < b.transfer;
             });
  add_stream(c, db.sessions(),
             [](const SessionRecord& a, const SessionRecord& b) {
               if (a.end_time != b.end_time) return a.end_time < b.end_time;
               if (a.user != b.user) return a.user < b.user;
               if (a.resource != b.resource) return a.resource < b.resource;
               return a.start_time < b.start_time;
             });
  return c.value();
}

void FoataSignature::add(const ChoiceHook::Candidate& fired) {
  // Serialized-partition locals fire on the merged loop where they may
  // touch anything, so they order against everything — same as walls.
  const bool wall_like =
      fired.cls == EventClass::kBarrier || fired.serialized;
  std::uint64_t level;
  if (wall_like) {
    level = wall_level_;
    for (const std::uint64_t l : level_) level = std::max(level, l);
    ++level;
    wall_level_ = level;
  } else {
    if (fired.shard >= level_.size()) level_.resize(fired.shard + 1, 0);
    level = std::max(level_[fired.shard], wall_level_) + 1;
    level_[fired.shard] = level;
  }
  std::uint64_t h = mix64(level);
  h = mix64(h ^ static_cast<std::uint64_t>(fired.time));
  h = mix64(h ^ static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(fired.priority)));
  h = mix64(h ^ ((std::uint64_t{fired.shard} << 48) ^ fired.seq));
  // Summation is commutative: events sharing a Foata level are mutually
  // independent and may fire in any order without changing the class.
  hash_ += h;
  ++events_;
}

}  // namespace tg::mc
