// Content hashing for the model checker (DESIGN.md §5.8): the canonical
// terminal-record hash (the cross-interleaving equivalence oracle) and the
// Foata-normal-form trace signature that names a run's Mazurkiewicz
// equivalence class.
#pragma once

#include <cstdint>
#include <vector>

#include "des/engine.hpp"

namespace tg {

class UsageDatabase;

namespace mc {

/// 64-bit finalizer (SplitMix64): the mixing primitive behind both hashes.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// True when reordering two tie-set members cannot change any outcome:
/// both are provably partition-local (kLocal, partition not serialized) on
/// *different* partitions — exactly PR 7's window independence relation,
/// reused as the sleep-set pruning relation. Walls, serialized locals, and
/// same-partition pairs are always dependent.
[[nodiscard]] bool independent(const ChoiceHook::Candidate& a,
                               const ChoiceHook::Candidate& b);

/// Order-insensitive content hash of the final record streams. Records are
/// hashed in a canonical sort order — jobs by (end_time, job, start_time),
/// transfers by (end_time, transfer), sessions by (end_time, user,
/// resource) — because interleaving two *independent* same-tick events is
/// allowed to swap their append order in the database while leaving every
/// record's content identical. This is the same normalization the sharded
/// barrier replay applies via canonical key order. Every field of every
/// record participates, so any divergence in times, charges, states or
/// attributes changes the value.
[[nodiscard]] std::uint64_t hash_terminal_records(const UsageDatabase& db);

/// Incremental Foata-normal-form signature over the fired-event sequence.
///
/// Each fired event gets a level: one past the max level among the events
/// it depends on (its partition's previous event and the last wall; a wall
/// depends on everything). Two executions that differ only by swapping
/// adjacent independent events assign identical levels to every event, and
/// the per-event hashes are combined commutatively (summed), so the final
/// value identifies the Mazurkiewicz trace — the explorer uses it to ask
/// "have I seen an equivalent interleaving, and did it produce the same
/// terminal records?".
class FoataSignature {
 public:
  /// Feed every fired event, in execution order (ChoiceHook::on_fire).
  void add(const ChoiceHook::Candidate& fired);

  [[nodiscard]] std::uint64_t value() const { return hash_; }
  [[nodiscard]] std::uint64_t events() const { return events_; }

  void reset() {
    level_.clear();
    wall_level_ = 0;
    hash_ = 0;
    events_ = 0;
  }

 private:
  std::vector<std::uint64_t> level_;  ///< last level per partition
  std::uint64_t wall_level_ = 0;     ///< level of the last wall-like event
  std::uint64_t hash_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace mc
}  // namespace tg
