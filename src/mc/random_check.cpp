#include "mc/random_check.hpp"

#include <iomanip>
#include <ostream>

#include "fault/invariants.hpp"
#include "mc/choice.hpp"
#include "mc/hash.hpp"

namespace tg::mc {

bool run_random_tiebreak_check(const ScenarioConfig& config,
                               std::size_t samples, std::uint64_t seed,
                               std::ostream& os) {
  ScenarioConfig merged = config;
  merged.shards = 0;  // hooks steer the merged loop only
  merged.trace = nullptr;

  bool ok = true;
  std::uint64_t canonical_hash = 0;
  // Sample 0 is the canonical order (no hook); samples 1..N randomize.
  for (std::size_t i = 0; i <= samples; ++i) {
    Scenario scenario(merged);
    RandomTieBreaker breaker(mix64(seed ^ (0x7469656272 + i)));
    if (i > 0) scenario.engine().set_choice_hook(&breaker);
    scenario.run();
    if (i > 0) scenario.engine().set_choice_hook(nullptr);

    const InvariantReport report = check_invariants(
        scenario.platform(), scenario.db(), &scenario.ledger(),
        &scenario.community(), &scenario.pool(), merged.charging);
    const std::uint64_t hash = hash_terminal_records(scenario.db());
    if (i == 0) canonical_hash = hash;

    const bool audit_ok = report.ok();
    const bool hash_ok = hash == canonical_hash;
    os << "[mc-random] replay " << i
       << (i == 0 ? " (canonical)" : "            ") << " choice-points="
       << breaker.choice_points() << " non-canonical="
       << breaker.non_canonical() << " max-tie=" << breaker.max_tie()
       << " records=0x" << std::hex << std::setw(16) << std::setfill('0')
       << hash << std::dec << std::setfill(' ')
       << (audit_ok && hash_ok ? " OK" : " FAIL") << "\n";
    if (!audit_ok) {
      os << "[mc-random]   invariants: " << report.to_string() << "\n";
      ok = false;
    }
    if (!hash_ok) {
      os << "[mc-random]   terminal records diverge from the canonical "
            "order — tie-breaking changed accounted usage\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace tg::mc
