// Randomized tie-break replays of a full Scenario (--mc-random).
//
// Exhaustive exploration only scales to hand-built micro-scenarios; this is
// the complementary spot-check for real experiment configs: run the same
// ScenarioConfig once canonically and N more times with uniformly random
// tie-breaking at every choice point, requiring each replay to (a) pass the
// full invariant audit and (b) produce terminal records whose canonical
// hash matches the canonical run — same-tick scheduling races must not be
// able to change what the simulated TeraGrid ultimately accounted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "workload/scenario.hpp"

namespace tg::mc {

/// Runs the canonical replay plus `samples` random-tie-break replays of
/// `config` (forced onto the merged loop — choice hooks and windowed
/// execution are mutually exclusive), printing one line per replay to `os`.
/// Returns true iff every replay passed the audit and matched the
/// canonical terminal-record hash. `seed` derives the per-sample tie-break
/// streams; it is independent of the scenario's own seed.
[[nodiscard]] bool run_random_tiebreak_check(const ScenarioConfig& config,
                                             std::size_t samples,
                                             std::uint64_t seed,
                                             std::ostream& os);

}  // namespace tg::mc
