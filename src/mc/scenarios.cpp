#include "mc/scenarios.hpp"

#include <memory>
#include <utility>

#include "accounting/usage_db.hpp"
#include "des/engine.hpp"
#include "fault/invariants.hpp"
#include "infra/platform.hpp"
#include "mc/hash.hpp"
#include "sched/pool.hpp"
#include "util/error.hpp"

namespace tg::mc {

namespace {

/// One disposable simulation: mini-platform, topology partitions, a
/// scheduler pool and a recorder, no traffic generator — scenarios submit
/// their workload by hand so every event is accounted for.
struct Sim {
  Platform platform = mini_platform();
  ShardPlan plan = make_shard_plan(platform);
  Engine engine;
  UsageDatabase db;
  std::unique_ptr<SchedulerPool> pool;
  std::unique_ptr<Recorder> recorder;

  explicit Sim(const SchedulerConfig& cfg = {}) {
    engine.configure_partitions(plan.partitions);
    pool = std::make_unique<SchedulerPool>(engine, platform, cfg, &plan);
    recorder = std::make_unique<Recorder>(platform, db);
    recorder->attach(*pool);
  }

  /// Runs to quiescence under `hook` and audits. The hook stays installed
  /// if the engine throws mid-event — harmless, both die with this Sim.
  Outcome finish(ChoiceHook& hook) {
    engine.set_choice_hook(&hook);
    engine.run();
    engine.set_choice_hook(nullptr);
    Outcome out;
    const InvariantReport report =
        check_invariants(platform, db, nullptr, nullptr, pool.get());
    out.ok = report.ok();
    if (!out.ok) out.failure = report.to_string();
    out.terminal_hash = hash_terminal_records(db);
    return out;
  }
};

[[nodiscard]] JobRequest job(int nodes, Duration runtime,
                             Duration walltime = 0) {
  JobRequest r;
  r.user = UserId{1};
  r.project = ProjectId{1};
  r.nodes = nodes;
  r.actual_runtime = runtime;
  r.requested_walltime = walltime > 0 ? walltime : runtime;
  return r;
}

/// Batches of identical jobs on both sites: all submissions tie at t=0 (one
/// replan event per site), all completions tie two hours later. Within a
/// site the completions are dependent (their order permutes queue handling);
/// across sites they are independent, so sleep sets collapse the cross-site
/// shuffles and the terminal oracle checks that the survivors commute.
Outcome run_tie_storm(ChoiceHook& hook, const ScenarioTweaks& tweaks) {
  TG_REQUIRE(tweaks.batch_a >= 1 && tweaks.batch_a * 3 <= 16,
             "tie-storm: batch_a " << tweaks.batch_a
                                   << " must fit ClusterA in one wave");
  TG_REQUIRE(tweaks.batch_b >= 1 && tweaks.batch_b * 2 <= 8,
             "tie-storm: batch_b " << tweaks.batch_b
                                   << " must fit ClusterB in one wave");
  Sim sim;
  ResourceScheduler& a = sim.pool->at(ResourceId{0});
  ResourceScheduler& b = sim.pool->at(ResourceId{1});
  for (int i = 0; i < tweaks.batch_a; ++i) a.submit(job(3, 2 * kHour));
  for (int i = 0; i < tweaks.batch_b; ++i) b.submit(job(2, 2 * kHour));
  return sim.finish(hook);
}

/// An advance reservation start racing a node outage at the same tick on
/// ClusterA (16 nodes). Timeline at t=2h, in canonical order:
///   kCompletion: two 4-node fillers end (their order is its own tie),
///   kDefault:    reservation start (seq S) vs outage wall (seq S+k).
/// Reservation-first is benign: the window's 8 nodes are free, the outage
/// then preempts the 8-node background job and degrades to 8 nodes down.
/// Outage-first preempts the background job, takes 12 nodes, and leaves
/// only 4 free for the reservation — the shortfall path must break the
/// reservation cleanly (or, mutated, over-commit and violate capacity
/// conservation, which the explorer must catch).
Outcome run_outage_reservation(ChoiceHook& hook,
                               const ScenarioTweaks& tweaks) {
  SchedulerConfig cfg;
  cfg.mc_mutate_overcommit_reservation = tweaks.mutate;
  Sim sim(cfg);
  ResourceScheduler& a = sim.pool->at(ResourceId{0});

  const ReservationId resv = a.reserve(2 * kHour, 2 * kHour, 8);
  TG_CHECK(resv.valid(), "outage-reservation: reservation rejected");
  a.attach_to_reservation(resv, job(8, kHour));
  a.submit(job(8, 3 * kHour));  // background job, the outage's victim
  a.submit(job(4, 2 * kHour));  // fillers whose completions tie at 2h
  a.submit(job(4, 2 * kHour));
  for (int i = 0; i < 3; ++i) a.submit(job(4, 2 * kHour));  // backlog

  // The outage wall is scheduled after reserve(), so its seq is larger and
  // the canonical order fires the reservation start first; the explorer's
  // non-canonical branch is the dangerous one.
  auto taken = std::make_shared<int>(0);
  sim.engine.schedule_at(
      2 * kHour, [&a, taken] { *taken = a.begin_outage(12, 3 * kHour); },
      EventPriority::kDefault, EventBinding{1, EventClass::kBarrier});
  sim.engine.schedule_at(
      2 * kHour + 30 * kMinute,
      [&a, taken] {
        if (*taken > 0) a.end_outage(*taken);
      },
      EventPriority::kDefault, EventBinding{1, EventClass::kBarrier});

  return sim.finish(hook);
}

}  // namespace

const std::vector<ScenarioInfo>& list_scenarios() {
  static const std::vector<ScenarioInfo> kScenarios = {
      {"tie-storm",
       "same-tick submission and completion ties across two sites; "
       "exercises sleep-set pruning and terminal-record equivalence"},
      {"outage-reservation",
       "node outage racing a reservation start on one site; flipped order "
       "takes the shortfall path (--mutate re-arms the historical bug)"},
  };
  return kScenarios;
}

RunFn make_scenario(std::string_view name, const ScenarioTweaks& tweaks) {
  if (name == "tie-storm") {
    return [tweaks](ChoiceHook& hook) { return run_tie_storm(hook, tweaks); };
  }
  if (name == "outage-reservation") {
    return [tweaks](ChoiceHook& hook) {
      return run_outage_reservation(hook, tweaks);
    };
  }
  TG_REQUIRE(false, "unknown mc scenario '"
                        << std::string(name)
                        << "' (tgmc list prints the catalogue)");
  return {};
}

}  // namespace tg::mc
