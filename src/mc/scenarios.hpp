// Bounded scenarios for the interleaving explorer.
//
// A model-checking scenario is a RunFn: a closure that builds a fresh
// mini-platform simulation from scratch, installs the explorer's ChoiceHook
// on the engine, drives a small hand-written workload to quiescence, and
// returns an Outcome (invariant audit + canonical terminal-record hash).
// Stateless re-execution is the whole point — the explorer calls the RunFn
// once per interleaving, so everything the scenario touches must be owned
// by the closure body, never shared across runs.
//
// Two scenarios ship:
//
//  * "tie-storm" — batches of identical jobs on two sites whose submissions
//    and completions all tie at the same (time, priority). Exercises the
//    tie-set collector, sleep-set pruning across the site partitions, and
//    the terminal-equivalence oracle (independent completion orders must
//    commute into byte-identical canonical records).
//
//  * "outage-reservation" — an advance reservation whose start shares a
//    tick with a node outage on the same site: the canonical order starts
//    the reservation first (benign), the flipped order forces the
//    shortfall path PR 3 hardened. With ScenarioTweaks::mutate the
//    scheduler re-introduces the historical over-commit bug
//    (SchedulerConfig::mc_mutate_overcommit_reservation) so tests can
//    assert the explorer actually catches it with a replayable trace.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "mc/explorer.hpp"

namespace tg::mc {

/// Per-scenario knobs, all defaulted to the shapes the tests expect.
struct ScenarioTweaks {
  /// tie-storm: jobs submitted to each site (ClusterA / ClusterB). The
  /// completion tie is batch_a + batch_b events wide, so the Mazurkiewicz
  /// class count is batch_a! x batch_b!.
  int batch_a = 5;
  int batch_b = 3;
  /// outage-reservation: re-introduce the outage-vs-reservation node
  /// over-commit (explorer self-test; see SchedulerConfig).
  bool mutate = false;
};

struct ScenarioInfo {
  std::string name;
  std::string summary;
};

/// The scenarios `make_scenario` knows, for `tgmc list` and CLI validation.
[[nodiscard]] const std::vector<ScenarioInfo>& list_scenarios();

/// Builds the named scenario. Throws PreconditionError for unknown names.
[[nodiscard]] RunFn make_scenario(std::string_view name,
                                  const ScenarioTweaks& tweaks = {});

}  // namespace tg::mc
