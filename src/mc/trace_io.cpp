#include "mc/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace tg::mc {

void write_trace(const std::string& path, const TraceFile& trace) {
  std::ofstream out(path);
  TG_REQUIRE(out.good(), "cannot open reproducer file '" << path
                                                         << "' for writing");
  out << "# tgmc reproducer v1\n";
  out << "scenario " << trace.scenario << "\n";
  out << "mutate " << (trace.mutate ? 1 : 0) << "\n";
  out << "picks";
  for (const std::size_t p : trace.picks) out << " " << p;
  out << "\n";
  if (!trace.note.empty()) {
    std::istringstream note(trace.note);
    std::string line;
    while (std::getline(note, line)) out << "# " << line << "\n";
  }
  out.flush();
  TG_REQUIRE(out.good(), "write to reproducer file '" << path << "' failed");
}

TraceFile read_trace(const std::string& path) {
  std::ifstream in(path);
  TG_REQUIRE(in.good(), "cannot open reproducer file '" << path << "'");
  TraceFile trace;
  bool saw_scenario = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "scenario") {
      fields >> trace.scenario;
      TG_REQUIRE(!trace.scenario.empty(),
                 path << ":" << lineno << ": scenario line without a name");
      saw_scenario = true;
    } else if (key == "mutate") {
      int flag = 0;
      TG_REQUIRE(static_cast<bool>(fields >> flag) && (flag == 0 || flag == 1),
                 path << ":" << lineno << ": mutate must be 0 or 1");
      trace.mutate = flag == 1;
    } else if (key == "picks") {
      std::size_t pick = 0;
      while (fields >> pick) trace.picks.push_back(pick);
      TG_REQUIRE(fields.eof(),
                 path << ":" << lineno << ": malformed pick list");
    } else {
      TG_REQUIRE(false,
                 path << ":" << lineno << ": unknown key '" << key << "'");
    }
  }
  TG_REQUIRE(saw_scenario, path << ": missing 'scenario' line");
  return trace;
}

}  // namespace tg::mc
