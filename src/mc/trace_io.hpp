// Reproducer files for explorer-found violations.
//
// When the explorer finds a violating interleaving it shrinks the choice
// trace and `tgmc` writes it to a small text file; `tgmc replay <file>`
// re-executes exactly that interleaving (deterministically, ready for a
// debugger). The format is line-oriented and hand-editable:
//
//   # tgmc reproducer v1
//   scenario outage-reservation
//   mutate 1
//   picks 0 0 1
//   # any number of comment lines (the violation text is echoed here)
//
// `picks` lists the non-canonical choice-point decisions in firing order;
// choice points past the end of the list take the canonical candidate 0,
// so a shrunk trace stays short.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tg::mc {

struct TraceFile {
  std::string scenario;
  bool mutate = false;
  std::vector<std::size_t> picks;
  /// Free-text annotation echoed into the file as comment lines (typically
  /// the violation description). Not read back.
  std::string note;
};

/// Writes `trace` to `path`. Throws PreconditionError on I/O failure.
void write_trace(const std::string& path, const TraceFile& trace);

/// Parses a reproducer file. Throws PreconditionError on I/O or syntax
/// errors (unknown keys are rejected so typos fail loudly).
[[nodiscard]] TraceFile read_trace(const std::string& path);

}  // namespace tg::mc
