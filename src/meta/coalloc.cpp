#include "meta/coalloc.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tg {

CoAllocator::CoAllocator(Engine& engine, SchedulerPool& pool,
                         Duration retry_step, int max_retries)
    : engine_(engine),
      pool_(pool),
      retry_step_(retry_step),
      max_retries_(max_retries) {
  TG_REQUIRE(retry_step > 0, "retry step must be positive");
  TG_REQUIRE(max_retries >= 1, "need at least one attempt");
}

SimTime CoAllocator::estimate_common_start(
    const CoAllocRequest& request) const {
  TG_REQUIRE(!request.members.empty(), "co-allocation needs members");
  SimTime t = engine_.now();
  for (const CoAllocMember& m : request.members) {
    t = std::max(t, pool_.at(m.resource).estimate_start(m.nodes,
                                                        request.walltime));
  }
  return t;
}

std::optional<CoAllocation> CoAllocator::co_allocate(
    const CoAllocRequest& request) {
  TG_REQUIRE(!request.members.empty(), "co-allocation needs members");
  TG_REQUIRE(request.walltime > 0 && request.actual_runtime > 0,
             "co-allocation needs positive durations");

  SimTime attempt = estimate_common_start(request);
  for (int retry = 0; retry < max_retries_; ++retry) {
    std::vector<ReservationId> booked;
    booked.reserve(request.members.size());
    bool ok = true;
    for (const CoAllocMember& m : request.members) {
      const ReservationId r =
          pool_.at(m.resource).reserve(attempt, request.walltime, m.nodes);
      if (!r.valid()) {
        ok = false;
        break;
      }
      booked.push_back(r);
    }
    if (!ok) {
      // Roll back partial bookings and try a later window.
      for (std::size_t i = 0; i < booked.size(); ++i) {
        pool_.at(request.members[i].resource).cancel_reservation(booked[i]);
      }
      attempt += retry_step_;
      continue;
    }

    CoAllocation result;
    result.start = attempt;
    result.reservations = booked;
    for (std::size_t i = 0; i < request.members.size(); ++i) {
      JobRequest jr;
      jr.user = request.user;
      jr.project = request.project;
      jr.nodes = request.members[i].nodes;
      jr.requested_walltime = request.walltime;
      jr.actual_runtime = request.actual_runtime;
      jr.coallocated = true;
      result.jobs.push_back(pool_.at(request.members[i].resource)
                                .attach_to_reservation(booked[i], std::move(jr)));
    }
    return result;
  }
  return std::nullopt;
}

}  // namespace tg
