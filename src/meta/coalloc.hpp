// Cross-site co-allocation: simultaneous starts on multiple resources for
// one tightly-coupled distributed computation.
//
// The co-allocator searches for a common feasible start across all member
// resources and places paired advance reservations, then attaches the
// member jobs so they begin at the same instant — the mechanism TeraGrid
// used (via GUR/HARC-style reservation brokers) for multi-site MPI runs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "sched/pool.hpp"
#include "util/ids.hpp"

namespace tg {

struct CoAllocMember {
  ResourceId resource;
  int nodes = 1;
};

struct CoAllocRequest {
  UserId user;
  ProjectId project;
  std::vector<CoAllocMember> members;
  Duration walltime = kHour;
  Duration actual_runtime = kHour;
};

struct CoAllocation {
  SimTime start = 0;
  std::vector<ReservationId> reservations;
  std::vector<JobId> jobs;
};

class CoAllocator {
 public:
  explicit CoAllocator(Engine& engine, SchedulerPool& pool,
                       Duration retry_step = 30 * kMinute,
                       int max_retries = 200);

  /// Finds the earliest common start >= now and books it. Returns nullopt
  /// only if no common window exists within max_retries * retry_step
  /// (practically never on a feasible request).
  std::optional<CoAllocation> co_allocate(const CoAllocRequest& request);

  /// Start-time estimate for the same request without booking (used to
  /// quantify the co-allocation wait penalty).
  [[nodiscard]] SimTime estimate_common_start(
      const CoAllocRequest& request) const;

 private:
  Engine& engine_;
  SchedulerPool& pool_;
  Duration retry_step_;
  int max_retries_;
};

}  // namespace tg
