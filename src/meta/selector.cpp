#include "meta/selector.hpp"

#include <limits>

#include "util/error.hpp"

namespace tg {

bool ResourceSelector::eligible(const ComputeResource& res, int nodes,
                                Duration walltime) const {
  if (nodes > res.nodes) return false;
  if (walltime > res.max_walltime) return false;
  if (exclude_viz_ && res.interactive_viz) return false;
  return true;
}

ResourceId ResourceSelector::select(
    const SchedulerPool& pool, int nodes, Duration walltime,
    const std::vector<ResourceId>& candidates) const {
  const std::vector<ResourceId> all =
      candidates.empty() ? pool.resource_ids() : candidates;
  ResourceId best;
  SimTime best_start = std::numeric_limits<SimTime>::max();
  // Machines too degraded by an outage to ever hold the job are skipped;
  // if *every* eligible machine is that degraded, fall back to ignoring
  // availability (the job queues and waits for repair).
  for (const bool honour_outages : {true, false}) {
    for (ResourceId id : all) {
      const ResourceScheduler& sched = pool.at(id);
      if (!eligible(sched.resource(), nodes, walltime)) continue;
      if (honour_outages && sched.available_nodes() < nodes) continue;
      const SimTime est = sched.estimate_start(nodes, walltime);
      if (est >= 0 && est < best_start) {
        best_start = est;
        best = id;
        // An immediate start cannot be beaten — ties keep the earliest
        // candidate — so skip the remaining probes (each one is a planner
        // query on that machine).
        if (est <= sched.now()) break;
      }
    }
    if (best.valid()) break;
  }
  TG_REQUIRE(best.valid(),
             "no eligible resource for a " << nodes << "-node job");
  return best;
}

std::vector<SimTime> ResourceSelector::estimates(
    const SchedulerPool& pool, int nodes, Duration walltime,
    const std::vector<ResourceId>& candidates) const {
  std::vector<SimTime> out;
  out.reserve(candidates.size());
  for (ResourceId id : candidates) {
    const ResourceScheduler& sched = pool.at(id);
    out.push_back(eligible(sched.resource(), nodes, walltime)
                      ? sched.estimate_start(nodes, walltime)
                      : -1);
  }
  return out;
}

}  // namespace tg
