// Resource selection: "where should this job go?"
//
// Models the TeraGrid resource-selection advisors that ranked machines by
// predicted time-to-start. The selector asks each candidate scheduler for a
// queue-aware start estimate and picks the earliest expected completion.
#pragma once

#include <vector>

#include "sched/pool.hpp"
#include "util/ids.hpp"

namespace tg {

class ResourceSelector {
 public:
  /// If `exclude_viz` is set, visualization systems are never selected for
  /// ordinary batch work.
  explicit ResourceSelector(bool exclude_viz = true)
      : exclude_viz_(exclude_viz) {}

  /// Picks from `candidates` (or from every compute resource when empty)
  /// the machine with the earliest estimated start for a (nodes, walltime)
  /// job. Machines too small for the job are skipped. Ties break toward
  /// the lower resource id, which keeps runs deterministic. Machines whose
  /// in-service node count (after outages) cannot hold the job are avoided
  /// unless no eligible machine is available at all.
  [[nodiscard]] ResourceId select(
      const SchedulerPool& pool, int nodes, Duration walltime,
      const std::vector<ResourceId>& candidates = {}) const;

  /// Estimated start for the given job on every candidate, in candidate
  /// order (used by experiments to reproduce advisor tables).
  [[nodiscard]] std::vector<SimTime> estimates(
      const SchedulerPool& pool, int nodes, Duration walltime,
      const std::vector<ResourceId>& candidates) const;

 private:
  [[nodiscard]] bool eligible(const ComputeResource& res, int nodes,
                              Duration walltime) const;

  bool exclude_viz_;
};

}  // namespace tg
