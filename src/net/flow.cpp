#include "net/flow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace tg {

namespace {
constexpr double kBytesPerGbps = 1e9 / 8.0;
}

FlowManager::FlowManager(Engine& engine, const Platform& platform,
                         double host_gbps)
    : engine_(engine),
      platform_(platform),
      host_cap_bps_(host_gbps * kBytesPerGbps) {
  TG_REQUIRE(host_gbps > 0.0, "host cap must be positive");
}

TransferId FlowManager::start_transfer(SiteId src, SiteId dst, double bytes,
                                       UserId user, ProjectId project,
                                       CompletionCallback on_complete) {
  TG_REQUIRE(bytes >= 0.0, "transfer size must be non-negative");
  const TransferId id{next_id_++};
  Pending p;
  p.flow.id = id;
  p.flow.src = src;
  p.flow.dst = dst;
  p.flow.user = user;
  p.flow.project = project;
  p.flow.total_bytes = bytes;
  p.flow.remaining_bytes = bytes;
  p.flow.submitted = engine_.now();
  p.flow.path = route(src, dst);
  p.on_complete = std::move(on_complete);
  flows_.emplace(id, std::move(p));

  const Duration latency = path_latency(src, dst);
  engine_.schedule_in(latency, [this, id] { activate(id); });
  return id;
}

void FlowManager::activate(TransferId id) {
  auto it = flows_.find(id);
  TG_CHECK(it != flows_.end(), "activating unknown flow " << id);
  Pending& p = it->second;
  p.flow.active = true;
  p.flow.activated = engine_.now();
  ++active_count_;
  if (p.flow.remaining_bytes <= 0.0) {
    complete(id);
    return;
  }
  rebalance();
}

void FlowManager::complete(TransferId id) {
  auto it = flows_.find(id);
  TG_CHECK(it != flows_.end(), "completing unknown flow " << id);
  Pending p = std::move(it->second);
  flows_.erase(it);
  --active_count_;
  p.flow.active = false;
  p.flow.done = true;
  p.flow.remaining_bytes = 0.0;
  p.flow.completed = engine_.now();
  completed_log_.push_back(p.flow);
  if (observer_) observer_(p.flow);
  if (p.on_complete) p.on_complete(p.flow);
  rebalance();
}

void FlowManager::rebalance() {
  const SimTime now = engine_.now();
  const double elapsed = to_seconds(now - last_update_);
  last_update_ = now;

  // 1. Charge progress since the last rate change.
  for (auto& [id, p] : flows_) {
    if (!p.flow.active) continue;
    p.flow.remaining_bytes =
        std::max(0.0, p.flow.remaining_bytes - p.flow.rate_bps * elapsed);
  }

  // 2. Progressive filling (max-min fairness). Each flow additionally owns a
  //    virtual "host" link of capacity host_cap_bps_, which caps its rate.
  std::vector<Pending*> active;
  for (auto& [id, p] : flows_) {
    if (p.flow.active) active.push_back(&p);
  }

  const std::size_t nlinks = platform_.links().size();
  std::vector<double> cap(nlinks);
  std::vector<int> users_on_link(nlinks, 0);
  for (std::size_t l = 0; l < nlinks; ++l) {
    cap[l] = platform_.links()[l].gbps * kBytesPerGbps;
  }
  for (Pending* p : active) {
    for (LinkId l : p->flow.path) {
      ++users_on_link[static_cast<std::size_t>(l.value())];
    }
  }

  std::vector<double> host_cap(active.size(), host_cap_bps_);
  std::vector<bool> frozen(active.size(), false);
  std::size_t remaining = active.size();
  while (remaining > 0) {
    // Bottleneck share: tightest of (real links, per-flow host caps).
    double min_share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < nlinks; ++l) {
      if (users_on_link[l] > 0) {
        min_share = std::min(min_share, cap[l] / users_on_link[l]);
      }
    }
    for (std::size_t f = 0; f < active.size(); ++f) {
      if (!frozen[f]) min_share = std::min(min_share, host_cap[f]);
    }
    TG_CHECK(min_share < std::numeric_limits<double>::infinity(),
             "no bottleneck found with flows remaining");

    // Freeze every unfrozen flow constrained at the bottleneck rate.
    bool froze_any = false;
    for (std::size_t f = 0; f < active.size(); ++f) {
      if (frozen[f]) continue;
      bool at_bottleneck = host_cap[f] <= min_share * (1 + 1e-12);
      for (LinkId l : active[f]->flow.path) {
        const auto li = static_cast<std::size_t>(l.value());
        if (cap[li] / users_on_link[li] <= min_share * (1 + 1e-12)) {
          at_bottleneck = true;
        }
      }
      if (!at_bottleneck) continue;
      active[f]->flow.rate_bps = min_share;
      frozen[f] = true;
      froze_any = true;
      --remaining;
      for (LinkId l : active[f]->flow.path) {
        const auto li = static_cast<std::size_t>(l.value());
        cap[li] -= min_share;
        --users_on_link[li];
      }
    }
    TG_CHECK(froze_any, "max-min filling made no progress");
  }

  // 3. Reschedule completion events at the new rates.
  for (Pending* p : active) {
    if (p->completion_event != kInvalidEvent) {
      engine_.cancel(p->completion_event);
      p->completion_event = kInvalidEvent;
    }
    TG_CHECK(p->flow.rate_bps > 0.0, "active flow with zero rate");
    const double secs = p->flow.remaining_bytes / p->flow.rate_bps;
    const TransferId id = p->flow.id;
    p->completion_event =
        engine_.schedule_in(from_seconds(secs), [this, id] { complete(id); },
                            EventPriority::kCompletion);
  }
}

std::vector<LinkId> FlowManager::route(SiteId src, SiteId dst) const {
  if (src == dst) return {};
  // Dijkstra by latency over the (small) site graph.
  const std::size_t n = platform_.sites().size();
  std::vector<Duration> dist(n, std::numeric_limits<Duration>::max());
  std::vector<LinkId> via(n);      // link taken to reach node
  std::vector<SiteId> prev(n);     // predecessor site
  using QE = std::pair<Duration, SiteId::rep>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> q;
  const auto s = static_cast<std::size_t>(src.value());
  dist[s] = 0;
  q.emplace(0, src.value());
  while (!q.empty()) {
    const auto [d, u] = q.top();
    q.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const Link& link : platform_.links()) {
      SiteId other;
      if (link.a.value() == u) {
        other = link.b;
      } else if (link.b.value() == u) {
        other = link.a;
      } else {
        continue;
      }
      const auto o = static_cast<std::size_t>(other.value());
      const Duration nd = d + link.latency;
      if (nd < dist[o]) {
        dist[o] = nd;
        via[o] = link.id;
        prev[o] = SiteId{u};
        q.emplace(nd, other.value());
      }
    }
  }
  const auto t = static_cast<std::size_t>(dst.value());
  TG_REQUIRE(dist[t] != std::numeric_limits<Duration>::max(),
             "no WAN route from site " << src << " to " << dst);
  std::vector<LinkId> path;
  for (SiteId at = dst; at != src; at = prev[static_cast<std::size_t>(at.value())]) {
    path.push_back(via[static_cast<std::size_t>(at.value())]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Duration FlowManager::path_latency(SiteId src, SiteId dst) const {
  Duration total = 0;
  for (LinkId l : route(src, dst)) total += platform_.link(l).latency;
  return total;
}

double FlowManager::flow_rate_bps(TransferId id) const {
  const auto it = flows_.find(id);
  if (it == flows_.end() || !it->second.flow.active) return 0.0;
  return it->second.flow.rate_bps;
}

}  // namespace tg
