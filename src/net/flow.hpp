// Wide-area data movement: GridFTP-style bulk flows over the platform WAN.
//
// Active flows share link bandwidth max-min fairly (progressive filling).
// Rates are recomputed on every flow arrival/departure — exact and cheap at
// WAN flow counts. Each flow is also capped by an end-host rate, modelling
// the data-mover nodes at each site.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "des/engine.hpp"
#include "infra/platform.hpp"
#include "util/ids.hpp"

namespace tg {

struct Flow {
  TransferId id;
  SiteId src;
  SiteId dst;
  UserId user;
  ProjectId project;
  double total_bytes = 0.0;
  double remaining_bytes = 0.0;
  double rate_bps = 0.0;  ///< bytes/sec, assigned by max-min sharing
  SimTime submitted = 0;
  SimTime activated = 0;  ///< after path latency
  SimTime completed = 0;
  std::vector<LinkId> path;
  bool active = false;
  bool done = false;
};

class FlowManager {
 public:
  using CompletionCallback = std::function<void(const Flow&)>;

  /// `host_gbps` caps each individual flow (per-site data-mover limit).
  FlowManager(Engine& engine, const Platform& platform,
              double host_gbps = 10.0);

  /// Starts a transfer of `bytes` from `src` to `dst`. `on_complete` fires
  /// when the last byte lands (after bandwidth sharing and path latency).
  TransferId start_transfer(SiteId src, SiteId dst, double bytes, UserId user,
                            ProjectId project,
                            CompletionCallback on_complete = nullptr);

  /// Least-latency path between two sites (cached Dijkstra). Empty for
  /// intra-site movement.
  [[nodiscard]] std::vector<LinkId> route(SiteId src, SiteId dst) const;
  [[nodiscard]] Duration path_latency(SiteId src, SiteId dst) const;

  [[nodiscard]] std::size_t active_flows() const { return active_count_; }
  /// Current rate of a live flow in bytes/sec; 0 if finished/unknown.
  [[nodiscard]] double flow_rate_bps(TransferId id) const;
  /// Completed-flow log (kept for validation experiments).
  [[nodiscard]] const std::vector<Flow>& completed() const {
    return completed_log_;
  }

  /// Global hook invoked for every completed flow (accounting taps this).
  void set_transfer_observer(CompletionCallback observer) {
    observer_ = std::move(observer);
  }

 private:
  struct Pending {
    Flow flow;
    CompletionCallback on_complete;
    EventId completion_event = kInvalidEvent;
  };

  void activate(TransferId id);
  void complete(TransferId id);
  /// Charges elapsed bytes, recomputes max-min rates, reschedules finishes.
  void rebalance();

  Engine& engine_;
  const Platform& platform_;
  double host_cap_bps_;
  std::map<TransferId, Pending> flows_;  // ordered for deterministic iteration
  std::vector<Flow> completed_log_;
  CompletionCallback observer_;
  SimTime last_update_ = 0;
  std::size_t active_count_ = 0;
  std::int64_t next_id_ = 0;
};

}  // namespace tg
