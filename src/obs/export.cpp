#include "obs/export.hpp"

#include <charconv>
#include <fstream>
#include <ostream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace tg::obs {

namespace {

[[nodiscard]] bool ends_with_csv(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

/// Metric names are dot-separated identifiers and event names come from
/// to_string tables, so escaping only needs to be defensive, not complete.
void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
  out << '"';
}

void write_trace_event_jsonl(std::ostream& out, const TraceEvent& e) {
  out << "{\"t\":" << e.sim_time << ",\"cat\":\"" << to_string(e.category)
      << "\",\"ev\":\"" << to_string(e.point) << "\",\"ph\":\""
      << to_string(e.phase) << "\",\"depth\":" << static_cast<int>(e.depth)
      << ",\"id\":" << e.id << ",\"a\":" << e.a << ",\"b\":" << e.b << "}\n";
}

}  // namespace

std::string format_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  TG_CHECK(ec == std::errc(), "double formatting failed");
  return std::string(buf, ptr);
}

void write_trace_jsonl(const TraceBuffer& trace, std::ostream& out) {
  out << "{\"trace\":\"tgsim\",\"events\":" << trace.size()
      << ",\"dropped\":" << trace.dropped()
      << ",\"capacity\":" << trace.capacity() << "}\n";
  trace.for_each(
      [&out](const TraceEvent& e) { write_trace_event_jsonl(out, e); });
}

void write_trace_csv(const TraceBuffer& trace, std::ostream& out) {
  out << "t,cat,ev,ph,depth,id,a,b\n";
  trace.for_each([&out](const TraceEvent& e) {
    out << e.sim_time << ',' << to_string(e.category) << ','
        << to_string(e.point) << ',' << to_string(e.phase) << ','
        << static_cast<int>(e.depth) << ',' << e.id << ',' << e.a << ','
        << e.b << '\n';
  });
}

void write_metrics_jsonl(const MetricsRegistry& registry, std::ostream& out) {
  for (const MetricsRegistry::Sample& s : registry.snapshot()) {
    out << "{\"metric\":";
    write_json_string(out, s.name);
    out << ",\"kind\":\"" << to_string(s.kind) << "\"";
    if (s.kind == MetricsRegistry::Kind::kHistogram) {
      const Histogram& h = *s.hist;
      out << ",\"count\":" << h.count() << ",\"sum\":"
          << format_double(h.sum()) << ",\"min\":" << format_double(h.min())
          << ",\"max\":" << format_double(h.max())
          << ",\"mean\":" << format_double(h.mean()) << ",\"buckets\":[";
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        if (i > 0) out << ',';
        out << h.buckets()[static_cast<std::size_t>(i)];
      }
      out << "]";
    } else {
      out << ",\"value\":" << format_double(s.value);
    }
    out << "}\n";
  }
}

void write_metrics_csv(const MetricsRegistry& registry, std::ostream& out) {
  out << "metric,kind,value,count,sum,min,max,mean\n";
  for (const MetricsRegistry::Sample& s : registry.snapshot()) {
    out << s.name << ',' << to_string(s.kind) << ',';
    if (s.kind == MetricsRegistry::Kind::kHistogram) {
      const Histogram& h = *s.hist;
      out << h.count() << ',' << h.count() << ',' << format_double(h.sum())
          << ',' << format_double(h.min()) << ',' << format_double(h.max())
          << ',' << format_double(h.mean());
    } else {
      out << format_double(s.value) << ",,,,,";
    }
    out << '\n';
  }
}

namespace {

template <class Source, class JsonFn, class CsvFn>
void write_file(const Source& source, const std::string& path, JsonFn jsonl,
                CsvFn csv) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  TG_REQUIRE(out.is_open(), "cannot open '" << path << "' for writing");
  if (ends_with_csv(path)) {
    csv(source, out);
  } else {
    jsonl(source, out);
  }
  out.flush();
  TG_REQUIRE(out.good(), "write to '" << path << "' failed");
}

}  // namespace

void write_trace_file(const TraceBuffer& trace, const std::string& path) {
  write_file(
      trace, path,
      [](const TraceBuffer& t, std::ostream& o) { write_trace_jsonl(t, o); },
      [](const TraceBuffer& t, std::ostream& o) { write_trace_csv(t, o); });
}

void write_metrics_file(const MetricsRegistry& registry,
                        const std::string& path) {
  write_file(registry, path,
             [](const MetricsRegistry& r, std::ostream& o) {
               write_metrics_jsonl(r, o);
             },
             [](const MetricsRegistry& r, std::ostream& o) {
               write_metrics_csv(r, o);
             });
}

}  // namespace tg::obs
