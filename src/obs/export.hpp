// Trace and metrics exporters: JSON-lines and CSV.
//
// Byte-stable by construction — doubles are rendered with std::to_chars
// (shortest round-trip form, locale-independent), rows are emitted in a
// deterministic order (ring order for traces, name order for metrics),
// and nothing here consults a wall clock. The file format is picked from
// the path extension: `.csv` writes CSV, anything else JSON-lines.
#pragma once

#include <iosfwd>
#include <string>

namespace tg::obs {

class MetricsRegistry;
class TraceBuffer;

/// One `{"t":...,"cat":...,"ev":...}` object per event, oldest first,
/// preceded by a `{"trace":...}` header carrying capacity/drop counts.
void write_trace_jsonl(const TraceBuffer& trace, std::ostream& out);

/// `t,cat,ev,ph,depth,id,a,b` rows with a header line.
void write_trace_csv(const TraceBuffer& trace, std::ostream& out);

/// One `{"metric":...,"kind":...,"value":...}` object per metric, sorted
/// by name; histograms carry count/sum/min/max/mean and dense buckets.
void write_metrics_jsonl(const MetricsRegistry& registry, std::ostream& out);

/// `metric,kind,value` rows (histograms flattened to summary columns).
void write_metrics_csv(const MetricsRegistry& registry, std::ostream& out);

/// Writes to `path`, dispatching on its extension (.csv → CSV, else
/// JSONL). Throws PreconditionError if the file cannot be opened.
void write_trace_file(const TraceBuffer& trace, const std::string& path);
void write_metrics_file(const MetricsRegistry& registry,
                        const std::string& path);

/// Renders a double in shortest round-trip form ("1e+300"-style exponents
/// included); integral values print without a trailing ".0".
[[nodiscard]] std::string format_double(double v);

}  // namespace tg::obs
