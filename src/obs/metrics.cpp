#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tg::obs {

void Histogram::observe(double v) {
  int bucket = 0;
  if (v >= 1.0) {
    // ilogb(v) is floor(log2(v)) >= 0 here; [2^(i-1), 2^i) lands in i.
    bucket = std::min(kBuckets - 1, std::ilogb(v) + 1);
  }
  ++buckets_[static_cast<std::size_t>(bucket)];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

const char* to_string(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::kCounter: return "counter";
    case MetricsRegistry::Kind::kGauge: return "gauge";
    case MetricsRegistry::Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

const MetricsRegistry::Entry* MetricsRegistry::find(
    std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::add_entry(std::string_view name,
                                                   Kind kind,
                                                   const void* cell) {
  TG_REQUIRE(!name.empty(), "metric name must not be empty");
  entries_.push_back(Entry{std::string(name), kind, cell});
  return entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (const Entry* e = find(name)) {
    TG_REQUIRE(e->kind == Kind::kCounter,
               "metric '" << std::string(name) << "' already registered as "
                          << to_string(e->kind));
    return *const_cast<Counter*>(static_cast<const Counter*>(e->cell));
  }
  Counter& cell = counters_.emplace_back();
  add_entry(name, Kind::kCounter, &cell);
  return cell;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (const Entry* e = find(name)) {
    TG_REQUIRE(e->kind == Kind::kGauge,
               "metric '" << std::string(name) << "' already registered as "
                          << to_string(e->kind));
    return *const_cast<Gauge*>(static_cast<const Gauge*>(e->cell));
  }
  Gauge& cell = gauges_.emplace_back();
  add_entry(name, Kind::kGauge, &cell);
  return cell;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  if (const Entry* e = find(name)) {
    TG_REQUIRE(e->kind == Kind::kHistogram,
               "metric '" << std::string(name) << "' already registered as "
                          << to_string(e->kind));
    return *const_cast<Histogram*>(static_cast<const Histogram*>(e->cell));
  }
  Histogram& cell = histograms_.emplace_back();
  add_entry(name, Kind::kHistogram, &cell);
  return cell;
}

void MetricsRegistry::bind_counter(std::string_view name,
                                   const Counter& cell) {
  TG_REQUIRE(find(name) == nullptr,
             "metric '" << std::string(name) << "' bound twice");
  add_entry(name, Kind::kCounter, &cell);
}

void MetricsRegistry::bind_gauge(std::string_view name, const Gauge& cell) {
  TG_REQUIRE(find(name) == nullptr,
             "metric '" << std::string(name) << "' bound twice");
  add_entry(name, Kind::kGauge, &cell);
}

void MetricsRegistry::bind_histogram(std::string_view name,
                                     const Histogram& cell) {
  TG_REQUIRE(find(name) == nullptr,
             "metric '" << std::string(name) << "' bound twice");
  add_entry(name, Kind::kHistogram, &cell);
}

bool MetricsRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    Sample s;
    s.name = e.name;
    s.kind = e.kind;
    switch (e.kind) {
      case Kind::kCounter:
        s.value = static_cast<double>(
            static_cast<const Counter*>(e.cell)->value());
        break;
      case Kind::kGauge:
        s.value = static_cast<const Gauge*>(e.cell)->value();
        break;
      case Kind::kHistogram:
        s.hist = static_cast<const Histogram*>(e.cell);
        s.value = static_cast<double>(s.hist->count());
        break;
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

}  // namespace tg::obs
