// Deterministic metrics: named counters, gauges and histograms behind one
// registry, replacing the ad-hoc per-component stat structs as the public
// surface (the structs keep their cells; the registry names and exports
// them).
//
// Design constraints (see DESIGN.md §5.5):
//  * Hot-path increments are a single inlined integer add on a plain member
//    cell — no lock, no hash lookup, no indirection, no branch. Components
//    embed `obs::Counter`/`obs::Gauge` cells directly (Engine::Stats,
//    SchedulerMetrics) and *bind* them into a registry by name; the
//    registry is touched only at registration and export time.
//  * Export order is the sorted metric name, independent of registration
//    order, so two builds that register in different orders still emit
//    byte-identical metric files.
//  * Nothing here reads a wall clock: every exported value is a function of
//    the simulation alone (wall-clock phases live in obs::PhaseProfiler and
//    are exported under a dedicated prefix).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace tg::obs {

/// Monotone event count. A plain value cell — embed it in the component
/// that increments it and bind it into a MetricsRegistry for export.
class Counter {
 public:
  constexpr Counter() = default;

  void inc() { ++value_; }
  void add(std::uint64_t n) { value_ += n; }
  /// Snapshot-style publication (copying a legacy stat into an owned cell).
  void set(std::uint64_t v) { value_ = v; }

  [[nodiscard]] std::uint64_t value() const { return value_; }
  /// Counters read as plain integers in arithmetic and comparisons.
  constexpr operator std::uint64_t() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value (utilization, ratios, high-water marks).
class Gauge {
 public:
  constexpr Gauge() = default;

  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  /// Raises the gauge to `v` if larger (high-water tracking).
  void max_of(double v) {
    if (v > value_) value_ = v;
  }

  [[nodiscard]] double value() const { return value_; }
  constexpr operator double() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Power-of-two-bucketed distribution: bucket i counts observations in
/// [2^(i-1), 2^i), bucket 0 everything below 1. Fixed layout, so two
/// histograms are comparable and the export is schema-stable.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  /// 0 when empty.
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name → metric cell directory. Owns ad-hoc cells created through
/// counter()/gauge()/histogram() and borrows component-embedded cells
/// registered through bind_*(); snapshot() renders both, sorted by name.
///
/// Registration is not a hot path (linear name lookup, done once at
/// wiring time); increments never touch the registry. Borrowed cells must
/// outlive the registry's last snapshot. Single-threaded, like everything
/// else on the simulation side.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create an owned cell. Throws PreconditionError if `name` is
  /// already registered with a different kind.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Registers a borrowed component cell under `name`. Throws on duplicate
  /// names: two components must not claim the same metric.
  void bind_counter(std::string_view name, const Counter& cell);
  void bind_gauge(std::string_view name, const Gauge& cell);
  void bind_histogram(std::string_view name, const Histogram& cell);

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  /// One exported metric: `hist` is non-null iff kind == kHistogram, in
  /// which case `value` is the observation count.
  struct Sample {
    std::string name;
    Kind kind = Kind::kCounter;
    double value = 0.0;
    const Histogram* hist = nullptr;
  };

  /// Renders every metric, sorted by name (deterministic export order).
  [[nodiscard]] std::vector<Sample> snapshot() const;

 private:
  struct Entry {
    std::string name;
    Kind kind;
    const void* cell;  ///< owned or borrowed; kind selects the cast
  };

  const Entry* find(std::string_view name) const;
  Entry& add_entry(std::string_view name, Kind kind, const void* cell);

  std::vector<Entry> entries_;
  // Deques: owned cells must never move, bound pointers are handed out.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

[[nodiscard]] const char* to_string(MetricsRegistry::Kind kind);

}  // namespace tg::obs

/// Hot-path increment macros. Compile to a single add on the embedded
/// cell; they exist so instrumented lines read as instrumentation and can
/// be compiled out wholesale with -DTGSIM_DISABLE_METRICS for A/B runs.
#ifdef TGSIM_DISABLE_METRICS
#define TG_METRIC_INC(cell) ((void)0)
#define TG_METRIC_ADD(cell, n) ((void)0)
#else
#define TG_METRIC_INC(cell) ((cell).inc())
#define TG_METRIC_ADD(cell, n) ((cell).add(n))
#endif
