#include "obs/profile.hpp"

#include "obs/metrics.hpp"

namespace tg::obs {

PhaseProfiler::Scope::~Scope() {
  if (profiler_ == nullptr) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  Phase& p = profiler_->phases_[index_];
  p.seconds += seconds;
  ++p.calls;
}

std::size_t PhaseProfiler::index_of(std::string_view phase) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == phase) return i;
  }
  phases_.push_back(Phase{std::string(phase), 0.0, 0});
  return phases_.size() - 1;
}

PhaseProfiler::Scope PhaseProfiler::measure(std::string_view phase) {
  return Scope(this, index_of(phase));
}

void PhaseProfiler::add(std::string_view phase, double seconds) {
  Phase& p = phases_[index_of(phase)];
  p.seconds += seconds;
  ++p.calls;
}

void PhaseProfiler::publish(MetricsRegistry& registry,
                            std::string_view prefix) const {
  for (const Phase& p : phases_) {
    const std::string base = std::string(prefix) + "." + p.name;
    registry.gauge(base + ".seconds").set(p.seconds);
    registry.counter(base + ".calls").set(p.calls);
  }
}

}  // namespace tg::obs
