// Wall-clock phase profiling for the analytics / replication pipeline.
//
// Where TraceBuffer records *simulated* time (and is part of the
// determinism contract), PhaseProfiler records *wall* time — where a run
// actually spends its seconds: simulate, feature extraction, replication
// waves, report rendering. Its output is inherently non-deterministic and
// therefore only ever exported through `--metrics` (never stdout, never
// the trace file), so profiled runs stay byte-identical on every surface
// the determinism contract covers.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tg::obs {

class MetricsRegistry;

class PhaseProfiler {
 public:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    std::uint64_t calls = 0;
  };

  /// RAII measurement: accumulates the scope's wall time into the phase on
  /// destruction.
  class Scope {
   public:
    Scope(Scope&& other) noexcept
        : profiler_(other.profiler_), index_(other.index_),
          start_(other.start_) {
      other.profiler_ = nullptr;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;
    ~Scope();

   private:
    friend class PhaseProfiler;
    Scope(PhaseProfiler* profiler, std::size_t index)
        : profiler_(profiler), index_(index),
          start_(std::chrono::steady_clock::now()) {}

    PhaseProfiler* profiler_;
    std::size_t index_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Starts measuring `phase` (find-or-create by name).
  [[nodiscard]] Scope measure(std::string_view phase);

  /// Direct accumulation for callers that time themselves.
  void add(std::string_view phase, double seconds);

  /// Phases in first-use order.
  [[nodiscard]] const std::vector<Phase>& phases() const { return phases_; }

  /// Exports every phase as `<prefix>.<phase>.seconds` (gauge) and
  /// `<prefix>.<phase>.calls` (counter) owned by `registry`.
  void publish(MetricsRegistry& registry,
               std::string_view prefix = "wall") const;

 private:
  std::size_t index_of(std::string_view phase);

  std::vector<Phase> phases_;
};

}  // namespace tg::obs
