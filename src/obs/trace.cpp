#include "obs/trace.hpp"

#include "util/error.hpp"

namespace tg::obs {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kEngine: return "engine";
    case TraceCategory::kScheduler: return "sched";
    case TraceCategory::kGateway: return "gateway";
    case TraceCategory::kFault: return "fault";
    case TraceCategory::kAnalytics: return "analytics";
    case TraceCategory::kReplication: return "replication";
  }
  return "unknown";
}

const char* to_string(TracePoint p) {
  switch (p) {
    case TracePoint::kJobSubmit: return "job_submit";
    case TracePoint::kJobStart: return "job_start";
    case TracePoint::kJobEnd: return "job_end";
    case TracePoint::kJobCancel: return "job_cancel";
    case TracePoint::kJobPreempt: return "job_preempt";
    case TracePoint::kJobRequeue: return "job_requeue";
    case TracePoint::kSchedulePass: return "schedule_pass";
    case TracePoint::kOutageBegin: return "outage_begin";
    case TracePoint::kOutageEnd: return "outage_end";
    case TracePoint::kGatewaySubmit: return "gateway_submit";
    case TracePoint::kGatewayDrop: return "gateway_drop";
    case TracePoint::kBrownoutBegin: return "brownout_begin";
    case TracePoint::kBrownoutEnd: return "brownout_end";
    case TracePoint::kHazardFail: return "hazard_fail";
    case TracePoint::kScenarioRun: return "scenario_run";
    case TracePoint::kFeatureExtract: return "feature_extract";
    case TracePoint::kClassify: return "classify";
    case TracePoint::kAggregate: return "aggregate";
    case TracePoint::kClassifySeries: return "classify_series";
    case TracePoint::kReplicate: return "replicate";
  }
  return "unknown";
}

const char* to_string(TraceEvent::Phase p) {
  switch (p) {
    case TraceEvent::Phase::kInstant: return "I";
    case TraceEvent::Phase::kBegin: return "B";
    case TraceEvent::Phase::kEnd: return "E";
  }
  return "?";
}

namespace {
thread_local TraceRedirect* t_trace_redirect = nullptr;
}  // namespace

void TraceBuffer::set_thread_redirect(TraceRedirect* redirect) {
  t_trace_redirect = redirect;
}

TraceRedirect* TraceBuffer::thread_redirect() { return t_trace_redirect; }

TraceBuffer::TraceBuffer(std::size_t capacity) {
  TG_REQUIRE(capacity > 0, "trace buffer capacity must be positive");
  ring_.resize(capacity);
}

void TraceBuffer::emit(std::int64_t sim_time, TraceCategory category,
                       TracePoint point, std::int64_t id, std::int64_t a,
                       std::int64_t b, TraceEvent::Phase phase) {
  if (TraceRedirect* r = t_trace_redirect; r != nullptr) {
    // Window worker: stage the fully-rendered event instead of writing the
    // shared ring. depth_ is stable while workers run (the driver thread
    // owns it and is parked at the barrier), so base + delta reproduces
    // the depth a sequential emission would have stamped.
    TraceEvent e;
    e.sim_time = sim_time;
    e.id = id;
    e.a = a;
    e.b = b;
    e.point = point;
    e.category = category;
    e.phase = phase;
    e.depth = static_cast<std::uint8_t>(depth_ + r->depth_delta);
    r->fn(r->ctx, this, e);
    return;
  }
  TraceEvent& e = ring_[head_];
  e.sim_time = sim_time;
  e.id = id;
  e.a = a;
  e.b = b;
  e.point = point;
  e.category = category;
  e.phase = phase;
  e.depth = depth_;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    ++dropped_;
  }
}

void TraceBuffer::append_prestamped(const TraceEvent& e) {
  ring_[head_] = e;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  for_each([&out](const TraceEvent& e) { out.push_back(e); });
  return out;
}

TraceSpan::TraceSpan(TraceBuffer* buffer, std::int64_t sim_time,
                     TraceCategory category, TracePoint point,
                     std::int64_t id)
    : buffer_(buffer),
      sim_time_(sim_time),
      id_(id),
      category_(category),
      point_(point) {
  if (buffer_ == nullptr) return;
  buffer_->emit(sim_time_, category_, point_, id_, 0, 0,
                TraceEvent::Phase::kBegin);
  if (TraceRedirect* r = t_trace_redirect; r != nullptr) {
    ++r->depth_delta;  // nesting is thread-local while a window runs
  } else {
    ++buffer_->depth_;
  }
}

TraceSpan::~TraceSpan() {
  if (buffer_ == nullptr) return;
  if (TraceRedirect* r = t_trace_redirect; r != nullptr) {
    --r->depth_delta;
  } else {
    --buffer_->depth_;
  }
  buffer_->emit(sim_time_, category_, point_, id_, a_, b_,
                TraceEvent::Phase::kEnd);
}

}  // namespace tg::obs
