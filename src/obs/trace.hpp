// Sim-time-stamped structured tracing.
//
// A TraceBuffer is a fixed-capacity ring of small POD TraceEvents — the
// flight recorder of one simulation run. Components emit events keyed by
// the *simulated* clock and stable integer ids (job ids, resource ids,
// interned end-user ids), never by wall time or addresses, so the trace of
// a given seed is byte-identical across runs, hosts and worker counts:
// analytics spans are emitted from the coordinating thread only, and
// parallel fan-outs never write here.
//
// Determinism contract (DESIGN.md §5.5, §5.7): with tracing enabled, the
// JSONL export of `exp_modality_usage --trace=F` is byte-identical at
// --jobs=1 and --jobs=4 and at any --shards count; with tracing disabled
// (null buffer everywhere), the instrumented build's stdout is
// byte-identical to an uninstrumented one.
//
// Single-writer: one TraceBuffer belongs to one simulation. Do not hand
// the same buffer to scenarios replicated across a thread pool. The one
// sanctioned multi-thread path is the sharded engine's window execution
// (DESIGN.md §5.7): a worker thread installs a TraceRedirect before firing
// partition-local events, which diverts every emit() on that thread into a
// staging callback instead of the ring; the engine later replays the staged
// events into the ring from the driver thread, in canonical event order,
// via append_prestamped(). The ring itself is still touched by one thread
// at a time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tg::obs {

/// Which subsystem emitted the event.
enum class TraceCategory : std::uint8_t {
  kEngine,
  kScheduler,
  kGateway,
  kFault,
  kAnalytics,
  kReplication,
};

[[nodiscard]] const char* to_string(TraceCategory c);

/// What happened. One flat enum for every instrumented site keeps the
/// event 16 bytes of payload + 8 of header and the export table-driven.
enum class TracePoint : std::uint16_t {
  // Scheduler (id = job id unless noted; a/b per event).
  kJobSubmit,    ///< a = nodes, b = requested walltime
  kJobStart,     ///< a = nodes, b = wait duration
  kJobEnd,       ///< a = terminal JobState ordinal, b = ran duration
  kJobCancel,    ///< queued job cancelled
  kJobPreempt,   ///< a = attempt count, b = 1 requeue / 0 outage-kill
  kJobRequeue,   ///< backoff expired, job re-entered the queue
  kSchedulePass, ///< span; id = resource id, a = jobs started, b = queue len
  kOutageBegin,  ///< id = resource id, a = nodes taken, b = advised repair
  kOutageEnd,    ///< id = resource id, a = nodes returned
  // Gateway (id = interned end-user id).
  kGatewaySubmit,  ///< a = gateway id, b = job id
  kGatewayDrop,    ///< a = gateway id; submission lost to a brownout
  kBrownoutBegin,  ///< id = gateway id, a = planned duration
  kBrownoutEnd,    ///< id = gateway id
  kHazardFail,     ///< id = job id, a = resource id
  // Run / analytics phases (spans; sim clock is frozen post-horizon, so
  // these order by ring sequence and carry result payloads).
  kScenarioRun,    ///< span; a = events fired, b = job records
  kFeatureExtract, ///< span; a = users extracted
  kClassify,       ///< span; a = users classified
  kAggregate,      ///< span; a = report rows
  kClassifySeries, ///< span; a = windows classified
  kReplicate,      ///< span; id = wave index, a = replication count
};

[[nodiscard]] const char* to_string(TracePoint p);

/// Instant event or span edge. 40 bytes, trivially copyable.
struct TraceEvent {
  /// Simulated milliseconds (SimTime; obs stays below src/des, so the
  /// alias is not visible here).
  std::int64_t sim_time = 0;
  std::int64_t id = 0;  ///< stable subject id (job, resource, end user...)
  std::int64_t a = 0;   ///< payload, meaning per TracePoint
  std::int64_t b = 0;
  TracePoint point = TracePoint::kJobSubmit;
  TraceCategory category = TraceCategory::kEngine;
  /// kInstant, or the begin/end edge of a scoped span.
  enum class Phase : std::uint8_t { kInstant, kBegin, kEnd } phase =
      Phase::kInstant;
  std::uint8_t depth = 0;  ///< span nesting depth when emitted
};

[[nodiscard]] const char* to_string(TraceEvent::Phase p);

class TraceBuffer;

/// Thread-local emission redirect (sharded-engine window execution).
/// While installed on a thread via TraceBuffer::set_thread_redirect, every
/// emit() on that thread — on any buffer — is rendered to a TraceEvent and
/// handed to `fn` instead of being written to the ring, and TraceSpan
/// nesting accumulates in `depth_delta` instead of mutating the buffer's
/// shared depth counter. The staged event's depth is pre-stamped as
/// (buffer depth at emit + depth_delta): during a window the driver thread
/// is parked at the barrier, so reading the buffer's depth is safe, and the
/// replayed event carries exactly the depth a sequential run would have
/// recorded.
struct TraceRedirect {
  void (*fn)(void* ctx, TraceBuffer* target, const TraceEvent& event);
  void* ctx = nullptr;
  std::int32_t depth_delta = 0;  ///< span nesting opened on this thread
};

/// Fixed-capacity ring buffer of TraceEvents. When full, the oldest event
/// is overwritten and `dropped()` counts it — capacity pressure changes
/// which prefix survives, never the content or order of what does.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 18;  // 10 MiB

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void emit(std::int64_t sim_time, TraceCategory category, TracePoint point,
            std::int64_t id = 0, std::int64_t a = 0, std::int64_t b = 0,
            TraceEvent::Phase phase = TraceEvent::Phase::kInstant);

  /// Appends `e` verbatim: the stored depth is written as-is and the
  /// buffer's own depth counter is untouched. Used by the sharded engine's
  /// barrier replay to land staged (redirected) events in the ring exactly
  /// as a sequential run would have emitted them.
  void append_prestamped(const TraceEvent& e);

  /// Installs (or, with nullptr, removes) the calling thread's emission
  /// redirect. Applies to every TraceBuffer touched from this thread while
  /// installed; the caller owns the TraceRedirect and must keep it alive
  /// until removal.
  static void set_thread_redirect(TraceRedirect* redirect);
  [[nodiscard]] static TraceRedirect* thread_redirect();

  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events overwritten after the ring filled.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Total emit() calls (size() + dropped()).
  [[nodiscard]] std::uint64_t emitted() const { return dropped_ + count_; }
  /// Current span nesting depth (maintained by TraceSpan).
  [[nodiscard]] std::uint8_t depth() const { return depth_; }

  /// Visits surviving events oldest-to-newest.
  template <class Fn>
  void for_each(Fn fn) const {
    const std::size_t cap = ring_.size();
    const std::size_t first = (head_ + cap - count_) % cap;
    for (std::size_t i = 0; i < count_; ++i) {
      fn(ring_[(first + i) % cap]);
    }
  }

  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

 private:
  friend class TraceSpan;

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t count_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint8_t depth_ = 0;
};

/// Scoped span: emits the kBegin edge on construction and the kEnd edge
/// (carrying the payload set via set_payload) on destruction, tracking
/// nesting depth in the buffer. Both edges carry the construction-time sim
/// time: the simulated clock cannot advance inside a synchronous scope, so
/// a span brackets *work at one instant* (a scheduler pass, an analytics
/// phase), not a sim-time interval. A null buffer makes the span a no-op.
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buffer, std::int64_t sim_time,
            TraceCategory category, TracePoint point, std::int64_t id = 0);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Result payload for the kEnd edge (jobs started, users classified...).
  void set_payload(std::int64_t a, std::int64_t b = 0) {
    a_ = a;
    b_ = b;
  }

 private:
  TraceBuffer* buffer_;
  std::int64_t sim_time_;
  std::int64_t id_;
  std::int64_t a_ = 0;
  std::int64_t b_ = 0;
  TraceCategory category_;
  TracePoint point_;
};

}  // namespace tg::obs
