// Deterministic replication driver: fans independent simulation
// replications (different seeds, different sweep points) out over a thread
// pool and aggregates results in index order.
//
// Determinism contract: `run(n, fn)` returns exactly the vector a plain
// `for (i in [0, n)) out.push_back(fn(i))` loop would produce, regardless
// of worker count or completion order — results are collected by index,
// never by arrival. A caller that (a) keeps fn(i) self-contained (own
// Engine, own Rng, no shared mutable state, no printing) and (b) emits all
// output after run() returns is byte-identical at any --jobs level.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/profile.hpp"
#include "parallel/thread_pool.hpp"

namespace tg {

class Replicator {
 public:
  /// `jobs` worker threads; 0 means hardware_concurrency. With jobs == 1 no
  /// pool is created and run() executes inline on the caller's thread.
  explicit Replicator(std::size_t jobs = 0) {
    if (jobs != 1) pool_ = std::make_unique<ThreadPool>(jobs);
  }

  /// Worker count (1 when running inline).
  [[nodiscard]] std::size_t jobs() const {
    return pool_ ? pool_->size() : 1;
  }

  /// The underlying pool, or nullptr when running inline (--jobs=1).
  /// Lets callers hand the same workers to pool-aware analytics stages
  /// (ModalityReport::build, classify_series) between replication waves.
  [[nodiscard]] ThreadPool* pool() const { return pool_.get(); }

  /// Runs fn(i) for i in [0, n) and returns the results in index order.
  /// Error contract matches parallel_map: every task settles before the
  /// first exception (in index order) is rethrown.
  template <class Fn>
  auto run(std::size_t n, Fn fn)
      -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
    using R = std::invoke_result_t<Fn, std::size_t>;
    if (!pool_) {
      std::vector<R> out;
      out.reserve(n);
      for (std::size_t i = 0; i < n; ++i) out.push_back(fn(i));
      return out;
    }
    return parallel_map<R>(*pool_, n,
                           [&fn](std::size_t i) { return fn(i); });
  }

  /// As run(), but charges the wave's wall time to `profiler` under
  /// `phase` (one measure() scope around the whole fan-out — replications
  /// overlap, so per-replication wall times would not add up).
  template <class Fn>
  auto run(std::size_t n, Fn fn, obs::PhaseProfiler& profiler,
           std::string_view phase = "replicate")
      -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
    const auto scope = profiler.measure(phase);
    return run(n, std::move(fn));
  }

 private:
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace tg
