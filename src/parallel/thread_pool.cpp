#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace tg {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  // Drain every future before rethrowing: bailing out on the first error
  // would destroy futures whose tasks still reference fn (and report only
  // an arbitrary subset of failures as a bonus).
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tg
