// A small work-stealing-free thread pool used to run independent simulation
// replications (different seeds) concurrently. Each replication owns its own
// Engine, so no synchronization is needed inside the simulator itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tg {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future yields its result.
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for every task to
/// settle. If any task threw, the first exception (in index order) is
/// rethrown — after all n tasks have completed or failed, never mid-batch.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Maps fn(i) -> T for i in [0, n), preserving order. Same error contract
/// as parallel_for: all tasks are drained before the first error rethrows.
template <class T>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n,
                            const std::function<T(std::size_t)>& fn) {
  std::vector<std::future<T>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { return fn(i); }));
  }
  std::vector<T> out;
  out.reserve(n);
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      out.push_back(f.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

}  // namespace tg
