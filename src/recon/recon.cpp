#include "recon/recon.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tg {

const char* to_string(ReconPolicy p) {
  switch (p) {
    case ReconPolicy::kAffinity: return "affinity";
    case ReconPolicy::kFirstFit: return "first-fit";
    case ReconPolicy::kDedicated: return "dedicated";
  }
  return "unknown";
}

ReconCluster::ReconCluster(Engine& engine, std::vector<ReconNodeSpec> nodes,
                           std::vector<ReconConfig> configs,
                           double bitstream_link_gbps, ReconPolicy policy)
    : engine_(engine),
      policy_(policy),
      configs_(std::move(configs)),
      bitstream_bps_(bitstream_link_gbps * 1e9 / 8.0) {
  TG_REQUIRE(!nodes.empty(), "cluster needs nodes");
  TG_REQUIRE(bitstream_link_gbps > 0.0, "bitstream link must be positive");
  nodes_.reserve(nodes.size());
  for (const auto& spec : nodes) {
    TG_REQUIRE(!spec.reconfigurable || spec.area > 0.0,
               "reconfigurable node needs area");
    nodes_.push_back(Node{spec, false, {}, 0.0});
  }
}

void ReconCluster::submit(ReconTask task) {
  TG_REQUIRE(task.config < static_cast<int>(configs_.size()),
             "task demands unknown configuration " << task.config);
  TG_REQUIRE(task.gpp_runtime > 0, "task runtime must be positive");
  TG_REQUIRE(task.speedup >= 1.0, "hardware speedup must be >= 1");
  queue_.push_back(std::move(task));
  dispatch();
}

bool ReconCluster::holds_config(std::size_t node, int config) const {
  TG_REQUIRE(node < nodes_.size(), "node index out of range");
  const auto& res = nodes_[node].resident;
  return std::find(res.begin(), res.end(), config) != res.end();
}

int ReconCluster::pick_node(const ReconTask& task) const {
  const bool hw_task = task.config >= 0 && task.speedup > 1.0;
  const double need_area =
      task.config >= 0 ? configs_[static_cast<std::size_t>(task.config)].area
                       : 0.0;
  int idle_recon = -1;          // any idle reconfigurable node
  int idle_recon_no_evict = -1; // one that can load the config w/o eviction
  int idle_gpp = -1;
  int idle_any = -1;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.busy) continue;
    if (idle_any < 0) idle_any = static_cast<int>(i);
    if (n.spec.reconfigurable) {
      if (policy_ == ReconPolicy::kAffinity && task.config >= 0 &&
          std::find(n.resident.begin(), n.resident.end(), task.config) !=
              n.resident.end()) {
        return static_cast<int>(i);  // affinity hit — best choice
      }
      if (idle_recon < 0) idle_recon = static_cast<int>(i);
      if (idle_recon_no_evict < 0 &&
          n.area_used + need_area <= n.spec.area) {
        idle_recon_no_evict = static_cast<int>(i);
      }
    } else if (idle_gpp < 0) {
      idle_gpp = static_cast<int>(i);
    }
  }
  // Affinity's second preference: a node that keeps other configurations
  // resident (no eviction) — spreading configs instead of thrashing one
  // node's area.
  const int best_recon =
      policy_ == ReconPolicy::kAffinity && idle_recon_no_evict >= 0
          ? idle_recon_no_evict
          : idle_recon;
  switch (policy_) {
    case ReconPolicy::kFirstFit:
      return idle_any;
    case ReconPolicy::kDedicated:
      return hw_task ? best_recon : idle_gpp;
    case ReconPolicy::kAffinity:
      // Hardware-accelerable tasks prefer a reconfigurable node; plain
      // tasks prefer a GPP so hardware stays free.
      if (hw_task) return best_recon >= 0 ? best_recon : idle_gpp;
      return idle_gpp >= 0 ? idle_gpp : best_recon;
  }
  return -1;
}

void ReconCluster::dispatch() {
  // List scheduling: place the first runnable task in queue order, repeat.
  // Under kDedicated a blocked hardware task must not head-of-line-block
  // software tasks (and vice versa), so the whole queue is scanned.
  bool placed = true;
  while (placed && !queue_.empty()) {
    placed = false;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      const int node = pick_node(*it);
      if (node < 0) continue;
      ReconTask task = std::move(*it);
      queue_.erase(it);
      run_on(static_cast<std::size_t>(node), std::move(task));
      placed = true;
      break;
    }
  }
}

Duration ReconCluster::load_config(Node& node, int config) {
  const auto it =
      std::find(node.resident.begin(), node.resident.end(), config);
  if (it != node.resident.end()) {
    // Refresh LRU position; no cost.
    node.resident.erase(it);
    node.resident.push_front(config);
    ++stats_.config_hits;
    return 0;
  }
  const ReconConfig& cfg = configs_[static_cast<std::size_t>(config)];
  TG_REQUIRE(cfg.area <= node.spec.area,
             "configuration larger than node area");
  while (node.area_used + cfg.area > node.spec.area) {
    TG_CHECK(!node.resident.empty(), "area accounting corrupted");
    const int victim = node.resident.back();
    node.resident.pop_back();
    node.area_used -= configs_[static_cast<std::size_t>(victim)].area;
  }
  node.resident.push_front(config);
  node.area_used += cfg.area;
  ++stats_.reconfigurations;
  const Duration transfer =
      from_seconds(cfg.bitstream_bytes / bitstream_bps_);
  const Duration setup = transfer + cfg.reconfig_time;
  stats_.total_reconfig_time += setup;
  return setup;
}

void ReconCluster::run_on(std::size_t node_idx, ReconTask task) {
  Node& node = nodes_[node_idx];
  TG_CHECK(!node.busy, "dispatch chose a busy node");
  node.busy = true;
  ++busy_count_;

  Duration setup = 0;
  Duration runtime = task.gpp_runtime;
  bool on_recon = false;
  if (node.spec.reconfigurable && task.config >= 0) {
    setup = load_config(node, task.config);
    runtime = std::max<Duration>(
        kMillisecond,
        static_cast<Duration>(static_cast<double>(task.gpp_runtime) /
                              task.speedup));
    on_recon = true;
  }
  const Duration total = setup + runtime;
  engine_.schedule_in(total, [this, node_idx, task, total, on_recon] {
    Node& n = nodes_[node_idx];
    n.busy = false;
    --busy_count_;
    ++stats_.tasks_done;
    if (on_recon) {
      ++stats_.tasks_on_recon;
    } else {
      ++stats_.tasks_on_gpp;
    }
    stats_.busy_time += total;
    stats_.last_completion = engine_.now();
    if (on_done_) on_done_(task, engine_.now());
    dispatch();
  });
}

}  // namespace tg
