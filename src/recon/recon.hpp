// Reconfigurable-processor node modelling.
//
// The novelty band notes that grid simulators of this era lacked models for
// nodes with reconfigurable (FPGA-style) processors. This module adds them:
// a node owns a reconfigurable area; tasks demand a hardware configuration;
// running a task on a node that does not hold the configuration costs a
// bitstream transfer plus a reconfiguration delay; resident configurations
// are cached up to the area limit with LRU eviction. A cluster scheduler
// with configuration affinity exercises the model; the exp_recon_nodes
// experiment reproduces the "expected trend" analysis of the simulator
// literature (makespan vs number of reconfigurable nodes, reconfiguration
// cost sweeps).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <vector>

#include "des/engine.hpp"
#include "util/ids.hpp"

namespace tg {

/// A hardware configuration (bitstream) tasks may demand.
struct ReconConfig {
  double area = 1.0;            ///< fraction of node area units consumed
  Duration reconfig_time = 0;   ///< device programming time
  double bitstream_bytes = 0;   ///< shipped before programming
};

struct ReconNodeSpec {
  bool reconfigurable = false;
  double area = 1.0;  ///< total reconfigurable area units (if reconfigurable)
};

/// Node-selection policy for the cluster scheduler.
enum class ReconPolicy : std::uint8_t {
  /// Prefer an idle reconfigurable node already holding the task's
  /// configuration; then any idle reconfigurable node; then a GPP.
  kAffinity,
  /// First idle node of any kind, ignoring resident configurations.
  kFirstFit,
  /// Hardware tasks run only on reconfigurable nodes (waiting if busy);
  /// plain tasks only on GPPs.
  kDedicated,
};

[[nodiscard]] const char* to_string(ReconPolicy p);

struct ReconTask {
  int config = -1;          ///< required configuration (index); -1 = none
  Duration gpp_runtime = kMinute;  ///< runtime on a general-purpose node
  double speedup = 1.0;     ///< speedup when run on matching hardware
};

struct ReconStats {
  std::uint64_t tasks_done = 0;
  std::uint64_t tasks_on_recon = 0;
  std::uint64_t tasks_on_gpp = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t config_hits = 0;  ///< task found its config resident
  Duration total_reconfig_time = 0;
  Duration busy_time = 0;  ///< summed node busy (incl. reconfig) time
  SimTime last_completion = 0;
};

/// A cluster of GPP and reconfigurable nodes with a configuration-affinity
/// list scheduler.
class ReconCluster {
 public:
  using TaskCallback = std::function<void(const ReconTask&, SimTime end)>;

  ReconCluster(Engine& engine, std::vector<ReconNodeSpec> nodes,
               std::vector<ReconConfig> configs,
               double bitstream_link_gbps = 1.0,
               ReconPolicy policy = ReconPolicy::kAffinity);

  /// Enqueues a task; it runs when the scheduler places it.
  void submit(ReconTask task);

  void set_on_task_done(TaskCallback cb) { on_done_ = std::move(cb); }

  [[nodiscard]] const ReconStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] std::size_t busy_nodes() const { return busy_count_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// True if node `i` currently holds configuration `config` resident.
  [[nodiscard]] bool holds_config(std::size_t node, int config) const;

 private:
  struct Node {
    ReconNodeSpec spec;
    bool busy = false;
    /// Resident configurations, most-recently-used first.
    std::list<int> resident;
    double area_used = 0.0;
  };

  void dispatch();
  /// Picks a node for `task` per the configured policy; -1 if none.
  [[nodiscard]] int pick_node(const ReconTask& task) const;
  void run_on(std::size_t node_idx, ReconTask task);
  /// Makes `config` resident on the node, evicting LRU; returns setup time.
  Duration load_config(Node& node, int config);

  Engine& engine_;
  ReconPolicy policy_;
  std::vector<Node> nodes_;
  std::vector<ReconConfig> configs_;
  double bitstream_bps_;
  std::deque<ReconTask> queue_;
  ReconStats stats_;
  TaskCallback on_done_;
  std::size_t busy_count_ = 0;
};

}  // namespace tg
