#include "sched/job.hpp"

#include <algorithm>

namespace tg {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kKilled: return "killed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kRequeued: return "requeued";
    case JobState::kKilledByOutage: return "killed-by-outage";
  }
  return "unknown";
}

double Job::bounded_slowdown() const {
  if (start_time < 0 || end_time < 0) return 0.0;
  const double run = std::max<double>(to_seconds(runtime()), 10.0);
  const double waitS = to_seconds(wait());
  return std::max(1.0, (waitS + run) / run);
}

}  // namespace tg
