// Batch job model.
//
// A JobRequest is what a user (or middleware acting for one) submits; a Job
// is the scheduler's live record of it. The request carries provenance tags
// (gateway, workflow, co-allocation) that flow into accounting records —
// these are exactly the attributes the paper proposes to measure modalities
// from.
#pragma once

#include <cstdint>

#include "des/time.hpp"
#include "util/ids.hpp"

namespace tg {

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kCompleted,       ///< ran to normal completion
  kFailed,          ///< application failure mid-run
  kKilled,          ///< hit requested walltime before finishing
  kCancelled,       ///< removed from the queue before starting
  kRequeued,        ///< attempt lost to an outage; the job runs again
  kKilledByOutage,  ///< outage preemption after the retry budget was spent
};

[[nodiscard]] const char* to_string(JobState s);

struct JobRequest {
  UserId user;
  ProjectId project;
  int nodes = 1;
  Duration requested_walltime = kHour;
  /// True compute demand; the job completes after this much runtime unless
  /// the requested walltime kills it first.
  Duration actual_runtime = kHour;
  /// Application failure injection: terminates after `fail_after` with
  /// state kFailed.
  bool fails = false;
  Duration fail_after = 0;

  // --- provenance, copied into accounting records ---
  GatewayId gateway;           ///< valid if submitted through a gateway
  /// Interned gateway end-user attribute (see util/string_pool.hpp);
  /// invalid when unreported (the paper's measurement gap). Strings exist
  /// only at the I/O boundary — the hot path moves this 4-byte id.
  EndUserId gateway_end_user;
  WorkflowId workflow;         ///< valid if part of a workflow/ensemble
  bool interactive = false;      ///< interactive/viz session job
  bool coallocated = false;      ///< part of a cross-site co-allocation
  // Data-grid stage-in outcome (data/data_grid.hpp); all-zero when the job
  // never staged data.
  double bytes_read = 0.0;        ///< total input footprint
  double bytes_from_cache = 0.0;  ///< served by the site cache tier
  Duration stage_in = 0;          ///< wall time spent staging before submit
};

struct Job {
  JobId id;
  ResourceId resource;
  JobRequest req;
  SimTime submit_time = 0;
  SimTime start_time = -1;
  SimTime end_time = -1;
  JobState state = JobState::kQueued;
  /// Times this job has been preempted by an outage (see
  /// ResourceScheduler::begin_outage).
  int preemptions = 0;
  /// True between an outage preemption and the backoff event that returns
  /// the job to the queue (the job is live but not in the queue yet).
  bool requeue_pending = false;

  [[nodiscard]] Duration wait() const {
    return start_time >= 0 ? start_time - submit_time : -1;
  }
  [[nodiscard]] Duration runtime() const {
    return (start_time >= 0 && end_time >= 0) ? end_time - start_time : -1;
  }
  /// Bounded slowdown with a 10-second floor on runtime (standard metric).
  [[nodiscard]] double bounded_slowdown() const;
};

}  // namespace tg
