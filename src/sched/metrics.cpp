#include "sched/metrics.hpp"

#include <string>

namespace tg {

void SchedulerMetrics::record_finished(Duration wait, Duration runtime,
                                       int nodes, int cores,
                                       double bounded_slowdown, bool killed,
                                       bool failed) {
  TG_METRIC_INC(finished_);
  if (killed) TG_METRIC_INC(killed_);
  if (failed) TG_METRIC_INC(failed_);
  wait_.add(to_seconds(wait));
  slowdown_.add(bounded_slowdown);
  delivered_.add(to_seconds(runtime) * static_cast<double>(nodes) *
                 static_cast<double>(cores));
}

void SchedulerMetrics::record_preempted(double lost_core_seconds,
                                        bool killed) {
  TG_METRIC_INC(preempted_);
  if (killed) TG_METRIC_INC(outage_killed_);
  lost_.add(lost_core_seconds);
}

void SchedulerMetrics::record_outage(int nodes_taken) {
  TG_METRIC_INC(outages_);
  TG_METRIC_ADD(outage_nodes_, static_cast<std::uint64_t>(nodes_taken));
}

double SchedulerMetrics::utilization(int total_cores, SimTime horizon) const {
  if (horizon <= 0 || total_cores <= 0) return 0.0;
  return delivered_ /
         (static_cast<double>(total_cores) * to_seconds(horizon));
}

void SchedulerMetrics::bind_metrics(obs::MetricsRegistry& registry,
                                    std::string_view prefix) const {
  const std::string base(prefix);
  registry.bind_counter(base + ".jobs_finished", finished_);
  registry.bind_counter(base + ".jobs_killed", killed_);
  registry.bind_counter(base + ".jobs_failed", failed_);
  registry.bind_counter(base + ".jobs_preempted", preempted_);
  registry.bind_counter(base + ".jobs_killed_by_outage", outage_killed_);
  registry.bind_counter(base + ".outages", outages_);
  registry.bind_counter(base + ".outage_nodes_taken", outage_nodes_);
  registry.bind_counter(base + ".replan.full", replan_full_);
  registry.bind_counter(base + ".replan.incremental", replan_incremental_);
  registry.bind_counter(base + ".replan.coalesced", replan_coalesced_);
  registry.bind_gauge(base + ".delivered_core_seconds", delivered_);
  registry.bind_gauge(base + ".lost_core_seconds", lost_);
}

}  // namespace tg
