#include "sched/metrics.hpp"

namespace tg {

void SchedulerMetrics::record_finished(Duration wait, Duration runtime,
                                       int nodes, int cores,
                                       double bounded_slowdown, bool killed,
                                       bool failed) {
  ++finished_;
  if (killed) ++killed_;
  if (failed) ++failed_;
  wait_.add(to_seconds(wait));
  slowdown_.add(bounded_slowdown);
  delivered_ += to_seconds(runtime) * static_cast<double>(nodes) *
                static_cast<double>(cores);
}

void SchedulerMetrics::record_preempted(double lost_core_seconds,
                                        bool killed) {
  ++preempted_;
  if (killed) ++outage_killed_;
  lost_ += lost_core_seconds;
}

void SchedulerMetrics::record_outage(int nodes_taken) {
  ++outages_;
  outage_nodes_ += nodes_taken;
}

double SchedulerMetrics::utilization(int total_cores, SimTime horizon) const {
  if (horizon <= 0 || total_cores <= 0) return 0.0;
  return delivered_ /
         (static_cast<double>(total_cores) * to_seconds(horizon));
}

}  // namespace tg
