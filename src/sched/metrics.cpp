#include "sched/metrics.hpp"

namespace tg {

void SchedulerMetrics::record_finished(Duration wait, Duration runtime,
                                       int nodes, int cores,
                                       double bounded_slowdown, bool killed,
                                       bool failed) {
  ++finished_;
  if (killed) ++killed_;
  if (failed) ++failed_;
  wait_.add(to_seconds(wait));
  slowdown_.add(bounded_slowdown);
  delivered_ += to_seconds(runtime) * static_cast<double>(nodes) *
                static_cast<double>(cores);
}

double SchedulerMetrics::utilization(int total_cores, SimTime horizon) const {
  if (horizon <= 0 || total_cores <= 0) return 0.0;
  return delivered_ /
         (static_cast<double>(total_cores) * to_seconds(horizon));
}

}  // namespace tg
