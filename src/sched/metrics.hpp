// Per-resource scheduling metrics, accumulated as jobs finish.
#pragma once

#include <cstdint>

#include "des/time.hpp"
#include "util/stats.hpp"

namespace tg {

class SchedulerMetrics {
 public:
  void record_finished(Duration wait, Duration runtime, int nodes, int cores,
                       double bounded_slowdown, bool killed, bool failed);

  [[nodiscard]] std::uint64_t jobs_finished() const { return finished_; }
  [[nodiscard]] std::uint64_t jobs_killed() const { return killed_; }
  [[nodiscard]] std::uint64_t jobs_failed() const { return failed_; }
  [[nodiscard]] const RunningStats& wait_seconds() const { return wait_; }
  [[nodiscard]] const RunningStats& slowdown() const { return slowdown_; }
  /// Core-seconds actually delivered to applications.
  [[nodiscard]] double delivered_core_seconds() const { return delivered_; }

  /// Utilization of `total_cores` over [0, horizon].
  [[nodiscard]] double utilization(int total_cores, SimTime horizon) const;

 private:
  std::uint64_t finished_ = 0;
  std::uint64_t killed_ = 0;
  std::uint64_t failed_ = 0;
  RunningStats wait_;
  RunningStats slowdown_;
  double delivered_ = 0.0;
};

}  // namespace tg
