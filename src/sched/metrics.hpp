// Per-resource scheduling metrics, accumulated as jobs finish.
//
// The tallies live in obs value cells so a MetricsRegistry can export them
// by reference (see bind_metrics); every accessor still reads as a plain
// integer or double, and the record_* hot paths stay single inlined adds.
#pragma once

#include <cstdint>
#include <string_view>

#include "des/time.hpp"
#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace tg {

class SchedulerMetrics {
 public:
  void record_finished(Duration wait, Duration runtime, int nodes, int cores,
                       double bounded_slowdown, bool killed, bool failed);
  /// One outage preemption: `lost_core_seconds` of work was discarded;
  /// `killed` when the job's retry budget was spent (terminal
  /// kKilledByOutage) rather than requeued.
  void record_preempted(double lost_core_seconds, bool killed);
  /// One outage that took `nodes_taken` nodes out of service.
  void record_outage(int nodes_taken);
  /// One from-scratch replan: the cached plan was invalid (or caching is
  /// off) and the queue prefix was planned against a fresh profile.
  void record_replan_full() { replan_full_.inc(); }
  /// One replan served from the live plan cache (possibly extended by a
  /// few newly visible jobs).
  void record_replan_incremental() { replan_incremental_.inc(); }
  /// One pass request absorbed by an already-pending same-tick pass.
  void record_replan_coalesced() { replan_coalesced_.inc(); }

  [[nodiscard]] std::uint64_t jobs_finished() const { return finished_; }
  [[nodiscard]] std::uint64_t jobs_killed() const { return killed_; }
  [[nodiscard]] std::uint64_t jobs_failed() const { return failed_; }
  [[nodiscard]] std::uint64_t jobs_preempted() const { return preempted_; }
  [[nodiscard]] std::uint64_t jobs_requeued() const {
    return preempted_ - outage_killed_;
  }
  [[nodiscard]] std::uint64_t jobs_killed_by_outage() const {
    return outage_killed_;
  }
  [[nodiscard]] std::uint64_t outages() const { return outages_; }
  [[nodiscard]] std::uint64_t replans_full() const { return replan_full_; }
  [[nodiscard]] std::uint64_t replans_incremental() const {
    return replan_incremental_;
  }
  [[nodiscard]] std::uint64_t replans_coalesced() const {
    return replan_coalesced_;
  }
  [[nodiscard]] int outage_nodes_taken() const {
    return static_cast<int>(outage_nodes_.value());
  }
  /// Core-seconds of partial work discarded by outage preemptions.
  [[nodiscard]] double lost_core_seconds() const { return lost_; }
  [[nodiscard]] const RunningStats& wait_seconds() const { return wait_; }
  [[nodiscard]] const RunningStats& slowdown() const { return slowdown_; }
  /// Core-seconds actually delivered to applications.
  [[nodiscard]] double delivered_core_seconds() const { return delivered_; }

  /// Utilization of `total_cores` over [0, horizon].
  [[nodiscard]] double utilization(int total_cores, SimTime horizon) const;

  /// Registers every tally with `registry` as "<prefix>.jobs_finished" etc.
  /// The cells live here; the registry must not outlive this object.
  void bind_metrics(obs::MetricsRegistry& registry,
                    std::string_view prefix) const;

 private:
  obs::Counter finished_;
  obs::Counter killed_;
  obs::Counter failed_;
  obs::Counter preempted_;
  obs::Counter outage_killed_;
  obs::Counter outages_;
  obs::Counter outage_nodes_;
  obs::Counter replan_full_;
  obs::Counter replan_incremental_;
  obs::Counter replan_coalesced_;
  RunningStats wait_;
  RunningStats slowdown_;
  obs::Gauge delivered_;
  obs::Gauge lost_;
};

}  // namespace tg
