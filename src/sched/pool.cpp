#include "sched/pool.hpp"

#include "util/error.hpp"

namespace tg {

SchedulerPool::SchedulerPool(Engine& engine, const Platform& platform,
                             SchedulerConfig config, const ShardPlan* plan)
    : platform_(platform) {
  schedulers_.reserve(platform.compute().size());
  for (const ComputeResource& r : platform.compute()) {
    const std::uint32_t shard =
        plan != nullptr
            ? plan->partition_of_site(static_cast<std::size_t>(r.site.value()))
            : 0;
    schedulers_.push_back(
        std::make_unique<ResourceScheduler>(engine, r, config, shard));
  }
}

ResourceScheduler& SchedulerPool::at(ResourceId id) {
  TG_REQUIRE(platform_.is_compute(id), "no scheduler for resource " << id);
  return *schedulers_[static_cast<std::size_t>(id.value())];
}

const ResourceScheduler& SchedulerPool::at(ResourceId id) const {
  TG_REQUIRE(platform_.is_compute(id), "no scheduler for resource " << id);
  return *schedulers_[static_cast<std::size_t>(id.value())];
}

void SchedulerPool::add_on_end_all(ResourceScheduler::JobCallback cb) {
  for (auto& s : schedulers_) s->add_on_end(cb);
}

void SchedulerPool::add_on_start_all(ResourceScheduler::JobCallback cb) {
  for (auto& s : schedulers_) s->add_on_start(cb);
}

void SchedulerPool::set_trace_all(obs::TraceBuffer* trace) {
  for (auto& s : schedulers_) s->set_trace(trace);
}

void SchedulerPool::bind_metrics(obs::MetricsRegistry& registry) const {
  for (const auto& s : schedulers_) {
    s->metrics().bind_metrics(registry, "sched." + s->resource().name);
  }
}

std::vector<ResourceId> SchedulerPool::resource_ids() const {
  std::vector<ResourceId> ids;
  ids.reserve(schedulers_.size());
  for (const auto& s : schedulers_) ids.push_back(s->resource().id);
  return ids;
}

}  // namespace tg
