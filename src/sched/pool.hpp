// SchedulerPool: one ResourceScheduler per compute resource of a Platform.
// Middleware (gateways, workflow engines, metaschedulers) and accounting
// address schedulers through the pool.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "des/engine.hpp"
#include "infra/platform.hpp"
#include "sched/scheduler.hpp"

namespace tg {

class SchedulerPool {
 public:
  /// Builds a scheduler per compute resource, all with `config`. When
  /// `plan` is given, each scheduler binds its events to its site's engine
  /// partition (the engine must have been configured with at least
  /// plan->partitions partitions); otherwise everything lives on
  /// partition 0.
  SchedulerPool(Engine& engine, const Platform& platform,
                SchedulerConfig config = {}, const ShardPlan* plan = nullptr);

  [[nodiscard]] ResourceScheduler& at(ResourceId id);
  [[nodiscard]] const ResourceScheduler& at(ResourceId id) const;
  [[nodiscard]] std::size_t size() const { return schedulers_.size(); }
  [[nodiscard]] const Platform& platform() const { return platform_; }

  /// Registers `cb` as an end-of-job observer on every scheduler.
  void add_on_end_all(ResourceScheduler::JobCallback cb);
  void add_on_start_all(ResourceScheduler::JobCallback cb);

  /// Attaches `trace` to every scheduler (nullptr detaches).
  void set_trace_all(obs::TraceBuffer* trace);

  /// Registers each scheduler's metrics with `registry` under
  /// "sched.<resource name>.".
  void bind_metrics(obs::MetricsRegistry& registry) const;

  /// All compute resource ids, in platform order.
  [[nodiscard]] std::vector<ResourceId> resource_ids() const;

 private:
  const Platform& platform_;
  std::vector<std::unique_ptr<ResourceScheduler>> schedulers_;
};

}  // namespace tg
