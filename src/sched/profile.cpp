#include "sched/profile.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tg {

Profile::Profile(SimTime now, int free_nodes)
    : now_(now), capacity_(free_nodes) {
  TG_REQUIRE(free_nodes >= 0, "negative capacity");
}

void Profile::subtract(SimTime from, SimTime to, int nodes) {
  if (nodes == 0 || to <= from) return;
  from = std::max(from, now_);
  if (to <= from) return;
  if (!built_) {
    events_.push_back({from, -nodes});
    events_.push_back({to, nodes});
    return;
  }
  apply(from, -nodes);
  apply(to, nodes);
}

void Profile::apply(SimTime t, int delta) {
  const auto it = std::lower_bound(
      events_.begin(), events_.end(), t,
      [](const Event& e, SimTime at) { return e.time < at; });
  if (it != events_.end() && it->time == t) {
    it->delta += delta;  // zero-sum entries are harmless in the sweep
    return;
  }
  events_.insert(it, Event{t, delta});
}

void Profile::ensure_built() const {
  if (built_) return;
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });
  // Merge runs of equal times in place; summation makes the result
  // independent of the (unspecified) tie order after the sort.
  std::size_t out = 0;
  std::size_t i = 0;
  while (i < events_.size()) {
    Event merged = events_[i];
    std::size_t j = i + 1;
    while (j < events_.size() && events_[j].time == merged.time) {
      merged.delta += events_[j].delta;
      ++j;
    }
    events_[out++] = merged;
    i = j;
  }
  events_.resize(out);
  built_ = true;
}

void Profile::add_fence(SimTime t) {
  if (t < now_) return;
  const auto it = std::lower_bound(fences_.begin(), fences_.end(), t);
  if (it != fences_.end() && *it == t) return;
  fences_.insert(it, t);
}

int Profile::free_at(SimTime t) const {
  ensure_built();
  int free = capacity_;
  for (const Event& e : events_) {
    if (e.time > t) break;
    free += e.delta;
  }
  return free;
}

SimTime Profile::earliest_fit(int nodes, Duration duration,
                              SimTime earliest) const {
  TG_REQUIRE(nodes >= 0 && duration >= 0, "bad fit query");
  ensure_built();
  earliest = std::max(earliest, now_);
  if (nodes > capacity_) return -1;

  // Single forward sweep over the merged (delta breakpoints, fences)
  // event stream, tracking the earliest candidate start `s` of a
  // continuously-feasible run. O(B + F).
  SimTime s = -1;
  int free = capacity_;
  const auto note_feasible = [&](SimTime at) {
    if (free >= nodes) {
      if (s < 0) s = std::max(at, earliest);
    } else {
      s = -1;
    }
  };
  note_feasible(now_);

  auto d = events_.begin();
  auto f = std::upper_bound(fences_.begin(), fences_.end(), earliest);
  while (d != events_.end() || f != fences_.end()) {
    const bool take_delta =
        f == fences_.end() || (d != events_.end() && d->time <= *f);
    const SimTime t = take_delta ? d->time : *f;
    // The run [s, t) is feasible; done if the job fits before this event.
    if (s >= 0 && s + duration <= t) return s;
    if (take_delta) {
      // Times are unique after the merge, so one event per step.
      free += d->delta;
      ++d;
      // A fence at exactly t must also be processed before continuing.
      if (f != fences_.end() && *f == t) {
        if (s >= 0 && s < t) s = -1;  // would straddle the fence
        ++f;
      }
      note_feasible(t);
    } else {
      // Fence: a candidate run may not straddle it; restart at the fence.
      if (s >= 0 && s < t) s = -1;
      ++f;
      note_feasible(t);
    }
  }
  // Tail region: free == capacity_ >= nodes forever.
  if (s < 0) s = earliest;
  return s;
}

}  // namespace tg
