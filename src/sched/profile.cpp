#include "sched/profile.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tg {

Profile::Profile(SimTime now, int free_nodes)
    : now_(now), capacity_(free_nodes) {
  TG_REQUIRE(free_nodes >= 0, "negative capacity");
}

void Profile::subtract(SimTime from, SimTime to, int nodes) {
  if (nodes == 0 || to <= from) return;
  from = std::max(from, now_);
  if (to <= from) return;
  if (!built_) {
    events_.push_back({from, -nodes});
    events_.push_back({to, nodes});
    return;
  }
  apply(from, -nodes);
  apply(to, nodes);
}

void Profile::apply(SimTime t, int delta) {
  const auto it = std::lower_bound(
      events_.begin(), events_.end(), t,
      [](const Event& e, SimTime at) { return e.time < at; });
  if (it != events_.end() && it->time == t) {
    it->delta += delta;  // zero-sum entries are harmless in the sweep
    return;
  }
  events_.insert(it, Event{t, delta});
}

void Profile::ensure_built() const {
  if (built_) return;
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });
  // Merge runs of equal times in place; summation makes the result
  // independent of the (unspecified) tie order after the sort.
  std::size_t out = 0;
  std::size_t i = 0;
  while (i < events_.size()) {
    Event merged = events_[i];
    std::size_t j = i + 1;
    while (j < events_.size() && events_[j].time == merged.time) {
      merged.delta += events_[j].delta;
      ++j;
    }
    events_[out++] = merged;
    i = j;
  }
  events_.resize(out);
  built_ = true;
}

void Profile::add_fence(SimTime t) {
  if (t < now_) return;
  const auto it = std::lower_bound(fences_.begin(), fences_.end(), t);
  if (it != fences_.end() && *it == t) return;
  fences_.insert(it, t);
}

void Profile::set_fence_period(Duration period) {
  TG_REQUIRE(period >= 0, "negative fence period");
  fence_period_ = period;
}

int Profile::free_at(SimTime t) const {
  ensure_built();
  int free = capacity_;
  for (const Event& e : events_) {
    if (e.time > t) break;
    free += e.delta;
  }
  return free;
}

SimTime Profile::earliest_fit(int nodes, Duration duration,
                              SimTime earliest) const {
  TG_REQUIRE(nodes >= 0 && duration >= 0, "bad fit query");
  ensure_built();
  earliest = std::max(earliest, now_);
  if (nodes > capacity_) return -1;
  // Every window between consecutive periodic fences is one period long;
  // a longer job straddles a fence wherever it starts.
  if (fence_period_ > 0 && duration > fence_period_) return -1;

  // Single forward sweep over the merged (delta breakpoints, explicit
  // fences, periodic fences) event stream, tracking the earliest candidate
  // start `s` of a continuously-feasible run. O(B + F).
  SimTime s = -1;
  int free = capacity_;
  const auto note_feasible = [&](SimTime at) {
    if (free >= nodes) {
      if (s < 0) s = std::max(at, earliest);
    } else {
      s = -1;
    }
  };
  note_feasible(now_);

  auto d = events_.begin();
  auto f = std::upper_bound(fences_.begin(), fences_.end(), earliest);
  // Next periodic fence strictly after `earliest`; advanced analytically,
  // so the fence stream has no horizon (-1 = none).
  SimTime pf =
      fence_period_ > 0 ? (earliest / fence_period_ + 1) * fence_period_ : -1;
  for (;;) {
    SimTime fence = pf;
    if (f != fences_.end() && (fence < 0 || *f < fence)) fence = *f;
    const bool have_delta = d != events_.end();
    if (!have_delta && fence < 0) break;
    const bool take_delta = have_delta && (fence < 0 || d->time <= fence);
    const SimTime t = take_delta ? d->time : fence;
    // The run [s, t) is feasible; done if the job fits before this event.
    if (s >= 0 && s + duration <= t) return s;
    if (take_delta) {
      // Times are unique after the merge, so one delta per step.
      free += d->delta;
      ++d;
    }
    if (fence == t) {
      // A candidate run may not straddle a fence; restart at it.
      if (s >= 0 && s < t) s = -1;
      if (f != fences_.end() && *f == t) ++f;
      if (pf == t) pf += fence_period_;
    }
    note_feasible(t);
    if (!take_delta && d == events_.end() && f == fences_.end()) {
      // Only periodic fences remain and the free count is `capacity_`
      // forever: this fence opens a full period, which fits `duration`
      // (checked up front), so the candidate set here is final.
      return s;
    }
  }
  // Tail region: free == capacity_ >= nodes forever, no fences.
  if (s < 0) s = earliest;
  return s;
}

bool Profile::fits_at(SimTime t, int nodes, Duration duration) const {
  TG_REQUIRE(nodes >= 0 && duration >= 0, "bad fit query");
  ensure_built();
  t = std::max(t, now_);
  if (nodes > capacity_) return false;
  if (duration > 0) {
    // No fence may lie strictly inside (t, t + duration).
    const auto f = std::upper_bound(fences_.begin(), fences_.end(), t);
    if (f != fences_.end() && *f < t + duration) return false;
    if (fence_period_ > 0 &&
        (t / fence_period_ + 1) * fence_period_ < t + duration) {
      return false;
    }
  }
  int free = capacity_;
  auto d = events_.begin();
  for (; d != events_.end() && d->time <= t; ++d) free += d->delta;
  if (free < nodes) return false;
  for (; d != events_.end() && d->time < t + duration; ++d) {
    free += d->delta;
    if (free < nodes) return false;
  }
  return true;
}

}  // namespace tg
