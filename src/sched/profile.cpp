#include "sched/profile.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace tg {

Profile::Profile(SimTime now, int free_nodes)
    : now_(now), capacity_(free_nodes) {
  TG_REQUIRE(free_nodes >= 0, "negative capacity");
}

void Profile::subtract(SimTime from, SimTime to, int nodes) {
  if (nodes == 0 || to <= from) return;
  from = std::max(from, now_);
  if (to <= from) return;
  deltas_[from] -= nodes;
  deltas_[to] += nodes;
}

void Profile::add_fence(SimTime t) {
  if (t < now_) return;
  const auto it = std::lower_bound(fences_.begin(), fences_.end(), t);
  if (it != fences_.end() && *it == t) return;
  fences_.insert(it, t);
}

int Profile::free_at(SimTime t) const {
  int free = capacity_;
  for (const auto& [time, delta] : deltas_) {
    if (time > t) break;
    free += delta;
  }
  return free;
}

SimTime Profile::earliest_fit(int nodes, Duration duration,
                              SimTime earliest) const {
  TG_REQUIRE(nodes >= 0 && duration >= 0, "bad fit query");
  earliest = std::max(earliest, now_);
  if (nodes > capacity_) return -1;

  // Single forward sweep over the merged (delta breakpoints, fences)
  // event stream, tracking the earliest candidate start `s` of a
  // continuously-feasible run. O(B + F).
  SimTime s = -1;
  int free = capacity_;
  const auto note_feasible = [&](SimTime at) {
    if (free >= nodes) {
      if (s < 0) s = std::max(at, earliest);
    } else {
      s = -1;
    }
  };
  note_feasible(now_);

  auto d = deltas_.begin();
  auto f = std::upper_bound(fences_.begin(), fences_.end(), earliest);
  while (d != deltas_.end() || f != fences_.end()) {
    const bool take_delta =
        f == fences_.end() || (d != deltas_.end() && d->first <= *f);
    const SimTime t = take_delta ? d->first : *f;
    // The run [s, t) is feasible; done if the job fits before this event.
    if (s >= 0 && s + duration <= t) return s;
    if (take_delta) {
      // Merge all deltas at time t (map keys are unique, so just one).
      free += d->second;
      ++d;
      // A fence at exactly t must also be processed before continuing.
      if (f != fences_.end() && *f == t) {
        if (s >= 0 && s < t) s = -1;  // would straddle the fence
        ++f;
      }
      note_feasible(t);
    } else {
      // Fence: a candidate run may not straddle it; restart at the fence.
      if (s >= 0 && s < t) s = -1;
      ++f;
      note_feasible(t);
    }
  }
  // Tail region: free == capacity_ >= nodes forever.
  if (s < 0) s = earliest;
  return s;
}

}  // namespace tg
