// Node-availability profile: piecewise-constant free-node count over future
// time, used by all scheduling policies to find feasible start times.
#pragma once

#include <map>
#include <vector>

#include "des/time.hpp"

namespace tg {

class Profile {
 public:
  /// Creates a profile with `free_nodes` free everywhere from `now` on.
  Profile(SimTime now, int free_nodes);

  /// Removes `nodes` of capacity during [from, to). `to` may be far future.
  void subtract(SimTime from, SimTime to, int nodes);

  /// Adds a fence at `t`: no job interval may straddle it (used for
  /// periodic full-machine drains).
  void add_fence(SimTime t);

  /// Free nodes at instant `t` (t >= now).
  [[nodiscard]] int free_at(SimTime t) const;

  /// Earliest start >= `earliest` at which `nodes` are free for the whole
  /// interval [s, s+duration) and no fence lies strictly inside it.
  /// Returns -1 if no feasible start exists (never happens while
  /// nodes <= machine size, since the far future is always free).
  [[nodiscard]] SimTime earliest_fit(int nodes, Duration duration,
                                     SimTime earliest) const;

  [[nodiscard]] SimTime origin() const { return now_; }
  [[nodiscard]] int capacity() const { return capacity_; }

 private:
  SimTime now_;
  int capacity_;
  /// Delta encoding: free(t) = capacity + sum of deltas at times <= t.
  std::map<SimTime, int> deltas_;
  std::vector<SimTime> fences_;  // kept sorted
};

}  // namespace tg
