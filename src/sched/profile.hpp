// Node-availability profile: piecewise-constant free-node count over future
// time, used by all scheduling policies to find feasible start times.
//
// Representation: a flat vector of (time, delta) breakpoints instead of a
// std::map. Profiles are built in bulk (one subtract per running job /
// reservation) and then swept repeatedly by earliest_fit, so the events
// accumulate unsorted and are sorted + merged once on first query; the
// occasional subtract *after* a query (a job started or reserved mid-pass)
// splices into the sorted vector in place. The sweep itself is a linear
// scan over contiguous memory — no per-node pointer chases, no tree
// rebalancing, no per-breakpoint allocation.
#pragma once

#include <vector>

#include "des/time.hpp"

namespace tg {

class Profile {
 public:
  /// Creates a profile with `free_nodes` free everywhere from `now` on.
  Profile(SimTime now, int free_nodes);

  /// Removes `nodes` of capacity during [from, to). `to` may be far future.
  void subtract(SimTime from, SimTime to, int nodes);

  /// Adds a fence at `t`: no job interval may straddle it (used for
  /// periodic full-machine drains).
  void add_fence(SimTime t);

  /// Free nodes at instant `t` (t >= now).
  [[nodiscard]] int free_at(SimTime t) const;

  /// Earliest start >= `earliest` at which `nodes` are free for the whole
  /// interval [s, s+duration) and no fence lies strictly inside it.
  /// Returns -1 if no feasible start exists (never happens while
  /// nodes <= machine size, since the far future is always free).
  [[nodiscard]] SimTime earliest_fit(int nodes, Duration duration,
                                     SimTime earliest) const;

  [[nodiscard]] SimTime origin() const { return now_; }
  [[nodiscard]] int capacity() const { return capacity_; }

 private:
  /// Delta encoding: free(t) = capacity + sum of deltas at times <= t.
  struct Event {
    SimTime time;
    int delta;
  };

  /// Sorts the accumulated events and merges equal times (delta summation
  /// is commutative, so the result is independent of insertion order).
  void ensure_built() const;
  /// Post-build insertion keeping events_ sorted with unique times.
  void apply(SimTime t, int delta);

  SimTime now_;
  int capacity_;
  mutable std::vector<Event> events_;
  mutable bool built_ = false;
  std::vector<SimTime> fences_;  // kept sorted
};

}  // namespace tg
