// Node-availability profile: piecewise-constant free-node count over future
// time, used by all scheduling policies to find feasible start times.
//
// Representation: a flat vector of (time, delta) breakpoints instead of a
// std::map. Profiles are built in bulk (one subtract per running job /
// reservation) and then swept repeatedly by earliest_fit, so the events
// accumulate unsorted and are sorted + merged once on first query; the
// occasional subtract *after* a query (a job started or reserved mid-pass)
// splices into the sorted vector in place. The sweep itself is a linear
// scan over contiguous memory — no per-node pointer chases, no tree
// rebalancing, no per-breakpoint allocation.
#pragma once

#include <vector>

#include "des/time.hpp"

namespace tg {

class Profile {
 public:
  /// Creates a profile with `free_nodes` free everywhere from `now` on.
  Profile(SimTime now, int free_nodes);

  /// Removes `nodes` of capacity during [from, to). `to` may be far future.
  void subtract(SimTime from, SimTime to, int nodes);

  /// Adds a fence at `t`: no job interval may straddle it (used for
  /// periodic full-machine drains).
  void add_fence(SimTime t);

  /// Declares a fence at every positive multiple of `period`. Periodic
  /// fences are handled analytically by the sweeps — never materialized —
  /// so the stream extends arbitrarily far into the future: a plan pushed
  /// out by deep backlog cannot cross a fence that a materialization
  /// horizon would have hidden. Pass 0 to clear.
  void set_fence_period(Duration period);

  /// Free nodes at instant `t` (t >= now).
  [[nodiscard]] int free_at(SimTime t) const;

  /// Earliest start >= `earliest` at which `nodes` are free for the whole
  /// interval [s, s+duration) and no fence lies strictly inside it.
  /// Returns -1 if no feasible start exists: `nodes` exceeds the machine,
  /// or a fence period shorter than `duration` fences every window.
  [[nodiscard]] SimTime earliest_fit(int nodes, Duration duration,
                                     SimTime earliest) const;

  /// True iff `nodes` are free over the whole [t, t+duration) and no fence
  /// lies strictly inside it — equivalent to earliest_fit(..., t) == t but
  /// bails at the first shortage instead of sweeping the whole profile (on
  /// a saturated machine that is the first breakpoint).
  [[nodiscard]] bool fits_at(SimTime t, int nodes, Duration duration) const;

  [[nodiscard]] SimTime origin() const { return now_; }
  [[nodiscard]] int capacity() const { return capacity_; }

 private:
  /// Delta encoding: free(t) = capacity + sum of deltas at times <= t.
  struct Event {
    SimTime time;
    int delta;
  };

  /// Sorts the accumulated events and merges equal times (delta summation
  /// is commutative, so the result is independent of insertion order).
  void ensure_built() const;
  /// Post-build insertion keeping events_ sorted with unique times.
  void apply(SimTime t, int delta);

  SimTime now_;
  int capacity_;
  mutable std::vector<Event> events_;
  mutable bool built_ = false;
  std::vector<SimTime> fences_;  // kept sorted
  Duration fence_period_ = 0;    // 0 = no periodic fences
};

}  // namespace tg
