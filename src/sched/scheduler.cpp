#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace tg {

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFcfs: return "FCFS";
    case SchedPolicy::kEasyBackfill: return "EASY";
    case SchedPolicy::kConservativeBackfill: return "Conservative";
  }
  return "unknown";
}

namespace {
/// Validates the id before shifting: run from the member initializer, where
/// an out-of-range id would otherwise overflow (UB) before any ctor-body
/// check could reject it.
JobId::rep job_id_base_for(const ComputeResource& resource) {
  TG_REQUIRE(resource.id.valid() && resource.id.value() <= kMaxResourceId,
             "resource id " << resource.id
                            << " outside the job-id folding range [0, "
                            << kMaxResourceId << "]");
  return static_cast<JobId::rep>(resource.id.value() + 1)
         << kJobIdResourceShift;
}
}  // namespace

ResourceScheduler::ResourceScheduler(Engine& engine,
                                     const ComputeResource& resource,
                                     SchedulerConfig config,
                                     std::uint32_t shard)
    : engine_(engine),
      resource_(resource),
      config_(config),
      free_nodes_(resource.nodes),
      // Job ids are globally unique: the resource id is folded into the
      // high bits so accounting can key on JobId alone.
      job_id_base_(job_id_base_for(resource)),
      next_job_(job_id_base_),
      shard_(shard) {
  TG_REQUIRE(resource.nodes > 0, "resource has no nodes");
  TG_REQUIRE(config.capability_fraction > 0.0 &&
                 config.capability_fraction <= 1.0,
             "capability_fraction must be in (0,1]");
  TG_REQUIRE(!config.fair_share || config.fair_share_half_life > 0,
             "fair-share half-life must be positive");
}

int ceil_fraction(double fraction, int n) {
  TG_REQUIRE(fraction > 0.0 && fraction <= 1.0,
             "fraction " << fraction << " outside (0,1]");
  TG_REQUIRE(n > 0, "n must be positive");
  // Decompose fraction = mant / 2^shift with integer mant, then take
  // ceil(mant * n / 2^shift) in 128-bit integer arithmetic. This is the
  // exact ceiling of the stored double times n; the old "+ 0.999" hack
  // under-rounded fractional parts below 0.001 and made boundary products
  // depend on FP noise.
  int exp = 0;
  const double mantissa = std::frexp(fraction, &exp);  // in [0.5, 1)
  auto mant = static_cast<std::uint64_t>(std::ldexp(mantissa, 53));
  int shift = 53 - exp;  // >= 52 since fraction <= 1
  while (shift > 0 && (mant & 1u) == 0) {
    mant >>= 1;
    --shift;
  }
  if (shift > 126) return 1;  // fraction < 2^-73: ceil(fraction * n) == 1
  __extension__ using u128 = unsigned __int128;
  const u128 num = static_cast<u128>(mant) * static_cast<std::uint32_t>(n);
  const u128 den = static_cast<u128>(1) << shift;
  return static_cast<int>((num + den - 1) / den);
}

int ResourceScheduler::capability_threshold() const {
  return ceil_fraction(config_.capability_fraction, resource_.nodes);
}

JobId ResourceScheduler::allocate_job_id() {
  TG_REQUIRE(next_job_ - job_id_base_ < kMaxJobsPerResource,
             "job id space exhausted on " << resource_.name << " ("
                                          << kMaxJobsPerResource << " jobs)");
  return JobId{next_job_++};
}

ResourceScheduler::JobSlot* ResourceScheduler::find_slot(JobId id) {
  if (!id.valid()) return nullptr;
  const auto local = static_cast<std::uint64_t>(id.value() - job_id_base_);
  if (local >= slot_index_.size()) return nullptr;
  const std::uint32_t slot = slot_index_[local];
  return slot == kNoSlot ? nullptr : &slots_[slot];
}

const ResourceScheduler::JobSlot* ResourceScheduler::find_slot(
    JobId id) const {
  return const_cast<ResourceScheduler*>(this)->find_slot(id);
}

ResourceScheduler::JobSlot& ResourceScheduler::slot_at(JobId id) {
  JobSlot* s = find_slot(id);
  TG_CHECK(s != nullptr, "job " << id << " is not live on " << resource_.name);
  return *s;
}

const ResourceScheduler::JobSlot& ResourceScheduler::slot_at(JobId id) const {
  return const_cast<ResourceScheduler*>(this)->slot_at(id);
}

ResourceScheduler::JobSlot& ResourceScheduler::acquire_slot(JobId id) {
  const auto local = static_cast<std::size_t>(id.value() - job_id_base_);
  if (local >= slot_index_.size()) slot_index_.resize(local + 1, kNoSlot);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slot_index_[local] = slot;
  JobSlot& s = slots_[slot];
  s.live = true;
  return s;
}

void ResourceScheduler::release_slot(JobId id) {
  const auto local = static_cast<std::size_t>(id.value() - job_id_base_);
  const std::uint32_t slot = slot_index_[local];
  slot_index_[local] = kNoSlot;
  JobSlot& s = slots_[slot];
  TG_CHECK(s.running_pos < 0, "releasing a slot still tracked as running");
  s.job = Job{};
  s.end_event = kInvalidEvent;
  s.reservation = ReservationId{};
  s.live = false;
  free_slots_.push_back(slot);
}

Duration ResourceScheduler::planned_duration(const Job& job) const {
  return job.req.requested_walltime;
}

void ResourceScheduler::notify_start(const Job& job) {
  if (on_start_.empty()) return;
  if (engine_.in_window()) {
    // The Job is copied into the staged effect: by replay time the slot
    // may have been recycled. Observers run at the barrier in canonical
    // order, exactly where a merged run would have called them.
    engine_.stage_effect([this, job] {
      for (const auto& cb : on_start_) cb(job);
    });
    return;
  }
  for (const auto& cb : on_start_) cb(job);
}

void ResourceScheduler::notify_end(const Job& job) {
  if (on_end_.empty()) return;
  if (engine_.in_window()) {
    engine_.stage_effect([this, job] {
      for (const auto& cb : on_end_) cb(job);
    });
    return;
  }
  for (const auto& cb : on_end_) cb(job);
}

void ResourceScheduler::add_feedback_queued() {
  if (feedback_queued_++ == 0) engine_.serialize_partition(shard_, true);
}

void ResourceScheduler::remove_feedback_queued() {
  TG_CHECK(feedback_queued_ > 0, "feedback queue count underflow");
  if (--feedback_queued_ == 0) engine_.serialize_partition(shard_, false);
}

JobId ResourceScheduler::submit(JobRequest request) {
  TG_REQUIRE(request.nodes >= 1 && request.nodes <= resource_.nodes,
             "job width " << request.nodes << " invalid for "
                          << resource_.name << " (" << resource_.nodes
                          << " nodes)");
  TG_REQUIRE(request.requested_walltime > 0 &&
                 request.requested_walltime <= resource_.max_walltime,
             "requested walltime " << request.requested_walltime
                                   << " outside limits of " << resource_.name);
  // Under a drain policy every run window is at most one period long; a
  // longer job could never legally start (it would straddle a fence
  // wherever it was placed), so refuse it up front.
  TG_REQUIRE(config_.drain_period <= 0 ||
                 request.requested_walltime <= config_.drain_period,
             "requested walltime " << request.requested_walltime
                                   << " exceeds the drain period of "
                                   << resource_.name);
  TG_REQUIRE(request.actual_runtime > 0, "actual runtime must be positive");

  const JobId id = allocate_job_id();
  Job& job = acquire_slot(id).job;
  job.id = id;
  job.resource = resource_.id;
  job.req = std::move(request);
  job.submit_time = engine_.now();
  job.state = JobState::kQueued;
  queue_.push_back(id);
  if (is_feedback(job.req)) add_feedback_queued();
  if (trace_ != nullptr) {
    trace_->emit(job.submit_time, obs::TraceCategory::kScheduler,
                 obs::TracePoint::kJobSubmit, id.value(), job.req.nodes,
                 job.req.requested_walltime);
  }
  // Incremental append: a live plan absorbs the newcomer by planning it
  // against the cached profile (O(profile), not a full replan). When the
  // plan window is already full the entry just waits beyond the cursor.
  if (plan_.valid && extend_plan() > 0) metrics_.record_replan_incremental();
  request_pass();
  return id;
}

bool ResourceScheduler::queue_entry_live(JobId id) const {
  // A preempted job awaiting its backoff is kQueued but must not be
  // schedulable through the stale entry of its previous attempt.
  const JobSlot* s = find_slot(id);
  return s != nullptr && s->job.state == JobState::kQueued &&
         !s->job.requeue_pending;
}

void ResourceScheduler::compact_queue() {
  if (queue_.size() < 64 || queue_tombstones_ * 2 <= queue_.size()) return;
  std::erase_if(queue_, [this](JobId id) { return !queue_entry_live(id); });
  queue_tombstones_ = 0;
  queue_front_ = 0;  // indices shifted; the dead prefix is gone anyway
  invalidate_plan();  // the plan cursor indexes into the old queue_ layout
}

void ResourceScheduler::untrack_running(JobSlot& s) {
  if (s.running_pos < 0) return;
  const auto pos = static_cast<std::size_t>(s.running_pos);
  const JobId moved = running_ids_.back();
  running_ids_[pos] = moved;
  running_ids_.pop_back();
  if (pos < running_ids_.size()) {
    slot_at(moved).running_pos = static_cast<std::int32_t>(pos);
  }
  s.running_pos = -1;
}

bool ResourceScheduler::cancel(JobId id) {
  JobSlot* s = find_slot(id);
  if (s == nullptr || s->job.state != JobState::kQueued) return false;
  // Plan upkeep while the job's width/walltime are still at hand.
  // Reservation-attached and backoff-pending jobs are never planned.
  if (plan_.valid && !s->reservation.valid() && !s->job.requeue_pending) {
    if (!plan_.jobs.empty() && plan_.jobs.back() == id) {
      // Un-plan the tail entry in place: give its window back and retry
      // any horizon cut (the freed window may pull the cut job in).
      const Duration dur = planned_duration(s->job);
      const SimTime st = plan_.starts.back();
      plan_.profile.subtract(st, st + dur, -s->job.req.nodes);
      plan_.jobs.pop_back();
      plan_.starts.pop_back();
      plan_.horizon_cut = false;
    } else if (std::find(plan_.jobs.begin(), plan_.jobs.end(), id) !=
               plan_.jobs.end()) {
      // A mid-plan hole shifts every later planned start.
      invalidate_plan();
    }
    // Unplanned entries just tombstone; the cursor scan skips them.
  }
  Job job = std::move(s->job);
  const ReservationId res = s->reservation;
  release_slot(id);
  if (res.valid()) {
    // Reservation-attached jobs wait on their window, not in queue_;
    // detach so the reservation opens empty instead of dangling.
    reservations_.at(res.value()).attached_job = JobId{};
  } else if (job.requeue_pending) {
    // Preempted and awaiting its backoff: not in queue_, so there is no
    // entry to tombstone; the pending requeue event finds the job gone.
  } else {
    if (is_feedback(job.req)) remove_feedback_queued();
    ++queue_tombstones_;  // entry stays in queue_ until compaction
    compact_queue();
  }
  job.state = JobState::kCancelled;
  job.end_time = engine_.now();
  if (trace_ != nullptr) {
    trace_->emit(job.end_time, obs::TraceCategory::kScheduler,
                 obs::TracePoint::kJobCancel, id.value());
  }
  notify_end(job);
  return true;
}

ReservationId ResourceScheduler::reserve(SimTime start, Duration duration,
                                         int nodes) {
  TG_REQUIRE(start >= engine_.now(), "reservation in the past");
  TG_REQUIRE(duration > 0, "reservation duration must be positive");
  TG_REQUIRE(nodes >= 1 && nodes <= resource_.nodes,
             "reservation width invalid");
  // Feasibility against running jobs + existing reservations + fences.
  // Queued jobs never block a reservation: they have no committed start.
  const Profile profile = base_profile();
  if (profile.earliest_fit(nodes, duration, start) != start) {
    return ReservationId{};  // invalid — window not free
  }
  const ReservationId id{next_reservation_++};
  Reservation r;
  r.id = id;
  r.start = start;
  r.end = start + duration;
  r.nodes = nodes;
  reservations_.insert_or_assign(id.value(), r);
  // Default (not completion) priority: at a tick where a running job's
  // planned end coincides with the reservation start, the job's release
  // must be processed before this acquisition.
  engine_.schedule_at(start, [this, id] { on_reservation_start(id); },
                      EventPriority::kDefault,
                      EventBinding{shard_, EventClass::kBarrier});
  // A new blocking window can invalidate planned backfill; re-plan.
  invalidate_plan();
  request_pass();
  return id;
}

JobId ResourceScheduler::attach_to_reservation(ReservationId id,
                                               JobRequest request) {
  Reservation* rp = reservations_.find(id.value());
  TG_REQUIRE(rp != nullptr, "unknown reservation " << id);
  Reservation& r = *rp;
  TG_REQUIRE(!r.started, "reservation already started");
  TG_REQUIRE(!r.attached_job.valid(), "reservation already has a job");
  TG_REQUIRE(request.nodes <= r.nodes,
             "job wider than reservation (" << request.nodes << " > "
                                            << r.nodes << ")");
  TG_REQUIRE(request.requested_walltime <= r.end - r.start,
             "job walltime exceeds reservation window");

  const JobId jid = allocate_job_id();
  JobSlot& slot = acquire_slot(jid);
  Job& job = slot.job;
  job.id = jid;
  job.resource = resource_.id;
  job.req = std::move(request);
  job.submit_time = engine_.now();
  job.state = JobState::kQueued;
  slot.reservation = id;
  r.attached_job = jid;
  return jid;
}

bool ResourceScheduler::cancel_reservation(ReservationId id) {
  const Reservation* rp = reservations_.find(id.value());
  if (rp == nullptr || rp->started) return false;
  // Erase before firing callbacks: an observer that places a new
  // reservation would rehash the table out from under `rp`.
  const JobId attached = rp->attached_job;
  reservations_.erase(id.value());
  if (attached.valid()) {
    JobSlot* js = find_slot(attached);
    if (js != nullptr) {
      Job job = std::move(js->job);
      release_slot(attached);
      job.state = JobState::kCancelled;
      job.end_time = engine_.now();
      notify_end(job);
    }
  }
  invalidate_plan();  // the cached profile still holds the freed window
  request_pass();
  return true;
}

Profile ResourceScheduler::base_profile() const {
  const SimTime now = engine_.now();
  Profile profile(now, resource_.nodes);
  // running_ids_ holds exactly the running non-reservation jobs, in no
  // particular order; Profile::subtract is commutative (exact integer
  // deltas), so the assembled profile is identical to a full slab walk —
  // at O(running) instead of O(backlog) cost.
  for (const JobId rid : running_ids_) {
    const JobSlot& s = slot_at(rid);
    // A job holds its nodes until its completion event is *processed*; a
    // planned end <= now (event pending this tick, or overdue kill) must
    // still occupy the profile or a same-tick pass would overcommit.
    const SimTime planned_end =
        std::max(s.job.start_time + planned_duration(s.job), now + 1);
    profile.subtract(now, planned_end, s.job.req.nodes);
  }
  reservations_.for_each([&](std::int64_t, const Reservation& r) {
    if (r.finished) return;
    const SimTime end = r.started ? std::max(r.end, now + 1) : r.end;
    profile.subtract(std::max(r.start, now), end, r.nodes);
  });
  if (nodes_down_ > 0) {
    // Out-of-service nodes block the planner until the advised repair time
    // (or at least past this tick when the repair is overdue).
    profile.subtract(now, std::max(outage_until_, now + 1), nodes_down_);
  }
  if (config_.drain_period > 0) {
    // Analytic periodic fences: the profile evaluates them at any horizon,
    // so a plan pushed out by deep backlog can no longer cross a fence
    // that a materialization cutoff would have hidden.
    profile.set_fence_period(config_.drain_period);
  }
  return profile;
}

double ResourceScheduler::fair_share_usage(UserId user, SimTime now) const {
  if (!user.valid()) return 0.0;
  const auto idx = static_cast<std::size_t>(user.value());
  if (idx >= usage_.size()) return 0.0;
  const auto [value, at] = usage_[idx];
  if (value == 0.0) return 0.0;  // never charged (or fully zero anyway)
  const double decay = std::exp2(
      -static_cast<double>(now - at) /
      static_cast<double>(config_.fair_share_half_life));
  return value * decay;
}

void ResourceScheduler::charge_fair_share(UserId user, double core_seconds,
                                          SimTime now) {
  if (!user.valid()) return;  // replayed traces may omit the user field
  const double current = fair_share_usage(user, now);
  const auto idx = static_cast<std::size_t>(user.value());
  if (idx >= usage_.size()) usage_.resize(idx + 1, {0.0, 0});
  usage_[idx] = {current + core_seconds, now};
}

std::vector<JobId> ResourceScheduler::ordered_queue() const {
  std::vector<JobId> order;
  order.reserve(queue_length());
  for (const JobId id : queue_) {
    if (queue_entry_live(id)) order.push_back(id);
  }
  if (config_.fair_share) {
    const SimTime now = engine_.now();
    std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
      return fair_share_usage(slot_at(a).job.req.user, now) <
             fair_share_usage(slot_at(b).job.req.user, now);
    });
  }
  if (config_.drain_period > 0) {
    const int thresh = capability_threshold();
    std::stable_partition(order.begin(), order.end(), [&](JobId id) {
      return slot_at(id).job.req.nodes >= thresh;
    });
  }
  return order;
}

void ResourceScheduler::request_pass() {
  if (!engine_.in_event()) {
    // Direct API use (tests, setup code) expects immediate effects; a
    // re-entrant call during a pass still falls out via the in_pass_
    // guard, exactly as before.
    schedule_pass();
    return;
  }
  if (pass_event_ != kInvalidEvent) {
    metrics_.record_replan_coalesced();
    return;  // a pass is already queued for this tick
  }
  // Deferred to kReplan priority: every completion/submission/outage of
  // this tick lands first, then one pass covers them all. The pass is
  // kLocal: while a feedback job is queued (the one case a pass could
  // start something wall-classed) the partition is serialized, so the
  // pass fires on the merged loop anyway.
  pass_event_ = engine_.schedule_at(
      engine_.now(),
      [this] {
        pass_event_ = kInvalidEvent;
        schedule_pass();
      },
      EventPriority::kReplan, EventBinding{shard_, EventClass::kLocal});
}

std::size_t ResourceScheduler::extend_plan() const {
  if (!plan_.valid || plan_.horizon_cut) return 0;
  const auto depth = static_cast<std::size_t>(config_.backfill_depth);
  const SimTime now = engine_.now();
  const SimTime horizon =
      config_.plan_horizon > 0 ? now + config_.plan_horizon : -1;
  std::size_t planned = 0;
  while (plan_.cursor < queue_.size() && plan_.jobs.size() < depth) {
    const JobId id = queue_[plan_.cursor];
    if (!queue_entry_live(id)) {
      ++plan_.cursor;
      continue;
    }
    const Job& job = slot_at(id).job;
    const Duration dur = planned_duration(job);
    const SimTime s = plan_.profile.earliest_fit(job.req.nodes, dur, now);
    TG_CHECK(s >= 0, "job cannot ever fit");
    if (horizon >= 0 && s > horizon && !plan_.jobs.empty()) {
      plan_.horizon_cut = true;  // the cursor stays on this entry
      break;
    }
    plan_.profile.subtract(s, s + dur, job.req.nodes);
    plan_.jobs.push_back(id);
    plan_.starts.push_back(s);
    ++plan_.cursor;
    ++planned;
  }
  return planned;
}

void ResourceScheduler::rebuild_plan() const {
  const SimTime now = engine_.now();
  plan_.profile = base_profile();
  plan_.jobs.clear();
  plan_.starts.clear();
  plan_.cursor = queue_front_;  // everything before it is dead
  plan_.horizon_cut = false;
  plan_.built_at = now;
  metrics_.record_replan_full();
  if (plan_cacheable()) {
    plan_.valid = true;
    extend_plan();
    return;
  }
  // Reference / reordered path: materialize the scheduling order and plan
  // the first backfill_depth jobs. Never reused across events.
  plan_.valid = false;
  const std::vector<JobId> order = ordered_queue();
  const std::size_t scan_end = std::min(
      order.size(), static_cast<std::size_t>(config_.backfill_depth));
  const SimTime horizon =
      config_.plan_horizon > 0 ? now + config_.plan_horizon : -1;
  for (std::size_t i = 0; i < scan_end; ++i) {
    const Job& job = slot_at(order[i]).job;
    const Duration dur = planned_duration(job);
    const SimTime s = plan_.profile.earliest_fit(job.req.nodes, dur, now);
    TG_CHECK(s >= 0, "job cannot ever fit");
    if (horizon >= 0 && s > horizon && !plan_.jobs.empty()) {
      plan_.horizon_cut = true;
      break;
    }
    plan_.profile.subtract(s, s + dur, job.req.nodes);
    plan_.jobs.push_back(order[i]);
    plan_.starts.push_back(s);
  }
}

const ResourceScheduler::PlanCache& ResourceScheduler::ensure_plan() const {
  if (plan_.valid) {
    const SimTime now = engine_.now();
    // A planned start in the past means its gating moment fired no event
    // (a backfill hole opened mid-window); the reference planner would
    // replan such jobs at `now`, so staleness forces a rebuild. Likewise
    // an overdue outage advisory: the cached profile freed those nodes at
    // the advised repair time, but they are still down.
    bool stale = nodes_down_ > 0 && outage_until_ <= now;
    for (std::size_t i = 0; !stale && i < plan_.starts.size(); ++i) {
      stale = plan_.starts[i] < now;
    }
    if (!stale) {
      // The horizon window moves with `now`: a job cut at the last build
      // may fall inside it by now, so retry the cut (one earliest_fit when
      // it still stands — the knob's per-event cost).
      plan_.horizon_cut = false;
      if (extend_plan() > 0) metrics_.record_replan_incremental();
      return plan_;
    }
  }
  rebuild_plan();
  return plan_;
}

void ResourceScheduler::schedule_pass() {
  if (in_pass_) return;  // start_job callbacks may re-enter via submit
  in_pass_ = true;
  const SimTime now = engine_.now();
  obs::TraceSpan pass_span(trace_, now, obs::TraceCategory::kScheduler,
                           obs::TracePoint::kSchedulePass,
                           resource_.id.value());
  int started = 0;

  const auto start_by_id = [&](JobId id) {
    start_job(slot_at(id).job, /*from_reservation=*/false);
    ++queue_tombstones_;  // its queue_ entry is dead now (state kRunning)
    ++started;
  };

  // Compaction rewrites queue_ indices (and thereby the plan cursor), so
  // it runs before planning instead of after. Then advance the dead-prefix
  // pointer: under FIFO churn the head entries die first (start/cancel
  // tombstones), and without the pointer every pass re-walks them.
  compact_queue();
  while (queue_front_ < queue_.size() &&
         !queue_entry_live(queue_[queue_front_])) {
    ++queue_front_;
  }

  // Earliest start gated by something that fires no callback (a drain
  // fence, a reservation window opening); -1 = nothing to wake for.
  SimTime wake = -1;

  if (config_.policy == SchedPolicy::kConservativeBackfill) {
    ensure_plan();
    // Collect due entries first: start callbacks may re-enter (submit,
    // cancel, estimate) and mutate the plan under this loop.
    std::vector<JobId> due;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < plan_.jobs.size(); ++i) {
      if (plan_.starts[i] <= now) {
        due.push_back(plan_.jobs[i]);
      } else {
        plan_.jobs[kept] = plan_.jobs[i];
        plan_.starts[kept] = plan_.starts[i];
        ++kept;
      }
    }
    plan_.jobs.resize(kept);
    plan_.starts.resize(kept);
    in_plan_start_ = true;
    for (const JobId id : due) {
      // An earlier start's callback may have cancelled a later due job.
      if (!queue_entry_live(id)) continue;
      start_by_id(id);
    }
    in_plan_start_ = false;
    if (!plan_.starts.empty()) {
      // The remaining head was planned against exactly the commitments a
      // fresh base profile would show, so its planned start doubles as
      // the head-fit wakeup target — no second profile build.
      wake = plan_.starts.front();
    } else if (queue_length() > 0) {
      // Degenerate window (backfill_depth == 0, or every planned job just
      // left): fall back to an explicit head fit.
      JobId head_id{};
      if (!config_.fair_share && config_.drain_period <= 0) {
        for (std::size_t i = queue_front_; i < queue_.size(); ++i) {
          if (queue_entry_live(queue_[i])) {
            head_id = queue_[i];
            break;
          }
        }
      } else {
        head_id = ordered_queue().front();
      }
      const Job& head = slot_at(head_id).job;
      wake = plan_.profile.earliest_fit(head.req.nodes,
                                        planned_duration(head), now);
    }
  } else {
    Profile profile = base_profile();
    // Lazy ordered-queue prefix: plain FIFO yields live entries on demand
    // and stops at what the policy consumes (started run + head + the
    // backfill window) instead of materializing the whole queue every
    // pass. Fair-share and drain ordering still sort the full queue.
    std::vector<JobId> order;
    const bool fifo = !config_.fair_share && config_.drain_period <= 0;
    if (!fifo) order = ordered_queue();
    // Entries appended by mid-pass callbacks are this pass's business no
    // more than they were when the order was a materialized snapshot.
    const std::size_t limit = fifo ? queue_.size() : order.size();
    std::size_t pos = fifo ? queue_front_ : 0;
    const auto next_live = [&]() -> JobId {
      while (pos < limit) {
        const JobId id = fifo ? queue_[pos] : order[pos];
        ++pos;
        if (queue_entry_live(id)) return id;
      }
      return JobId{};
    };

    JobId head{};
    for (JobId id = next_live(); id.valid(); id = next_live()) {
      const Job& job = slot_at(id).job;
      const Duration dur = planned_duration(job);
      // The profile's value at `now` never exceeds free_nodes_ (it also
      // carries unstarted reservation windows), so a width check is a free
      // short-circuit — on a packed machine the pass does no profile work.
      if (job.req.nodes > free_nodes_ ||
          !profile.fits_at(now, job.req.nodes, dur)) {
        head = id;
        break;
      }
      profile.subtract(now, now + dur, job.req.nodes);
      start_by_id(id);
    }
    if (head.valid()) {
      const Job& headjob = slot_at(head).job;
      const Duration hdur = planned_duration(headjob);
      // At this point the profile holds base + started windows — exactly
      // the fresh base profile the old wakeup tail rebuilt — so the head
      // fit is computed once and reused as both the EASY shadow and the
      // wakeup target.
      const SimTime shadow =
          profile.earliest_fit(headjob.req.nodes, hdur, now);
      TG_CHECK(shadow >= 0, "head job cannot ever fit");
      wake = shadow;
      if (config_.policy == SchedPolicy::kEasyBackfill) {
        // Reserve the head job's slot, then backfill anything that fits
        // now without disturbing it.
        profile.subtract(shadow, shadow + hdur, headjob.req.nodes);
        // free_nodes_ == 0 makes every remaining fits_at provably false
        // (see the width short-circuit above), so stop scanning outright.
        for (int scanned = 0;
             scanned < config_.backfill_depth && free_nodes_ > 0; ++scanned) {
          const JobId id = next_live();
          if (!id.valid()) break;
          const Job& job = slot_at(id).job;
          const Duration dur = planned_duration(job);
          if (job.req.nodes <= free_nodes_ &&
              profile.fits_at(now, job.req.nodes, dur)) {
            profile.subtract(now, now + dur, job.req.nodes);
            start_by_id(id);
          }
        }
      }
    }
  }
  in_pass_ = false;
  pass_span.set_payload(started, static_cast<std::int64_t>(queue_length()));

  // If the head job's start is gated by something that fires no callback,
  // arrange a wakeup pass — otherwise an idle-but-fenced machine would
  // never reconsider its queue. Skip the cancel/reschedule churn when the
  // target tick is unchanged (the common case under a steady backlog).
  if (wake > now && (wakeup_ == kInvalidEvent || wakeup_time_ != wake)) {
    if (wakeup_ != kInvalidEvent) engine_.cancel(wakeup_);
    wakeup_time_ = wake;
    wakeup_ = engine_.schedule_at(
        wake,
        [this] {
          wakeup_ = kInvalidEvent;
          wakeup_time_ = -1;
          schedule_pass();
        },
        EventPriority::kDefault, EventBinding{shard_, EventClass::kLocal});
  }
}

void ResourceScheduler::start_job(Job& job, bool from_reservation) {
  TG_CHECK(job.state == JobState::kQueued, "starting non-queued job");
  if (!from_reservation) {
    TG_CHECK(free_nodes_ >= job.req.nodes, "overcommitted " << resource_.name);
    if (is_feedback(job.req)) remove_feedback_queued();
    free_nodes_ -= job.req.nodes;
    // A plan-driven start occupies exactly the window the cached profile
    // already holds for it; any other start (EASY/FCFS pass, test harness)
    // commits nodes the plan knows nothing about.
    if (!in_plan_start_) invalidate_plan();
    JobSlot& s = slot_at(job.id);
    s.running_pos = static_cast<std::int32_t>(running_ids_.size());
    running_ids_.push_back(job.id);
  }
  job.state = JobState::kRunning;
  job.start_time = engine_.now();
  ++running_count_;
  if (trace_ != nullptr) {
    trace_->emit(job.start_time, obs::TraceCategory::kScheduler,
                 obs::TracePoint::kJobStart, job.id.value(), job.req.nodes,
                 job.start_time - job.submit_time);
  }

  Duration dur = std::min(job.req.actual_runtime, job.req.requested_walltime);
  if (job.req.fails) {
    dur = std::min(dur, std::max<Duration>(job.req.fail_after, kMillisecond));
  }
  const JobId id = job.id;
  // A feedback job's end fans out to other partitions (workflow successor
  // submission, co-allocation bookkeeping); a reservation-attached job's
  // end releases a metascheduler-held window. Both are walls.
  const EventClass end_cls =
      (slot_at(id).reservation.valid() || is_feedback(job.req))
          ? EventClass::kBarrier
          : EventClass::kLocal;
  slot_at(id).end_event = engine_.schedule_in(
      dur, [this, id] { finish_job(id); }, EventPriority::kCompletion,
      EventBinding{shard_, end_cls});
  notify_start(job);
}

void ResourceScheduler::finish_job(JobId id) {
  JobSlot* s = find_slot(id);
  TG_CHECK(s != nullptr, "finishing unknown job " << id);
  const Job& job = s->job;
  const Duration ran = engine_.now() - job.start_time;
  JobState state;
  if (job.req.fails && ran < job.req.actual_runtime &&
      ran < job.req.requested_walltime) {
    state = JobState::kFailed;
  } else if (job.req.actual_runtime > job.req.requested_walltime) {
    state = JobState::kKilled;
  } else {
    state = JobState::kCompleted;
  }
  s->end_event = kInvalidEvent;  // fired, not cancelled
  complete_job(id, state);
}

void ResourceScheduler::complete_job(JobId id, JobState state) {
  JobSlot& s = slot_at(id);
  Job job = std::move(s.job);
  const ReservationId res = s.reservation;
  untrack_running(s);
  release_slot(id);
  --running_count_;

  job.end_time = engine_.now();
  job.state = state;
  const Duration ran = job.end_time - job.start_time;
  // An exact-walltime completion releases its nodes at precisely the moment
  // the cached plan assumed, so the plan survives — the common case under
  // walltime-accurate workloads. Anything earlier frees capacity the plan
  // did not anticipate. The built_at guard covers plans built this very
  // tick, where base_profile clamps an already-elapsed window to now + 1.
  if (res.valid() ||
      job.end_time != job.start_time + planned_duration(job) ||
      plan_.built_at == job.end_time) {
    invalidate_plan();
  }
  if (trace_ != nullptr) {
    trace_->emit(job.end_time, obs::TraceCategory::kScheduler,
                 obs::TracePoint::kJobEnd, job.id.value(),
                 static_cast<std::int64_t>(state), ran);
  }

  // Release nodes. Reservation-attached jobs release through their
  // reservation (ending it early).
  if (res.valid()) {
    Reservation& r = reservations_.at(res.value());
    TG_CHECK(r.started && !r.finished, "job finished outside its reservation");
    r.finished = true;
    free_nodes_ += r.nodes;
    reservations_.erase(res.value());
  } else {
    free_nodes_ += job.req.nodes;
  }
  TG_CHECK(free_nodes_ <= resource_.nodes, "node accounting corrupted");

  metrics_.record_finished(job.wait(), ran, job.req.nodes,
                           resource_.cores_per_node, job.bounded_slowdown(),
                           job.state == JobState::kKilled,
                           job.state == JobState::kFailed);
  if (config_.fair_share) {
    charge_fair_share(job.req.user,
                      to_seconds(ran) * job.req.nodes *
                          resource_.cores_per_node,
                      job.end_time);
  }
  notify_end(job);
  request_pass();
}

// [mc race] An outage event can tie with completions, reservation starts
// and requeue wakeups at the same tick; every branch of that race must
// leave node accounting consistent (the interleaving explorer drives all
// orders, and the capacity/quiescence invariant families audit each one).
int ResourceScheduler::begin_outage(int nodes, SimTime repair) {
  TG_REQUIRE(nodes >= 1 && nodes <= resource_.nodes,
             "outage width " << nodes << " invalid for " << resource_.name);
  const SimTime now = engine_.now();
  // Block re-entrant scheduling while nodes are being taken: preemption
  // observers may submit, and a pass could otherwise grab the just-freed
  // nodes before the outage claims them.
  in_pass_ = true;
  invalidate_plan();  // the cached profile has no down-nodes window
  while (free_nodes_ < nodes) {
    // Victim: youngest running non-reservation job (latest start, then
    // highest id) — the cheapest partial work to lose. The slab is not
    // id-ordered, so the tie-break the old ascending-id map walk got for
    // free is spelled out explicitly.
    JobId victim;
    SimTime latest = -1;
    for (const JobId rid : running_ids_) {
      const Job& job = slot_at(rid).job;
      if (job.start_time > latest ||
          (job.start_time == latest && job.id.value() > victim.value())) {
        latest = job.start_time;
        victim = job.id;
      }
    }
    if (!victim.valid()) break;  // only reservations left; take what's free
    preempt_job(victim);
  }
  const int taken = std::min(nodes, free_nodes_);
  free_nodes_ -= taken;
  nodes_down_ += taken;
  if (taken > 0) {
    outage_until_ = std::max(outage_until_, std::max(repair, now + 1));
    metrics_.record_outage(taken);
    if (trace_ != nullptr) {
      trace_->emit(now, obs::TraceCategory::kScheduler,
                   obs::TracePoint::kOutageBegin, resource_.id.value(), taken,
                   repair);
    }
  }
  in_pass_ = false;
  request_pass();
  return taken;
}

void ResourceScheduler::end_outage(int nodes) {
  TG_REQUIRE(nodes >= 1 && nodes <= nodes_down_,
             "returning " << nodes << " nodes but only " << nodes_down_
                          << " are down on " << resource_.name);
  nodes_down_ -= nodes;
  free_nodes_ += nodes;
  TG_CHECK(free_nodes_ <= resource_.nodes, "node accounting corrupted");
  if (nodes_down_ == 0) outage_until_ = 0;
  if (trace_ != nullptr) {
    trace_->emit(engine_.now(), obs::TraceCategory::kScheduler,
                 obs::TracePoint::kOutageEnd, resource_.id.value(), nodes);
  }
  invalidate_plan();  // nodes came back earlier than the advisory said
  request_pass();
}

bool ResourceScheduler::interrupt(JobId id, JobState state) {
  TG_REQUIRE(state == JobState::kFailed || state == JobState::kKilled ||
                 state == JobState::kKilledByOutage,
             "interrupt requires a terminal state, got " << to_string(state));
  JobSlot* s = find_slot(id);
  if (s == nullptr || s->job.state != JobState::kRunning) {
    return false;
  }
  TG_CHECK(s->end_event != kInvalidEvent, "running job without an end event");
  engine_.cancel(s->end_event);
  s->end_event = kInvalidEvent;
  complete_job(id, state);
  return true;
}

void ResourceScheduler::preempt_job(JobId id) {
  JobSlot* s = find_slot(id);
  TG_CHECK(s != nullptr && s->job.state == JobState::kRunning,
           "preempting a non-running job " << id);
  invalidate_plan();  // the victim's window vanishes from the profile
  Job& job = s->job;
  TG_CHECK(s->end_event != kInvalidEvent, "running job without an end event");
  engine_.cancel(s->end_event);
  s->end_event = kInvalidEvent;
  untrack_running(*s);
  --running_count_;
  free_nodes_ += job.req.nodes;

  const SimTime now = engine_.now();
  const Duration ran = now - job.start_time;
  ++job.preemptions;
  const bool requeue = job.preemptions <= config_.outage_retry_limit;
  if (trace_ != nullptr) {
    trace_->emit(now, obs::TraceCategory::kScheduler,
                 obs::TracePoint::kJobPreempt, id.value(), job.preemptions,
                 requeue ? 1 : 0);
  }
  metrics_.record_preempted(to_seconds(ran) * job.req.nodes *
                                static_cast<double>(resource_.cores_per_node),
                            !requeue);
  if (requeue) {
    // Emit the lost attempt to observers (accounting records it with the
    // kRequeued disposition), then return the job to the queued state; it
    // re-enters the queue after an exponential backoff. Lost work is not
    // charged to fair share — the user did not get it.
    Job attempt = job;
    attempt.end_time = now;
    attempt.state = JobState::kRequeued;
    job.state = JobState::kQueued;
    job.start_time = -1;
    job.end_time = -1;
    job.requeue_pending = true;
    Duration backoff = config_.outage_retry_backoff;
    for (int i = 1;
         i < job.preemptions && backoff < config_.outage_retry_backoff_cap;
         ++i) {
      backoff *= 2;
    }
    backoff = std::min(backoff, config_.outage_retry_backoff_cap);
    backoff = std::max<Duration>(backoff, kMillisecond);
    // A feedback job's requeue re-enters the queue and re-serializes the
    // partition — a cross-cutting transition that must run on the merged
    // loop, so it is a wall; plain jobs' requeues stay local.
    engine_.schedule_in(backoff, [this, id] { requeue_job(id); },
                        EventPriority::kSubmission,
                        EventBinding{shard_, is_feedback(job.req)
                                                 ? EventClass::kBarrier
                                                 : EventClass::kLocal});
    notify_end(attempt);
  } else {
    Job dead = std::move(s->job);
    release_slot(id);
    dead.end_time = now;
    dead.state = JobState::kKilledByOutage;
    notify_end(dead);
  }
}

// [mc race] The requeue wakeup fires at kSubmission priority and can tie
// with fresh submissions on this partition; whichever order fires, the
// stale-entry erase below must keep exactly one queue entry per job (the
// PR 3 queue-entry-resurrection bug was this race, lost).
void ResourceScheduler::requeue_job(JobId id) {
  JobSlot* s = find_slot(id);
  if (s == nullptr || s->job.state != JobState::kQueued ||
      !s->job.requeue_pending) {
    return;  // cancelled while the backoff was pending
  }
  s->job.requeue_pending = false;
  // Drop stale entries from this job's previous attempts (each was counted
  // as a tombstone when that attempt started); left in place they would
  // resurrect as schedulable duplicates now that the job is queued again.
  queue_tombstones_ -= static_cast<std::size_t>(std::erase(queue_, id));
  queue_front_ = 0;  // the erase shifted positions under the prefix pointer
  queue_.push_back(id);
  if (is_feedback(s->job.req)) add_feedback_queued();
  if (trace_ != nullptr) {
    trace_->emit(engine_.now(), obs::TraceCategory::kScheduler,
                 obs::TracePoint::kJobRequeue, id.value());
  }
  invalidate_plan();  // the erase above shifts the plan cursor's indices
  request_pass();
}

void ResourceScheduler::on_reservation_start(ReservationId id) {
  Reservation* rp = reservations_.find(id.value());
  if (rp == nullptr) return;  // cancelled meanwhile
  // [mc race] This handler ties with same-tick outage events at
  // (time, kDefault) on this partition: reserve() scheduled it first, so
  // the canonical order starts the window before an outage can touch the
  // promised nodes, but the interleaving explorer also drives the flipped
  // order, where the shortfall branch below must hold the line.
  if (free_nodes_ < rp->nodes) {
    // reserve() validated this window against every other commitment, so a
    // shortfall here means an outage took the promised nodes. Break the
    // reservation (cancelling its attached job) rather than over-commit —
    // what a real site does when a machine partition dies under an
    // advance reservation. Erase before the callbacks: an observer that
    // reserves would rehash the table out from under `rp`.
    TG_CHECK(nodes_down_ > 0,
             "reservation window not honoured on " << resource_.name);
    if (config_.mc_mutate_overcommit_reservation) {
      // Deliberately re-introduced over-commit (see SchedulerConfig): the
      // window starts on nodes the outage owns and free_nodes_ keeps its
      // pre-reservation value, so this resource is now promised to two
      // holders at once. The capacity-conservation invariant family
      // catches the resulting double allocation.
      rp->started = true;
      const JobId attached = rp->attached_job;
      const SimTime rend = rp->end;
      if (attached.valid()) {
        start_job(slot_at(attached).job, /*from_reservation=*/true);
      }
      engine_.schedule_at(rend, [this, id] { on_reservation_end(id); },
                          EventPriority::kCompletion,
                          EventBinding{shard_, EventClass::kBarrier});
      return;
    }
    const JobId attached = rp->attached_job;
    reservations_.erase(id.value());
    if (attached.valid()) {
      JobSlot* js = find_slot(attached);
      if (js != nullptr) {
        Job job = std::move(js->job);
        release_slot(attached);
        job.state = JobState::kCancelled;
        job.end_time = engine_.now();
        notify_end(job);
      }
    }
    invalidate_plan();  // the cached profile still holds the broken window
    request_pass();
    return;
  }
  rp->started = true;
  free_nodes_ -= rp->nodes;
  // Copy what the tail needs: a start callback that places a new
  // reservation would invalidate `rp`.
  const JobId attached = rp->attached_job;
  const SimTime rend = rp->end;
  if (attached.valid()) {
    start_job(slot_at(attached).job, /*from_reservation=*/true);
  }
  engine_.schedule_at(rend, [this, id] { on_reservation_end(id); },
                      EventPriority::kCompletion,
                      EventBinding{shard_, EventClass::kBarrier});
}

void ResourceScheduler::on_reservation_end(ReservationId id) {
  Reservation* rp = reservations_.find(id.value());
  if (rp == nullptr) return;  // released early by its job
  TG_CHECK(rp->started, "reservation ended before starting");
  if (rp->attached_job.valid() && find_slot(rp->attached_job) != nullptr) {
    // The attached job is still running at window end; it was validated to
    // fit, so this means its end event is at exactly this tick — let the
    // job's own finish release the nodes.
    return;
  }
  const int nodes = rp->nodes;
  reservations_.erase(id.value());
  free_nodes_ += nodes;
  // The cached plan's window for this reservation ends exactly now, so it
  // survives — unless it was built this very tick, where base_profile
  // clamped the elapsed window to now + 1.
  if (plan_.built_at == engine_.now()) invalidate_plan();
  request_pass();
}

SimTime ResourceScheduler::estimate_start(int nodes, Duration walltime) const {
  TG_REQUIRE(nodes >= 1 && nodes <= resource_.nodes,
             "estimate width invalid for " << resource_.name);
  // The conservative plan *is* the estimate's scaffolding: queue-prefix
  // commitments subtracted from the base profile. Served from the cache
  // when live (O(profile) instead of a full replan per probe — the
  // federation selector issues one probe per candidate resource).
  const PlanCache& plan = ensure_plan();
  return plan.profile.earliest_fit(nodes, walltime, engine_.now());
}

const Job& ResourceScheduler::job(JobId id) const {
  const JobSlot* s = find_slot(id);
  TG_REQUIRE(s != nullptr, "job " << id << " is not live");
  return s->job;
}

}  // namespace tg
