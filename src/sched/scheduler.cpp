#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace tg {

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFcfs: return "FCFS";
    case SchedPolicy::kEasyBackfill: return "EASY";
    case SchedPolicy::kConservativeBackfill: return "Conservative";
  }
  return "unknown";
}

namespace {
/// Fences are materialized over this planning horizon past `now`; nothing
/// on a TeraGrid machine plans further ahead than this.
constexpr Duration kFenceHorizon = 120 * kDay;

/// Validates the id before shifting: run from the member initializer, where
/// an out-of-range id would otherwise overflow (UB) before any ctor-body
/// check could reject it.
JobId::rep job_id_base_for(const ComputeResource& resource) {
  TG_REQUIRE(resource.id.valid() && resource.id.value() <= kMaxResourceId,
             "resource id " << resource.id
                            << " outside the job-id folding range [0, "
                            << kMaxResourceId << "]");
  return static_cast<JobId::rep>(resource.id.value() + 1)
         << kJobIdResourceShift;
}
}  // namespace

ResourceScheduler::ResourceScheduler(Engine& engine,
                                     const ComputeResource& resource,
                                     SchedulerConfig config)
    : engine_(engine),
      resource_(resource),
      config_(config),
      free_nodes_(resource.nodes),
      // Job ids are globally unique: the resource id is folded into the
      // high bits so accounting can key on JobId alone.
      job_id_base_(job_id_base_for(resource)),
      next_job_(job_id_base_) {
  TG_REQUIRE(resource.nodes > 0, "resource has no nodes");
  TG_REQUIRE(config.capability_fraction > 0.0 &&
                 config.capability_fraction <= 1.0,
             "capability_fraction must be in (0,1]");
  TG_REQUIRE(!config.fair_share || config.fair_share_half_life > 0,
             "fair-share half-life must be positive");
}

int ceil_fraction(double fraction, int n) {
  TG_REQUIRE(fraction > 0.0 && fraction <= 1.0,
             "fraction " << fraction << " outside (0,1]");
  TG_REQUIRE(n > 0, "n must be positive");
  // Decompose fraction = mant / 2^shift with integer mant, then take
  // ceil(mant * n / 2^shift) in 128-bit integer arithmetic. This is the
  // exact ceiling of the stored double times n; the old "+ 0.999" hack
  // under-rounded fractional parts below 0.001 and made boundary products
  // depend on FP noise.
  int exp = 0;
  const double mantissa = std::frexp(fraction, &exp);  // in [0.5, 1)
  auto mant = static_cast<std::uint64_t>(std::ldexp(mantissa, 53));
  int shift = 53 - exp;  // >= 52 since fraction <= 1
  while (shift > 0 && (mant & 1u) == 0) {
    mant >>= 1;
    --shift;
  }
  if (shift > 126) return 1;  // fraction < 2^-73: ceil(fraction * n) == 1
  __extension__ using u128 = unsigned __int128;
  const u128 num = static_cast<u128>(mant) * static_cast<std::uint32_t>(n);
  const u128 den = static_cast<u128>(1) << shift;
  return static_cast<int>((num + den - 1) / den);
}

int ResourceScheduler::capability_threshold() const {
  return ceil_fraction(config_.capability_fraction, resource_.nodes);
}

JobId ResourceScheduler::allocate_job_id() {
  TG_REQUIRE(next_job_ - job_id_base_ < kMaxJobsPerResource,
             "job id space exhausted on " << resource_.name << " ("
                                          << kMaxJobsPerResource << " jobs)");
  return JobId{next_job_++};
}

ResourceScheduler::JobSlot* ResourceScheduler::find_slot(JobId id) {
  if (!id.valid()) return nullptr;
  const auto local = static_cast<std::uint64_t>(id.value() - job_id_base_);
  if (local >= slot_index_.size()) return nullptr;
  const std::uint32_t slot = slot_index_[local];
  return slot == kNoSlot ? nullptr : &slots_[slot];
}

const ResourceScheduler::JobSlot* ResourceScheduler::find_slot(
    JobId id) const {
  return const_cast<ResourceScheduler*>(this)->find_slot(id);
}

ResourceScheduler::JobSlot& ResourceScheduler::slot_at(JobId id) {
  JobSlot* s = find_slot(id);
  TG_CHECK(s != nullptr, "job " << id << " is not live on " << resource_.name);
  return *s;
}

const ResourceScheduler::JobSlot& ResourceScheduler::slot_at(JobId id) const {
  return const_cast<ResourceScheduler*>(this)->slot_at(id);
}

ResourceScheduler::JobSlot& ResourceScheduler::acquire_slot(JobId id) {
  const auto local = static_cast<std::size_t>(id.value() - job_id_base_);
  if (local >= slot_index_.size()) slot_index_.resize(local + 1, kNoSlot);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slot_index_[local] = slot;
  JobSlot& s = slots_[slot];
  s.live = true;
  return s;
}

void ResourceScheduler::release_slot(JobId id) {
  const auto local = static_cast<std::size_t>(id.value() - job_id_base_);
  const std::uint32_t slot = slot_index_[local];
  slot_index_[local] = kNoSlot;
  JobSlot& s = slots_[slot];
  s.job = Job{};
  s.end_event = kInvalidEvent;
  s.reservation = ReservationId{};
  s.live = false;
  free_slots_.push_back(slot);
}

Duration ResourceScheduler::planned_duration(const Job& job) const {
  return job.req.requested_walltime;
}

JobId ResourceScheduler::submit(JobRequest request) {
  TG_REQUIRE(request.nodes >= 1 && request.nodes <= resource_.nodes,
             "job width " << request.nodes << " invalid for "
                          << resource_.name << " (" << resource_.nodes
                          << " nodes)");
  TG_REQUIRE(request.requested_walltime > 0 &&
                 request.requested_walltime <= resource_.max_walltime,
             "requested walltime " << request.requested_walltime
                                   << " outside limits of " << resource_.name);
  TG_REQUIRE(request.actual_runtime > 0, "actual runtime must be positive");

  const JobId id = allocate_job_id();
  Job& job = acquire_slot(id).job;
  job.id = id;
  job.resource = resource_.id;
  job.req = std::move(request);
  job.submit_time = engine_.now();
  job.state = JobState::kQueued;
  queue_.push_back(id);
  if (trace_ != nullptr) {
    trace_->emit(job.submit_time, obs::TraceCategory::kScheduler,
                 obs::TracePoint::kJobSubmit, id.value(), job.req.nodes,
                 job.req.requested_walltime);
  }
  schedule_pass();
  return id;
}

bool ResourceScheduler::queue_entry_live(JobId id) const {
  // A preempted job awaiting its backoff is kQueued but must not be
  // schedulable through the stale entry of its previous attempt.
  const JobSlot* s = find_slot(id);
  return s != nullptr && s->job.state == JobState::kQueued &&
         !s->job.requeue_pending;
}

void ResourceScheduler::compact_queue() {
  if (queue_.size() < 64 || queue_tombstones_ * 2 <= queue_.size()) return;
  std::erase_if(queue_, [this](JobId id) { return !queue_entry_live(id); });
  queue_tombstones_ = 0;
}

bool ResourceScheduler::cancel(JobId id) {
  JobSlot* s = find_slot(id);
  if (s == nullptr || s->job.state != JobState::kQueued) return false;
  Job job = std::move(s->job);
  const ReservationId res = s->reservation;
  release_slot(id);
  if (res.valid()) {
    // Reservation-attached jobs wait on their window, not in queue_;
    // detach so the reservation opens empty instead of dangling.
    reservations_.at(res.value()).attached_job = JobId{};
  } else if (job.requeue_pending) {
    // Preempted and awaiting its backoff: not in queue_, so there is no
    // entry to tombstone; the pending requeue event finds the job gone.
  } else {
    ++queue_tombstones_;  // entry stays in queue_ until compaction
    compact_queue();
  }
  job.state = JobState::kCancelled;
  job.end_time = engine_.now();
  if (trace_ != nullptr) {
    trace_->emit(job.end_time, obs::TraceCategory::kScheduler,
                 obs::TracePoint::kJobCancel, id.value());
  }
  for (const auto& cb : on_end_) cb(job);
  return true;
}

ReservationId ResourceScheduler::reserve(SimTime start, Duration duration,
                                         int nodes) {
  TG_REQUIRE(start >= engine_.now(), "reservation in the past");
  TG_REQUIRE(duration > 0, "reservation duration must be positive");
  TG_REQUIRE(nodes >= 1 && nodes <= resource_.nodes,
             "reservation width invalid");
  // Feasibility against running jobs + existing reservations + fences.
  // Queued jobs never block a reservation: they have no committed start.
  const Profile profile = base_profile();
  if (profile.earliest_fit(nodes, duration, start) != start) {
    return ReservationId{};  // invalid — window not free
  }
  const ReservationId id{next_reservation_++};
  Reservation r;
  r.id = id;
  r.start = start;
  r.end = start + duration;
  r.nodes = nodes;
  reservations_.insert_or_assign(id.value(), r);
  // Default (not completion) priority: at a tick where a running job's
  // planned end coincides with the reservation start, the job's release
  // must be processed before this acquisition.
  engine_.schedule_at(start, [this, id] { on_reservation_start(id); },
                      EventPriority::kDefault);
  // A new blocking window can invalidate planned backfill; re-plan.
  schedule_pass();
  return id;
}

JobId ResourceScheduler::attach_to_reservation(ReservationId id,
                                               JobRequest request) {
  Reservation* rp = reservations_.find(id.value());
  TG_REQUIRE(rp != nullptr, "unknown reservation " << id);
  Reservation& r = *rp;
  TG_REQUIRE(!r.started, "reservation already started");
  TG_REQUIRE(!r.attached_job.valid(), "reservation already has a job");
  TG_REQUIRE(request.nodes <= r.nodes,
             "job wider than reservation (" << request.nodes << " > "
                                            << r.nodes << ")");
  TG_REQUIRE(request.requested_walltime <= r.end - r.start,
             "job walltime exceeds reservation window");

  const JobId jid = allocate_job_id();
  JobSlot& slot = acquire_slot(jid);
  Job& job = slot.job;
  job.id = jid;
  job.resource = resource_.id;
  job.req = std::move(request);
  job.submit_time = engine_.now();
  job.state = JobState::kQueued;
  slot.reservation = id;
  r.attached_job = jid;
  return jid;
}

bool ResourceScheduler::cancel_reservation(ReservationId id) {
  const Reservation* rp = reservations_.find(id.value());
  if (rp == nullptr || rp->started) return false;
  // Erase before firing callbacks: an observer that places a new
  // reservation would rehash the table out from under `rp`.
  const JobId attached = rp->attached_job;
  reservations_.erase(id.value());
  if (attached.valid()) {
    JobSlot* js = find_slot(attached);
    if (js != nullptr) {
      Job job = std::move(js->job);
      release_slot(attached);
      job.state = JobState::kCancelled;
      job.end_time = engine_.now();
      for (const auto& cb : on_end_) cb(job);
    }
  }
  schedule_pass();
  return true;
}

Profile ResourceScheduler::base_profile() const {
  const SimTime now = engine_.now();
  Profile profile(now, resource_.nodes);
  // Slab and table iteration are not id-ordered; Profile::subtract is
  // commutative (exact integer deltas), so the assembled profile is
  // identical to the old ordered walk.
  for (const JobSlot& s : slots_) {
    if (!s.live || s.job.state != JobState::kRunning) continue;
    if (s.reservation.valid()) continue;  // nodes held by reservation
    // A job holds its nodes until its completion event is *processed*; a
    // planned end <= now (event pending this tick, or overdue kill) must
    // still occupy the profile or a same-tick pass would overcommit.
    const SimTime planned_end =
        std::max(s.job.start_time + planned_duration(s.job), now + 1);
    profile.subtract(now, planned_end, s.job.req.nodes);
  }
  reservations_.for_each([&](std::int64_t, const Reservation& r) {
    if (r.finished) return;
    const SimTime end = r.started ? std::max(r.end, now + 1) : r.end;
    profile.subtract(std::max(r.start, now), end, r.nodes);
  });
  if (nodes_down_ > 0) {
    // Out-of-service nodes block the planner until the advised repair time
    // (or at least past this tick when the repair is overdue).
    profile.subtract(now, std::max(outage_until_, now + 1), nodes_down_);
  }
  if (config_.drain_period > 0) {
    const SimTime first =
        ((now / config_.drain_period) + 1) * config_.drain_period;
    for (SimTime f = first; f <= now + kFenceHorizon;
         f += config_.drain_period) {
      profile.add_fence(f);
    }
  }
  return profile;
}

double ResourceScheduler::fair_share_usage(UserId user, SimTime now) const {
  if (!user.valid()) return 0.0;
  const auto idx = static_cast<std::size_t>(user.value());
  if (idx >= usage_.size()) return 0.0;
  const auto [value, at] = usage_[idx];
  if (value == 0.0) return 0.0;  // never charged (or fully zero anyway)
  const double decay = std::exp2(
      -static_cast<double>(now - at) /
      static_cast<double>(config_.fair_share_half_life));
  return value * decay;
}

void ResourceScheduler::charge_fair_share(UserId user, double core_seconds,
                                          SimTime now) {
  if (!user.valid()) return;  // replayed traces may omit the user field
  const double current = fair_share_usage(user, now);
  const auto idx = static_cast<std::size_t>(user.value());
  if (idx >= usage_.size()) usage_.resize(idx + 1, {0.0, 0});
  usage_[idx] = {current + core_seconds, now};
}

std::vector<JobId> ResourceScheduler::ordered_queue() const {
  std::vector<JobId> order;
  order.reserve(queue_length());
  for (const JobId id : queue_) {
    if (queue_entry_live(id)) order.push_back(id);
  }
  if (config_.fair_share) {
    const SimTime now = engine_.now();
    std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
      return fair_share_usage(slot_at(a).job.req.user, now) <
             fair_share_usage(slot_at(b).job.req.user, now);
    });
  }
  if (config_.drain_period > 0) {
    const int thresh = capability_threshold();
    std::stable_partition(order.begin(), order.end(), [&](JobId id) {
      return slot_at(id).job.req.nodes >= thresh;
    });
  }
  return order;
}

void ResourceScheduler::schedule_pass() {
  if (in_pass_) return;  // start_job callbacks may re-enter via submit
  in_pass_ = true;
  const SimTime now = engine_.now();
  obs::TraceSpan pass_span(trace_, now, obs::TraceCategory::kScheduler,
                           obs::TracePoint::kSchedulePass,
                           resource_.id.value());
  int started = 0;

  const auto start_by_id = [&](JobId id) {
    start_job(slot_at(id).job, /*from_reservation=*/false);
    ++queue_tombstones_;  // its queue_ entry is dead now (state kRunning)
    ++started;
  };

  Profile profile = base_profile();
  std::vector<JobId> order = ordered_queue();

  switch (config_.policy) {
    case SchedPolicy::kFcfs: {
      for (JobId id : order) {
        const Job& job = slot_at(id).job;
        const Duration dur = planned_duration(job);
        if (profile.earliest_fit(job.req.nodes, dur, now) != now) break;
        profile.subtract(now, now + dur, job.req.nodes);
        start_by_id(id);
      }
      break;
    }
    case SchedPolicy::kEasyBackfill: {
      // Start jobs in order while they fit immediately.
      std::size_t head = 0;
      while (head < order.size()) {
        const Job& job = slot_at(order[head]).job;
        const Duration dur = planned_duration(job);
        if (profile.earliest_fit(job.req.nodes, dur, now) != now) break;
        profile.subtract(now, now + dur, job.req.nodes);
        start_by_id(order[head]);
        ++head;
      }
      if (head < order.size()) {
        // Reserve the head job's slot, then backfill anything that fits
        // now without disturbing it.
        const Job& headjob = slot_at(order[head]).job;
        const Duration hdur = planned_duration(headjob);
        const SimTime shadow =
            profile.earliest_fit(headjob.req.nodes, hdur, now);
        TG_CHECK(shadow >= 0, "head job cannot ever fit");
        profile.subtract(shadow, shadow + hdur, headjob.req.nodes);
        const std::size_t scan_end = std::min(
            order.size(),
            head + 1 + static_cast<std::size_t>(config_.backfill_depth));
        for (std::size_t i = head + 1; i < scan_end; ++i) {
          const Job& job = slot_at(order[i]).job;
          const Duration dur = planned_duration(job);
          if (profile.earliest_fit(job.req.nodes, dur, now) == now) {
            profile.subtract(now, now + dur, job.req.nodes);
            start_by_id(order[i]);
          }
        }
      }
      break;
    }
    case SchedPolicy::kConservativeBackfill: {
      const std::size_t scan_end = std::min(
          order.size(), static_cast<std::size_t>(config_.backfill_depth));
      for (std::size_t i = 0; i < scan_end; ++i) {
        const JobId id = order[i];
        const Job& job = slot_at(id).job;
        const Duration dur = planned_duration(job);
        const SimTime s = profile.earliest_fit(job.req.nodes, dur, now);
        TG_CHECK(s >= 0, "job cannot ever fit");
        profile.subtract(s, s + dur, job.req.nodes);
        if (s == now) start_by_id(id);
      }
      break;
    }
  }
  in_pass_ = false;
  compact_queue();
  pass_span.set_payload(started, static_cast<std::int64_t>(queue_length()));

  // If the head job's start is gated by something that fires no callback
  // (a drain fence, a reservation window opening), arrange a wakeup pass —
  // otherwise an idle-but-fenced machine would never reconsider its queue.
  if (queue_length() > 0) {
    // Only the ordering's head matters here. Without fair-share or drain
    // priority that is the first live FIFO entry — found by a short scan
    // instead of materializing the whole ordered queue again.
    JobId head_id{};
    if (!config_.fair_share && config_.drain_period <= 0) {
      for (const JobId id : queue_) {
        if (queue_entry_live(id)) {
          head_id = id;
          break;
        }
      }
    } else {
      head_id = ordered_queue().front();
    }
    const Job& head = slot_at(head_id).job;
    const Profile fresh = base_profile();
    const SimTime t =
        fresh.earliest_fit(head.req.nodes, planned_duration(head), now);
    if (t > now) {
      if (wakeup_ != kInvalidEvent) engine_.cancel(wakeup_);
      wakeup_ = engine_.schedule_at(t, [this] {
        wakeup_ = kInvalidEvent;
        schedule_pass();
      });
    }
  }
}

void ResourceScheduler::start_job(Job& job, bool from_reservation) {
  TG_CHECK(job.state == JobState::kQueued, "starting non-queued job");
  if (!from_reservation) {
    TG_CHECK(free_nodes_ >= job.req.nodes, "overcommitted " << resource_.name);
    free_nodes_ -= job.req.nodes;
  }
  job.state = JobState::kRunning;
  job.start_time = engine_.now();
  ++running_count_;
  if (trace_ != nullptr) {
    trace_->emit(job.start_time, obs::TraceCategory::kScheduler,
                 obs::TracePoint::kJobStart, job.id.value(), job.req.nodes,
                 job.start_time - job.submit_time);
  }

  Duration dur = std::min(job.req.actual_runtime, job.req.requested_walltime);
  if (job.req.fails) {
    dur = std::min(dur, std::max<Duration>(job.req.fail_after, kMillisecond));
  }
  const JobId id = job.id;
  slot_at(id).end_event = engine_.schedule_in(
      dur, [this, id] { finish_job(id); }, EventPriority::kCompletion);
  for (const auto& cb : on_start_) cb(job);
}

void ResourceScheduler::finish_job(JobId id) {
  JobSlot* s = find_slot(id);
  TG_CHECK(s != nullptr, "finishing unknown job " << id);
  const Job& job = s->job;
  const Duration ran = engine_.now() - job.start_time;
  JobState state;
  if (job.req.fails && ran < job.req.actual_runtime &&
      ran < job.req.requested_walltime) {
    state = JobState::kFailed;
  } else if (job.req.actual_runtime > job.req.requested_walltime) {
    state = JobState::kKilled;
  } else {
    state = JobState::kCompleted;
  }
  s->end_event = kInvalidEvent;  // fired, not cancelled
  complete_job(id, state);
}

void ResourceScheduler::complete_job(JobId id, JobState state) {
  JobSlot& s = slot_at(id);
  Job job = std::move(s.job);
  const ReservationId res = s.reservation;
  release_slot(id);
  --running_count_;

  job.end_time = engine_.now();
  job.state = state;
  const Duration ran = job.end_time - job.start_time;
  if (trace_ != nullptr) {
    trace_->emit(job.end_time, obs::TraceCategory::kScheduler,
                 obs::TracePoint::kJobEnd, job.id.value(),
                 static_cast<std::int64_t>(state), ran);
  }

  // Release nodes. Reservation-attached jobs release through their
  // reservation (ending it early).
  if (res.valid()) {
    Reservation& r = reservations_.at(res.value());
    TG_CHECK(r.started && !r.finished, "job finished outside its reservation");
    r.finished = true;
    free_nodes_ += r.nodes;
    reservations_.erase(res.value());
  } else {
    free_nodes_ += job.req.nodes;
  }
  TG_CHECK(free_nodes_ <= resource_.nodes, "node accounting corrupted");

  metrics_.record_finished(job.wait(), ran, job.req.nodes,
                           resource_.cores_per_node, job.bounded_slowdown(),
                           job.state == JobState::kKilled,
                           job.state == JobState::kFailed);
  if (config_.fair_share) {
    charge_fair_share(job.req.user,
                      to_seconds(ran) * job.req.nodes *
                          resource_.cores_per_node,
                      job.end_time);
  }
  for (const auto& cb : on_end_) cb(job);
  schedule_pass();
}

int ResourceScheduler::begin_outage(int nodes, SimTime repair) {
  TG_REQUIRE(nodes >= 1 && nodes <= resource_.nodes,
             "outage width " << nodes << " invalid for " << resource_.name);
  const SimTime now = engine_.now();
  // Block re-entrant scheduling while nodes are being taken: preemption
  // observers may submit, and a pass could otherwise grab the just-freed
  // nodes before the outage claims them.
  in_pass_ = true;
  while (free_nodes_ < nodes) {
    // Victim: youngest running non-reservation job (latest start, then
    // highest id) — the cheapest partial work to lose. The slab is not
    // id-ordered, so the tie-break the old ascending-id map walk got for
    // free is spelled out explicitly.
    JobId victim;
    SimTime latest = -1;
    for (const JobSlot& s : slots_) {
      if (!s.live || s.job.state != JobState::kRunning) continue;
      if (s.reservation.valid()) continue;  // reservations survive
      if (s.job.start_time > latest ||
          (s.job.start_time == latest && s.job.id.value() > victim.value())) {
        latest = s.job.start_time;
        victim = s.job.id;
      }
    }
    if (!victim.valid()) break;  // only reservations left; take what's free
    preempt_job(victim);
  }
  const int taken = std::min(nodes, free_nodes_);
  free_nodes_ -= taken;
  nodes_down_ += taken;
  if (taken > 0) {
    outage_until_ = std::max(outage_until_, std::max(repair, now + 1));
    metrics_.record_outage(taken);
    if (trace_ != nullptr) {
      trace_->emit(now, obs::TraceCategory::kScheduler,
                   obs::TracePoint::kOutageBegin, resource_.id.value(), taken,
                   repair);
    }
  }
  in_pass_ = false;
  schedule_pass();
  return taken;
}

void ResourceScheduler::end_outage(int nodes) {
  TG_REQUIRE(nodes >= 1 && nodes <= nodes_down_,
             "returning " << nodes << " nodes but only " << nodes_down_
                          << " are down on " << resource_.name);
  nodes_down_ -= nodes;
  free_nodes_ += nodes;
  TG_CHECK(free_nodes_ <= resource_.nodes, "node accounting corrupted");
  if (nodes_down_ == 0) outage_until_ = 0;
  if (trace_ != nullptr) {
    trace_->emit(engine_.now(), obs::TraceCategory::kScheduler,
                 obs::TracePoint::kOutageEnd, resource_.id.value(), nodes);
  }
  schedule_pass();
}

bool ResourceScheduler::interrupt(JobId id, JobState state) {
  TG_REQUIRE(state == JobState::kFailed || state == JobState::kKilled ||
                 state == JobState::kKilledByOutage,
             "interrupt requires a terminal state, got " << to_string(state));
  JobSlot* s = find_slot(id);
  if (s == nullptr || s->job.state != JobState::kRunning) {
    return false;
  }
  TG_CHECK(s->end_event != kInvalidEvent, "running job without an end event");
  engine_.cancel(s->end_event);
  s->end_event = kInvalidEvent;
  complete_job(id, state);
  return true;
}

void ResourceScheduler::preempt_job(JobId id) {
  JobSlot* s = find_slot(id);
  TG_CHECK(s != nullptr && s->job.state == JobState::kRunning,
           "preempting a non-running job " << id);
  Job& job = s->job;
  TG_CHECK(s->end_event != kInvalidEvent, "running job without an end event");
  engine_.cancel(s->end_event);
  s->end_event = kInvalidEvent;
  --running_count_;
  free_nodes_ += job.req.nodes;

  const SimTime now = engine_.now();
  const Duration ran = now - job.start_time;
  ++job.preemptions;
  const bool requeue = job.preemptions <= config_.outage_retry_limit;
  if (trace_ != nullptr) {
    trace_->emit(now, obs::TraceCategory::kScheduler,
                 obs::TracePoint::kJobPreempt, id.value(), job.preemptions,
                 requeue ? 1 : 0);
  }
  metrics_.record_preempted(to_seconds(ran) * job.req.nodes *
                                static_cast<double>(resource_.cores_per_node),
                            !requeue);
  if (requeue) {
    // Emit the lost attempt to observers (accounting records it with the
    // kRequeued disposition), then return the job to the queued state; it
    // re-enters the queue after an exponential backoff. Lost work is not
    // charged to fair share — the user did not get it.
    Job attempt = job;
    attempt.end_time = now;
    attempt.state = JobState::kRequeued;
    job.state = JobState::kQueued;
    job.start_time = -1;
    job.end_time = -1;
    job.requeue_pending = true;
    Duration backoff = config_.outage_retry_backoff;
    for (int i = 1;
         i < job.preemptions && backoff < config_.outage_retry_backoff_cap;
         ++i) {
      backoff *= 2;
    }
    backoff = std::min(backoff, config_.outage_retry_backoff_cap);
    backoff = std::max<Duration>(backoff, kMillisecond);
    engine_.schedule_in(backoff, [this, id] { requeue_job(id); },
                        EventPriority::kSubmission);
    for (const auto& cb : on_end_) cb(attempt);
  } else {
    Job dead = std::move(s->job);
    release_slot(id);
    dead.end_time = now;
    dead.state = JobState::kKilledByOutage;
    for (const auto& cb : on_end_) cb(dead);
  }
}

void ResourceScheduler::requeue_job(JobId id) {
  JobSlot* s = find_slot(id);
  if (s == nullptr || s->job.state != JobState::kQueued ||
      !s->job.requeue_pending) {
    return;  // cancelled while the backoff was pending
  }
  s->job.requeue_pending = false;
  // Drop stale entries from this job's previous attempts (each was counted
  // as a tombstone when that attempt started); left in place they would
  // resurrect as schedulable duplicates now that the job is queued again.
  queue_tombstones_ -= static_cast<std::size_t>(std::erase(queue_, id));
  queue_.push_back(id);
  if (trace_ != nullptr) {
    trace_->emit(engine_.now(), obs::TraceCategory::kScheduler,
                 obs::TracePoint::kJobRequeue, id.value());
  }
  schedule_pass();
}

void ResourceScheduler::on_reservation_start(ReservationId id) {
  Reservation* rp = reservations_.find(id.value());
  if (rp == nullptr) return;  // cancelled meanwhile
  if (free_nodes_ < rp->nodes) {
    // reserve() validated this window against every other commitment, so a
    // shortfall here means an outage took the promised nodes. Break the
    // reservation (cancelling its attached job) rather than over-commit —
    // what a real site does when a machine partition dies under an
    // advance reservation. Erase before the callbacks: an observer that
    // reserves would rehash the table out from under `rp`.
    TG_CHECK(nodes_down_ > 0,
             "reservation window not honoured on " << resource_.name);
    const JobId attached = rp->attached_job;
    reservations_.erase(id.value());
    if (attached.valid()) {
      JobSlot* js = find_slot(attached);
      if (js != nullptr) {
        Job job = std::move(js->job);
        release_slot(attached);
        job.state = JobState::kCancelled;
        job.end_time = engine_.now();
        for (const auto& cb : on_end_) cb(job);
      }
    }
    schedule_pass();
    return;
  }
  rp->started = true;
  free_nodes_ -= rp->nodes;
  // Copy what the tail needs: a start callback that places a new
  // reservation would invalidate `rp`.
  const JobId attached = rp->attached_job;
  const SimTime rend = rp->end;
  if (attached.valid()) {
    start_job(slot_at(attached).job, /*from_reservation=*/true);
  }
  engine_.schedule_at(rend, [this, id] { on_reservation_end(id); },
                      EventPriority::kCompletion);
}

void ResourceScheduler::on_reservation_end(ReservationId id) {
  Reservation* rp = reservations_.find(id.value());
  if (rp == nullptr) return;  // released early by its job
  TG_CHECK(rp->started, "reservation ended before starting");
  if (rp->attached_job.valid() && find_slot(rp->attached_job) != nullptr) {
    // The attached job is still running at window end; it was validated to
    // fit, so this means its end event is at exactly this tick — let the
    // job's own finish release the nodes.
    return;
  }
  const int nodes = rp->nodes;
  reservations_.erase(id.value());
  free_nodes_ += nodes;
  schedule_pass();
}

SimTime ResourceScheduler::estimate_start(int nodes, Duration walltime) const {
  TG_REQUIRE(nodes >= 1 && nodes <= resource_.nodes,
             "estimate width invalid for " << resource_.name);
  Profile profile = base_profile();
  const SimTime now = engine_.now();
  const std::vector<JobId> order = ordered_queue();
  const std::size_t scan_end = std::min(
      order.size(), static_cast<std::size_t>(config_.backfill_depth));
  for (std::size_t i = 0; i < scan_end; ++i) {
    const Job& job = slot_at(order[i]).job;
    const Duration dur = planned_duration(job);
    const SimTime s = profile.earliest_fit(job.req.nodes, dur, now);
    if (s >= 0) profile.subtract(s, s + dur, job.req.nodes);
  }
  return profile.earliest_fit(nodes, walltime, now);
}

const Job& ResourceScheduler::job(JobId id) const {
  const JobSlot* s = find_slot(id);
  TG_REQUIRE(s != nullptr, "job " << id << " is not live");
  return s->job;
}

}  // namespace tg
