// Space-shared batch scheduling for one compute resource.
//
// Supports the three classic policies (FCFS, EASY backfill, conservative
// backfill), advance reservations (used by the metascheduler for cross-site
// co-allocation), and periodic drain fences with capability-job priority —
// the "weekly clearing followed by full-machine runs" policy NICS ran on
// Kraken. Planning always uses the *requested* walltime; jobs that finish
// early trigger a new scheduling pass, which is where backfill wins.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "des/engine.hpp"
#include "infra/platform.hpp"
#include "obs/trace.hpp"
#include "sched/job.hpp"
#include "sched/metrics.hpp"
#include "sched/profile.hpp"
#include "util/flat_map.hpp"

namespace tg {

enum class SchedPolicy : std::uint8_t {
  kFcfs,
  kEasyBackfill,
  kConservativeBackfill,
};

[[nodiscard]] const char* to_string(SchedPolicy p);

/// Smallest integer k with k >= fraction * n, computed exactly in integer
/// arithmetic on the binary representation of `fraction` (no "+ epsilon"
/// rounding hacks, no dependence on FP noise in the product). Requires
/// fraction in (0, 1] and n > 0; the result is in [1, n].
[[nodiscard]] int ceil_fraction(double fraction, int n);

// --- Job id space -----------------------------------------------------------
// Job ids are globally unique across schedulers: (resource.id + 1) is folded
// into the bits above kJobIdResourceShift and a per-resource counter fills
// the low bits. Both halves are guarded: a scheduler refuses resources with
// id > kMaxResourceId at construction, and refuses the submission that would
// overflow its 2^40-job band instead of silently colliding with the next
// resource's ids.
inline constexpr int kJobIdResourceShift = 40;
inline constexpr std::int64_t kMaxJobsPerResource =
    std::int64_t{1} << kJobIdResourceShift;
/// Largest resource id whose band still fits in a signed 64-bit JobId.
inline constexpr std::int32_t kMaxResourceId = (std::int32_t{1} << 23) - 2;

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::kEasyBackfill;
  /// If > 0, the machine is fully drained every `drain_period` (no job may
  /// run across a fence), and capability jobs get queue priority.
  Duration drain_period = 0;
  /// Jobs with nodes >= capability_fraction * machine nodes are
  /// "capability" jobs for drain prioritization.
  double capability_fraction = 0.5;
  /// Backfill policies examine at most this many queued jobs per pass
  /// (production schedulers cap their lookahead the same way).
  int backfill_depth = 128;
  /// Fair-share queue ordering: users with less recent (exponentially
  /// decayed) usage go first. FIFO among equal users.
  bool fair_share = false;
  /// Half-life of the fair-share usage decay.
  Duration fair_share_half_life = 7 * kDay;
  /// Outage handling: a job preempted by an outage is requeued (after a
  /// backoff) at most this many times; the next preemption kills it with
  /// state kKilledByOutage.
  int outage_retry_limit = 3;
  /// Backoff before the k-th requeued attempt re-enters the queue:
  /// outage_retry_backoff * 2^(k-1), capped at outage_retry_backoff_cap.
  Duration outage_retry_backoff = 15 * kMinute;
  Duration outage_retry_backoff_cap = 8 * kHour;
  /// Incremental plan cache (the default): the conservative plan survives
  /// across events and is only invalidated/extended by what an event
  /// actually touches. When false every pass and estimate replans from
  /// scratch — the reference planner the equivalence tests compare
  /// against; outcomes must be byte-identical either way.
  bool plan_cache = true;
  /// Fidelity knob, 0 = exact. When > 0, conservative planning stops at
  /// the first job whose planned start falls past now + plan_horizon (the
  /// queue head is always planned, so progress is never gated). Bounds
  /// replan cost under deep backlog at the price of optimistic
  /// estimate_start answers beyond the horizon.
  Duration plan_horizon = 0;
  /// Model-checker self-test ONLY (tgmc --mutate, mc_test): re-introduces
  /// the pre-PR3 outage-vs-reservation over-commit. When an outage races
  /// ahead of a reservation start and takes its promised nodes, the
  /// mutated scheduler starts the window anyway without debiting
  /// free_nodes_, so later passes hand the same nodes out twice. The bug
  /// is order-dependent — the canonical schedule never trips it — which is
  /// exactly what the interleaving explorer must prove it can catch.
  /// Never set outside the mc harness.
  bool mc_mutate_overcommit_reservation = false;
};

struct Reservation {
  ReservationId id;
  SimTime start = 0;
  SimTime end = 0;
  int nodes = 0;
  bool started = false;
  bool finished = false;
  JobId attached_job;  ///< optional job launched at reservation start
};

class ResourceScheduler {
 public:
  using JobCallback = std::function<void(const Job&)>;

  /// `shard` is the engine partition this scheduler's events live on (the
  /// site partition under a ShardPlan; 0 when the engine is unpartitioned).
  ResourceScheduler(Engine& engine, const ComputeResource& resource,
                    SchedulerConfig config = {}, std::uint32_t shard = 0);

  ResourceScheduler(const ResourceScheduler&) = delete;
  ResourceScheduler& operator=(const ResourceScheduler&) = delete;

  /// Submits a job to the queue. Validates width/walltime against the
  /// machine limits (throws PreconditionError on violation).
  JobId submit(JobRequest request);

  /// Cancels a queued job. Returns false if unknown or already running.
  bool cancel(JobId id);

  /// Places an advance reservation for `nodes` during [start, start+dur).
  /// Fails (returns invalid id) if the window conflicts with existing
  /// commitments of running jobs or other reservations.
  ReservationId reserve(SimTime start, Duration duration, int nodes);

  /// Attaches a job to a pending reservation; it starts exactly at the
  /// reservation start on the reserved nodes. The job's width/walltime must
  /// fit inside the reservation.
  JobId attach_to_reservation(ReservationId id, JobRequest request);

  /// Cancels a reservation that has not started. Returns false otherwise.
  bool cancel_reservation(ReservationId id);

  // --- Fault injection (driven by src/fault/FaultModel) -------------------

  /// Takes up to `nodes` nodes out of service; `repair` advises the planner
  /// when they are expected back (they actually return when end_outage is
  /// called). Running non-reservation jobs are preempted youngest-first to
  /// free the requested nodes; each preempted job is requeued with
  /// exponential backoff until its retry budget is spent, then killed with
  /// kKilledByOutage. Reservations are never broken, so fewer nodes than
  /// requested may be taken. Returns the node count actually taken — pass
  /// exactly that to end_outage.
  int begin_outage(int nodes, SimTime repair);

  /// Returns `nodes` previously taken by begin_outage to service.
  void end_outage(int nodes);

  /// Forcibly terminates a running job with the given terminal state
  /// (per-job failure hazards inject kFailed this way). Returns false if
  /// the job is not currently running.
  bool interrupt(JobId id, JobState state);

  /// Nodes currently out of service.
  [[nodiscard]] int nodes_down() const { return nodes_down_; }
  /// Nodes currently in service (total minus outage).
  [[nodiscard]] int available_nodes() const {
    return resource_.nodes - nodes_down_;
  }

  /// Conservative estimate of the earliest start of a hypothetical job,
  /// accounting for running jobs, reservations, fences and the current
  /// queue. This is what TeraGrid "time-to-start" advisors exposed.
  [[nodiscard]] SimTime estimate_start(int nodes, Duration walltime) const;

  void add_on_start(JobCallback cb) { on_start_.push_back(std::move(cb)); }
  void add_on_end(JobCallback cb) { on_end_.push_back(std::move(cb)); }

  [[nodiscard]] const ComputeResource& resource() const { return resource_; }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }
  /// Engine partition this scheduler's events are bound to.
  [[nodiscard]] std::uint32_t shard() const { return shard_; }
  /// Current simulation time (the scheduler's engine clock).
  [[nodiscard]] SimTime now() const { return engine_.now(); }
  [[nodiscard]] int free_nodes() const { return free_nodes_; }
  [[nodiscard]] std::size_t queue_length() const {
    return queue_.size() - queue_tombstones_;
  }
  [[nodiscard]] std::size_t running_jobs() const { return running_count_; }
  [[nodiscard]] const SchedulerMetrics& metrics() const { return metrics_; }

  /// Attaches a trace buffer: job lifecycle events, scheduling passes and
  /// outages are recorded there (see obs/trace.hpp). Pass nullptr to
  /// detach. The buffer must outlive the scheduler or the next set_trace.
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }
  [[nodiscard]] obs::TraceBuffer* trace() const { return trace_; }

  /// Live (queued or running) job lookup; throws if unknown/finished.
  [[nodiscard]] const Job& job(JobId id) const;

  /// Decayed core-seconds consumed by `user` as of `now` (fair-share
  /// accounting; always 0 when fair_share is disabled or user unknown).
  [[nodiscard]] double fair_share_usage(UserId user, SimTime now) const;

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  /// One slab entry: a live job plus its per-job scheduler state (end
  /// event, owning reservation), flattened so the per-event lookups that
  /// used to walk three std::maps are one index plus slot fields. Slots
  /// live in a deque for pointer stability — Job& references are held
  /// across re-entrant start/end callbacks — and freed slots recycle
  /// through free_slots_.
  struct JobSlot {
    Job job;
    EventId end_event = kInvalidEvent;
    ReservationId reservation;  ///< invalid unless reservation-attached
    bool live = false;
    /// Index into running_ids_ while the job runs outside a reservation;
    /// -1 otherwise. Keeps base_profile() proportional to *running* jobs
    /// instead of scanning the whole slab (queued backlog included).
    std::int32_t running_pos = -1;
  };

  /// Slot for a live (queued or running) job, or nullptr.
  [[nodiscard]] JobSlot* find_slot(JobId id);
  [[nodiscard]] const JobSlot* find_slot(JobId id) const;
  /// Slot for a job that must be live.
  [[nodiscard]] JobSlot& slot_at(JobId id);
  [[nodiscard]] const JobSlot& slot_at(JobId id) const;
  /// Binds a fresh (or recycled) slot to `id` and returns it.
  [[nodiscard]] JobSlot& acquire_slot(JobId id);
  /// Unbinds `id`'s slot and recycles it. Any Job content the caller still
  /// needs must be moved out first.
  void release_slot(JobId id);

  /// Conservative plan kept alive across events: the availability profile
  /// with every planned job's window subtracted, plus the planned start of
  /// each of the first backfill_depth queued jobs in scheduling order.
  /// `cursor` is the queue_ index where lazy planning stopped; entries
  /// before it are planned or dead. Rebuilt from scratch only when an
  /// event invalidates it (see invalidate_plan call sites).
  struct PlanCache {
    Profile profile{0, 0};
    std::vector<JobId> jobs;     ///< planned prefix, scheduling order
    std::vector<SimTime> starts; ///< parallel planned start times
    std::size_t cursor = 0;
    SimTime built_at = -1;
    bool valid = false;
    bool horizon_cut = false;  ///< planning stopped at plan_horizon
  };

  /// Requests a scheduling pass: synchronous when called outside the event
  /// loop (direct API use expects immediate effects), otherwise deferred
  /// to one EventPriority::kReplan event per tick so same-timestamp
  /// triggers coalesce into a single pass.
  void request_pass();
  void schedule_pass();
  /// The cache applies only to the plain-FIFO ordering: fair-share and
  /// drain priority reorder the queue in ways a cursor cannot track, so
  /// those configs always replan from scratch (the seed cost).
  [[nodiscard]] bool plan_cacheable() const {
    return config_.plan_cache && !config_.fair_share &&
           config_.drain_period <= 0;
  }
  void invalidate_plan() const { plan_.valid = false; }
  /// From-scratch replan of the first backfill_depth queued jobs.
  void rebuild_plan() const;
  /// Consumes queue_ from plan_.cursor while the plan has room; returns
  /// the number of jobs newly planned. Valid cacheable plans only.
  std::size_t extend_plan() const;
  /// Returns a plan valid for `now`: the live cache (topped up) when
  /// reusable, a fresh rebuild otherwise.
  const PlanCache& ensure_plan() const;
  /// Builds the availability profile from running jobs, reservations and
  /// fences (queued jobs excluded).
  [[nodiscard]] Profile base_profile() const;
  /// Starts a queued job now (caller tombstones its queue_ entry).
  void start_job(Job& job, bool from_reservation);
  void finish_job(JobId id);
  /// Shared completion tail: removes the job, releases nodes, records
  /// metrics and notifies observers. The end event must already be gone.
  void complete_job(JobId id, JobState state);
  /// Preempts one running job for an outage (requeue or outage-kill).
  void preempt_job(JobId id);
  /// Backoff expiry: returns a preempted job to the queue.
  void requeue_job(JobId id);
  void on_reservation_start(ReservationId id);
  void on_reservation_end(ReservationId id);
  /// Queue indices in scheduling order (capability first when draining,
  /// fair-share within).
  [[nodiscard]] std::vector<JobId> ordered_queue() const;
  /// True if this queue_ entry still denotes a waiting job. Cancel and
  /// start leave tombstones in queue_ instead of erasing (O(n) per event on
  /// cancel-heavy workloads); dead entries are skipped here and reclaimed
  /// in batch by compact_queue().
  [[nodiscard]] bool queue_entry_live(JobId id) const;
  /// Rebuilds queue_ without tombstones once they outnumber live entries
  /// (amortized O(1) per cancel/start).
  void compact_queue();
  /// Swap-removes a running job from running_ids_ (no-op if untracked).
  void untrack_running(JobSlot& s);
  [[nodiscard]] int capability_threshold() const;
  /// Next id from this resource's band; throws once the band is exhausted.
  [[nodiscard]] JobId allocate_job_id();
  [[nodiscard]] Duration planned_duration(const Job& job) const;
  void charge_fair_share(UserId user, double core_seconds, SimTime now);

  // --- Shard-awareness (DESIGN.md §5.7) -----------------------------------
  // Every event the scheduler owns is bound to its partition. Completions,
  // wakeups, requeue backoffs and replan passes are kLocal — they touch
  // only this scheduler's state — *except* where feedback couples them to
  // other partitions: workflow members and co-allocated jobs feed engines
  // that submit across sites on completion, and reservation events hold
  // metascheduler promises. Those stay kBarrier. While a feedback job
  // waits in the queue any scheduling pass might start it (which would
  // create a wall — forbidden inside a window), so the whole partition is
  // serialized for exactly that interval via Engine::serialize_partition.

  /// True if observers of this job's lifecycle may reach beyond this
  /// partition (workflow engine submits successors, co-allocator
  /// coordinates siblings on other sites).
  [[nodiscard]] static bool is_feedback(const JobRequest& req) {
    return req.workflow.valid() || req.coallocated;
  }
  /// Dispatches on_start_/on_end_ observers: directly in sequential
  /// context, staged to the barrier (canonical order) inside a window.
  void notify_start(const Job& job);
  void notify_end(const Job& job);
  /// Maintains the queued-feedback-job count and the partition's
  /// serialization window (0 -> 1 serializes, 1 -> 0 releases).
  void add_feedback_queued();
  void remove_feedback_queued();

  Engine& engine_;
  ComputeResource resource_;
  SchedulerConfig config_;
  std::deque<JobSlot> slots_;  ///< queued + running jobs (slab)
  std::vector<std::uint32_t> free_slots_;  ///< recyclable slots_ indexes
  /// slot_index_[id - job_id_base_] = the slot holding that job, or
  /// kNoSlot. Local ids are a dense allocation counter, so every per-event
  /// lookup is one vector index instead of a tree walk.
  std::vector<std::uint32_t> slot_index_;
  std::deque<JobId> queue_;    // FIFO arrival order; may hold tombstones
  std::size_t queue_tombstones_ = 0;  ///< dead entries still in queue_
  /// Every entry before this index is dead. Dead entries never resurrect
  /// (requeue erases the stale ones before re-appending), so the pointer
  /// only moves forward — FIFO scans start here instead of re-walking the
  /// tombstoned prefix every pass. Reset to 0 whenever queue_ is rewritten
  /// (compaction, requeue erase).
  std::size_t queue_front_ = 0;
  /// Ids of jobs running outside a reservation, unordered (profile
  /// assembly is commutative); position mirrored in JobSlot::running_pos.
  std::vector<JobId> running_ids_;
  /// Open-addressed by reservation id; erased on completion so the table
  /// tracks only pending/active reservations. Iterated (slot order) only
  /// for the commutative profile reduction.
  FlatMap<Reservation> reservations_;
  std::vector<JobCallback> on_start_;
  std::vector<JobCallback> on_end_;
  /// Fair-share bookkeeping, dense by user id: decayed usage value and its
  /// reference time ({0, 0} = never charged).
  mutable std::vector<std::pair<double, SimTime>> usage_;
  /// Mutable: estimate_start (const) rebuilds the cache and counts the
  /// replan it caused.
  mutable PlanCache plan_;
  mutable SchedulerMetrics metrics_;
  int free_nodes_ = 0;
  int nodes_down_ = 0;  ///< nodes taken by begin_outage, not yet returned
  /// Latest advised repair time across current outages (0 when none); the
  /// planner treats down nodes as busy until then.
  SimTime outage_until_ = 0;
  std::size_t running_count_ = 0;
  JobId::rep job_id_base_ = 0;  ///< first id of this resource's band
  JobId::rep next_job_ = 0;
  ReservationId::rep next_reservation_ = 0;
  /// Engine partition this scheduler's events live on.
  std::uint32_t shard_ = 0;
  /// Startable queued jobs with cross-partition feedback (workflow /
  /// co-allocated, in queue_, not backoff-pending). While > 0 the
  /// partition is serialized; see the shard-awareness note above.
  std::size_t feedback_queued_ = 0;
  EventId wakeup_ = kInvalidEvent;
  SimTime wakeup_time_ = -1;  ///< tick wakeup_ is armed for (churn guard)
  EventId pass_event_ = kInvalidEvent;  ///< pending same-tick deferred pass
  bool in_pass_ = false;
  /// Set while the conservative pass starts jobs straight from the plan:
  /// those starts keep the cache consistent (window already subtracted,
  /// entry pruned) and must not invalidate it.
  bool in_plan_start_ = false;
  obs::TraceBuffer* trace_ = nullptr;  ///< optional flight recorder
};

}  // namespace tg
