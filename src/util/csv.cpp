#include "util/csv.hpp"

#include "util/error.hpp"

namespace tg {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  TG_REQUIRE(!header.empty(), "CSV header must be non-empty");
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  TG_REQUIRE(cells.size() == columns_,
             "CSV row has " << cells.size() << " cells, expected " << columns_);
  // One buffered append per cell and a single stream write per row: the
  // per-cell operator<< path costs a sentry + virtual dispatch per insert,
  // which dominates wide sweep outputs.
  row_buffer_.clear();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) row_buffer_ += ',';
    append_escaped(row_buffer_, cells[i]);
  }
  row_buffer_ += '\n';
  out_.write(row_buffer_.data(),
             static_cast<std::streamsize>(row_buffer_.size()));
}

void CsvWriter::append_escaped(std::string& out, const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) {
    out += field;
    return;
  }
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

std::string CsvWriter::escape(const std::string& field) {
  std::string out;
  append_escaped(out, field);
  return out;
}

}  // namespace tg
