#include "util/csv.hpp"

#include "util/error.hpp"

namespace tg {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  TG_REQUIRE(!header.empty(), "CSV header must be non-empty");
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  TG_REQUIRE(cells.size() == columns_,
             "CSV row has " << cells.size() << " cells, expected " << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace tg
