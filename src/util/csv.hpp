// Minimal RFC-4180-ish CSV writer for experiment series output.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace tg {

/// Writes rows to a CSV file; fields containing commas/quotes/newlines are
/// quoted. The file is flushed and closed on destruction (RAII).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  /// Appends `field` to `out`, quoting it if it needs escaping.
  static void append_escaped(std::string& out, const std::string& field);

  std::ofstream out_;
  std::size_t columns_;
  std::string row_buffer_;  ///< reused across rows; one write per row
};

}  // namespace tg
