#include "util/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tg {

Exponential::Exponential(double rate) : rate_(rate) {
  TG_REQUIRE(rate > 0.0, "Exponential rate must be positive, got " << rate);
}

double Exponential::sample(Rng& rng) const {
  // Inverse CDF; 1 - u avoids log(0).
  return -std::log(1.0 - rng.uniform()) / rate_;
}

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  TG_REQUIRE(sigma >= 0.0, "LogNormal sigma must be non-negative");
}

LogNormal LogNormal::from_mean_cv(double mean, double cv) {
  TG_REQUIRE(mean > 0.0, "LogNormal mean must be positive");
  TG_REQUIRE(cv >= 0.0, "LogNormal cv must be non-negative");
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return LogNormal{mu, std::sqrt(sigma2)};
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * sample_standard_normal(rng));
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  TG_REQUIRE(shape > 0.0 && scale > 0.0, "Weibull parameters must be positive");
}

double Weibull::sample(Rng& rng) const {
  return scale_ * std::pow(-std::log(1.0 - rng.uniform()), 1.0 / shape_);
}

BoundedPareto::BoundedPareto(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi) {
  TG_REQUIRE(alpha > 0.0, "BoundedPareto alpha must be positive");
  TG_REQUIRE(0.0 < lo && lo < hi, "BoundedPareto requires 0 < lo < hi");
}

double BoundedPareto::sample(Rng& rng) const {
  const double u = rng.uniform();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

Zipf::Zipf(std::size_t n, double s) {
  TG_REQUIRE(n > 0, "Zipf needs at least one outcome");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

Discrete::Discrete(std::vector<double> weights) {
  TG_REQUIRE(!weights.empty(), "Discrete needs at least one weight");
  double total = 0.0;
  cdf_.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    TG_REQUIRE(weights[i] >= 0.0, "Discrete weight " << i << " is negative");
    total += weights[i];
    cdf_[i] = total;
  }
  TG_REQUIRE(total > 0.0, "Discrete weights sum to zero");
  for (auto& c : cdf_) c /= total;
}

std::size_t Discrete::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double Discrete::probability(std::size_t i) const {
  TG_REQUIRE(i < cdf_.size(), "Discrete outcome out of range");
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

LogUniformInt::LogUniformInt(std::int64_t lo, std::int64_t hi)
    : log_lo_(std::log(static_cast<double>(lo))),
      log_hi_(std::log(static_cast<double>(hi))),
      lo_(lo),
      hi_(hi) {
  TG_REQUIRE(1 <= lo && lo <= hi, "LogUniformInt requires 1 <= lo <= hi");
}

std::int64_t LogUniformInt::sample(Rng& rng) const {
  const double x = std::exp(rng.uniform(log_lo_, log_hi_));
  const auto v = static_cast<std::int64_t>(std::llround(x));
  return std::clamp(v, lo_, hi_);
}

std::int64_t snap_to_power_of_two(std::int64_t width, double p2, Rng& rng) {
  TG_REQUIRE(width >= 1, "width must be >= 1");
  if (!rng.bernoulli(p2)) return width;
  std::int64_t pow2 = 1;
  while (pow2 < width) pow2 <<= 1;
  return pow2;
}

double sample_standard_normal(Rng& rng) {
  // Marsaglia polar method. Note: consumes a variable number of uniforms;
  // callers that need exact stream alignment should fork a dedicated stream.
  for (;;) {
    const double u = rng.uniform(-1.0, 1.0);
    const double v = rng.uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace tg
