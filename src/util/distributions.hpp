// Sampling distributions used by the synthetic workload generators.
//
// All distributions are small value types with a `sample(Rng&)` member; they
// are deliberately implemented from first principles (inverse-CDF or exact
// transforms) so that results are reproducible across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace tg {

/// Exponential(rate): mean = 1/rate.
class Exponential {
 public:
  explicit Exponential(double rate);
  [[nodiscard]] double sample(Rng& rng) const;
  [[nodiscard]] double mean() const { return 1.0 / rate_; }
  [[nodiscard]] double rate() const { return rate_; }

 private:
  double rate_;
};

/// LogNormal with parameters mu/sigma of the underlying normal.
class LogNormal {
 public:
  LogNormal(double mu, double sigma);
  /// Constructs from the desired mean and coefficient of variation of the
  /// log-normal itself (more natural for workload modelling).
  [[nodiscard]] static LogNormal from_mean_cv(double mean, double cv);
  [[nodiscard]] double sample(Rng& rng) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Weibull(shape k, scale lambda).
class Weibull {
 public:
  Weibull(double shape, double scale);
  [[nodiscard]] double sample(Rng& rng) const;
  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// Pareto truncated to [lo, hi]; heavy-tailed sizes (files, transfers).
class BoundedPareto {
 public:
  BoundedPareto(double alpha, double lo, double hi);
  [[nodiscard]] double sample(Rng& rng) const;

 private:
  double alpha_;
  double lo_;
  double hi_;
};

/// Zipf over {1..n} with exponent s; used for popularity skews
/// (which resources / gateways users prefer).
class Zipf {
 public:
  Zipf(std::size_t n, double s);
  /// Returns a rank in [1, n].
  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Discrete distribution over {0..n-1} from arbitrary non-negative weights.
class Discrete {
 public:
  explicit Discrete(std::vector<double> weights);
  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  /// Normalized probability of outcome i.
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> cdf_;
};

/// Log-uniform integer in [lo, hi]: uniform in log-space, then rounded.
/// Matches the classic observation that parallel-job widths are roughly
/// log-uniform with spikes at powers of two.
class LogUniformInt {
 public:
  LogUniformInt(std::int64_t lo, std::int64_t hi);
  [[nodiscard]] std::int64_t sample(Rng& rng) const;

 private:
  double log_lo_;
  double log_hi_;
  std::int64_t lo_;
  std::int64_t hi_;
};

/// Rounds a width up to the next power of two with probability p2; models
/// the power-of-two spikes in job-width histograms.
[[nodiscard]] std::int64_t snap_to_power_of_two(std::int64_t width, double p2,
                                                Rng& rng);

/// Samples a standard normal via Marsaglia polar method (deterministic
/// given the Rng stream).
[[nodiscard]] double sample_standard_normal(Rng& rng);

}  // namespace tg
