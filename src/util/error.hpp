// Error-handling helpers: precondition checks that throw with context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tg {

/// Thrown when a TG_REQUIRE precondition fails.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a TG_CHECK internal invariant fails.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
inline std::string format_check_message(const char* kind, const char* expr,
                                        const char* file, int line,
                                        const std::string& extra) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!extra.empty()) os << " — " << extra;
  return os.str();
}
}  // namespace detail

}  // namespace tg

/// Validates a caller-supplied precondition; throws tg::PreconditionError.
#define TG_REQUIRE(expr, msg)                                               \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream tg_require_os_;                                    \
      tg_require_os_ << msg;                                                \
      throw ::tg::PreconditionError(::tg::detail::format_check_message(     \
          "precondition", #expr, __FILE__, __LINE__, tg_require_os_.str())); \
    }                                                                       \
  } while (false)

/// Validates an internal invariant; throws tg::InvariantError.
#define TG_CHECK(expr, msg)                                                \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream tg_check_os_;                                     \
      tg_check_os_ << msg;                                                 \
      throw ::tg::InvariantError(::tg::detail::format_check_message(       \
          "invariant", #expr, __FILE__, __LINE__, tg_check_os_.str()));    \
    }                                                                      \
  } while (false)
