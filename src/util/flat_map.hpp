// Open-addressing hash map for non-negative integer keys.
//
// The scheduler's per-event bookkeeping (live jobs, reservation attachment)
// is keyed by ids that are dense within a resource's band; a red-black
// std::map costs a pointer chase per tree level on every event. This table
// is a single flat array with linear probing, Fibonacci hashing and
// backward-shift deletion: one cache line for the common hit, no per-node
// allocation, no tombstone accumulation.
//
// Contract: keys are int64 >= 0 (the invalid id -1 is the empty sentinel).
// Values must be movable. Iteration order is unspecified — callers that
// need a deterministic order must impose their own (the scheduler keeps
// order-sensitive traversals on explicit comparators or sorted structures).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace tg {

template <class Value>
class FlatMap {
 public:
  using Key = std::int64_t;

  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Pointer to the value for `key`, or nullptr. Never allocates. Negative
  /// keys (invalid ids) are never present — they would alias the empty
  /// sentinel, so they short-circuit here.
  [[nodiscard]] Value* find(Key key) {
    if (key < 0 || slots_.empty()) return nullptr;
    const std::size_t slot = probe(key);
    return slots_[slot].key == key ? &slots_[slot].value : nullptr;
  }
  [[nodiscard]] const Value* find(Key key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }
  [[nodiscard]] bool contains(Key key) const { return find(key) != nullptr; }

  /// Value for a key that must be present.
  [[nodiscard]] Value& at(Key key) {
    Value* v = find(key);
    TG_CHECK(v != nullptr, "FlatMap: missing key " << key);
    return *v;
  }
  [[nodiscard]] const Value& at(Key key) const {
    return const_cast<FlatMap*>(this)->at(key);
  }

  /// Inserts or overwrites. References into the map are invalidated.
  void insert_or_assign(Key key, Value value) {
    TG_CHECK(key >= 0, "FlatMap keys must be non-negative, got " << key);
    if ((size_ + 1) * 4 > slots_.size() * 3) grow();
    const std::size_t slot = probe(key);
    if (slots_[slot].key == key) {
      slots_[slot].value = std::move(value);
      return;
    }
    slots_[slot].key = key;
    slots_[slot].value = std::move(value);
    ++size_;
  }

  /// Removes `key` if present; returns whether it was. Backward-shift
  /// deletion keeps probe chains tombstone-free.
  bool erase(Key key) {
    if (key < 0 || slots_.empty()) return false;
    std::size_t slot = probe(key);
    if (slots_[slot].key != key) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t hole = slot;
    std::size_t next = (hole + 1) & mask;
    while (slots_[next].key != kEmpty) {
      const std::size_t home = index_of(slots_[next].key);
      // `next`'s probe walked through `hole` iff the cyclic distance
      // home -> hole is shorter than home -> next; only then may it
      // backfill the hole without breaking its own chain.
      if (((hole - home) & mask) < ((next - home) & mask)) {
        slots_[hole] = std::move(slots_[next]);
        hole = next;
      }
      next = (next + 1) & mask;
    }
    slots_[hole].key = kEmpty;
    slots_[hole].value = Value{};
    --size_;
    return true;
  }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  /// Visits every (key, value) in slot order — deterministic for a given
  /// insertion/erase history, but NOT key order. Only for order-insensitive
  /// reductions; do not mutate the map during the visit.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmpty) fn(s.key, s.value);
    }
  }
  template <class Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.key != kEmpty) fn(s.key, s.value);
    }
  }

 private:
  static constexpr Key kEmpty = -1;

  struct Slot {
    Key key = kEmpty;
    Value value{};
  };

  [[nodiscard]] std::size_t index_of(Key key) const {
    // Fibonacci hashing: dense ids spread over the table without clumping.
    const auto h =
        static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h >> 32) & (slots_.size() - 1);
  }

  /// Slot containing `key`, or the empty slot where it would go.
  [[nodiscard]] std::size_t probe(Key key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = index_of(key);
    while (slots_[slot].key != kEmpty && slots_[slot].key != key) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (Slot& s : old) {
      if (s.key == kEmpty) continue;
      std::size_t slot = index_of(s.key);
      while (slots_[slot].key != kEmpty) slot = (slot + 1) & mask;
      slots_[slot] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace tg
