#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tg {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0.0) {
  TG_REQUIRE(bins > 0, "Histogram needs at least one bin");
  TG_REQUIRE(hi > lo, "Histogram range must be non-empty");
}

void Histogram::add(double x, double weight) {
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::vector<std::pair<double, double>> Histogram::cdf() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(counts_.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    out.emplace_back(bin_hi(i), total_ > 0 ? cum / total_ : 0.0);
  }
  return out;
}

Log2Histogram::Log2Histogram(std::size_t max_bins) : counts_(max_bins, 0.0) {
  TG_REQUIRE(max_bins > 0, "Log2Histogram needs at least one bin");
}

void Log2Histogram::add(double x, double weight) {
  std::size_t idx = 0;
  if (x >= 1.0) {
    idx = static_cast<std::size_t>(std::floor(std::log2(x)));
    idx = std::min(idx, counts_.size() - 1);
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Log2Histogram::bin_lo(std::size_t i) const {
  return std::ldexp(1.0, static_cast<int>(i));
}

std::vector<std::pair<double, double>> Log2Histogram::cdf() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(counts_.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    out.emplace_back(bin_lo(i + 1), total_ > 0 ? cum / total_ : 0.0);
  }
  return out;
}

std::size_t Log2Histogram::used_bins() const {
  for (std::size_t i = counts_.size(); i > 0; --i) {
    if (counts_[i - 1] > 0) return i;
  }
  return 0;
}

std::string sparkline(const std::vector<double>& values) {
  static constexpr const char* kBlocks[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  const double mx = *std::max_element(values.begin(), values.end());
  std::string out;
  for (double v : values) {
    const int level =
        mx > 0 ? static_cast<int>(std::lround(v / mx * 8.0)) : 0;
    out += kBlocks[std::clamp(level, 0, 8)];
  }
  return out;
}

}  // namespace tg
