// Fixed-bin and logarithmic histograms, plus CDF extraction for figures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tg {

/// Linear-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin so no data is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total() const { return total_; }

  /// (bin upper edge, cumulative fraction) pairs — a CDF series.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf() const;

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Log2-bin histogram for widths/sizes: bin i covers [2^i, 2^(i+1)).
class Log2Histogram {
 public:
  Log2Histogram() : Log2Histogram(32) {}
  explicit Log2Histogram(std::size_t max_bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total() const { return total_; }
  /// Lower edge (2^i) of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] std::vector<std::pair<double, double>> cdf() const;
  /// Index of the highest non-empty bin + 1 (for compact printing).
  [[nodiscard]] std::size_t used_bins() const;

 private:
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Renders a one-line unicode sparkline of bin counts, for quick terminal
/// inspection of distributions in experiment output.
[[nodiscard]] std::string sparkline(const std::vector<double>& values);

}  // namespace tg
