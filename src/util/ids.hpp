// Strong identifier types used across the library.
//
// Every entity in the simulation (user, project, site, resource, job, ...)
// is referred to by a small integer id. Using a distinct C++ type per entity
// prevents the classic bug of passing a user id where a job id is expected;
// the wrapper compiles away entirely.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>

namespace tg {

/// A strongly-typed integer identifier. `Tag` is a phantom type that makes
/// ids of different entities incompatible; `Rep` is the underlying integer.
/// Default-constructed ids are invalid (negative).
template <class Tag, class Rep = std::int32_t>
class Id {
 public:
  using rep = Rep;

  constexpr Id() = default;
  constexpr explicit Id(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

 private:
  Rep value_ = -1;
};

using UserId = Id<struct UserIdTag>;
using ProjectId = Id<struct ProjectIdTag>;
using SiteId = Id<struct SiteIdTag>;
using ResourceId = Id<struct ResourceIdTag>;
using JobId = Id<struct JobIdTag, std::int64_t>;
using GatewayId = Id<struct GatewayIdTag>;
/// Dense id of an interned gateway end-user label (see util/string_pool.hpp).
using EndUserId = Id<struct EndUserIdTag>;
using WorkflowId = Id<struct WorkflowIdTag, std::int64_t>;
using TransferId = Id<struct TransferIdTag, std::int64_t>;
using ReservationId = Id<struct ReservationIdTag, std::int64_t>;
using LinkId = Id<struct LinkIdTag>;
/// Dense id of an interned dataset name in a ReplicaCatalog (see
/// data/replica_catalog.hpp).
using DatasetId = Id<struct DatasetIdTag>;

}  // namespace tg

namespace std {
template <class Tag, class Rep>
struct hash<tg::Id<Tag, Rep>> {
  size_t operator()(tg::Id<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
