#include "util/memstats.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

// Sanitizers replace the allocator themselves; defining the replaceable
// operators alongside them double-books every allocation (or deadlocks on
// some runtimes), so the hooks exist only in plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TG_ALLOC_HOOKS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define TG_ALLOC_HOOKS 0
#else
#define TG_ALLOC_HOOKS 1
#endif
#else
#define TG_ALLOC_HOOKS 1
#endif

namespace tg {

namespace {
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_bytes{0};
}  // namespace

AllocStats allocation_stats() {
  AllocStats s;
  s.allocations = g_allocations.load(std::memory_order_relaxed);
  s.bytes = g_bytes.load(std::memory_order_relaxed);
  return s;
}

bool allocation_counting_enabled() { return TG_ALLOC_HOOKS != 0; }

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

namespace detail {
inline void* counted_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (alignment > alignof(std::max_align_t)) {
    // aligned_alloc requires size to be a multiple of the alignment.
    const std::size_t padded = (size + alignment - 1) / alignment * alignment;
    return std::aligned_alloc(alignment, padded);
  }
  return std::malloc(size);
}
}  // namespace detail

}  // namespace tg

#if TG_ALLOC_HOOKS

void* operator new(std::size_t size) {
  if (void* p = tg::detail::counted_alloc(size, 0)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p =
          tg::detail::counted_alloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return tg::detail::counted_alloc(size, 0);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return tg::detail::counted_alloc(size, 0);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // TG_ALLOC_HOOKS
