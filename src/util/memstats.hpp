// Process memory instrumentation for benchmarks and experiments.
//
// Two cheap signals that make memory wins visible next to wall time:
//  * peak resident set size, read from the OS (getrusage), and
//  * global allocation counters, maintained by replaceable operator
//    new/delete hooks (relaxed atomics; a handful of cycles per call).
//
// Under ASan/TSan/MSan the allocator is owned by the sanitizer runtime and
// the hooks are compiled out — the counters then read 0 and `counting()`
// reports false, so callers can label the column "n/a" instead of lying.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tg {

struct AllocStats {
  std::uint64_t allocations = 0;  ///< operator new / new[] calls
  std::uint64_t bytes = 0;        ///< sum of requested sizes
};

/// Cumulative allocation counters since process start (zeros when the
/// hooks are compiled out).
[[nodiscard]] AllocStats allocation_stats();

/// True when the operator-new hooks are active in this build.
[[nodiscard]] bool allocation_counting_enabled();

/// Peak resident set size of this process in bytes (0 if unavailable).
[[nodiscard]] std::size_t peak_rss_bytes();

}  // namespace tg
