#include "util/rng.hpp"

#include "util/error.hpp"

namespace tg {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// FNV-1a over a label, used to turn stream labels into tags.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TG_REQUIRE(lo <= hi, "uniform_int range [" << lo << "," << hi << "]");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t r = next();
  while (r >= limit) r = next();
  return lo + static_cast<std::int64_t>(r % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork(std::uint64_t stream_tag) const {
  std::uint64_t sm = state_[0] ^ rotl(state_[3], 23) ^ (stream_tag * 0x9e3779b97f4a7c15ULL);
  Rng child{0};
  for (auto& word : child.state_) word = splitmix64(sm);
  return child;
}

Rng Rng::fork(std::string_view label) const { return fork(fnv1a(label)); }

}  // namespace tg
