// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible for a given seed across platforms,
// so we implement xoshiro256** (public domain, Blackman & Vigna) rather than
// relying on implementation-defined std:: distributions. Independent
// substreams are derived with SplitMix64 so that adding a new consumer of
// randomness never perturbs existing streams.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace tg {

/// SplitMix64: used for seeding and stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  /// Next raw 64-bit output.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derives an independent child stream. `stream_tag` distinguishes
  /// consumers; the same (parent state, tag) always yields the same child.
  [[nodiscard]] Rng fork(std::uint64_t stream_tag) const;

  /// Convenience: derive a child stream from a label, e.g. fork("sched").
  [[nodiscard]] Rng fork(std::string_view label) const;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace tg
