#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace tg {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, q);
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  TG_REQUIRE(0.0 <= q && q <= 1.0, "percentile q must be in [0,1], got " << q);
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double weighted_mean(const std::vector<double>& values,
                     const std::vector<double>& weights) {
  TG_REQUIRE(values.size() == weights.size(),
             "weighted_mean size mismatch " << values.size() << " vs "
                                            << weights.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    num += values[i] * weights[i];
    den += weights[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

double jain_fairness(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sumsq = 0.0;
  for (double v : values) {
    sum += v;
    sumsq += v * v;
  }
  if (sumsq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sumsq);
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double total = 0.0;
  for (double v : samples) total += v;
  s.mean = total / static_cast<double>(samples.size());
  s.p50 = percentile_sorted(samples, 0.50);
  s.p90 = percentile_sorted(samples, 0.90);
  s.p99 = percentile_sorted(samples, 0.99);
  s.min = samples.front();
  s.max = samples.back();
  return s;
}

std::string si_format(double value, int precision) {
  static constexpr const char* kSuffixes[] = {"", "k", "M", "G", "T", "P"};
  double v = std::fabs(value);
  int idx = 0;
  while (v >= 1000.0 && idx < 5) {
    v /= 1000.0;
    ++idx;
  }
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(idx == 0 ? 0 : precision);
  os << (value < 0 ? -v : v) << kSuffixes[idx];
  return os.str();
}

}  // namespace tg
