// Streaming and batch statistics helpers used by metrics and experiments.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace tg {

/// Welford streaming accumulator: mean/variance/min/max without storing
/// samples. Numerically stable for long simulations.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample set using linear interpolation between closest
/// ranks. `q` in [0,1]. Sorts a copy; use `percentile_sorted` in loops.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Percentile of an already-sorted sample set.
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

/// Weighted mean; returns 0 for empty input.
[[nodiscard]] double weighted_mean(const std::vector<double>& values,
                                   const std::vector<double>& weights);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1.0 == perfectly fair.
[[nodiscard]] double jain_fairness(const std::vector<double>& values);

/// Five-number-ish summary used in experiment output.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::vector<double> samples);

/// Human-readable engineering formatting, e.g. 1234567 -> "1.23M".
[[nodiscard]] std::string si_format(double value, int precision = 2);

}  // namespace tg
