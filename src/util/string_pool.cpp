#include "util/string_pool.hpp"

#include "util/error.hpp"

namespace tg {

namespace {

/// FNV-1a: stable across platforms (determinism contract) and good enough
/// for short labels.
std::uint64_t hash_bytes(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::size_t StringPool::probe(std::string_view s) const {
  const std::size_t mask = table_.size() - 1;
  std::size_t slot = static_cast<std::size_t>(hash_bytes(s)) & mask;
  while (table_[slot] != kEmptySlot) {
    const Span& span = spans_[static_cast<std::size_t>(table_[slot])];
    if (view(span) == s) return slot;
    slot = (slot + 1) & mask;
  }
  return slot;
}

void StringPool::grow_table() {
  const std::size_t capacity = table_.empty() ? 64 : table_.size() * 2;
  table_.assign(capacity, kEmptySlot);
  const std::size_t mask = capacity - 1;
  for (std::size_t id = 0; id < spans_.size(); ++id) {
    std::size_t slot =
        static_cast<std::size_t>(hash_bytes(view(spans_[id]))) & mask;
    while (table_[slot] != kEmptySlot) slot = (slot + 1) & mask;
    table_[slot] = static_cast<std::int32_t>(id);
  }
}

EndUserId StringPool::intern(std::string_view s) {
  if (s.empty()) return EndUserId{};
  // Keep the load factor under 1/2 (counting the insert about to happen).
  if (table_.empty() || (spans_.size() + 1) * 2 > table_.size()) grow_table();
  const std::size_t slot = probe(s);
  if (table_[slot] != kEmptySlot) {
    return EndUserId{table_[slot]};
  }
  TG_REQUIRE(arena_.size() + s.size() <= UINT32_MAX,
             "string pool arena exhausted");
  const auto id = static_cast<std::int32_t>(spans_.size());
  Span span;
  span.offset = static_cast<std::uint32_t>(arena_.size());
  span.length = static_cast<std::uint32_t>(s.size());
  arena_.append(s);
  spans_.push_back(span);
  table_[slot] = id;
  return EndUserId{id};
}

EndUserId StringPool::find(std::string_view s) const {
  if (s.empty() || table_.empty()) return EndUserId{};
  const std::size_t slot = probe(s);
  return table_[slot] == kEmptySlot ? EndUserId{} : EndUserId{table_[slot]};
}

std::string_view StringPool::at(EndUserId id) const {
  if (!id.valid()) return {};
  const auto slot = static_cast<std::size_t>(id.value());
  TG_REQUIRE(slot < spans_.size(), "string pool id " << id << " out of range");
  return view(spans_[slot]);
}

}  // namespace tg
