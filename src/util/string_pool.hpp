// String interning for hot-path record attributes.
//
// The gateway end-user attribute is a short opaque label ("nanohub:user17")
// attached to millions of job records. Carrying it as std::string means a
// heap-allocated copy in every JobRequest, Job and JobRecord plus
// string-keyed set churn in analysis. A StringPool interns each distinct
// label once into a contiguous character arena and hands out a dense
// EndUserId; the simulation hot path moves 4-byte ids and strings survive
// only at the I/O boundary (population synthesis, SWF interchange, display).
//
// Ids are dense [0, size()) in first-intern order, so analytics can use
// them as direct vector indexes. Interning is deterministic: the same
// sequence of intern() calls yields the same ids regardless of platform.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.hpp"

namespace tg {

class StringPool {
 public:
  StringPool() = default;

  /// Returns the id for `s`, interning it on first sight. The empty string
  /// is never interned: it denotes "attribute absent" and maps to the
  /// invalid id.
  EndUserId intern(std::string_view s);

  /// Id for an already-interned string; invalid id if never interned.
  [[nodiscard]] EndUserId find(std::string_view s) const;

  /// The string for a pool id; empty view for the invalid id. Requires
  /// id.value() < size() otherwise.
  [[nodiscard]] std::string_view at(EndUserId id) const;

  /// Number of distinct strings interned (== one past the largest id).
  [[nodiscard]] std::size_t size() const { return spans_.size(); }
  [[nodiscard]] bool empty() const { return spans_.empty(); }

 private:
  struct Span {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  [[nodiscard]] std::string_view view(const Span& s) const {
    return {arena_.data() + s.offset, s.length};
  }
  /// Open-addressing lookup: slot holding `s`'s id, or the empty slot where
  /// it would be inserted. `table_` is always a power of two.
  [[nodiscard]] std::size_t probe(std::string_view s) const;
  void grow_table();

  static constexpr std::int32_t kEmptySlot = -1;

  std::string arena_;                ///< all interned bytes, back to back
  std::vector<Span> spans_;          ///< id -> arena span
  std::vector<std::int32_t> table_;  ///< open-addressing hash -> id
};

}  // namespace tg
