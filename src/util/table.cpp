#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace tg {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  TG_REQUIRE(!headers_.empty(), "Table needs at least one column");
  aligns_[0] = Align::kLeft;
}

void Table::set_align(std::size_t column, Align align) {
  TG_REQUIRE(column < aligns_.size(), "column out of range");
  aligns_[column] = align;
}

Table& Table::add_row(std::vector<std::string> cells) {
  TG_REQUIRE(cells.size() == headers_.size(),
             "row has " << cells.size() << " cells, table has "
                        << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_rule() {
  rows_.emplace_back();  // sentinel
  return *this;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_row = [&](std::ostringstream& os,
                            const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << "  ";
      const auto pad = widths[c] - cells[c].size();
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ');
      os << cells[c];
      if (aligns_[c] == Align::kLeft && c + 1 < cells.size())
        os << std::string(pad, ' ');
    }
    os << '\n';
  };

  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);

  std::ostringstream os;
  emit_row(os, headers_);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << std::string(total, '-') << '\n';
    } else {
      emit_row(os, row);
    }
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace tg
