// Aligned ASCII table rendering for experiment output.
//
// The bench binaries regenerate the paper's tables as terminal output; this
// printer keeps that output readable and diff-stable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tg {

enum class Align : std::uint8_t { kLeft, kRight };

/// Column-aligned table with a header row and optional title/rules.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Sets alignment per column; default is right for all but column 0.
  void set_align(std::size_t column, Align align);

  Table& add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next row.
  Table& add_rule();

  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

  /// Cell-formatting helpers.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string num(std::int64_t v);
  [[nodiscard]] static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

}  // namespace tg
