#include "workflow/dag.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace tg {

int Dag::add_task(DagTask task) {
  TG_REQUIRE(task.nodes >= 1, "task width must be >= 1");
  tasks_.push_back(std::move(task));
  return static_cast<int>(tasks_.size()) - 1;
}

void Dag::add_edge(int from, int to) {
  TG_REQUIRE(from >= 0 && from < static_cast<int>(tasks_.size()) &&
                 to >= 0 && to < static_cast<int>(tasks_.size()),
             "edge endpoints out of range");
  TG_REQUIRE(from != to, "self edge");
  edges_.push_back(DagEdge{from, to});
}

std::vector<int> Dag::children(int task) const {
  std::vector<int> out;
  for (const auto& e : edges_) {
    if (e.from == task) out.push_back(e.to);
  }
  return out;
}

std::vector<int> Dag::parents(int task) const {
  std::vector<int> out;
  for (const auto& e : edges_) {
    if (e.to == task) out.push_back(e.from);
  }
  return out;
}

std::vector<int> Dag::roots() const {
  std::vector<bool> has_parent(tasks_.size(), false);
  for (const auto& e : edges_) has_parent[static_cast<std::size_t>(e.to)] = true;
  std::vector<int> out;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!has_parent[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

void Dag::validate() const {
  std::vector<int> indegree(tasks_.size(), 0);
  for (const auto& e : edges_) ++indegree[static_cast<std::size_t>(e.to)];
  std::queue<int> q;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (indegree[i] == 0) q.push(static_cast<int>(i));
  }
  std::size_t seen = 0;
  while (!q.empty()) {
    const int t = q.front();
    q.pop();
    ++seen;
    for (int c : children(t)) {
      if (--indegree[static_cast<std::size_t>(c)] == 0) q.push(c);
    }
  }
  TG_REQUIRE(seen == tasks_.size(), "workflow DAG contains a cycle");
}

Dag make_chain(int length, DagTask prototype) {
  TG_REQUIRE(length >= 1, "chain length must be >= 1");
  Dag dag;
  int prev = -1;
  for (int i = 0; i < length; ++i) {
    const int t = dag.add_task(prototype);
    if (prev >= 0) dag.add_edge(prev, t);
    prev = t;
  }
  return dag;
}

Dag make_ensemble(int width, DagTask prototype) {
  TG_REQUIRE(width >= 1, "ensemble width must be >= 1");
  Dag dag;
  for (int i = 0; i < width; ++i) dag.add_task(prototype);
  return dag;
}

Dag make_fan_out_fan_in(int width, DagTask setup, DagTask member,
                        DagTask merge) {
  TG_REQUIRE(width >= 1, "fan width must be >= 1");
  Dag dag;
  const int s = dag.add_task(std::move(setup));
  std::vector<int> members;
  members.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const int m = dag.add_task(member);
    dag.add_edge(s, m);
    members.push_back(m);
  }
  const int g = dag.add_task(std::move(merge));
  for (int m : members) dag.add_edge(m, g);
  return dag;
}

Dag make_layered(int levels, int width, DagTask prototype) {
  TG_REQUIRE(levels >= 1 && width >= 1, "layered dims must be >= 1");
  Dag dag;
  std::vector<int> prev_level;
  for (int l = 0; l < levels; ++l) {
    std::vector<int> level;
    for (int w = 0; w < width; ++w) {
      const int t = dag.add_task(prototype);
      for (int p : prev_level) dag.add_edge(p, t);
      level.push_back(t);
    }
    prev_level = std::move(level);
  }
  return dag;
}

}  // namespace tg
