// Workflow DAGs: tasks with precedence edges and inter-task data volumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "des/time.hpp"
#include "util/ids.hpp"

namespace tg {

/// One task of a workflow. If `resource` is invalid the engine picks a
/// resource at submit time via its selector.
struct DagTask {
  int nodes = 1;
  Duration requested_walltime = kHour;
  Duration actual_runtime = 30 * kMinute;
  ResourceId resource;      ///< pinned placement (optional)
  double output_bytes = 0;  ///< data shipped along each outgoing edge
  bool fails = false;
  Duration fail_after = 0;
};

struct DagEdge {
  int from = 0;
  int to = 0;
};

class Dag {
 public:
  /// Adds a task, returning its index.
  int add_task(DagTask task);
  /// Adds a precedence edge from task `from` to task `to`.
  void add_edge(int from, int to);

  [[nodiscard]] const std::vector<DagTask>& tasks() const { return tasks_; }
  [[nodiscard]] const std::vector<DagEdge>& edges() const { return edges_; }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }

  /// Children / parents of a task.
  [[nodiscard]] std::vector<int> children(int task) const;
  [[nodiscard]] std::vector<int> parents(int task) const;
  /// Tasks with no parents.
  [[nodiscard]] std::vector<int> roots() const;
  /// Validates acyclicity (topological sort); throws on a cycle.
  void validate() const;

 private:
  std::vector<DagTask> tasks_;
  std::vector<DagEdge> edges_;
};

// ---- Template builders for the common TeraGrid workflow shapes ----

/// Sequential chain of `length` identical tasks.
[[nodiscard]] Dag make_chain(int length, DagTask prototype);

/// Independent bag of `width` identical tasks (parameter sweep / ensemble).
[[nodiscard]] Dag make_ensemble(int width, DagTask prototype);

/// Fan-out/fan-in: a setup task, `width` parallel tasks, a merge task
/// (e.g. EnKF-style ensemble with assimilation step).
[[nodiscard]] Dag make_fan_out_fan_in(int width, DagTask setup,
                                      DagTask member, DagTask merge);

/// Montage-style diamond of `levels` levels, each `width` wide, with
/// all-to-all edges between adjacent levels.
[[nodiscard]] Dag make_layered(int levels, int width, DagTask prototype);

}  // namespace tg
