#include "workflow/engine.hpp"

#include "util/error.hpp"

namespace tg {

WorkflowEngine::WorkflowEngine(Engine& engine, SchedulerPool& pool,
                               FlowManager* flows, int retry_limit)
    : engine_(engine), pool_(pool), flows_(flows), retry_limit_(retry_limit) {
  TG_REQUIRE(retry_limit >= 0, "retry limit must be non-negative");
  pool_.add_on_end_all([this](const Job& job) { on_job_end(job); });
}

WorkflowId WorkflowEngine::submit(Dag dag, UserId user, ProjectId project,
                                  DoneCallback done) {
  dag.validate();
  TG_REQUIRE(dag.size() > 0, "empty workflow");
  const WorkflowId id{next_id_++};

  Instance inst;
  inst.result.id = id;
  inst.result.user = user;
  inst.result.submit_time = engine_.now();
  inst.result.tasks = static_cast<int>(dag.size());
  inst.project = project;
  inst.missing_parents.assign(dag.size(), 0);
  inst.pending_transfers.assign(dag.size(), 0);
  inst.placement.assign(dag.size(), ResourceId{});
  inst.attempts.assign(dag.size(), 0);
  inst.remaining = static_cast<int>(dag.size());
  inst.done = std::move(done);
  for (const DagEdge& e : dag.edges()) {
    ++inst.missing_parents[static_cast<std::size_t>(e.to)];
  }
  inst.dag = std::move(dag);

  const auto roots = inst.dag.roots();
  instances_.emplace(id, std::move(inst));
  for (int r : roots) ready_task(id, r);
  return id;
}

void WorkflowEngine::ready_task(WorkflowId wf, int task) {
  Instance& inst = instances_.at(wf);
  const DagTask& t = inst.dag.tasks()[static_cast<std::size_t>(task)];

  // Placement: pinned, or earliest-estimated-start selection.
  ResourceId target = t.resource;
  if (!target.valid()) {
    target = selector_.select(pool_, t.nodes, t.requested_walltime);
  }
  inst.placement[static_cast<std::size_t>(task)] = target;

  // Ship inter-site inputs before launch.
  if (flows_ != nullptr) {
    const SiteId dst_site =
        pool_.platform().compute_at(target).site;
    for (int p : inst.dag.parents(task)) {
      const DagTask& pt = inst.dag.tasks()[static_cast<std::size_t>(p)];
      if (pt.output_bytes <= 0) continue;
      const ResourceId psrc = inst.placement[static_cast<std::size_t>(p)];
      TG_CHECK(psrc.valid(), "parent finished without a placement");
      const SiteId src_site = pool_.platform().compute_at(psrc).site;
      if (src_site == dst_site) continue;
      ++inst.pending_transfers[static_cast<std::size_t>(task)];
      inst.result.bytes_moved += pt.output_bytes;
      flows_->start_transfer(
          src_site, dst_site, pt.output_bytes, inst.result.user, inst.project,
          [this, wf, task](const Flow&) {
            Instance& in = instances_.at(wf);
            if (--in.pending_transfers[static_cast<std::size_t>(task)] == 0) {
              launch_task(wf, task);
            }
          });
    }
  }
  if (inst.pending_transfers[static_cast<std::size_t>(task)] == 0) {
    launch_task(wf, task);
  }
}

void WorkflowEngine::launch_task(WorkflowId wf, int task) {
  Instance& inst = instances_.at(wf);
  const DagTask& t = inst.dag.tasks()[static_cast<std::size_t>(task)];
  const ResourceId target = inst.placement[static_cast<std::size_t>(task)];
  ++inst.attempts[static_cast<std::size_t>(task)];

  JobRequest req;
  req.user = inst.result.user;
  req.project = inst.project;
  req.nodes = t.nodes;
  req.requested_walltime = t.requested_walltime;
  req.actual_runtime = t.actual_runtime;
  // Failure injection applies to the first attempt only; retries succeed,
  // modelling transient grid failures.
  if (t.fails && inst.attempts[static_cast<std::size_t>(task)] == 1) {
    req.fails = true;
    req.fail_after = t.fail_after;
  }
  req.workflow = wf;
  const JobId jid = pool_.at(target).submit(std::move(req));
  job_task_.emplace(jid, std::make_pair(wf, task));
}

void WorkflowEngine::on_job_end(const Job& job) {
  const auto it = job_task_.find(job.id);
  if (it == job_task_.end()) return;  // not a workflow job
  // An outage-requeued attempt is not the end of the job: the scheduler
  // will run it again under the same JobId, so keep the mapping and hold
  // the task's children until a terminal state arrives.
  if (job.state == JobState::kRequeued) return;
  const auto [wf, task] = it->second;
  job_task_.erase(it);

  Instance& inst = instances_.at(wf);
  if (job.state == JobState::kCompleted) {
    task_done(wf, task);
    return;
  }
  // Failed or killed: retry, else abandon.
  ++inst.result.failures;
  if (inst.attempts[static_cast<std::size_t>(task)] <= retry_limit_) {
    if (job.state == JobState::kKilledByOutage) {
      // The placement's machine is degraded; reselect (unless the task is
      // pinned) instead of resubmitting into the outage.
      const DagTask& t = inst.dag.tasks()[static_cast<std::size_t>(task)];
      if (!t.resource.valid()) {
        inst.placement[static_cast<std::size_t>(task)] =
            selector_.select(pool_, t.nodes, t.requested_walltime);
      }
    }
    launch_task(wf, task);
    return;
  }
  ++inst.result.abandoned;
  task_done(wf, task);  // release dependents so the workflow terminates
}

void WorkflowEngine::task_done(WorkflowId wf, int task) {
  Instance& inst = instances_.at(wf);
  --inst.remaining;
  for (int c : inst.dag.children(task)) {
    if (--inst.missing_parents[static_cast<std::size_t>(c)] == 0) {
      ready_task(wf, c);
    }
  }
  finish_if_done(wf);
}

void WorkflowEngine::finish_if_done(WorkflowId wf) {
  auto it = instances_.find(wf);
  if (it == instances_.end() || it->second.remaining > 0) return;
  Instance inst = std::move(it->second);
  instances_.erase(it);
  inst.result.end_time = engine_.now();
  completed_.push_back(inst.result);
  if (inst.done) inst.done(inst.result);
}

}  // namespace tg
