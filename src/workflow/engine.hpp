// The workflow/ensemble execution engine (DAGMan/Pegasus analogue).
//
// Executes Dags over the scheduler pool: tasks whose parents have finished
// are placed (pinned resource, or earliest-start selection), inter-site
// data dependencies are shipped over the WAN first, and failed tasks are
// retried a configurable number of times. Every job it submits carries the
// workflow tag that accounting records and the modality classifier use.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "des/engine.hpp"
#include "meta/selector.hpp"
#include "net/flow.hpp"
#include "sched/pool.hpp"
#include "workflow/dag.hpp"

namespace tg {

struct WorkflowResult {
  WorkflowId id;
  UserId user;
  SimTime submit_time = 0;
  SimTime end_time = 0;
  int tasks = 0;
  int failures = 0;      ///< task failures observed (before retries)
  int abandoned = 0;     ///< tasks given up after exhausting retries
  double bytes_moved = 0.0;

  [[nodiscard]] Duration makespan() const { return end_time - submit_time; }
  [[nodiscard]] bool success() const { return abandoned == 0; }
};

class WorkflowEngine {
 public:
  using DoneCallback = std::function<void(const WorkflowResult&)>;

  /// `flows` may be null: inter-site data then moves instantaneously
  /// (useful for scheduler-only studies).
  WorkflowEngine(Engine& engine, SchedulerPool& pool,
                 FlowManager* flows = nullptr, int retry_limit = 1);

  /// Starts executing `dag` on behalf of (user, project). `done` fires when
  /// every task has completed or been abandoned.
  WorkflowId submit(Dag dag, UserId user, ProjectId project,
                    DoneCallback done = nullptr);

  [[nodiscard]] std::size_t active() const { return instances_.size(); }
  [[nodiscard]] const std::vector<WorkflowResult>& completed() const {
    return completed_;
  }

 private:
  struct Instance {
    WorkflowResult result;
    Dag dag;
    ProjectId project;
    std::vector<int> missing_parents;   ///< per task
    std::vector<int> pending_transfers; ///< per task, in-flight inputs
    std::vector<ResourceId> placement;  ///< per task, once launched
    std::vector<int> attempts;          ///< per task
    int remaining = 0;                  ///< tasks not yet done/abandoned
    DoneCallback done;
  };

  void ready_task(WorkflowId wf, int task);
  void launch_task(WorkflowId wf, int task);
  void on_job_end(const Job& job);
  void task_done(WorkflowId wf, int task);
  void finish_if_done(WorkflowId wf);

  Engine& engine_;
  SchedulerPool& pool_;
  FlowManager* flows_;
  ResourceSelector selector_;
  int retry_limit_;
  std::map<WorkflowId, Instance> instances_;
  std::map<JobId, std::pair<WorkflowId, int>> job_task_;
  std::vector<WorkflowResult> completed_;
  WorkflowId::rep next_id_ = 0;
};

}  // namespace tg
