#include "workload/archetype_registry.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tg {

ArchetypeSpec ArchetypeSpec::data_intensive(std::string name, int count,
                                            DataAccessSpec data) {
  data.enabled = true;
  CapacityParams behavior;
  behavior.campaigns_per_week = 2.0;
  behavior.jobs_per_campaign_min = 1;
  behavior.jobs_per_campaign_max = 4;
  behavior.cores_min = 8;
  behavior.cores_max = 64;
  behavior.runtime_mean_hours = 1.0;
  behavior.runtime_cv = 1.0;
  behavior.fail_prob = 0.03;
  behavior.kill_prob = 0.03;
  ArchetypeSpec spec;
  spec.name = std::move(name);
  spec.truth = Modality::kDataCentric;
  spec.count = count;
  spec.per_week = behavior.campaigns_per_week;
  spec.preferred_count = 2;
  spec.prefer_viz = false;
  spec.min_nodes = 1;
  spec.behavior = behavior;
  spec.data = data;
  return spec;
}

ArchetypeRegistry& ArchetypeRegistry::add(ArchetypeSpec spec) {
  TG_REQUIRE(!spec.name.empty(), "archetype spec needs a name");
  TG_REQUIRE(spec.count >= 0, "archetype count must be non-negative");
  const std::size_t i = index_of(spec.name);
  if (i < specs_.size()) {
    specs_[i] = std::move(spec);
  } else {
    specs_.push_back(std::move(spec));
  }
  return *this;
}

std::size_t ArchetypeRegistry::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  return specs_.size();
}

const ArchetypeSpec* ArchetypeRegistry::find(std::string_view name) const {
  const std::size_t i = index_of(name);
  return i < specs_.size() ? &specs_[i] : nullptr;
}

ArchetypeRegistry& ArchetypeRegistry::set_count(std::string_view name,
                                                int count) {
  const std::size_t i = index_of(name);
  TG_REQUIRE(i < specs_.size(), "unknown archetype '" << name << "'");
  specs_[i].count = count;
  return *this;
}

ArchetypeRegistry& ArchetypeRegistry::set_rate(std::string_view name,
                                               double per_week) {
  const std::size_t i = index_of(name);
  TG_REQUIRE(i < specs_.size(), "unknown archetype '" << name << "'");
  specs_[i].per_week = per_week;
  return *this;
}

int ArchetypeRegistry::account_users() const {
  int total = 0;
  for (const ArchetypeSpec& s : specs_) {
    if (!s.is_gateway()) total += s.count;
  }
  return total;
}

void ArchetypeRegistry::scale(double factor) {
  TG_REQUIRE(factor > 0.0, "scale factor must be positive, got " << factor);
  for (ArchetypeSpec& s : specs_) {
    if (s.count > 0) {
      s.count = std::max(1, static_cast<int>(std::lround(s.count * factor)));
    }
  }
}

ArchetypeRegistry ArchetypeRegistry::builtin(const ArchetypeParams& params,
                                             const PopulationMix& mix) {
  // Spec order IS the population RNG draw order: it must match the retired
  // hand-written loops (accounts first, the gateway spec last).
  ArchetypeRegistry reg;
  {
    ArchetypeSpec s;
    s.name = "capacity";
    s.truth = Modality::kCapacityBatch;
    s.count = mix.capacity_users;
    s.per_week = params.capacity.campaigns_per_week;
    s.preferred_count = 2;
    s.behavior = params.capacity;
    reg.add(std::move(s));
  }
  {
    ArchetypeSpec s;
    s.name = "capability";
    s.truth = Modality::kCapabilityBatch;
    s.count = mix.capability_users;
    s.per_week = params.capability.campaigns_per_week;
    s.preferred_count = 1;
    s.min_nodes = 256;  // capability users need genuinely large machines
    s.behavior = params.capability;
    reg.add(std::move(s));
  }
  {
    ArchetypeSpec s;
    s.name = "workflow";
    s.truth = Modality::kWorkflowEnsemble;
    s.count = mix.workflow_users;
    s.per_week = params.workflow.campaigns_per_week;
    s.preferred_count = 2;
    s.behavior = params.workflow;
    reg.add(std::move(s));
  }
  {
    ArchetypeSpec s;
    s.name = "coupled";
    s.truth = Modality::kTightlyCoupled;
    s.count = mix.coupled_users;
    s.per_week = params.coupled.campaigns_per_week;
    s.preferred_count = 2;
    s.min_nodes = 64;
    s.behavior = params.coupled;
    reg.add(std::move(s));
  }
  {
    ArchetypeSpec s;
    s.name = "viz";
    s.truth = Modality::kRemoteInteractive;
    s.count = mix.viz_users;
    s.per_week = params.viz.sessions_per_week;
    s.preferred_count = 1;
    s.prefer_viz = true;
    s.behavior = params.viz;
    reg.add(std::move(s));
  }
  {
    ArchetypeSpec s;
    s.name = "data";
    s.truth = Modality::kDataCentric;
    s.count = mix.data_users;
    s.per_week = params.data.transfers_per_week;
    s.preferred_count = 1;
    s.behavior = params.data;
    reg.add(std::move(s));
  }
  {
    ArchetypeSpec s;
    s.name = "exploratory";
    s.truth = Modality::kExploratory;
    s.count = mix.exploratory_users;
    s.per_week = params.exploratory.bursts_per_week;
    s.preferred_count = 1;
    s.behavior = params.exploratory;
    reg.add(std::move(s));
  }
  {
    ArchetypeSpec s;
    s.name = "gateway";
    s.truth = Modality::kGateway;
    s.count = mix.gateway_end_users;
    s.per_week = params.gateway.sessions_per_week;
    s.preferred_count = 3;  // community-account targets
    s.min_nodes = 96;
    s.behavior = params.gateway;
    reg.add(std::move(s));
  }
  return reg;
}

}  // namespace tg
