// The composable archetype registry.
//
// An ArchetypeSpec names one behavioural archetype and composes it from
// orthogonal traits:
//   * population  — how many synthetic actors exist (`count`),
//   * arrival     — the open-loop Poisson rate (`per_week`),
//   * preference  — how preferred resources are picked (count / viz /
//                   minimum machine size),
//   * behavior    — the campaign body's parameter struct (a variant over
//                   the per-modality parameter sets of archetypes.hpp),
//   * data        — the optional DataAccessSpec (data/access_profile.hpp),
//   * truth       — the ground-truth modality label.
//
// The ArchetypeRegistry is an ordered collection of specs. Order matters:
// population synthesis consumes its RNG substreams spec by spec, so the
// canonical builtin() order reproduces the legacy enum-and-switch
// generator byte for byte (the compat shim every existing experiment rides
// on), while appended specs draw strictly after the builtins and therefore
// never perturb them.
//
// A genuinely new modality is now a new *combination* instead of a new
// enum value and switch arm — e.g. the data-intensive archetype is just
// capacity-batch behavior plus an enabled DataAccessSpec and a
// kDataCentric truth label (see data_intensive()).
#pragma once

#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/modality.hpp"
#include "data/access_profile.hpp"
#include "workload/archetypes.hpp"

namespace tg {

/// The campaign-body parameter set. Which alternative is held selects the
/// generator's campaign shape; the values inside tune it.
using ArchetypeBehavior =
    std::variant<CapacityParams, CapabilityParams, WorkflowParams,
                 CoupledParams, VizParams, DataParams, ExploratoryParams,
                 GatewayUserParams>;

struct ArchetypeSpec {
  /// Registry key; also the account/project name prefix ("capacity-17").
  std::string name;
  /// Ground-truth label for every user of this archetype.
  Modality truth = Modality::kCapacityBatch;
  /// Synthetic actors to create (gateway specs count end-user labels).
  int count = 0;
  /// Campaign/session arrivals per week (scaled per user).
  double per_week = 0.0;
  // Preference trait: arguments to population pick_preferred().
  int preferred_count = 1;
  bool prefer_viz = false;
  int min_nodes = 1;
  ArchetypeBehavior behavior;
  /// Orthogonal data-access trait; disabled specs draw nothing.
  DataAccessSpec data;

  ArchetypeSpec& with_truth(Modality m) {
    truth = m;
    return *this;
  }
  ArchetypeSpec& with_count(int n) {
    count = n;
    return *this;
  }
  ArchetypeSpec& with_rate(double campaigns_per_week) {
    per_week = campaigns_per_week;
    return *this;
  }
  ArchetypeSpec& with_preference(int count_, bool viz, int min_nodes_) {
    preferred_count = count_;
    prefer_viz = viz;
    min_nodes = min_nodes_;
    return *this;
  }
  ArchetypeSpec& with_behavior(ArchetypeBehavior b) {
    behavior = std::move(b);
    return *this;
  }
  ArchetypeSpec& with_data(DataAccessSpec d) {
    d.enabled = true;
    data = d;
    return *this;
  }

  [[nodiscard]] bool is_gateway() const {
    return std::holds_alternative<GatewayUserParams>(behavior);
  }

  /// The new data-intensive archetype: capacity-batch campaign shape, an
  /// enabled DataAccessSpec, kDataCentric ground truth. Tuned so stage-in
  /// dominates the jobs' footprint (few small-core jobs over large
  /// Zipf-skewed inputs).
  [[nodiscard]] static ArchetypeSpec data_intensive(
      std::string name = "dataintensive", int count = 40,
      DataAccessSpec data = DataAccessSpec::enabled_defaults());
};

class ArchetypeRegistry {
 public:
  ArchetypeRegistry() = default;

  /// Adds a spec. A spec with an existing name replaces it *in place*
  /// (keeping its position and therefore the population RNG draw order);
  /// new names append.
  ArchetypeRegistry& add(ArchetypeSpec spec);

  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] const std::vector<ArchetypeSpec>& specs() const {
    return specs_;
  }
  [[nodiscard]] const ArchetypeSpec& at(std::size_t i) const {
    return specs_[i];
  }
  /// Index of `name`; size() when absent.
  [[nodiscard]] std::size_t index_of(std::string_view name) const;
  [[nodiscard]] const ArchetypeSpec* find(std::string_view name) const;

  /// Overrides one spec's population count (chainable test/experiment
  /// convenience). Requires the name to exist.
  ArchetypeRegistry& set_count(std::string_view name, int count);
  /// Overrides one spec's arrival rate. Requires the name to exist.
  ArchetypeRegistry& set_rate(std::string_view name, double per_week);

  /// Sum of non-gateway spec counts (the account-user population).
  [[nodiscard]] int account_users() const;

  /// Multiplies every positive count by `factor` (rounded, floor 1) — the
  /// registry side of ScenarioConfig::with_scale.
  void scale(double factor);

  /// The canonical eight builtin specs in the legacy population order
  /// (capacity, capability, workflow, coupled, viz, data, exploratory,
  /// gateway), with counts from `mix` and rates/behavior from `params`.
  /// Drives the population and generator byte-identically to the retired
  /// enum-and-switch path.
  [[nodiscard]] static ArchetypeRegistry builtin(
      const ArchetypeParams& params = {}, const PopulationMix& mix = {});

 private:
  std::vector<ArchetypeSpec> specs_;
};

}  // namespace tg
