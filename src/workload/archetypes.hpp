// Behavioural archetypes: the per-modality parameter sets that drive the
// synthetic population. Defaults are calibrated to the published shape of
// 2010 TeraGrid usage (job mix, widths, runtimes) at the platform's reduced
// scale; every experiment can override them.
#pragma once

#include "core/modality.hpp"
#include "des/time.hpp"

namespace tg {

/// Capacity batch users: the bread-and-butter modality.
struct CapacityParams {
  double campaigns_per_week = 0.8;
  int jobs_per_campaign_min = 1;
  int jobs_per_campaign_max = 8;
  int cores_min = 8;
  int cores_max = 512;
  double pow2_prob = 0.6;  ///< snap widths to powers of two
  double runtime_mean_hours = 4.0;
  double runtime_cv = 1.4;
  Duration think_mean = kHour;  ///< gap between jobs in a campaign
  double fail_prob = 0.03;
  double kill_prob = 0.04;  ///< under-requested walltime
};

/// Capability users: hero runs at half a machine and above.
struct CapabilityParams {
  double campaigns_per_week = 0.15;
  double machine_fraction_min = 0.5;
  double machine_fraction_max = 1.0;
  double runtime_mean_hours = 8.0;
  double runtime_cv = 0.8;
  double fail_prob = 0.05;
  double kill_prob = 0.05;
};

/// Gateway end users: portal sessions that fan small jobs through a
/// community account. These users are *labels*, not TeraGrid accounts.
struct GatewayUserParams {
  double sessions_per_week = 0.6;
  int jobs_per_session_min = 1;
  int jobs_per_session_max = 10;
  int nodes_min = 1;
  int nodes_max = 2;
  double runtime_mean_hours = 0.4;
  double runtime_cv = 1.0;
  double fail_prob = 0.05;
};

/// Workflow/ensemble users.
struct WorkflowParams {
  double campaigns_per_week = 0.3;
  int width_min = 10;
  int width_max = 120;
  int member_nodes_min = 1;
  int member_nodes_max = 4;
  double member_runtime_mean_hours = 1.0;
  double member_runtime_cv = 0.8;
  /// Probability a campaign uses the (tagged) workflow engine; otherwise
  /// the user scripts a manual burst with no tags.
  double engine_prob = 0.5;
  /// Probability an engine campaign is a fan-out/fan-in DAG (vs flat
  /// ensemble); fan DAGs ship data between stages.
  double fan_prob = 0.3;
  double stage_output_gb = 5.0;
  double fail_prob = 0.04;
};

/// Tightly-coupled distributed users (co-allocated multi-site MPI).
struct CoupledParams {
  double campaigns_per_week = 0.2;
  int sites = 2;
  int nodes_per_site_min = 8;
  int nodes_per_site_max = 32;
  double runtime_mean_hours = 4.0;
  double runtime_cv = 0.5;
};

/// Remote interactive / visualization users.
struct VizParams {
  double sessions_per_week = 0.7;
  double session_hours_min = 1.0;
  double session_hours_max = 4.0;
  int nodes_min = 1;
  int nodes_max = 4;
  /// Probability a session is preceded by a small batch pre-processing job.
  double prejob_prob = 0.3;
};

/// Data-centric users: movers and archivers.
struct DataParams {
  double transfers_per_week = 2.5;
  double bytes_alpha = 1.2;  ///< bounded-Pareto tail
  double bytes_min = 1e10;   ///< 10 GB
  double bytes_max = 2e13;   ///< 20 TB
  /// Probability a transfer is followed by a small analysis job.
  double analysis_prob = 0.25;
};

/// Exploratory / porting users.
struct ExploratoryParams {
  double bursts_per_week = 0.5;
  int jobs_per_burst_min = 1;
  int jobs_per_burst_max = 5;
  double runtime_mean_hours = 0.15;
  double runtime_cv = 1.0;
  double fail_prob = 0.30;
};

struct ArchetypeParams {
  CapacityParams capacity;
  CapabilityParams capability;
  GatewayUserParams gateway;
  WorkflowParams workflow;
  CoupledParams coupled;
  VizParams viz;
  DataParams data;
  ExploratoryParams exploratory;
};

/// How many synthetic actors of each kind to generate. Gateway entries are
/// end-user labels (spread across the configured gateways), not accounts.
struct PopulationMix {
  int capacity_users = 300;
  int capability_users = 30;
  int gateway_end_users = 240;
  int workflow_users = 100;
  int coupled_users = 16;
  int viz_users = 40;
  int data_users = 40;
  int exploratory_users = 140;

  [[nodiscard]] int account_users() const {
    return capacity_users + capability_users + workflow_users +
           coupled_users + viz_users + data_users + exploratory_users;
  }
};

}  // namespace tg
