#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <variant>

#include "util/distributions.hpp"
#include "util/error.hpp"

namespace tg {

namespace {

/// Exponential inter-arrival gap for a weekly rate scaled per user.
Duration arrival_gap(double per_week, double scale, Rng& rng) {
  const double rate = std::max(1e-9, per_week * scale);
  const Exponential exp_gap(rate / static_cast<double>(kWeek));
  const double gap = exp_gap.sample(rng);
  return std::max<Duration>(kSecond, static_cast<Duration>(gap));
}

Duration lognormal_runtime(double mean_hours, double cv, Rng& rng) {
  const LogNormal dist = LogNormal::from_mean_cv(mean_hours, cv);
  const double hours = dist.sample(rng);
  return std::max<Duration>(kMinute,
                            static_cast<Duration>(hours * kHour));
}

int cores_to_nodes(const ComputeResource& res, int cores) {
  const int nodes =
      (cores + res.cores_per_node - 1) / res.cores_per_node;
  return std::clamp(nodes, 1, res.nodes);
}

}  // namespace

TrafficGenerator::TrafficGenerator(
    Engine& engine, const Platform& platform, SchedulerPool& pool,
    FlowManager* flows, WorkflowEngine& workflows, CoAllocator& coalloc,
    std::vector<std::unique_ptr<Gateway>>& gateways, Recorder& recorder,
    const Population& population, DataGrid* data_grid, Duration horizon,
    Rng rng)
    : engine_(engine),
      platform_(platform),
      pool_(pool),
      flows_(flows),
      workflows_(workflows),
      coalloc_(coalloc),
      gateways_(gateways),
      recorder_(recorder),
      population_(population),
      data_grid_(data_grid),
      horizon_(horizon) {
  TG_REQUIRE(horizon > 0, "horizon must be positive");
  for (const ArchetypeSpec& spec : population.registry.specs()) {
    if (spec.is_gateway()) {
      gateway_params_ = std::get<GatewayUserParams>(spec.behavior);
      gateway_per_week_ = spec.per_week;
      break;
    }
  }
  user_rngs_.reserve(population.users.size());
  for (std::size_t i = 0; i < population.users.size(); ++i) {
    user_rngs_.push_back(rng.fork(0x10000 + i));
  }
  end_user_rngs_.reserve(population.gateway_end_users.size());
  for (std::size_t i = 0; i < population.gateway_end_users.size(); ++i) {
    end_user_rngs_.push_back(rng.fork(0x800000 + i));
  }
}

Rng& TrafficGenerator::user_rng(std::size_t user_idx) {
  return user_rngs_[user_idx];
}

Rng& TrafficGenerator::end_user_rng(std::size_t idx) {
  return end_user_rngs_[idx];
}

ProjectId TrafficGenerator::project_of(UserId user) const {
  return population_.community.user(user).project;
}

void TrafficGenerator::start() {
  for (std::size_t i = 0; i < population_.users.size(); ++i) {
    const SimTime from =
        std::max(population_.users[i].active_from, engine_.now());
    if (from >= horizon_) continue;
    if (from > engine_.now()) {
      engine_.schedule_at(from, [this, i] { schedule_account_arrival(i); },
                          EventPriority::kSubmission);
    } else {
      schedule_account_arrival(i);
    }
  }
  for (std::size_t i = 0; i < population_.gateway_end_users.size(); ++i) {
    const SimTime from =
        std::max(population_.gateway_end_users[i].active_from, engine_.now());
    if (from >= horizon_) continue;
    if (from > engine_.now()) {
      engine_.schedule_at(from, [this, i] { schedule_gateway_arrival(i); },
                          EventPriority::kSubmission);
    } else {
      schedule_gateway_arrival(i);
    }
  }
}

void TrafficGenerator::schedule_account_arrival(std::size_t user_idx) {
  const SyntheticUser& user = population_.users[user_idx];
  const ArchetypeSpec& spec = population_.registry.at(user.archetype);
  TG_CHECK(!spec.is_gateway(), "community accounts do not self-generate");
  Rng& rng = user_rng(user_idx);
  const Duration gap = arrival_gap(spec.per_week, user.activity_scale, rng);
  const SimTime at = engine_.now() + gap;
  if (at >= horizon_) return;
  engine_.schedule_at(at, [this, user_idx] { run_account_campaign(user_idx); },
                      EventPriority::kSubmission);
}

void TrafficGenerator::run_account_campaign(std::size_t user_idx) {
  const SyntheticUser& user = population_.users[user_idx];
  const ArchetypeSpec& spec = population_.registry.at(user.archetype);
  Rng& rng = user_rng(user_idx);
  ++campaigns_[static_cast<std::size_t>(spec.truth)];
  std::visit(
      [&](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, CapacityParams>) {
          campaign_capacity(user, spec, p, rng);
        } else if constexpr (std::is_same_v<T, CapabilityParams>) {
          campaign_capability(user, spec, p, rng);
        } else if constexpr (std::is_same_v<T, WorkflowParams>) {
          campaign_workflow(user, p, rng);
        } else if constexpr (std::is_same_v<T, CoupledParams>) {
          campaign_coupled(user, p, rng);
        } else if constexpr (std::is_same_v<T, VizParams>) {
          campaign_viz(user, p, rng);
        } else if constexpr (std::is_same_v<T, DataParams>) {
          campaign_data(user, p, rng);
        } else if constexpr (std::is_same_v<T, ExploratoryParams>) {
          campaign_exploratory(user, spec, p, rng);
        } else {
          TG_CHECK(false, "community accounts do not self-generate");
        }
      },
      spec.behavior);
  schedule_account_arrival(user_idx);
}

JobRequest TrafficGenerator::make_request(const SyntheticUser& user,
                                          ResourceId resource, int cores,
                                          Duration actual, double fail_prob,
                                          double kill_prob, Rng& rng) const {
  const ComputeResource& res = platform_.compute_at(resource);
  JobRequest req;
  req.user = user.id;
  req.project = project_of(user.id);
  req.nodes = cores_to_nodes(res, cores);
  actual = std::clamp<Duration>(actual, kMinute, res.max_walltime);
  req.actual_runtime = actual;
  if (rng.bernoulli(kill_prob)) {
    // Under-requested walltime: the scheduler will kill this job.
    req.requested_walltime = std::max<Duration>(
        10 * kMinute,
        static_cast<Duration>(static_cast<double>(actual) *
                              rng.uniform(0.5, 0.95)));
  } else {
    req.requested_walltime = std::min<Duration>(
        res.max_walltime,
        static_cast<Duration>(static_cast<double>(actual) *
                              rng.uniform(1.2, 3.0)));
  }
  if (rng.bernoulli(fail_prob)) {
    req.fails = true;
    req.fail_after = static_cast<Duration>(static_cast<double>(actual) *
                                           rng.uniform(0.01, 0.5));
  }
  return req;
}

void TrafficGenerator::submit_later(Duration delay, ResourceId resource,
                                    JobRequest request) {
  const SimTime at = engine_.now() + delay;
  if (at >= horizon_) return;
  engine_.schedule_at(
      at,
      [this, resource, request = std::move(request)]() mutable {
        pool_.at(resource).submit(std::move(request));
      },
      EventPriority::kSubmission);
}

void TrafficGenerator::dispatch_job(const ArchetypeSpec& spec,
                                    const SyntheticUser& user, Duration delay,
                                    ResourceId resource, JobRequest request,
                                    Rng& rng) {
  if (data_grid_ == nullptr || !spec.data.enabled ||
      !data_grid_->has_pool(user.archetype)) {
    submit_later(delay, resource, std::move(request));
    return;
  }
  DataAccessProfile profile = data_grid_->draw_profile(user.archetype, rng);
  const SimTime at = engine_.now() + delay;
  if (at >= horizon_) return;
  engine_.schedule_at(
      at,
      [this, resource, request = std::move(request),
       profile = std::move(profile)]() mutable {
        data_grid_->stage_in(
            resource, request.user, request.project, std::move(profile),
            [this, resource,
             request = std::move(request)](const StageInResult& r) mutable {
              request.bytes_read = r.bytes_read;
              request.bytes_from_cache = r.bytes_from_cache;
              request.stage_in = r.stage_in;
              pool_.at(resource).submit(std::move(request));
            });
      },
      EventPriority::kSubmission);
}

void TrafficGenerator::campaign_capacity(const SyntheticUser& user,
                                         const ArchetypeSpec& spec,
                                         const CapacityParams& p, Rng& rng) {
  const int njobs = static_cast<int>(
      rng.uniform_int(p.jobs_per_campaign_min, p.jobs_per_campaign_max));
  const Exponential think(1.0 / static_cast<double>(p.think_mean));
  Duration offset = 0;
  for (int j = 0; j < njobs; ++j) {
    const ResourceId target =
        user.preferred[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(user.preferred.size()) - 1))];
    const LogUniformInt cores_dist(p.cores_min, p.cores_max);
    const std::int64_t cores =
        snap_to_power_of_two(cores_dist.sample(rng), p.pow2_prob, rng);
    const Duration actual =
        lognormal_runtime(p.runtime_mean_hours, p.runtime_cv, rng);
    dispatch_job(spec, user, offset, target,
                 make_request(user, target, static_cast<int>(cores), actual,
                              p.fail_prob, p.kill_prob, rng),
                 rng);
    offset += static_cast<Duration>(think.sample(rng));
  }
}

void TrafficGenerator::campaign_capability(const SyntheticUser& user,
                                           const ArchetypeSpec& spec,
                                           const CapabilityParams& p,
                                           Rng& rng) {
  const ResourceId target = user.preferred.front();
  const ComputeResource& res = platform_.compute_at(target);
  const double frac =
      rng.uniform(p.machine_fraction_min, p.machine_fraction_max);
  const int cores = std::max(1, static_cast<int>(frac * res.total_cores()));
  const Duration actual =
      lognormal_runtime(p.runtime_mean_hours, p.runtime_cv, rng);
  dispatch_job(spec, user, 0, target,
               make_request(user, target, cores, actual, p.fail_prob,
                            p.kill_prob, rng),
               rng);
}

void TrafficGenerator::campaign_workflow(const SyntheticUser& user,
                                         const WorkflowParams& p, Rng& rng) {
  const LogUniformInt width_dist(p.width_min, p.width_max);
  const int width = static_cast<int>(width_dist.sample(rng));
  const int member_nodes = static_cast<int>(
      rng.uniform_int(p.member_nodes_min, p.member_nodes_max));
  const Duration member_runtime = lognormal_runtime(
      p.member_runtime_mean_hours, p.member_runtime_cv, rng);

  if (rng.bernoulli(p.engine_prob)) {
    // Tagged: through the workflow engine.
    DagTask member;
    member.nodes = member_nodes;
    member.actual_runtime = member_runtime;
    member.requested_walltime = std::min<Duration>(
        48 * kHour, static_cast<Duration>(
                        static_cast<double>(member_runtime) * 2.0));
    member.fails = rng.bernoulli(p.fail_prob);
    member.fail_after = member_runtime / 4;
    Dag dag;
    if (rng.bernoulli(p.fan_prob)) {
      DagTask stage = member;
      stage.output_bytes = p.stage_output_gb * 1e9;
      DagTask merge = member;
      merge.nodes = 1;
      dag = make_fan_out_fan_in(width, stage, member, merge);
    } else {
      dag = make_ensemble(width, member);
    }
    workflows_.submit(std::move(dag), user.id, project_of(user.id));
  } else {
    // Untagged manual sweep: identical geometry submitted in a burst to
    // one machine; only burst clustering can identify it.
    const ResourceId target = user.preferred.front();
    const ComputeResource& res = platform_.compute_at(target);
    JobRequest proto;
    proto.user = user.id;
    proto.project = project_of(user.id);
    proto.nodes = std::clamp(member_nodes, 1, res.nodes);
    proto.requested_walltime = std::min<Duration>(
        res.max_walltime, static_cast<Duration>(
                              static_cast<double>(member_runtime) * 2.0));
    const Exponential gap(1.0 / static_cast<double>(kMinute));
    Duration offset = 0;
    for (int j = 0; j < width; ++j) {
      JobRequest req = proto;
      // Actual runtimes vary a little; geometry stays identical.
      req.actual_runtime = std::max<Duration>(
          kMinute, static_cast<Duration>(static_cast<double>(member_runtime) *
                                         rng.uniform(0.8, 1.2)));
      req.fails = rng.bernoulli(p.fail_prob);
      req.fail_after = req.actual_runtime / 4;
      submit_later(offset, target, std::move(req));
      offset += static_cast<Duration>(gap.sample(rng));
    }
  }
}

void TrafficGenerator::campaign_coupled(const SyntheticUser& user,
                                        const CoupledParams& p, Rng& rng) {
  CoAllocRequest req;
  req.user = user.id;
  req.project = project_of(user.id);
  const Duration actual =
      lognormal_runtime(p.runtime_mean_hours, p.runtime_cv, rng);
  req.actual_runtime = actual;
  req.walltime = static_cast<Duration>(static_cast<double>(actual) * 1.5);
  const int sites =
      std::min<int>(p.sites, static_cast<int>(user.preferred.size()));
  for (int s = 0; s < sites; ++s) {
    CoAllocMember m;
    m.resource = user.preferred[static_cast<std::size_t>(s)];
    m.nodes = static_cast<int>(
        rng.uniform_int(p.nodes_per_site_min, p.nodes_per_site_max));
    m.nodes = std::min(m.nodes, platform_.compute_at(m.resource).nodes);
    req.members.push_back(m);
  }
  // Walltime must respect every member machine's limit.
  for (const CoAllocMember& m : req.members) {
    req.walltime =
        std::min(req.walltime, platform_.compute_at(m.resource).max_walltime);
  }
  req.actual_runtime = std::min(req.actual_runtime, req.walltime);
  coalloc_.co_allocate(req);
}

void TrafficGenerator::campaign_viz(const SyntheticUser& user,
                                    const VizParams& p, Rng& rng) {
  const ResourceId target = user.preferred.front();
  const ComputeResource& res = platform_.compute_at(target);
  const Duration len = static_cast<Duration>(
      rng.uniform(p.session_hours_min, p.session_hours_max) * kHour);
  const int nodes =
      static_cast<int>(rng.uniform_int(p.nodes_min, p.nodes_max));

  if (rng.bernoulli(p.prejob_prob)) {
    JobRequest pre = make_request(user, target, nodes * res.cores_per_node,
                                  len / 2, 0.02, 0.02, rng);
    submit_later(0, target, std::move(pre));
  }

  JobRequest req;
  req.user = user.id;
  req.project = project_of(user.id);
  req.nodes = std::clamp(nodes, 1, res.nodes);
  req.actual_runtime = std::min<Duration>(len, res.max_walltime);
  req.requested_walltime = std::min<Duration>(
      res.max_walltime,
      static_cast<Duration>(static_cast<double>(len) * 1.25));
  req.interactive = true;
  pool_.at(target).submit(std::move(req));

  // The session log entry is written when the session closes.
  const SimTime start = engine_.now();
  const UserId uid = user.id;
  engine_.schedule_in(len, [this, uid, target, start] {
    recorder_.record_session(uid, target, start, engine_.now(), /*viz=*/true);
  });
}

void TrafficGenerator::campaign_data(const SyntheticUser& user,
                                     const DataParams& p, Rng& rng) {
  if (flows_ == nullptr) return;
  const auto nsites = static_cast<std::int64_t>(platform_.sites().size());
  const SiteId src{static_cast<SiteId::rep>(rng.uniform_int(0, nsites - 1))};
  SiteId dst{static_cast<SiteId::rep>(rng.uniform_int(0, nsites - 1))};
  if (dst == src) {
    dst = SiteId{static_cast<SiteId::rep>((src.value() + 1) % nsites)};
  }
  const BoundedPareto bytes_dist(p.bytes_alpha, p.bytes_min, p.bytes_max);
  const double bytes = bytes_dist.sample(rng);

  const bool analyse = rng.bernoulli(p.analysis_prob);
  const SyntheticUser* uptr = &user;
  flows_->start_transfer(
      src, dst, bytes, user.id, project_of(user.id),
      [this, uptr, analyse](const Flow&) {
        if (!analyse || engine_.now() >= horizon_) return;
        Rng& r = user_rngs_[static_cast<std::size_t>(
            uptr - population_.users.data())];
        const ResourceId target = uptr->preferred.front();
        JobRequest req = make_request(*uptr, target, 8, kHour / 2, 0.02,
                                      0.02, r);
        pool_.at(target).submit(std::move(req));
      });
}

void TrafficGenerator::campaign_exploratory(const SyntheticUser& user,
                                            const ArchetypeSpec& spec,
                                            const ExploratoryParams& p,
                                            Rng& rng) {
  const int njobs = static_cast<int>(
      rng.uniform_int(p.jobs_per_burst_min, p.jobs_per_burst_max));
  const ResourceId target = user.preferred.front();
  const Exponential gap(1.0 / static_cast<double>(5 * kMinute));
  Duration offset = 0;
  for (int j = 0; j < njobs; ++j) {
    const Duration actual =
        lognormal_runtime(p.runtime_mean_hours, p.runtime_cv, rng);
    dispatch_job(spec, user, offset, target,
                 make_request(user, target, 1, actual, p.fail_prob, 0.05, rng),
                 rng);
    offset += static_cast<Duration>(gap.sample(rng));
  }
}

void TrafficGenerator::schedule_gateway_arrival(std::size_t end_user_idx) {
  const GatewayEndUser& eu = population_.gateway_end_users[end_user_idx];
  Rng& rng = end_user_rng(end_user_idx);
  const Duration gap = arrival_gap(gateway_per_week_, eu.activity_scale, rng);
  const SimTime at = engine_.now() + gap;
  if (at >= horizon_) return;
  engine_.schedule_at(
      at, [this, end_user_idx] { run_gateway_session(end_user_idx); },
      EventPriority::kSubmission);
}

void TrafficGenerator::run_gateway_session(std::size_t end_user_idx) {
  const GatewayEndUser& eu = population_.gateway_end_users[end_user_idx];
  Rng& rng = end_user_rng(end_user_idx);
  ++campaigns_[static_cast<std::size_t>(Modality::kGateway)];
  Gateway& gw = *gateways_[eu.gateway_index];
  const GatewayUserParams& p = gateway_params_;
  const int njobs = static_cast<int>(
      rng.uniform_int(p.jobs_per_session_min, p.jobs_per_session_max));
  const Exponential think(1.0 / static_cast<double>(10 * kMinute));
  Duration offset = 0;
  for (int j = 0; j < njobs; ++j) {
    GatewayJobSpec spec;
    spec.nodes = static_cast<int>(rng.uniform_int(p.nodes_min, p.nodes_max));
    spec.actual_runtime =
        lognormal_runtime(p.runtime_mean_hours, p.runtime_cv, rng);
    spec.requested_walltime = std::min<Duration>(
        12 * kHour, static_cast<Duration>(
                        static_cast<double>(spec.actual_runtime) * 2.0));
    spec.fails = rng.bernoulli(p.fail_prob);
    spec.fail_after = spec.actual_runtime / 3;
    const SimTime at = engine_.now() + offset;
    if (at < horizon_) {
      const EndUserId end_user = eu.id;
      engine_.schedule_at(
          at,
          [this, &gw, end_user, spec, end_user_idx] {
            gw.submit(end_user, spec, end_user_rng(end_user_idx));
          },
          EventPriority::kSubmission);
    }
    offset += static_cast<Duration>(think.sample(rng));
  }
  schedule_gateway_arrival(end_user_idx);
}

}  // namespace tg
