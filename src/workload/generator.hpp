// TrafficGenerator: turns the synthetic population into open-loop load on
// the whole platform — direct batch submissions, gateway sessions,
// workflow/ensemble campaigns, co-allocations, viz sessions, WAN transfers
// and exploratory bursts. Every actor stops *initiating* work at the
// horizon; in-flight work is allowed to finish naturally.
//
// Campaign shape is resolved through the population's ArchetypeRegistry:
// each user's spec selects the campaign body (via the behavior variant)
// and supplies its parameters, arrival rate, and optional data-access
// trait. Specs with an enabled DataAccessSpec route their batch jobs
// through DataGrid::stage_in before submission.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "accounting/usage_db.hpp"
#include "data/data_grid.hpp"
#include "des/engine.hpp"
#include "gateway/gateway.hpp"
#include "meta/coalloc.hpp"
#include "net/flow.hpp"
#include "sched/pool.hpp"
#include "util/rng.hpp"
#include "workflow/engine.hpp"
#include "workload/population.hpp"

namespace tg {

class TrafficGenerator {
 public:
  TrafficGenerator(Engine& engine, const Platform& platform,
                   SchedulerPool& pool, FlowManager* flows,
                   WorkflowEngine& workflows, CoAllocator& coalloc,
                   std::vector<std::unique_ptr<Gateway>>& gateways,
                   Recorder& recorder, const Population& population,
                   DataGrid* data_grid, Duration horizon, Rng rng);

  /// Schedules the first arrival of every actor. Call once, then run the
  /// engine.
  void start();

  /// Campaigns initiated per modality (generator-side ground truth).
  [[nodiscard]] const std::array<std::uint64_t, kModalityCount>& campaigns()
      const {
    return campaigns_;
  }

 private:
  void schedule_account_arrival(std::size_t user_idx);
  void run_account_campaign(std::size_t user_idx);
  void schedule_gateway_arrival(std::size_t end_user_idx);
  void run_gateway_session(std::size_t end_user_idx);

  // Per-behavior campaign bodies (dispatched over the spec's variant).
  void campaign_capacity(const SyntheticUser& user, const ArchetypeSpec& spec,
                         const CapacityParams& p, Rng& rng);
  void campaign_capability(const SyntheticUser& user, const ArchetypeSpec& spec,
                           const CapabilityParams& p, Rng& rng);
  void campaign_workflow(const SyntheticUser& user, const WorkflowParams& p,
                         Rng& rng);
  void campaign_coupled(const SyntheticUser& user, const CoupledParams& p,
                        Rng& rng);
  void campaign_viz(const SyntheticUser& user, const VizParams& p, Rng& rng);
  void campaign_data(const SyntheticUser& user, const DataParams& p, Rng& rng);
  void campaign_exploratory(const SyntheticUser& user,
                            const ArchetypeSpec& spec,
                            const ExploratoryParams& p, Rng& rng);

  /// Builds a batch request with realistic walltime over-request and
  /// occasional under-request (kill).
  JobRequest make_request(const SyntheticUser& user, ResourceId resource,
                          int cores, Duration actual, double fail_prob,
                          double kill_prob, Rng& rng) const;
  /// Submits at a delay, guarded by the horizon.
  void submit_later(Duration delay, ResourceId resource, JobRequest request);
  /// Routes one batch job either straight to the scheduler (no data trait)
  /// or through the data grid's stage-in first. The access profile is drawn
  /// here, at campaign time, so the user's RNG sequence is independent of
  /// transfer timing and sharding.
  void dispatch_job(const ArchetypeSpec& spec, const SyntheticUser& user,
                    Duration delay, ResourceId resource, JobRequest request,
                    Rng& rng);

  [[nodiscard]] ProjectId project_of(UserId user) const;
  [[nodiscard]] Rng& user_rng(std::size_t user_idx);
  [[nodiscard]] Rng& end_user_rng(std::size_t idx);

  Engine& engine_;
  const Platform& platform_;
  SchedulerPool& pool_;
  FlowManager* flows_;
  WorkflowEngine& workflows_;
  CoAllocator& coalloc_;
  std::vector<std::unique_ptr<Gateway>>& gateways_;
  Recorder& recorder_;
  const Population& population_;
  DataGrid* data_grid_;
  /// The gateway spec's session parameters (defaults when the registry has
  /// no gateway spec — then there are no end users to drive anyway).
  GatewayUserParams gateway_params_;
  double gateway_per_week_ = 0.0;
  Duration horizon_;
  std::vector<Rng> user_rngs_;
  std::vector<Rng> end_user_rngs_;
  std::array<std::uint64_t, kModalityCount> campaigns_{};
};

}  // namespace tg
