// TrafficGenerator: turns the synthetic population into open-loop load on
// the whole platform — direct batch submissions, gateway sessions,
// workflow/ensemble campaigns, co-allocations, viz sessions, WAN transfers
// and exploratory bursts. Every actor stops *initiating* work at the
// horizon; in-flight work is allowed to finish naturally.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "accounting/usage_db.hpp"
#include "des/engine.hpp"
#include "gateway/gateway.hpp"
#include "meta/coalloc.hpp"
#include "net/flow.hpp"
#include "sched/pool.hpp"
#include "util/rng.hpp"
#include "workflow/engine.hpp"
#include "workload/population.hpp"

namespace tg {

class TrafficGenerator {
 public:
  TrafficGenerator(Engine& engine, const Platform& platform,
                   SchedulerPool& pool, FlowManager* flows,
                   WorkflowEngine& workflows, CoAllocator& coalloc,
                   std::vector<std::unique_ptr<Gateway>>& gateways,
                   Recorder& recorder, const Population& population,
                   ArchetypeParams params, Duration horizon, Rng rng);

  /// Schedules the first arrival of every actor. Call once, then run the
  /// engine.
  void start();

  /// Campaigns initiated per modality (generator-side ground truth).
  [[nodiscard]] const std::array<std::uint64_t, kModalityCount>& campaigns()
      const {
    return campaigns_;
  }

 private:
  void schedule_account_arrival(std::size_t user_idx);
  void run_account_campaign(std::size_t user_idx);
  void schedule_gateway_arrival(std::size_t end_user_idx);
  void run_gateway_session(std::size_t end_user_idx);

  // Per-modality campaign bodies.
  void campaign_capacity(const SyntheticUser& user, Rng& rng);
  void campaign_capability(const SyntheticUser& user, Rng& rng);
  void campaign_workflow(const SyntheticUser& user, Rng& rng);
  void campaign_coupled(const SyntheticUser& user, Rng& rng);
  void campaign_viz(const SyntheticUser& user, Rng& rng);
  void campaign_data(const SyntheticUser& user, Rng& rng);
  void campaign_exploratory(const SyntheticUser& user, Rng& rng);

  /// Builds a batch request with realistic walltime over-request and
  /// occasional under-request (kill).
  JobRequest make_request(const SyntheticUser& user, ResourceId resource,
                          int cores, Duration actual, double fail_prob,
                          double kill_prob, Rng& rng) const;
  /// Submits at a delay, guarded by the horizon.
  void submit_later(Duration delay, ResourceId resource, JobRequest request);

  [[nodiscard]] ProjectId project_of(UserId user) const;
  [[nodiscard]] Rng& user_rng(std::size_t user_idx);
  [[nodiscard]] Rng& end_user_rng(std::size_t idx);

  Engine& engine_;
  const Platform& platform_;
  SchedulerPool& pool_;
  FlowManager* flows_;
  WorkflowEngine& workflows_;
  CoAllocator& coalloc_;
  std::vector<std::unique_ptr<Gateway>>& gateways_;
  Recorder& recorder_;
  const Population& population_;
  ArchetypeParams params_;
  Duration horizon_;
  std::vector<Rng> user_rngs_;
  std::vector<Rng> end_user_rngs_;
  std::array<std::uint64_t, kModalityCount> campaigns_{};
};

}  // namespace tg
