#include "workload/population.hpp"

#include <algorithm>

#include "util/distributions.hpp"
#include "util/error.hpp"

namespace tg {

namespace {

/// Picks `count` distinct preferred resources, weighted by machine size
/// (bigger machines attract more users), excluding viz systems unless
/// `viz_only` selects exactly those.
std::vector<ResourceId> pick_preferred(const Platform& platform, Rng& rng,
                                       int count, bool viz_only,
                                       int min_nodes = 1) {
  std::vector<ResourceId> eligible;
  std::vector<double> weights;
  const auto collect = [&](bool viz, int min_n) {
    eligible.clear();
    weights.clear();
    for (const ComputeResource& r : platform.compute()) {
      if (r.interactive_viz != viz) continue;
      if (r.nodes < min_n) continue;
      eligible.push_back(r.id);
      weights.push_back(static_cast<double>(r.total_cores()));
    }
  };
  // Relax constraints progressively so small test platforms still work.
  collect(viz_only, min_nodes);
  if (eligible.empty()) collect(viz_only, 1);
  if (eligible.empty()) collect(!viz_only, 1);
  TG_REQUIRE(!eligible.empty(), "no eligible resources for archetype");
  std::vector<ResourceId> out;
  const Discrete picker(weights);
  while (static_cast<int>(out.size()) <
         std::min<int>(count, static_cast<int>(eligible.size()))) {
    const ResourceId pick = eligible[picker.sample(rng)];
    if (std::find(out.begin(), out.end(), pick) == out.end()) {
      out.push_back(pick);
    }
  }
  return out;
}

FieldOfScience random_field(Rng& rng) {
  // Rough 2010 TeraGrid discipline mix by allocation share.
  static const Discrete dist({22, 14, 13, 12, 9, 8, 7, 4, 11});
  return static_cast<FieldOfScience>(dist.sample(rng));
}

}  // namespace

Population build_population(const Platform& platform,
                            const PopulationConfig& config, Rng& rng) {
  TG_REQUIRE(config.gateways >= 1, "need at least one gateway");
  TG_REQUIRE(config.users_per_project >= 1.0, "users_per_project >= 1");
  Population pop;
  Rng prefs = rng.fork("population.preferred");
  Rng scales = rng.fork("population.scales");
  const LogNormal activity = LogNormal::from_mean_cv(1.0, 0.8);

  // Projects are created on demand: a fresh project every
  // ~users_per_project users.
  ProjectId current_project;
  int users_in_project = 0;
  const auto next_project = [&](const char* kind) {
    const double p = 1.0 / config.users_per_project;
    if (!current_project.valid() || users_in_project == 0 ||
        scales.bernoulli(p)) {
      current_project = pop.community.add_project(
          std::string(kind) + "-proj-" +
              std::to_string(pop.community.projects().size()),
          random_field(scales), 2e6);
      users_in_project = 0;
    }
    ++users_in_project;
    return current_project;
  };

  const auto add_account = [&](const ArchetypeSpec& spec,
                               std::size_t archetype,
                               std::vector<ResourceId> preferred) {
    const ProjectId proj = next_project(spec.name.c_str());
    const UserId uid = pop.community.add_user(
        spec.name + "-" + std::to_string(pop.community.user_count()), proj);
    SyntheticUser u;
    u.id = uid;
    u.modality = spec.truth;
    u.archetype = archetype;
    u.preferred = std::move(preferred);
    u.activity_scale = activity.sample(scales);
    pop.users.push_back(u);
    pop.truth.primary.push_back(spec.truth);
    return uid;
  };

  // Specs consume the preference/scale substreams strictly in registry
  // order, so appended specs never perturb the builtins' draws.
  pop.registry = config.registry.empty()
                     ? ArchetypeRegistry::builtin(ArchetypeParams{}, config.mix)
                     : config.registry;
  const ArchetypeSpec* gateway_spec = nullptr;
  for (std::size_t a = 0; a < pop.registry.size(); ++a) {
    const ArchetypeSpec& spec = pop.registry.at(a);
    if (spec.is_gateway()) {
      gateway_spec = &spec;
      continue;  // gateway end users are labels, not accounts — see below
    }
    for (int i = 0; i < spec.count; ++i) {
      add_account(spec, a,
                  pick_preferred(platform, prefs, spec.preferred_count,
                                 spec.prefer_viz, spec.min_nodes));
    }
  }

  // Gateways: one community account + project each, targeting the large
  // batch machines (the gateway spec's preference trait).
  const int gw_preferred = gateway_spec ? gateway_spec->preferred_count : 3;
  const bool gw_viz = gateway_spec ? gateway_spec->prefer_viz : false;
  const int gw_min_nodes = gateway_spec ? gateway_spec->min_nodes : 96;
  static const char* kGatewayNames[] = {"nanoHUB", "CIPRES", "GridChem",
                                        "LEAD",    "SIDGrid", "RENCI-Sci"};
  for (int g = 0; g < config.gateways; ++g) {
    const std::string name =
        g < 6 ? kGatewayNames[g] : "gateway-" + std::to_string(g);
    const ProjectId proj = pop.community.add_project(
        name + "-community", FieldOfScience::kOther, 5e6);
    const UserId account = pop.community.add_user(name + "-account", proj);
    pop.truth.primary.push_back(Modality::kGateway);
    // Community accounts are not SyntheticUsers; gateways drive them.
    GatewayConfig gc;
    gc.name = name;
    gc.community_account = account;
    gc.project = proj;
    gc.attribute_coverage = config.gateway_attribute_coverage;
    gc.targets =
        pick_preferred(platform, prefs, gw_preferred, gw_viz, gw_min_nodes);
    pop.gateway_configs.push_back(std::move(gc));
  }

  // Gateway end users: labels with a Zipf-skew over gateways and an
  // adoption ramp for the growth figure.
  const int gateway_end_users = gateway_spec ? gateway_spec->count : 0;
  const Zipf gateway_pick(static_cast<std::size_t>(config.gateways), 1.1);
  for (int i = 0; i < gateway_end_users; ++i) {
    GatewayEndUser eu;
    eu.gateway_index = gateway_pick.sample(scales) - 1;
    eu.label = pop.gateway_configs[eu.gateway_index].name + ":user" +
               std::to_string(i);
    eu.id = pop.end_user_pool.intern(eu.label);
    eu.activity_scale = activity.sample(scales);
    if (scales.bernoulli(config.gateway_adoption_ramp)) {
      eu.active_from = static_cast<SimTime>(
          scales.uniform(0.0, static_cast<double>(config.horizon)));
    }
    pop.gateway_end_users.push_back(std::move(eu));
  }

  TG_CHECK(pop.truth.primary.size() == pop.community.user_count(),
           "ground truth misaligned with community");
  return pop;
}

}  // namespace tg
