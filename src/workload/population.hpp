// Population synthesis: accounts, projects, gateways and ground truth.
#pragma once

#include <string>
#include <vector>

#include "core/modality.hpp"
#include "core/scoring.hpp"
#include "gateway/gateway.hpp"
#include "infra/community.hpp"
#include "infra/platform.hpp"
#include "util/rng.hpp"
#include "util/string_pool.hpp"
#include "workload/archetype_registry.hpp"
#include "workload/archetypes.hpp"

namespace tg {

/// One synthetic account user with their behavioural assignment.
struct SyntheticUser {
  UserId id;
  Modality modality = Modality::kCapacityBatch;
  /// Index of this user's spec in the population's ArchetypeRegistry — the
  /// generator resolves arrival rate and campaign behavior through it.
  std::size_t archetype = 0;
  /// Preferred compute resources (most users stick to one or two).
  std::vector<ResourceId> preferred;
  /// Multiplies the archetype's campaign rate (population heterogeneity).
  double activity_scale = 1.0;
  /// The user produces no activity before this time (adoption ramp).
  SimTime active_from = 0;
};

/// A gateway end-user label with its activity parameters.
struct GatewayEndUser {
  std::string label;
  /// `label` interned into Population::end_user_pool; what the generator
  /// hands to Gateway::submit (the hot path never touches the string).
  EndUserId id;
  std::size_t gateway_index = 0;
  double activity_scale = 1.0;
  SimTime active_from = 0;
};

struct PopulationConfig {
  /// Which archetypes exist and how many actors each gets. When empty, the
  /// canonical builtin registry is derived from `mix` (the compat shim for
  /// callers predating the registry).
  ArchetypeRegistry registry;
  PopulationMix mix;
  int gateways = 3;
  double gateway_attribute_coverage = 0.9;
  /// Fraction of gateway end users that adopt over the horizon (uniformly
  /// spread activation) instead of being active from t=0. Drives the
  /// gateway-growth curve of figure F1.
  double gateway_adoption_ramp = 0.6;
  Duration horizon = kYear;
  /// Average number of users per allocated project.
  double users_per_project = 3.0;
};

/// Everything the generator needs about who exists.
struct Population {
  /// The (resolved) registry this population was built from; users index
  /// into it via SyntheticUser::archetype.
  ArchetypeRegistry registry;
  Community community;
  std::vector<SyntheticUser> users;
  std::vector<GatewayConfig> gateway_configs;  ///< community accounts included
  std::vector<GatewayEndUser> gateway_end_users;
  /// Interned end-user labels; ids are dense [0, gateway_end_users.size()).
  /// The UsageDatabase borrows this pool to resolve record attributes back
  /// to labels at the I/O boundary.
  StringPool end_user_pool;
  GroundTruth truth;  ///< primary modality per account user (community
                      ///< accounts are labelled kGateway)
};

/// Builds accounts, projects, gateway configs and ground truth. Gateways
/// target the large batch machines; viz users prefer the viz systems.
[[nodiscard]] Population build_population(const Platform& platform,
                                          const PopulationConfig& config,
                                          Rng& rng);

}  // namespace tg
