#include "workload/replay.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tg {

ReplayStats replay_trace(Engine& engine, ResourceScheduler& scheduler,
                         const std::vector<SwfJob>& trace,
                         ReplayOptions options) {
  const ComputeResource& res = scheduler.resource();
  ReplayStats stats;
  for (const SwfJob& job : trace) {
    if (options.limit > 0 && stats.submitted >= options.limit) break;
    if (job.submit_seconds < 0) {
      ++stats.skipped;
      continue;
    }
    JobRequest req = to_request(job, res.cores_per_node);
    if (req.nodes > res.nodes) {
      if (!options.clamp_width) {
        ++stats.skipped;
        continue;
      }
      req.nodes = res.nodes;
    }
    if (req.requested_walltime > res.max_walltime) {
      if (!options.clamp_walltime) {
        ++stats.skipped;
        continue;
      }
      req.requested_walltime = res.max_walltime;
      req.actual_runtime = std::min(req.actual_runtime, res.max_walltime);
    }
    const SimTime at = job.submit_seconds * kSecond;
    engine.schedule_at(std::max(at, engine.now()),
                       [&scheduler, req = std::move(req)]() mutable {
                         scheduler.submit(std::move(req));
                       },
                       EventPriority::kSubmission);
    ++stats.submitted;
  }
  return stats;
}

}  // namespace tg
