// Trace replay: drive a scheduler from an SWF trace instead of the
// synthetic generators — the standard way to validate scheduling policies
// against archived production workloads.
#pragma once

#include <vector>

#include "accounting/swf.hpp"
#include "des/engine.hpp"
#include "sched/scheduler.hpp"

namespace tg {

struct ReplayOptions {
  /// Jobs wider than the machine are clamped to full-machine width when
  /// true; skipped when false.
  bool clamp_width = true;
  /// Requested walltimes above the machine limit are clamped when true;
  /// such jobs are skipped when false.
  bool clamp_walltime = true;
  /// Replay at most this many jobs (0 = all).
  std::size_t limit = 0;
};

struct ReplayStats {
  std::size_t submitted = 0;
  std::size_t skipped = 0;
};

/// Schedules every trace job for submission at its recorded submit time.
/// Call before Engine::run(); the engine then replays the trace.
ReplayStats replay_trace(Engine& engine, ResourceScheduler& scheduler,
                         const std::vector<SwfJob>& trace,
                         ReplayOptions options = {});

}  // namespace tg
