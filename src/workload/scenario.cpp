#include "workload/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tg {

ScenarioConfig& ScenarioConfig::with_scale(double factor) {
  TG_REQUIRE(factor > 0.0, "scale factor must be positive, got " << factor);
  const auto scaled = [factor](int n) {
    if (n <= 0) return n;
    return std::max(1, static_cast<int>(std::lround(n * factor)));
  };
  mix.capacity_users = scaled(mix.capacity_users);
  mix.capability_users = scaled(mix.capability_users);
  mix.gateway_end_users = scaled(mix.gateway_end_users);
  mix.workflow_users = scaled(mix.workflow_users);
  mix.coupled_users = scaled(mix.coupled_users);
  mix.viz_users = scaled(mix.viz_users);
  mix.data_users = scaled(mix.data_users);
  mix.exploratory_users = scaled(mix.exploratory_users);
  if (!registry.empty()) registry.scale(factor);
  return *this;
}

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)),
      platform_(config_.mini_platform ? mini_platform() : teragrid_2010()),
      population_([&] {
        Rng rng(config_.seed);
        PopulationConfig pc;
        // Resolve the registry here (not in build_population's fallback) so
        // config_.archetypes reaches the builtin specs' rates/behavior.
        pc.registry = config_.registry.empty()
                          ? ArchetypeRegistry::builtin(config_.archetypes,
                                                       config_.mix)
                          : config_.registry;
        pc.mix = config_.mix;
        pc.gateways = config_.gateways;
        pc.gateway_attribute_coverage = config_.gateway_attribute_coverage;
        pc.gateway_adoption_ramp = config_.gateway_adoption_ramp;
        pc.horizon = config_.horizon;
        pc.users_per_project = config_.users_per_project;
        return build_population(platform_, pc, rng);
      }()),
      ledger_(population_.community) {
  // Partition the engine by topology before anything is scheduled: the
  // partition ids are part of the canonical event order, which must be
  // identical whatever execution mode config_.shards later selects.
  shard_plan_ = make_shard_plan(platform_);
  engine_.configure_partitions(shard_plan_.partitions);
  // Per-job failure hazards hook an on-start observer that schedules
  // interrupt events — illegal from a window worker — so those runs stay
  // on the merged loop (same canonical order, so still byte-identical).
  const bool hazard_serial = config_.faults.enabled() &&
                             config_.faults.job_failure_rate_per_hour > 0.0;
  if (config_.shards > 0 && !hazard_serial) {
    if (config_.shards >= 2) {
      shard_pool_ =
          std::make_unique<ThreadPool>(static_cast<std::size_t>(config_.shards));
    }
    engine_.set_window_execution(true, shard_pool_.get());
  }
  // Lets report/label stages resolve interned end-user ids back to labels.
  db_.set_end_user_pool(&population_.end_user_pool);
  pool_ = std::make_unique<SchedulerPool>(engine_, platform_, config_.sched,
                                          &shard_plan_);
  if (config_.enable_flows) {
    flows_ = std::make_unique<FlowManager>(engine_, platform_);
  }
  recorder_ =
      std::make_unique<Recorder>(platform_, db_, &ledger_, config_.charging);
  recorder_->attach(*pool_);
  if (flows_) recorder_->attach(*flows_);
  workflows_ =
      std::make_unique<WorkflowEngine>(engine_, *pool_, flows_.get());
  coalloc_ = std::make_unique<CoAllocator>(engine_, *pool_);
  for (std::size_t g = 0; g < population_.gateway_configs.size(); ++g) {
    gateways_.push_back(std::make_unique<Gateway>(
        engine_, *pool_, GatewayId{static_cast<GatewayId::rep>(g)},
        population_.gateway_configs[g]));
  }
  if (config_.data_grid.enabled) {
    // Like faults: a dedicated "data" fork, and a disabled config never
    // constructs the subsystem at all (zero draws, zero events).
    std::vector<DataAccessSpec> archetype_data;
    archetype_data.reserve(population_.registry.size());
    for (const ArchetypeSpec& s : population_.registry.specs()) {
      archetype_data.push_back(s.data);
    }
    data_grid_ = std::make_unique<DataGrid>(
        engine_, platform_, flows_.get(), config_.data_grid,
        std::move(archetype_data), Rng(config_.seed).fork("data"));
  }
  Rng traffic_rng = Rng(config_.seed).fork("traffic");
  generator_ = std::make_unique<TrafficGenerator>(
      engine_, platform_, *pool_, flows_.get(), *workflows_, *coalloc_,
      gateways_, *recorder_, population_, data_grid_.get(),
      config_.horizon, traffic_rng);
  if (config_.faults.enabled()) {
    // A dedicated fork: fault randomness never perturbs the traffic stream,
    // and a disabled FaultModel is never even constructed, so fault-free
    // runs stay byte-identical to builds without this subsystem.
    faults_ = std::make_unique<FaultModel>(engine_, *pool_, config_.faults,
                                           config_.horizon,
                                           Rng(config_.seed).fork("faults"),
                                           &gateways_);
  }
  if (config_.trace != nullptr) {
    pool_->set_trace_all(config_.trace);
    for (auto& g : gateways_) g->set_trace(config_.trace);
    if (faults_) faults_->set_trace(config_.trace);
  }
  if (config_.streaming.enabled) {
    // Out-of-core storage must be selected before the first record lands.
    if (config_.streaming.segments.segment_records > 0) {
      db_.enable_segments(config_.streaming.segments);
    }
    StreamingConfig sc;
    sc.series_start = 0;
    sc.bucket = config_.streaming.bucket;
    sc.series_end = config_.streaming.series_end;
    if (sc.series_end == 0) {
      sc.series_end = (config_.horizon / sc.bucket) * sc.bucket;
      if (sc.series_end == 0) sc.series_end = config_.horizon;
    }
    sc.features = config_.features;
    sc.thresholds = config_.streaming.thresholds;
    streaming_ = std::make_unique<StreamingExtractor>(platform_, sc);
    db_.add_observer(streaming_.get());
  }
}

void Scenario::run() {
  TG_REQUIRE(!ran_, "Scenario::run() called twice");
  ran_ = true;
  obs::TraceSpan span(config_.trace, engine_.now(),
                      obs::TraceCategory::kEngine,
                      obs::TracePoint::kScenarioRun);
  generator_->start();
  if (faults_) faults_->start();
  if (config_.audit_every > 0) {
    schedule_audit(engine_.now() + config_.audit_every);
  }
  engine_.run_until(config_.horizon);
  // Drain: queued and running work completes, nothing new is initiated
  // (the generator guards every submission with the horizon).
  engine_.run();
  // The drain appended the last records; close the remaining windows so the
  // streaming series is complete when run() returns.
  if (streaming_) streaming_->finish();
  span.set_payload(static_cast<std::int64_t>(engine_.events_processed()),
                   static_cast<std::int64_t>(db_.job_count()));
}

InvariantReport Scenario::audit_now(AuditPhase phase) const {
  return check_invariants(platform_, db_, &ledger_, &population_.community,
                          pool_.get(), config_.charging, phase);
}

void Scenario::schedule_audit(SimTime at) {
  if (at > config_.horizon) return;  // run() audits nothing past the clock
  // kReporting priority on the coordinator: every same-tick completion and
  // replan has fired, so the point is quiescent; as a barrier it is also
  // safe to read cross-partition scheduler state under windowed execution.
  engine_.schedule_at(
      at,
      [this, at] {
        const InvariantReport report = audit_now(AuditPhase::kMidRun);
        TG_CHECK(report.ok(), "mid-run audit at t=" << at << "ms: "
                                                    << report.to_string());
        schedule_audit(at + config_.audit_every);
      },
      EventPriority::kReporting, EventBinding{0, EventClass::kBarrier});
}

ModalityReport Scenario::report(const RuleClassifier& classifier,
                                ThreadPool* analysis_pool) const {
  return ModalityReport::build(platform_, db_, classifier, 0,
                               engine_.now() + 1, config_.features,
                               analysis_pool, config_.trace);
}

Scenario::LabelledPredictions Scenario::predictions(
    const RuleClassifier& classifier, ThreadPool* analysis_pool) const {
  const FeatureExtractor extractor(platform_, config_.features);
  const auto features =
      extractor.extract(db_, 0, engine_.now() + 1, analysis_pool);
  const auto sets = classifier.classify(features);
  LabelledPredictions out;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (sets[i].members.none()) continue;
    out.users.push_back(features[i].user);
    out.truth.push_back(population_.truth.of(features[i].user));
    out.predicted.push_back(sets[i].primary);
  }
  return out;
}

void Scenario::publish_metrics(obs::MetricsRegistry& registry) const {
  engine_.bind_metrics(registry);
  if (engine_.partitions() > 1) {
    engine_.bind_shard_metrics(registry);
    registry.gauge("shard.wan_lookahead_ms")
        .set(static_cast<double>(shard_plan_.wan_lookahead));
  }
  pool_->bind_metrics(registry);
  for (const auto& g : gateways_) g->bind_metrics(registry);
  if (faults_) faults_->bind_metrics(registry);
  if (data_grid_) data_grid_->bind_metrics(registry);
  if (streaming_) streaming_->bind_metrics(registry);
  if (db_.segmented()) {
    const SegmentLogStats seg = db_.segment_stats();
    registry.counter("seglog.sealed").set(seg.sealed);
    registry.counter("seglog.spilled").set(seg.spilled);
    registry.counter("seglog.spilled_bytes").set(seg.spilled_bytes);
    registry.counter("seglog.spill_failures").set(seg.spill_failures);
  }
  // Snapshot counts owned by the registry: stable after run().
  registry.counter("scenario.job_records")
      .set(static_cast<std::uint64_t>(db_.job_count()));
  registry.counter("scenario.transfer_records")
      .set(static_cast<std::uint64_t>(db_.transfer_count()));
  registry.counter("scenario.session_records")
      .set(static_cast<std::uint64_t>(db_.session_count()));
  registry.counter("scenario.account_users")
      .set(static_cast<std::uint64_t>(population_.users.size()));
  registry.counter("scenario.gateway_end_users")
      .set(static_cast<std::uint64_t>(population_.gateway_end_users.size()));
  if (config_.trace != nullptr) {
    registry.counter("trace.events_emitted").set(config_.trace->emitted());
    registry.counter("trace.events_dropped").set(config_.trace->dropped());
  }
}

}  // namespace tg
