// The Simulation facade: one object that builds the platform, population,
// middleware and accounting, runs the clock, and exposes the database and
// ground truth for analysis. Examples, tests and every experiment binary go
// through this.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "accounting/usage_db.hpp"
#include "core/classifier.hpp"
#include "core/report.hpp"
#include "core/streaming.hpp"
#include "des/engine.hpp"
#include "fault/fault.hpp"
#include "fault/invariants.hpp"
#include "gateway/gateway.hpp"
#include "meta/coalloc.hpp"
#include "net/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "sched/pool.hpp"
#include "util/error.hpp"
#include "workflow/engine.hpp"
#include "workload/generator.hpp"
#include "workload/population.hpp"

namespace tg {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  Duration horizon = kYear;
  PopulationMix mix;
  ArchetypeParams archetypes;
  /// Composable archetype registry. Empty (the default) means "derive the
  /// canonical builtin registry from `archetypes` + `mix`" — the compat
  /// shim that keeps every pre-registry caller byte-identical. Non-empty
  /// registries are taken verbatim; `mix`/`archetypes` are then ignored.
  ArchetypeRegistry registry;
  /// Replica catalog + site caches + stage-in model. Disabled by default:
  /// no DataGrid is constructed, no "data" RNG substream is forked, and
  /// output is byte-identical to a build without the subsystem.
  DataGridConfig data_grid;
  SchedulerConfig sched;
  int gateways = 3;
  double gateway_attribute_coverage = 0.9;
  double gateway_adoption_ramp = 0.6;
  double users_per_project = 3.0;
  bool enable_flows = true;
  FeatureConfig features;
  /// Fault injection; disabled by default (no events, no extra randomness,
  /// byte-identical output to a fault-free build).
  FaultConfig faults;
  /// How lost work (requeued / outage-killed attempts) is charged.
  ChargePolicy charging;
  /// Use the tiny 2-resource platform instead of the TeraGrid preset
  /// (integration tests).
  bool mini_platform = false;
  /// When positive, run() audits the simulation every `audit_every` of sim
  /// time (AuditPhase::kMidRun — see fault/invariants.hpp) and throws
  /// InvariantError at the first failing audit, so a broken conservation
  /// law surfaces near the event that broke it instead of after the drain.
  /// The audits read state the reporting layer already observes; the
  /// simulation outcome is byte-identical with or without them.
  Duration audit_every = 0;
  /// How the partitioned engine executes (the partitioning itself — one
  /// per site plus coordinator — is fixed by the platform topology, so the
  /// canonical event order is identical in every mode): 0 runs the merged
  /// sequential loop (the reference oracle), 1 runs conservative time
  /// windows inline on the driver thread, N >= 2 runs the windows on N
  /// worker threads. Output is byte-identical across all values. Windows
  /// are declined (merged execution regardless of this knob) when per-job
  /// failure hazards are enabled — their on-start observer schedules
  /// interrupt events, which windows forbid; see DESIGN.md §5.7.
  int shards = 0;
  /// Optional flight recorder, attached to every scheduler, gateway and
  /// the fault model (see obs/trace.hpp). Single-writer: never share one
  /// buffer between scenarios replicated across a thread pool.
  obs::TraceBuffer* trace = nullptr;
  /// Streaming modality measurement (DESIGN.md §5.9): when enabled, a
  /// StreamingExtractor subscribes to the database's append stream and the
  /// quarterly modality series is produced *during* the run — byte-identical
  /// to the batch quarterly_series over the same range. A positive
  /// `segments.segment_records` additionally switches the database to the
  /// spillable columnar record log (out-of-core accounting).
  struct StreamingOptions {
    bool enabled = false;
    Duration bucket = kQuarter;
    /// Series end (exclusive); 0 derives floor(horizon / bucket) * bucket,
    /// falling back to the horizon itself when it is under one bucket.
    SimTime series_end = 0;
    ClassifierThresholds thresholds;
    SegmentLogConfig segments;
  };
  StreamingOptions streaming;

  // --- Fluent construction --------------------------------------------------
  // `ScenarioConfig::defaults().with_scale(2.0).with_fault_model(f)` reads
  // as the experiment it configures. Every with_* mutates one knob and
  // returns the config for chaining; plain aggregate initialization keeps
  // working unchanged.

  [[nodiscard]] static ScenarioConfig defaults() { return ScenarioConfig{}; }

  ScenarioConfig& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  ScenarioConfig& with_horizon(Duration h) {
    horizon = h;
    return *this;
  }
  ScenarioConfig& with_mix(PopulationMix m) {
    mix = m;
    return *this;
  }
  /// Multiplies every archetype count in the current mix by `factor`
  /// (rounded, floor 1 for counts that started positive). Scales the
  /// explicit registry too when one is set.
  ScenarioConfig& with_scale(double factor);
  ScenarioConfig& with_archetypes(ArchetypeParams a) {
    archetypes = a;
    return *this;
  }
  /// Replaces the archetype registry wholesale.
  ScenarioConfig& with_registry(ArchetypeRegistry r) {
    registry = std::move(r);
    return *this;
  }
  /// Adds (or replaces, by name) one archetype spec. On first use the
  /// registry is seeded from the current `archetypes` + `mix`, so call this
  /// *after* with_mix()/with_archetypes() — later changes to those fields
  /// no longer reach a non-empty registry.
  ScenarioConfig& with_archetype(ArchetypeSpec spec) {
    if (registry.empty()) {
      registry = ArchetypeRegistry::builtin(archetypes, mix);
    }
    registry.add(std::move(spec));
    return *this;
  }
  /// Enables the data-grid subsystem (replica catalog, site caches,
  /// stage-in before submission for specs with a data trait).
  ScenarioConfig& with_data_grid(DataGridConfig d) {
    data_grid = d;
    return *this;
  }
  ScenarioConfig& with_sched(SchedulerConfig s) {
    sched = s;
    return *this;
  }
  ScenarioConfig& with_policy(SchedPolicy p) {
    sched.policy = p;
    return *this;
  }
  /// Toggles the incremental plan cache on every scheduler (off = the
  /// from-scratch reference planner; outcomes are identical either way,
  /// which the --exact-replan golden check enforces).
  ScenarioConfig& with_plan_cache(bool on) {
    sched.plan_cache = on;
    return *this;
  }
  ScenarioConfig& with_gateways(int n) {
    gateways = n;
    return *this;
  }
  ScenarioConfig& with_gateway_attribute_coverage(double coverage) {
    gateway_attribute_coverage = coverage;
    return *this;
  }
  ScenarioConfig& with_gateway_adoption_ramp(double ramp) {
    gateway_adoption_ramp = ramp;
    return *this;
  }
  ScenarioConfig& with_users_per_project(double upp) {
    users_per_project = upp;
    return *this;
  }
  ScenarioConfig& with_flows(bool enabled) {
    enable_flows = enabled;
    return *this;
  }
  ScenarioConfig& with_features(FeatureConfig f) {
    features = f;
    return *this;
  }
  ScenarioConfig& with_fault_model(FaultConfig f) {
    faults = f;
    return *this;
  }
  ScenarioConfig& with_charging(ChargePolicy c) {
    charging = c;
    return *this;
  }
  ScenarioConfig& with_mini_platform(bool mini = true) {
    mini_platform = mini;
    return *this;
  }
  ScenarioConfig& with_trace(obs::TraceBuffer* t) {
    trace = t;
    return *this;
  }
  ScenarioConfig& with_shards(int n) {
    shards = n;
    return *this;
  }
  ScenarioConfig& with_audit_every(Duration every) {
    audit_every = every;
    return *this;
  }
  ScenarioConfig& with_streaming(StreamingOptions s) {
    streaming = std::move(s);
    return *this;
  }
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Runs the simulated clock to the horizon, then drains remaining events
  /// (jobs already queued/running finish; nothing new is initiated).
  void run();

  /// Audits the simulation's current state (see check_invariants); callable
  /// at any quiescent point — between events, or from a kReporting-priority
  /// event like the recurring config.audit_every audit. Defaults to the
  /// mid-run relaxations; pass AuditPhase::kFinal after run() for the full
  /// six families.
  [[nodiscard]] InvariantReport audit_now(
      AuditPhase phase = AuditPhase::kMidRun) const;

  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] const Platform& platform() const { return platform_; }
  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const Engine& engine() const { return engine_; }
  [[nodiscard]] const Community& community() const {
    return population_.community;
  }
  [[nodiscard]] const Population& population() const { return population_; }
  [[nodiscard]] const GroundTruth& truth() const { return population_.truth; }
  [[nodiscard]] const UsageDatabase& db() const { return db_; }
  [[nodiscard]] UsageDatabase& db() { return db_; }
  [[nodiscard]] const AllocationLedger& ledger() const { return ledger_; }
  [[nodiscard]] SchedulerPool& pool() { return *pool_; }
  [[nodiscard]] const SchedulerPool& pool() const { return *pool_; }
  [[nodiscard]] const WorkflowEngine& workflows() const { return *workflows_; }
  [[nodiscard]] const TrafficGenerator& generator() const {
    return *generator_;
  }
  [[nodiscard]] FlowManager* flows() { return flows_.get(); }
  /// Null unless config.data_grid.enabled.
  [[nodiscard]] const DataGrid* data_grid() const { return data_grid_.get(); }
  /// Topology-derived partitioning (coordinator + one partition per site).
  [[nodiscard]] const ShardPlan& shard_plan() const { return shard_plan_; }
  /// True when run() will use windowed (sharded) execution.
  [[nodiscard]] bool sharded() const { return engine_.window_execution(); }
  /// Null unless config.faults.enabled().
  [[nodiscard]] const FaultModel* faults() const { return faults_.get(); }
  /// Null unless config.streaming.enabled. finish() has already run by the
  /// time run() returns, so series()/time_series() are ready.
  [[nodiscard]] const StreamingExtractor* streaming() const {
    return streaming_.get();
  }
  [[nodiscard]] StreamingExtractor* streaming() { return streaming_.get(); }
  /// Zero stats when fault injection is disabled.
  [[nodiscard]] FaultModel::Stats fault_stats() const {
    return faults_ ? faults_->stats() : FaultModel::Stats{};
  }

  /// The one subscription surface over the run's taps. Window sinks fire
  /// synchronously as each streaming window closes (requires
  /// config.streaming.enabled; call before run()); record observers fire
  /// on every accounting append. Replaces reaching into
  /// streaming()->series() polling and db-level observer wiring.
  void subscribe(std::function<void(const StreamingWindow&)> sink) {
    TG_REQUIRE(streaming_ != nullptr,
               "subscribe(window sink) requires config.streaming.enabled");
    streaming_->add_window_sink(std::move(sink));
  }
  void subscribe(UsageDatabase::RecordObserver* observer) {
    db_.add_observer(observer);
  }

  /// Convenience: the headline modality report over the full horizon. A
  /// non-null `analysis_pool` fans the per-user feature extraction across
  /// its workers (deterministic index-ordered fan-in; byte-identical to the
  /// sequential pass).
  [[nodiscard]] ModalityReport report(
      const RuleClassifier& classifier,
      ThreadPool* analysis_pool = nullptr) const;

  /// Aligned (truth, predicted-primary) vectors over active account users,
  /// for classifier scoring. Users with no recorded activity are skipped.
  struct LabelledPredictions {
    std::vector<Modality> truth;
    std::vector<Modality> predicted;
    std::vector<UserId> users;
  };
  [[nodiscard]] LabelledPredictions predictions(
      const RuleClassifier& classifier,
      ThreadPool* analysis_pool = nullptr) const;

  /// Registers every component's counters with `registry` — engine event
  /// core, per-resource scheduler tallies, gateways, fault model — plus
  /// owned "scenario.*" record counts. Call after run(); the registry must
  /// not outlive this Scenario.
  void publish_metrics(obs::MetricsRegistry& registry) const;

 private:
  /// Arms the next recurring mid-run audit at `at` (no-op past the horizon).
  void schedule_audit(SimTime at);

  ScenarioConfig config_;
  Platform platform_;
  Engine engine_;
  Population population_;
  std::unique_ptr<SchedulerPool> pool_;
  std::unique_ptr<FlowManager> flows_;
  std::unique_ptr<DataGrid> data_grid_;
  UsageDatabase db_;
  AllocationLedger ledger_;
  std::unique_ptr<Recorder> recorder_;
  std::unique_ptr<WorkflowEngine> workflows_;
  std::unique_ptr<CoAllocator> coalloc_;
  std::vector<std::unique_ptr<Gateway>> gateways_;
  std::unique_ptr<TrafficGenerator> generator_;
  std::unique_ptr<FaultModel> faults_;
  std::unique_ptr<StreamingExtractor> streaming_;
  ShardPlan shard_plan_;
  /// Workers for windowed execution; null for shards <= 1.
  std::unique_ptr<ThreadPool> shard_pool_;
  bool ran_ = false;
};

}  // namespace tg
