#include <gtest/gtest.h>

#include "accounting/charge.hpp"
#include "accounting/ledger.hpp"
#include "accounting/usage_db.hpp"
#include "infra/platform.hpp"
#include "util/error.hpp"

namespace tg {
namespace {

ComputeResource res_with(double charge_factor, int cores = 8) {
  ComputeResource r;
  r.id = ResourceId{0};
  r.site = SiteId{0};
  r.name = "m";
  r.nodes = 16;
  r.cores_per_node = cores;
  r.charge_factor = charge_factor;
  return r;
}

Job ran_job(int nodes, Duration runtime) {
  Job j;
  j.id = JobId{1};
  j.resource = ResourceId{0};
  j.req.nodes = nodes;
  j.req.requested_walltime = runtime;
  j.req.actual_runtime = runtime;
  j.submit_time = 0;
  j.start_time = 0;
  j.end_time = runtime;
  j.state = JobState::kCompleted;
  return j;
}

TEST(Charge, CoreHoursTimesFactor) {
  const auto res = res_with(1.5);
  const Charge c = charge_for(ran_job(4, 2 * kHour), res);
  EXPECT_DOUBLE_EQ(c.su, 4 * 8 * 2.0);
  EXPECT_DOUBLE_EQ(c.nu, 4 * 8 * 2.0 * 1.5);
}

TEST(Charge, KilledJobChargedForTimeHeld) {
  const auto res = res_with(1.0);
  Job j = ran_job(2, 3 * kHour);
  j.req.actual_runtime = 5 * kHour;  // wanted more
  j.state = JobState::kKilled;
  const Charge c = charge_for(j, res);
  EXPECT_DOUBLE_EQ(c.su, 2 * 8 * 3.0);
}

TEST(Charge, UnranJobRejected) {
  const auto res = res_with(1.0);
  Job j = ran_job(1, kHour);
  j.start_time = -1;
  EXPECT_THROW((void)charge_for(j, res), PreconditionError);
}

TEST(Ledger, DebitAndBalance) {
  Community c;
  const ProjectId p = c.add_project("P", FieldOfScience::kPhysics, 1000.0);
  AllocationLedger ledger(c);
  EXPECT_DOUBLE_EQ(ledger.balance(p), 1000.0);
  ledger.debit(p, 400.0);
  EXPECT_DOUBLE_EQ(ledger.balance(p), 600.0);
  EXPECT_DOUBLE_EQ(ledger.charged(p), 400.0);
  EXPECT_FALSE(ledger.overdrawn(p));
  ledger.debit(p, 700.0);
  EXPECT_TRUE(ledger.overdrawn(p));
  EXPECT_DOUBLE_EQ(ledger.total_charged(), 1100.0);
  EXPECT_EQ(ledger.overdrawn_count(), 1u);
  EXPECT_THROW(ledger.debit(p, -1.0), PreconditionError);
}

TEST(Ledger, LateProjectsAccepted) {
  Community c;
  const ProjectId p1 = c.add_project("P1", FieldOfScience::kOther, 10.0);
  AllocationLedger ledger(c);
  // A project created after the ledger still works.
  const ProjectId p2 = c.add_project("P2", FieldOfScience::kOther, 10.0);
  ledger.debit(p2, 5.0);
  EXPECT_DOUBLE_EQ(ledger.balance(p2), 5.0);
  EXPECT_DOUBLE_EQ(ledger.charged(p1), 0.0);
}

struct RecorderFixture : ::testing::Test {
  Platform platform = mini_platform();
  Engine engine;
  SchedulerPool pool{engine, platform};
  Community community;
  ProjectId project = community.add_project("P", FieldOfScience::kOther, 1e6);
  UserId user = community.add_user("u", project);
  AllocationLedger ledger{community};
  UsageDatabase db;
  Recorder recorder{platform, db, &ledger};

  JobRequest request(int nodes, Duration runtime) {
    JobRequest r;
    r.user = user;
    r.project = project;
    r.nodes = nodes;
    r.requested_walltime = runtime;
    r.actual_runtime = runtime;
    return r;
  }
};

TEST_F(RecorderFixture, JobRecordWrittenAndLedgerDebited) {
  recorder.attach(pool);
  const ResourceId target = platform.compute()[0].id;
  pool.at(target).submit(request(4, 2 * kHour));
  engine.run();
  ASSERT_EQ(db.jobs().size(), 1u);
  const JobRecord& r = db.jobs()[0];
  EXPECT_EQ(r.user, user);
  EXPECT_EQ(r.resource, target);
  EXPECT_EQ(r.nodes, 4);
  EXPECT_EQ(r.final_state, JobState::kCompleted);
  EXPECT_DOUBLE_EQ(r.charged_su, 4 * 8 * 2.0);
  EXPECT_DOUBLE_EQ(r.charged_nu, r.charged_su * 1.0);
  EXPECT_DOUBLE_EQ(ledger.charged(project), r.charged_nu);
  EXPECT_DOUBLE_EQ(db.total_nu(), r.charged_nu);
}

TEST_F(RecorderFixture, CancelledJobsLeaveNoRecord) {
  recorder.attach(pool);
  const ResourceId target = platform.compute()[0].id;
  pool.at(target).submit(request(16, kHour));
  const JobId queued = pool.at(target).submit(request(16, kHour));
  pool.at(target).cancel(queued);
  engine.run();
  EXPECT_EQ(db.jobs().size(), 1u);
}

TEST_F(RecorderFixture, TransferRecordFromFlow) {
  FlowManager flows(engine, platform);
  recorder.attach(flows);
  flows.start_transfer(platform.sites()[0].id, platform.sites()[1].id, 1e9,
                       user, project);
  engine.run();
  ASSERT_EQ(db.transfers().size(), 1u);
  EXPECT_EQ(db.transfers()[0].bytes, 1e9);
  EXPECT_EQ(db.transfers()[0].user, user);
  EXPECT_GT(db.transfers()[0].end_time, db.transfers()[0].submit_time);
}

TEST_F(RecorderFixture, SessionRecord) {
  recorder.record_session(user, platform.compute()[0].id, 0, kHour, true);
  ASSERT_EQ(db.sessions().size(), 1u);
  EXPECT_TRUE(db.sessions()[0].viz);
  EXPECT_EQ(db.sessions()[0].end_time, kHour);
}

TEST_F(RecorderFixture, QueryHelpers) {
  recorder.attach(pool);
  const ResourceId target = platform.compute()[0].id;
  pool.at(target).submit(request(1, kHour));
  pool.at(target).submit(request(1, 2 * kHour));
  JobRequest other = request(1, kHour);
  other.user = community.add_user("v", project);
  pool.at(target).submit(other);
  engine.run();
  EXPECT_EQ(db.jobs_of(user).size(), 2u);
  EXPECT_EQ(db.jobs_of(other.user).size(), 1u);
  // Window [0, 1h+1) captures the two 1-hour jobs.
  EXPECT_EQ(db.jobs_ending_in(0, kHour + 1).size(), 2u);
  EXPECT_EQ(db.jobs_ending_in(kHour + 1, kDay).size(), 1u);
}

TEST_F(RecorderFixture, GatewayAttributesFlowThrough) {
  recorder.attach(pool);
  const ResourceId target = platform.compute()[0].id;
  JobRequest r = request(1, kHour);
  r.gateway = GatewayId{2};
  r.gateway_end_user = EndUserId{7};
  r.workflow = WorkflowId{5};
  r.interactive = true;
  r.coallocated = true;
  pool.at(target).submit(std::move(r));
  engine.run();
  ASSERT_EQ(db.jobs().size(), 1u);
  const JobRecord& rec = db.jobs()[0];
  EXPECT_EQ(rec.gateway, GatewayId{2});
  EXPECT_EQ(rec.gateway_end_user, EndUserId{7});
  EXPECT_EQ(rec.workflow, WorkflowId{5});
  EXPECT_TRUE(rec.interactive);
  EXPECT_TRUE(rec.coallocated);
}

}  // namespace
}  // namespace tg
