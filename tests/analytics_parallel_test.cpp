// The parallel analytics pipeline must be a pure speedup: every pooled
// stage (per-user feature extraction, the modality report, window
// classification series) returns results byte-identical to the sequential
// pass, on fault-free and faulty scenarios alike.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/trend.hpp"
#include "parallel/thread_pool.hpp"
#include "workload/scenario.hpp"

namespace tg {
namespace {

ScenarioConfig base_config(bool faulty) {
  ScenarioConfig config;
  config.seed = 1234;
  config.horizon = 120 * kDay;
  if (faulty) {
    config.faults.outage.mtbf_hours = 400.0;
    config.faults.job_failure_rate_per_hour = 0.0005;
    config.faults.gateway_brownouts_per_week = 0.25;
  }
  return config;
}

class AnalyticsParallelTest : public ::testing::TestWithParam<bool> {};

TEST_P(AnalyticsParallelTest, ReportMatchesSequentialByteForByte) {
  Scenario scenario(base_config(GetParam()));
  scenario.run();
  const RuleClassifier classifier;
  const ModalityReport sequential = scenario.report(classifier);
  ThreadPool pool(4);
  const ModalityReport parallel = scenario.report(classifier, &pool);
  EXPECT_EQ(sequential.to_table().to_string(),
            parallel.to_table().to_string());
  EXPECT_EQ(sequential.gateway_end_users(), parallel.gateway_end_users());
  EXPECT_EQ(sequential.total_users(), parallel.total_users());
  EXPECT_DOUBLE_EQ(sequential.total_nu(), parallel.total_nu());
}

TEST_P(AnalyticsParallelTest, PredictionsMatchSequential) {
  Scenario scenario(base_config(GetParam()));
  scenario.run();
  const RuleClassifier classifier;
  const auto sequential = scenario.predictions(classifier);
  ThreadPool pool(4);
  const auto parallel = scenario.predictions(classifier, &pool);
  ASSERT_EQ(sequential.users.size(), parallel.users.size());
  EXPECT_EQ(sequential.users, parallel.users);
  EXPECT_EQ(sequential.truth, parallel.truth);
  EXPECT_EQ(sequential.predicted, parallel.predicted);
}

TEST_P(AnalyticsParallelTest, ClassifySeriesMatchesSequential) {
  Scenario scenario(base_config(GetParam()));
  scenario.run();
  const RuleClassifier classifier;
  const SimTime to = 4 * (30 * kDay);
  const auto sequential =
      classify_series(scenario.platform(), scenario.db(), classifier, 0, to,
                      30 * kDay, scenario.config().features);
  ThreadPool pool(4);
  const auto parallel =
      classify_series(scenario.platform(), scenario.db(), classifier, 0, to,
                      30 * kDay, scenario.config().features, &pool);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t q = 0; q < sequential.size(); ++q) {
    EXPECT_EQ(sequential[q], parallel[q]) << "window " << q;
  }
}

TEST_P(AnalyticsParallelTest, QuarterlySeriesMatchesSequential) {
  Scenario scenario(base_config(GetParam()));
  scenario.run();
  const RuleClassifier classifier;
  const auto sequential =
      quarterly_series(scenario.platform(), scenario.db(), classifier, 0,
                       kQuarter, scenario.config().features);
  ThreadPool pool(4);
  const auto parallel =
      quarterly_series(scenario.platform(), scenario.db(), classifier, 0,
                       kQuarter, scenario.config().features, &pool);
  EXPECT_EQ(sequential.primary_users, parallel.primary_users);
  EXPECT_EQ(sequential.gateway_end_users, parallel.gateway_end_users);
}

INSTANTIATE_TEST_SUITE_P(FaultFreeAndFaulty, AnalyticsParallelTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "faulty" : "fault_free";
                         });

}  // namespace
}  // namespace tg
